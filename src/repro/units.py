"""Unit helpers and conversions used throughout the simulator.

All simulator-internal quantities use SI base units:

* time      — seconds (float)
* data size — bytes (int where possible)
* data rate — bits per second (float)

This module provides small constructor helpers (``gbps(1)``, ``ms(2)``,
``kb(64)``) so that configuration code reads like the paper's prose, plus
formatting helpers for reports. The helpers are plain functions returning
floats/ints rather than a unit-typed wrapper class: in a packet-level
simulator the hot path touches these values billions of times, and staying
on native scalars keeps that path allocation-free (see the optimisation
workflow in the scientific-python guides: measure first, keep the inner
loop primitive).
"""

from __future__ import annotations

__all__ = [
    "BITS_PER_BYTE",
    "bits_to_bytes",
    "bytes_to_bits",
    "bps",
    "kbps",
    "mbps",
    "gbps",
    "seconds",
    "ms",
    "us",
    "ns",
    "minutes",
    "b",
    "kb",
    "mb",
    "gb",
    "kib",
    "mib",
    "gib",
    "serialization_delay",
    "bandwidth_delay_product",
    "fmt_time",
    "fmt_rate",
    "fmt_bytes",
]

BITS_PER_BYTE = 8


# --------------------------------------------------------------------------
# Rates (bits per second)
# --------------------------------------------------------------------------

def bps(x: float) -> float:
    """Bits per second."""
    return float(x)


def kbps(x: float) -> float:
    """Kilobits per second (10^3 b/s)."""
    return float(x) * 1e3


def mbps(x: float) -> float:
    """Megabits per second (10^6 b/s)."""
    return float(x) * 1e6


def gbps(x: float) -> float:
    """Gigabits per second (10^9 b/s)."""
    return float(x) * 1e9


# --------------------------------------------------------------------------
# Time (seconds)
# --------------------------------------------------------------------------

def seconds(x: float) -> float:
    """Seconds (identity, for symmetry)."""
    return float(x)


def minutes(x: float) -> float:
    """Minutes to seconds."""
    return float(x) * 60.0


def ms(x: float) -> float:
    """Milliseconds to seconds."""
    return float(x) * 1e-3


def us(x: float) -> float:
    """Microseconds to seconds."""
    return float(x) * 1e-6


def ns(x: float) -> float:
    """Nanoseconds to seconds."""
    return float(x) * 1e-9


# --------------------------------------------------------------------------
# Sizes (bytes)
# --------------------------------------------------------------------------

def b(x: int) -> int:
    """Bytes (identity, for symmetry)."""
    return int(x)


def kb(x: float) -> int:
    """Kilobytes (10^3 B)."""
    return int(x * 1e3)


def mb(x: float) -> int:
    """Megabytes (10^6 B)."""
    return int(x * 1e6)


def gb(x: float) -> int:
    """Gigabytes (10^9 B)."""
    return int(x * 1e9)


def kib(x: float) -> int:
    """Kibibytes (2^10 B)."""
    return int(x * 1024)


def mib(x: float) -> int:
    """Mebibytes (2^20 B)."""
    return int(x * 1024 ** 2)


def gib(x: float) -> int:
    """Gibibytes (2^30 B)."""
    return int(x * 1024 ** 3)


def bits_to_bytes(bits: float) -> float:
    """Convert a bit count to bytes."""
    return bits / BITS_PER_BYTE


def bytes_to_bits(nbytes: float) -> float:
    """Convert a byte count to bits."""
    return nbytes * BITS_PER_BYTE


# --------------------------------------------------------------------------
# Derived network quantities
# --------------------------------------------------------------------------

def serialization_delay(nbytes: float, rate_bps: float) -> float:
    """Time to clock ``nbytes`` onto a link of ``rate_bps`` bits/second."""
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps}")
    return (nbytes * BITS_PER_BYTE) / rate_bps


def bandwidth_delay_product(rate_bps: float, rtt_s: float) -> float:
    """Bandwidth-delay product in bytes for a link rate and round-trip time."""
    return rate_bps * rtt_s / BITS_PER_BYTE


# --------------------------------------------------------------------------
# Formatting (reports, figures)
# --------------------------------------------------------------------------

def fmt_time(t: float) -> str:
    """Human-readable time: picks s / ms / µs / ns."""
    at = abs(t)
    if at >= 1.0 or at == 0.0:
        return f"{t:.3f}s"
    if at >= 1e-3:
        return f"{t * 1e3:.3f}ms"
    if at >= 1e-6:
        return f"{t * 1e6:.3f}us"
    return f"{t * 1e9:.1f}ns"


def fmt_rate(r: float) -> str:
    """Human-readable rate: picks bps / Kbps / Mbps / Gbps."""
    ar = abs(r)
    if ar >= 1e9:
        return f"{r / 1e9:.3f}Gbps"
    if ar >= 1e6:
        return f"{r / 1e6:.3f}Mbps"
    if ar >= 1e3:
        return f"{r / 1e3:.3f}Kbps"
    return f"{r:.1f}bps"


def fmt_bytes(n: float) -> str:
    """Human-readable size: picks B / KB / MB / GB."""
    an = abs(n)
    if an >= 1e9:
        return f"{n / 1e9:.3f}GB"
    if an >= 1e6:
        return f"{n / 1e6:.3f}MB"
    if an >= 1e3:
        return f"{n / 1e3:.3f}KB"
    return f"{int(n)}B"
