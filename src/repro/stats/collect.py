"""Run-level metric collection.

:class:`LatencyCollector` hooks every host's delivery path and accumulates
end-to-end per-packet latency (the paper's third metric) without retaining
per-packet records: a running sum plus a fixed log-spaced histogram gives
mean and approximate percentiles at O(1) memory.

:class:`RunMetrics` is the record one experiment cell produces — runtime,
throughput per node, latency, and the per-class queue counters the paper's
characterization rests on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

import numpy as np

from repro.core.qdisc import QueueStats
from repro.net.network import Network

__all__ = ["LatencyCollector", "RunMetrics"]


class LatencyCollector:
    """Streaming end-to-end latency statistics over delivered packets.

    Latencies are binned into log-spaced buckets between ``lo`` and ``hi``
    seconds (default 100 ns .. 10 s), which bounds percentile error to the
    bin ratio (~5% with 400 bins) at constant memory.

    Parameters
    ----------
    data_only:
        Count only payload-carrying packets. Default False: the paper's
        latency metric is per *packet*.
    """

    N_BINS = 400
    LO = 1e-7
    HI = 10.0

    def __init__(self, data_only: bool = False):
        self.data_only = data_only
        self.count = 0
        self.total = 0.0
        # Plain Python list: a single-element numpy int64 increment costs
        # several hundred ns of boxing per packet; list[int] += 1 does not.
        self._bins = [0] * (self.N_BINS + 2)
        self._log_lo = math.log(self.LO)
        self._log_ratio = (math.log(self.HI) - self._log_lo) / self.N_BINS
        self.max_latency = 0.0

    # -- ingestion (hot path) ---------------------------------------------------

    def hook(self, pkt, now: float) -> None:
        """Host delivery hook: record one packet's end-to-end latency."""
        if self.data_only and pkt.payload == 0:
            return
        lat = now - pkt.created_at
        self.count += 1
        self.total += lat
        if lat > self.max_latency:
            self.max_latency = lat
        if lat <= self.LO:
            idx = 0
        elif lat >= self.HI:
            idx = self.N_BINS + 1
        else:
            idx = 1 + int((math.log(lat) - self._log_lo) / self._log_ratio)
        self._bins[idx] += 1

    def attach(self, network: Network) -> "LatencyCollector":
        """Register this collector on every host of ``network``."""
        for host in network.hosts:
            host.add_delivery_hook(self.hook)
        return self

    def credit(self, lat: float, n: int, data: bool = True) -> None:
        """Record ``n`` virtual deliveries at closed-form latency ``lat``.

        Hybrid-fidelity runs (repro.sim.fluid) deliver fluid traffic
        without packets; crediting the analytic per-packet latency here
        keeps a hybrid run's latency metrics comparable with packet mode.
        """
        if n <= 0 or (self.data_only and not data):
            return
        self.count += n
        self.total += lat * n
        if lat > self.max_latency:
            self.max_latency = lat
        if lat <= self.LO:
            idx = 0
        elif lat >= self.HI:
            idx = self.N_BINS + 1
        else:
            idx = 1 + int((math.log(lat) - self._log_lo) / self._log_ratio)
        self._bins[idx] += n

    # -- results -------------------------------------------------------------------

    @property
    def mean(self) -> float:
        """Mean end-to-end latency (seconds)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate percentile (q in [0, 100]) from the histogram."""
        if self.count == 0:
            return 0.0
        target = self.count * q / 100.0
        cum = np.cumsum(np.asarray(self._bins, dtype=np.int64))
        idx = int(np.searchsorted(cum, target))
        if idx <= 0:
            return self.LO
        if idx >= self.N_BINS + 1:
            return self.max_latency
        # bin idx covers [lo*r^(idx-1), lo*r^idx); return its geometric centre
        lo_edge = math.exp(self._log_lo + (idx - 1) * self._log_ratio)
        hi_edge = math.exp(self._log_lo + idx * self._log_ratio)
        return math.sqrt(lo_edge * hi_edge)


@dataclass
class RunMetrics:
    """Everything one experiment cell reports.

    The three headline metrics mirror the paper's Section III: ``runtime``
    (inversely proportional to effective cluster throughput),
    ``throughput_per_node_bps`` (average goodput per node) and
    ``mean_latency`` (average end-to-end latency per packet).
    """

    runtime: float = 0.0
    bytes_transferred: int = 0
    n_nodes: int = 0
    mean_latency: float = 0.0
    p99_latency: float = 0.0
    packets_delivered: int = 0
    queue: QueueStats = field(default_factory=QueueStats)
    flows_completed: int = 0
    flows_failed: int = 0
    retransmits: int = 0
    rtos: int = 0
    syn_retries: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_per_node_bps(self) -> float:
        """Average application goodput per node (bits/second)."""
        if self.runtime <= 0 or self.n_nodes == 0:
            return 0.0
        return self.bytes_transferred * 8.0 / self.runtime / self.n_nodes

    @property
    def cluster_throughput_bps(self) -> float:
        """Aggregate application goodput (bits/second)."""
        if self.runtime <= 0:
            return 0.0
        return self.bytes_transferred * 8.0 / self.runtime
