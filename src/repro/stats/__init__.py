"""Measurement layer: latency collectors, time series, summaries, and the
paper's DropTail-relative normalization."""

from repro.stats.collect import LatencyCollector, RunMetrics
from repro.stats.fairness import goodput_fairness, jain_index, slowdown
from repro.stats.normalize import normalize_map, normalize_to
from repro.stats.series import TimeSeries
from repro.stats.signal import (
    DominantPeriod,
    autocorrelation,
    cross_correlation_max,
    detrend,
    dominant_period,
    oscillation_amplitude,
    periodogram,
    resample_uniform,
    synchronization_score,
)
from repro.stats.summary import Summary, summarize

__all__ = [
    "LatencyCollector",
    "RunMetrics",
    "TimeSeries",
    "Summary",
    "summarize",
    "normalize_to",
    "normalize_map",
    "jain_index",
    "goodput_fairness",
    "slowdown",
    "DominantPeriod",
    "autocorrelation",
    "cross_correlation_max",
    "detrend",
    "dominant_period",
    "oscillation_amplitude",
    "periodogram",
    "resample_uniform",
    "synchronization_score",
]
