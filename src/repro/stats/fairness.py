"""Flow-level fairness and aggregate helpers.

The shuffle is many-to-many, so per-flow fairness matters: a scheme that
wins on aggregate throughput by starving a few flows would still hurt
job runtime (the reduce phase ends with its slowest fetch). Jain's
fairness index over flow goodputs quantifies this; the experiment
harness reports it in ``RunMetrics.extra``-style diagnostics and the
ablation benches assert the marking scheme does not trade fairness for
throughput.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["jain_index", "goodput_fairness", "slowdown", "fct_slowdown"]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n · Σx²), in (0, 1], 1 = equal.

    Returns 0.0 for an empty input (no flows to be fair about).
    """
    a = np.asarray(values, dtype=np.float64)
    if a.size == 0:
        return 0.0
    sq_sum = float((a * a).sum())
    if sq_sum == 0.0:
        return 0.0
    return float(a.sum()) ** 2 / (a.size * sq_sum)


def goodput_fairness(flow_results: Iterable) -> float:
    """Jain's index over the goodputs of completed flows."""
    return jain_index([
        f.goodput_bps for f in flow_results if not f.failed
    ])


def slowdown(flow_results: Iterable, line_rate_bps: float) -> np.ndarray:
    """Per-flow slowdown: ideal (line-rate) FCT over observed FCT.

    Values near 1 mean the flow ran at line rate; small values mean
    queueing/loss stretched it.
    """
    out = []
    for f in flow_results:
        if f.failed or f.fct <= 0:
            continue
        ideal = f.nbytes * 8.0 / line_rate_bps
        out.append(ideal / f.fct)
    return np.asarray(out, dtype=np.float64)


def fct_slowdown(flow_results: Iterable, line_rate_bps: float) -> np.ndarray:
    """Per-flow FCT slowdown: observed FCT over ideal (line-rate) FCT.

    The literature's short-flow tail metric — 1.0 means line rate,
    larger means queueing/loss stretched the flow; p99 slowdown is the
    headline number workload generators report. (The reciprocal of
    :func:`slowdown`, kept separate because the two conventions read
    opposite ways at a glance.)
    """
    out = []
    for f in flow_results:
        if f.failed or f.fct <= 0 or f.nbytes <= 0:
            continue
        ideal = f.nbytes * 8.0 / line_rate_bps
        out.append(f.fct / ideal)
    return np.asarray(out, dtype=np.float64)
