"""Append-only time series with NumPy conversion.

Used for queue-occupancy traces and throughput-over-time curves. Appends
go to plain Python lists (amortised O(1), no NumPy per-append overhead);
analysis converts to arrays once (the vectorise-late idiom from the
scientific-python optimisation guides).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["TimeSeries"]


class TimeSeries:
    """A (time, value) sequence."""

    __slots__ = ("name", "_t", "_v")

    def __init__(self, name: str = ""):
        self.name = name
        self._t: List[float] = []
        self._v: List[float] = []

    def append(self, t: float, v: float) -> None:
        """Record one sample."""
        self._t.append(t)
        self._v.append(v)

    def __len__(self) -> int:
        return len(self._t)

    @property
    def times(self) -> np.ndarray:
        """Sample times as a float64 array."""
        return np.asarray(self._t, dtype=np.float64)

    @property
    def values(self) -> np.ndarray:
        """Sample values as a float64 array."""
        return np.asarray(self._v, dtype=np.float64)

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """(times, values) pair."""
        return self.times, self.values

    def mean(self) -> float:
        """Arithmetic mean of the values (0 for an empty series)."""
        return float(np.mean(self._v)) if self._v else 0.0

    def max(self) -> float:
        """Maximum value (0 for an empty series)."""
        return float(np.max(self._v)) if self._v else 0.0

    def time_weighted_mean(self) -> float:
        """Mean weighted by the interval each sample was in effect.

        Each value v[i] is assumed to hold during [t[i], t[i+1]); the last
        sample gets zero weight (its holding interval is unknown).
        """
        if len(self._t) < 2:
            return self.mean()
        t, v = self.arrays()
        dt = np.diff(t)
        total = dt.sum()
        if total <= 0:
            return self.mean()
        return float(np.dot(v[:-1], dt) / total)

    def rate_of_change(self) -> "TimeSeries":
        """Discrete derivative series (value deltas over time deltas)."""
        out = TimeSeries(name=f"d({self.name})/dt")
        t, v = self.arrays()
        if len(t) >= 2:
            dt = np.diff(t)
            dv = np.diff(v)
            ok = dt > 0
            for ti, ri in zip(t[1:][ok], (dv[ok] / dt[ok])):
                out.append(float(ti), float(ri))
        return out
