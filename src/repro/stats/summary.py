"""Scalar summaries of sample collections."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample set."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @staticmethod
    def empty() -> "Summary":
        """The summary of zero samples (all fields zero)."""
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def summarize(samples: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` from any float sequence."""
    a = np.asarray(samples, dtype=np.float64)
    if a.size == 0:
        return Summary.empty()
    p50, p95, p99 = np.percentile(a, [50, 95, 99])
    return Summary(
        count=int(a.size),
        mean=float(a.mean()),
        std=float(a.std()),
        minimum=float(a.min()),
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        maximum=float(a.max()),
    )
