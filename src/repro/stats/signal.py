"""Signal-processing primitives for the stability observatory.

The telemetry layer records queue-depth and cwnd time-series; this module
turns those raw samples into the quantities the limit-cycle detector
(:mod:`repro.analysis.stability`) reasons about: detrended fluctuation,
autocorrelation, spectral power, dominant period, oscillation amplitude,
and pairwise synchronization. Everything here is a pure function of its
inputs — no simulator state, no randomness — so two runs that record the
same samples produce bit-identical analysis blocks.

No SciPy: the periodogram is a small direct DFT evaluated with plain
NumPy arithmetic (chunked over frequencies to bound memory), which is
plenty for the bounded ring buffers the recorders keep (<= a few
thousand samples per queue).

Every function is defined for degenerate inputs — empty series, constant
series, series shorter than one period — and guarantees NaN-free output;
``tests/test_signal.py`` pins that contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DominantPeriod",
    "autocorrelation",
    "cross_correlation_max",
    "detrend",
    "dominant_period",
    "oscillation_amplitude",
    "periodogram",
    "resample_uniform",
    "synchronization_score",
]


def _as_array(values: Sequence[float]) -> np.ndarray:
    return np.asarray(values, dtype=np.float64)


def detrend(values: Sequence[float], kind: str = "linear") -> np.ndarray:
    """Remove the mean (``kind="mean"``) or a least-squares line.

    Queue-depth series from a run's ramp-up carry a slow trend that would
    otherwise dominate the low-frequency end of the spectrum; removing it
    isolates the oscillatory component. Returns a new array; degenerate
    inputs (n < 3 for linear) fall back to mean removal, and the result
    never contains NaN.
    """
    v = _as_array(values)
    n = len(v)
    if n == 0:
        return v
    if kind not in ("linear", "mean"):
        raise ValueError(f"unknown detrend kind {kind!r}")
    if kind == "mean" or n < 3:
        return v - v.mean()
    t = np.arange(n, dtype=np.float64)
    t -= t.mean()
    denom = float(np.dot(t, t))
    if denom == 0.0:
        return v - v.mean()
    slope = float(np.dot(t, v - v.mean())) / denom
    return v - v.mean() - slope * t


def autocorrelation(values: Sequence[float],
                    max_lag: Optional[int] = None) -> np.ndarray:
    """Normalized autocorrelation ``acf[k]`` for lags 0..max_lag.

    Uses the unbiased estimator ``sum(x[i] x[i+k]) / ((n-k) var)`` on the
    mean-removed series. ``acf[0]`` is 1 for any series with variance;
    constant or too-short series return ``[1.0]`` (lag 0 only) so callers
    never index into NaNs.
    """
    x = detrend(values, kind="mean")
    n = len(x)
    if n < 2:
        return np.ones(1)
    var = float(np.dot(x, x)) / n
    if var <= 0.0:
        return np.ones(1)
    if max_lag is None:
        max_lag = n // 2
    max_lag = max(0, min(max_lag, n - 1))
    acf = np.empty(max_lag + 1)
    for k in range(max_lag + 1):
        acf[k] = float(np.dot(x[: n - k], x[k:])) / ((n - k) * var)
    return acf


#: Frequencies per chunk of the direct-DFT periodogram (memory bound:
#: one chunk is ``_DFT_CHUNK x n`` complex128, ~8 MB at n = 4096).
_DFT_CHUNK = 128


def periodogram(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Power spectrum of the detrended series at the Fourier frequencies.

    Returns ``(freqs, power)`` where ``freqs[j]`` is in cycles per
    sample, covering ``m/n`` for ``m = 1..n//2`` (the DC bin is excluded
    — the series is detrended first, so it carries no information).
    A direct DFT, not an FFT: n is bounded by the telemetry ring
    capacity, and the explicit sum keeps the implementation dependency-
    free and easy to audit. Series with fewer than 4 samples or zero
    variance return empty arrays.
    """
    x = detrend(values, kind="linear")
    n = len(x)
    if n < 4 or not np.any(x):
        return np.empty(0), np.empty(0)
    m = np.arange(1, n // 2 + 1, dtype=np.float64)
    t = np.arange(n, dtype=np.float64)
    power = np.empty(len(m))
    for lo in range(0, len(m), _DFT_CHUNK):
        chunk = m[lo: lo + _DFT_CHUNK]
        phase = (-2.0j * math.pi / n) * np.outer(chunk, t)
        coef = np.exp(phase) @ x
        power[lo: lo + len(chunk)] = (coef.real ** 2 + coef.imag ** 2) / n
    return m / n, power


@dataclass(frozen=True)
class DominantPeriod:
    """The strongest spectral component of one series.

    Attributes
    ----------
    period_samples:
        Oscillation period in samples (``1 / frequency``).
    period_s:
        The same period in seconds (``period_samples * dt``).
    peak_ratio:
        Peak spectral power over the median power across all bins — a
        measure of how concentrated the fluctuation is at one frequency
        (white noise ~ O(1); a clean sawtooth reaches 10^3..10^5).
    acf_at_period:
        Autocorrelation at a lag of one period: near 1 when the series
        really repeats itself there, near 0 when the spectral peak came
        from a transient or drift rather than sustained cycling.
    """

    period_samples: float
    period_s: float
    peak_ratio: float
    acf_at_period: float


def dominant_period(values: Sequence[float],
                    dt: float = 1.0) -> Optional[DominantPeriod]:
    """Extract the dominant oscillation period, or None if there is none.

    None means the series is too short, constant, or spectrally empty —
    not that it is stable; callers combine this with amplitude measures
    to classify.
    """
    freqs, power = periodogram(values)
    if len(power) == 0:
        return None
    peak = int(np.argmax(power))
    med = float(np.median(power))
    peak_ratio = float(power[peak] / med) if med > 0.0 else float("inf")
    period_samples = 1.0 / float(freqs[peak])
    lag = int(round(period_samples))
    acf = autocorrelation(values, max_lag=lag)
    acf_at = float(acf[lag]) if lag < len(acf) else 0.0
    return DominantPeriod(
        period_samples=period_samples,
        period_s=period_samples * dt,
        peak_ratio=peak_ratio,
        acf_at_period=acf_at,
    )


def oscillation_amplitude(values: Sequence[float]) -> float:
    """Half the 5th-to-95th percentile spread of the detrended series.

    A robust amplitude: for a clean sine it approximates the true
    amplitude; unlike ``(max - min) / 2`` a single transient spike cannot
    dominate it. 0.0 for constant or empty series.
    """
    x = detrend(values, kind="linear")
    if len(x) < 2:
        return 0.0
    lo, hi = np.percentile(x, [5.0, 95.0])
    return float(hi - lo) / 2.0


def resample_uniform(
    times: Sequence[float],
    values: Sequence[float],
    n: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Linear interpolation of ``(times, values)`` onto a uniform grid.

    Spectral estimates assume evenly spaced samples; queue monitors
    sample periodically but flow timelines are event-driven. ``n``
    defaults to the input length (capped at 2048 to bound the direct-DFT
    cost). Unsorted input is sorted by time first; duplicate timestamps
    keep their last value. Returns empty arrays for fewer than 2 distinct
    times.
    """
    t = _as_array(times)
    v = _as_array(values)
    if len(t) != len(v):
        raise ValueError(f"times/values length mismatch: {len(t)} vs {len(v)}")
    if len(t) >= 2 and not np.all(np.diff(t) >= 0):
        order = np.argsort(t, kind="stable")
        t, v = t[order], v[order]
    if len(t) < 2 or t[-1] <= t[0]:
        return np.empty(0), np.empty(0)
    if n is None:
        n = min(len(t), 2048)
    n = max(2, int(n))
    grid = np.linspace(float(t[0]), float(t[-1]), n)
    return grid, np.interp(grid, t, v)


def cross_correlation_max(
    a: Sequence[float],
    b: Sequence[float],
    max_lag: Optional[int] = None,
) -> Tuple[int, float]:
    """``(lag, value)`` of the peak normalized cross-correlation.

    Positive lag means ``b`` trails ``a``. The two series must share a
    sampling grid (resample first). Returns ``(0, 0.0)`` when either side
    is constant or shorter than 2 samples.
    """
    x = detrend(a, kind="mean")
    y = detrend(b, kind="mean")
    n = min(len(x), len(y))
    if n < 2:
        return 0, 0.0
    x, y = x[:n], y[:n]
    sx = float(np.dot(x, x))
    sy = float(np.dot(y, y))
    if sx <= 0.0 or sy <= 0.0:
        return 0, 0.0
    norm = math.sqrt(sx * sy)
    if max_lag is None:
        max_lag = n // 4
    max_lag = max(0, min(max_lag, n - 1))
    best_lag, best = 0, float(np.dot(x, y)) / norm
    for k in range(1, max_lag + 1):
        fwd = float(np.dot(x[: n - k], y[k:])) / norm
        rev = float(np.dot(x[k:], y[: n - k])) / norm
        if fwd > best:
            best_lag, best = k, fwd
        if rev > best:
            best_lag, best = -k, rev
    return best_lag, best


def synchronization_score(
    series: Sequence[Sequence[float]],
    max_lag: Optional[int] = None,
) -> Optional[float]:
    """Mean pairwise peak cross-correlation across ``series``.

    The flow-synchronization measure: when an AQM marks every flow's
    packets in the same queue-overflow episode, their cwnd (and their
    queues' depth) sawtooths phase-lock, and this score approaches 1;
    desynchronized flows score near 0. Pairs where either side is
    constant are skipped. None when fewer than two non-constant series
    are available.
    """
    active = [detrend(s, kind="mean") for s in series]
    active = [s for s in active if len(s) >= 2 and float(np.dot(s, s)) > 0.0]
    if len(active) < 2:
        return None
    total, pairs = 0.0, 0
    for i in range(len(active)):
        for j in range(i + 1, len(active)):
            _lag, corr = cross_correlation_max(active[i], active[j], max_lag)
            total += corr
            pairs += 1
    return total / pairs
