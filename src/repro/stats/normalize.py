"""The paper's normalization scheme.

All results in the paper's Section IV are relative to an ordinary DropTail
queue:

* runtime and throughput — always normalized to **DropTail with shallow
  buffers** (the deep-buffer plots draw DropTail-deep as a dashed line);
* network latency — normalized to DropTail **with the same buffer depth**
  (so the bufferbloat of deep buffers is analysed separately), with the
  shallow-DropTail latency drawn as the dashed line on deep plots.

These helpers implement that convention for scalar metrics and metric
maps.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import ExperimentError

__all__ = ["normalize_to", "normalize_map"]


def normalize_to(value: float, baseline: float) -> float:
    """``value / baseline`` with a clear error on a degenerate baseline."""
    if baseline == 0:
        raise ExperimentError("cannot normalize to a zero baseline")
    return value / baseline


def normalize_map(
    values: Mapping[str, float], baseline: float
) -> Dict[str, float]:
    """Normalize every entry of a {label: value} map to ``baseline``."""
    return {k: normalize_to(v, baseline) for k, v in values.items()}
