"""Static shortest-path route computation.

Given the adjacency produced by the topology builder (node → list of
(egress port, neighbor node)), compute, for every switch, the set of
equal-cost egress ports toward every host, and install them in the
switches' forwarding tables. BFS over hop count; all equal-cost next hops
are installed so :class:`~repro.net.switch.Switch` can apply static ECMP.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from repro.errors import RoutingError
from repro.net.host import Host
from repro.net.node import Node
from repro.net.port import Port
from repro.net.switch import Switch

__all__ = ["compute_routes"]

Adjacency = Dict[int, List[Tuple[Port, Node]]]


def _distances_to(target: int, adjacency: Adjacency) -> Dict[int, int]:
    """Hop distances from every node to ``target`` (BFS on the reverse
    graph; adjacency is symmetric here because links are full duplex)."""
    dist = {target: 0}
    frontier = deque([target])
    while frontier:
        u = frontier.popleft()
        for _port, neigh in adjacency.get(u, ()):
            v = neigh.node_id
            if v not in dist:
                dist[v] = dist[u] + 1
                frontier.append(v)
    return dist


def compute_routes(nodes: Dict[int, Node], adjacency: Adjacency) -> None:
    """Fill every switch's forwarding table for every host destination."""
    hosts = [n for n in nodes.values() if isinstance(n, Host)]
    switches = [n for n in nodes.values() if isinstance(n, Switch)]
    for host in hosts:
        dist = _distances_to(host.node_id, adjacency)
        for sw in switches:
            d = dist.get(sw.node_id)
            if d is None:
                raise RoutingError(
                    f"switch {sw.name} cannot reach host {host.name}"
                )
            # Every neighbor strictly closer to the host is an ECMP next hop.
            candidates = [
                port
                for port, neigh in adjacency[sw.node_id]
                if dist.get(neigh.node_id, float("inf")) == d - 1
            ]
            if not candidates:
                raise RoutingError(
                    f"switch {sw.name}: no next hop toward {host.name}"
                )
            # Deterministic order so ECMP hashing is reproducible. Sort by
            # creation-order port id, not name: lexicographic name order is
            # not stable under renaming ("p10" < "p2"), which would silently
            # re-map every flow's path when a topology builder changes a
            # naming scheme.
            candidates.sort(key=lambda p: p.port_id)
            sw.set_route(host.node_id, candidates)
