"""Abstract network node: anything a :class:`~repro.net.port.Port` can
deliver a packet to."""

from __future__ import annotations

from repro.net.packet import Packet

__all__ = ["Node"]


class Node:
    """Base class for switches and hosts.

    Attributes
    ----------
    node_id:
        Small integer assigned by the topology builder; packet ``src`` and
        ``dst`` fields refer to host node ids.
    name:
        Human-readable identifier for traces.
    """

    def __init__(self, node_id: int, name: str):
        self.node_id = node_id
        self.name = name

    def receive(self, pkt: Packet) -> None:
        """Handle a packet arriving from a connected link."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
