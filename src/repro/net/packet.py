"""The simulated packet.

One :class:`Packet` instance models an Ethernet frame carrying an IPv4/TCP
segment. Only the fields the paper's mechanisms read are modelled:

* the **IP ECN field** (Table II of the paper): Non-ECT / ECT(0) / ECT(1) /
  CE — this is what AQMs inspect when deciding to mark or drop;
* the **TCP flags byte** including **ECE** and **CWR** (Table I) — this is
  what the paper's ECE-bit protection inspects, and what distinguishes pure
  ACKs and SYNs from data segments;
* sequence/ack numbers and payload length for the TCP machinery;
* timestamps for end-to-end and per-queue latency accounting.

Packets use ``__slots__`` and plain attributes: in a shuffle-phase run the
simulator creates hundreds of thousands of them, and attribute access is
the single hottest operation in the repository.
"""

from __future__ import annotations

from typing import Optional

from repro.net.addresses import FlowKey

__all__ = [
    "ECN_NOT_ECT",
    "ECN_ECT0",
    "ECN_ECT1",
    "ECN_CE",
    "ECN_NAMES",
    "FLAG_FIN",
    "FLAG_SYN",
    "FLAG_RST",
    "FLAG_PSH",
    "FLAG_ACK",
    "FLAG_URG",
    "FLAG_ECE",
    "FLAG_CWR",
    "flag_names",
    "IP_TCP_HEADER_BYTES",
    "DEFAULT_MSS",
    "PURE_ACK_BYTES",
    "Packet",
]

# -- IP ECN codepoints (2-bit field, RFC 3168 / paper Table II) -------------
ECN_NOT_ECT = 0b00  #: Non ECN-Capable Transport
ECN_ECT1 = 0b01     #: ECN Capable Transport, ECT(1)
ECN_ECT0 = 0b10     #: ECN Capable Transport, ECT(0)
ECN_CE = 0b11       #: Congestion Encountered

ECN_NAMES = {
    ECN_NOT_ECT: "Non-ECT",
    ECN_ECT1: "ECT(1)",
    ECN_ECT0: "ECT(0)",
    ECN_CE: "CE",
}

# -- TCP header flags (RFC 793 + RFC 3168, paper Table I for ECE/CWR) -------
FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20
FLAG_ECE = 0x40  #: ECN-Echo flag
FLAG_CWR = 0x80  #: Congestion Window Reduced

_FLAG_NAME_ORDER = (
    (FLAG_SYN, "SYN"),
    (FLAG_FIN, "FIN"),
    (FLAG_RST, "RST"),
    (FLAG_PSH, "PSH"),
    (FLAG_ACK, "ACK"),
    (FLAG_URG, "URG"),
    (FLAG_ECE, "ECE"),
    (FLAG_CWR, "CWR"),
)


def flag_names(flags: int) -> str:
    """Human-readable ``"SYN|ACK|ECE"`` rendering of a flags byte."""
    names = [name for bit, name in _FLAG_NAME_ORDER if flags & bit]
    return "|".join(names) if names else "-"


#: Combined IPv4 (20 B) + TCP (20 B) header size modelled per packet.
IP_TCP_HEADER_BYTES = 40

#: Default maximum segment size; with the 40 B header this yields the
#: classic 1500 B MTU used in the paper's NS-2 setup.
DEFAULT_MSS = 1460

#: Wire size of a pure ACK. The paper quotes "typically 150 bytes" for
#: ACKs observed on its clusters (headers + options + link overheads); we
#: keep that figure so byte-mode thresholds see the same proportions.
PURE_ACK_BYTES = 150


class Packet:
    """A simulated TCP/IP packet.

    Parameters
    ----------
    src, sport, dst, dport:
        Flow addressing (host ids and TCP ports).
    seq:
        First sequence number carried (bytes-based sequence space).
    ack:
        Cumulative acknowledgement number (valid when ``FLAG_ACK`` set).
    payload:
        TCP payload bytes carried (0 for pure ACK / SYN / FIN).
    flags:
        TCP flag bits (``FLAG_*`` constants).
    ecn:
        IP ECN codepoint (``ECN_*`` constants). Data segments of an
        ECN-negotiated connection are sent ECT(0); pure ACKs, SYN and
        SYN-ACK are Non-ECT per RFC 3168 — the root of the paper's problem.
    size:
        Total wire size in bytes. Defaults to ``payload + 40`` for data
        packets and :data:`PURE_ACK_BYTES` for zero-payload packets.
    created_at:
        Send timestamp (for end-to-end latency).
    """

    __slots__ = (
        "src",
        "sport",
        "dst",
        "dport",
        "seq",
        "ack",
        "payload",
        "flags",
        "ecn",
        "size",
        "created_at",
        "enqueued_at",
        "pkt_id",
        "hops",
    )

    _next_id = 0

    def __init__(
        self,
        src: int,
        sport: int,
        dst: int,
        dport: int,
        seq: int = 0,
        ack: int = 0,
        payload: int = 0,
        flags: int = 0,
        ecn: int = ECN_NOT_ECT,
        size: Optional[int] = None,
        created_at: float = 0.0,
    ):
        self.src = src
        self.sport = sport
        self.dst = dst
        self.dport = dport
        self.seq = seq
        self.ack = ack
        self.payload = payload
        self.flags = flags
        self.ecn = ecn
        if size is None:
            size = payload + IP_TCP_HEADER_BYTES if payload > 0 else PURE_ACK_BYTES
        self.size = size
        self.created_at = created_at
        self.enqueued_at = 0.0
        self.hops = 0
        self.pkt_id = Packet._next_id
        Packet._next_id += 1

    # -- classification predicates (read by AQMs and stats) -----------------

    @property
    def flow(self) -> FlowKey:
        """Directed flow key of this packet."""
        return FlowKey(self.src, self.sport, self.dst, self.dport)

    @property
    def is_ect(self) -> bool:
        """True if the IP header says ECN-capable: ECT(0), ECT(1) or CE."""
        return self.ecn != ECN_NOT_ECT

    @property
    def is_ce(self) -> bool:
        """True if the CE (Congestion Encountered) codepoint is set."""
        return self.ecn == ECN_CE

    @property
    def has_ece(self) -> bool:
        """True if the TCP ECE (ECN-Echo) flag is set."""
        return bool(self.flags & FLAG_ECE)

    @property
    def has_cwr(self) -> bool:
        """True if the TCP CWR flag is set."""
        return bool(self.flags & FLAG_CWR)

    @property
    def is_syn(self) -> bool:
        """True for SYN or SYN-ACK packets."""
        return bool(self.flags & FLAG_SYN)

    @property
    def is_fin(self) -> bool:
        """True for FIN packets."""
        return bool(self.flags & FLAG_FIN)

    @property
    def is_pure_ack(self) -> bool:
        """True for an ACK carrying no payload and no SYN/FIN.

        These are the packets the paper finds being disproportionately
        dropped: they cannot be ECT-capable, so ECN-enabled AQMs early-drop
        them while merely marking the data packets around them.
        """
        return (
            bool(self.flags & FLAG_ACK)
            and self.payload == 0
            and not (self.flags & (FLAG_SYN | FLAG_FIN))
        )

    @property
    def is_data(self) -> bool:
        """True for segments carrying payload."""
        return self.payload > 0

    def mark_ce(self) -> None:
        """Set the CE codepoint (AQM 'mark' action). Only valid on ECT packets."""
        self.ecn = ECN_CE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.pkt_id} {self.flow} seq={self.seq} ack={self.ack} "
            f"len={self.payload} [{flag_names(self.flags)}] {ECN_NAMES[self.ecn]}>"
        )
