"""The simulated packet.

One :class:`Packet` instance models an Ethernet frame carrying an IPv4/TCP
segment. Only the fields the paper's mechanisms read are modelled:

* the **IP ECN field** (Table II of the paper): Non-ECT / ECT(0) / ECT(1) /
  CE — this is what AQMs inspect when deciding to mark or drop;
* the **TCP flags byte** including **ECE** and **CWR** (Table I) — this is
  what the paper's ECE-bit protection inspects, and what distinguishes pure
  ACKs and SYNs from data segments;
* sequence/ack numbers and payload length for the TCP machinery;
* timestamps for end-to-end and per-queue latency accounting.

Packets use ``__slots__`` and plain attributes: in a shuffle-phase run the
simulator creates hundreds of thousands of them, and attribute access is
the single hottest operation in the repository. The classification
predicates (``is_ect``, ``is_pure_ack``, ``has_ece``, …) are therefore
**plain attributes computed once at construction**, not ``property``
descriptors: every AQM enqueue reads several of them, and a descriptor
call per read cost more than the whole set of stores at construction.
They stay correct because nothing in the stack mutates ``flags``,
``payload`` or ``ecn`` after construction except :meth:`Packet.mark_ce`,
which refreshes the two ECN-derived attributes itself.

Packet ids come from a counter. Constructors on the simulation hot path
pass ``pkt_id=next(sim.pkt_ids)`` (the per-run counter owned by
:class:`~repro.sim.engine.Simulator`) so that back-to-back runs in one
process emit identical ids and therefore byte-identical traces; bare
``Packet(...)`` construction (tests, examples) falls back to a module
counter whose only guarantee is uniqueness within the process.
"""

from __future__ import annotations

from itertools import count
from typing import List, Optional

from repro.net.addresses import FlowKey

__all__ = [
    "ECN_NOT_ECT",
    "ECN_ECT0",
    "ECN_ECT1",
    "ECN_CE",
    "ECN_NAMES",
    "FLAG_FIN",
    "FLAG_SYN",
    "FLAG_RST",
    "FLAG_PSH",
    "FLAG_ACK",
    "FLAG_URG",
    "FLAG_ECE",
    "FLAG_CWR",
    "flag_names",
    "IP_TCP_HEADER_BYTES",
    "DEFAULT_MSS",
    "PURE_ACK_BYTES",
    "Packet",
    "PacketPool",
]

# -- IP ECN codepoints (2-bit field, RFC 3168 / paper Table II) -------------
ECN_NOT_ECT = 0b00  #: Non ECN-Capable Transport
ECN_ECT1 = 0b01     #: ECN Capable Transport, ECT(1)
ECN_ECT0 = 0b10     #: ECN Capable Transport, ECT(0)
ECN_CE = 0b11       #: Congestion Encountered

ECN_NAMES = {
    ECN_NOT_ECT: "Non-ECT",
    ECN_ECT1: "ECT(1)",
    ECN_ECT0: "ECT(0)",
    ECN_CE: "CE",
}

# -- TCP header flags (RFC 793 + RFC 3168, paper Table I for ECE/CWR) -------
FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20
FLAG_ECE = 0x40  #: ECN-Echo flag
FLAG_CWR = 0x80  #: Congestion Window Reduced

_FLAG_NAME_ORDER = (
    (FLAG_SYN, "SYN"),
    (FLAG_FIN, "FIN"),
    (FLAG_RST, "RST"),
    (FLAG_PSH, "PSH"),
    (FLAG_ACK, "ACK"),
    (FLAG_URG, "URG"),
    (FLAG_ECE, "ECE"),
    (FLAG_CWR, "CWR"),
)


def flag_names(flags: int) -> str:
    """Human-readable ``"SYN|ACK|ECE"`` rendering of a flags byte."""
    names = [name for bit, name in _FLAG_NAME_ORDER if flags & bit]
    return "|".join(names) if names else "-"


#: Combined IPv4 (20 B) + TCP (20 B) header size modelled per packet.
IP_TCP_HEADER_BYTES = 40

#: Default maximum segment size; with the 40 B header this yields the
#: classic 1500 B MTU used in the paper's NS-2 setup.
DEFAULT_MSS = 1460

#: Wire size of a pure ACK. The paper quotes "typically 150 bytes" for
#: ACKs observed on its clusters (headers + options + link overheads); we
#: keep that figure so byte-mode thresholds see the same proportions.
PURE_ACK_BYTES = 150


class Packet:
    """A simulated TCP/IP packet.

    Parameters
    ----------
    src, sport, dst, dport:
        Flow addressing (host ids and TCP ports).
    seq:
        First sequence number carried (bytes-based sequence space).
    ack:
        Cumulative acknowledgement number (valid when ``FLAG_ACK`` set).
    payload:
        TCP payload bytes carried (0 for pure ACK / SYN / FIN).
    flags:
        TCP flag bits (``FLAG_*`` constants).
    ecn:
        IP ECN codepoint (``ECN_*`` constants). Data segments of an
        ECN-negotiated connection are sent ECT(0); pure ACKs, SYN and
        SYN-ACK are Non-ECT per RFC 3168 — the root of the paper's problem.
    size:
        Total wire size in bytes. Defaults to ``payload + 40`` for data
        packets and :data:`PURE_ACK_BYTES` for zero-payload packets.
    created_at:
        Send timestamp (for end-to-end latency).
    pkt_id:
        Explicit packet id. Hot-path constructors pass
        ``next(sim.pkt_ids)`` (per-run, trace-deterministic); when omitted
        the id comes from a process-wide fallback counter.

    Classification attributes (``is_ect``, ``is_ce``, ``has_ece``,
    ``has_cwr``, ``is_syn``, ``is_fin``, ``is_pure_ack``, ``is_data``)
    are plain bools computed at construction — see the module docstring
    for why they are not properties.
    """

    __slots__ = (
        "src",
        "sport",
        "dst",
        "dport",
        "seq",
        "ack",
        "payload",
        "flags",
        "ecn",
        "size",
        "created_at",
        "enqueued_at",
        "pkt_id",
        "hops",
        "marked_bytes",
        # -- classification, computed once at construction ------------------
        "is_ect",
        "is_ce",
        "has_ece",
        "has_cwr",
        "is_syn",
        "is_fin",
        "is_pure_ack",
        "is_data",
    )

    #: Fallback id source for packets built without an explicit ``pkt_id``
    #: (tests, examples). Simulation runs use the per-run ``sim.pkt_ids``
    #: counter instead, so traces do not depend on process history.
    _fallback_ids = count()

    def __init__(
        self,
        src: int,
        sport: int,
        dst: int,
        dport: int,
        seq: int = 0,
        ack: int = 0,
        payload: int = 0,
        flags: int = 0,
        ecn: int = ECN_NOT_ECT,
        size: Optional[int] = None,
        created_at: float = 0.0,
        pkt_id: Optional[int] = None,
        marked_bytes: int = 0,
    ):
        self.src = src
        self.sport = sport
        self.dst = dst
        self.dport = dport
        self.seq = seq
        self.ack = ack
        self.payload = payload
        self.flags = flags
        self.ecn = ecn
        if size is None:
            size = payload + IP_TCP_HEADER_BYTES if payload > 0 else PURE_ACK_BYTES
        self.size = size
        self.created_at = created_at
        self.enqueued_at = 0.0
        self.hops = 0
        # Receiver-to-sender byte-precise CE echo (DCTCP precise
        # accounting): how many newly-acked payload bytes arrived CE.
        self.marked_bytes = marked_bytes
        self.pkt_id = next(Packet._fallback_ids) if pkt_id is None else pkt_id
        # Classification (read many times per hop by AQMs and stats;
        # computed once here).
        self.is_ect = ecn != ECN_NOT_ECT
        self.is_ce = ecn == ECN_CE
        self.has_ece = flags & FLAG_ECE != 0
        self.has_cwr = flags & FLAG_CWR != 0
        is_syn = flags & FLAG_SYN != 0
        self.is_syn = is_syn
        is_fin = flags & FLAG_FIN != 0
        self.is_fin = is_fin
        self.is_data = payload > 0
        # The packets the paper finds being disproportionately dropped:
        # they cannot be ECT-capable, so ECN-enabled AQMs early-drop them
        # while merely marking the data packets around them.
        self.is_pure_ack = (
            flags & FLAG_ACK != 0 and payload == 0 and not (is_syn or is_fin)
        )

    @property
    def flow(self) -> FlowKey:
        """Directed flow key of this packet."""
        return FlowKey(self.src, self.sport, self.dst, self.dport)

    def mark_ce(self) -> None:
        """Set the CE codepoint (AQM 'mark' action). Only valid on ECT packets."""
        self.ecn = ECN_CE
        self.is_ce = True
        self.is_ect = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.pkt_id} {self.flow} seq={self.seq} ack={self.ack} "
            f"len={self.payload} [{flag_names(self.flags)}] {ECN_NAMES[self.ecn]}>"
        )


class PacketPool:
    """Optional free-list of :class:`Packet` instances.

    Recycling reuses the ``__slots__`` storage of released packets instead
    of allocating fresh objects. It is **not wired into the default
    simulation path**: the stack hands packets to delivery hooks and trace
    subscribers that may legitimately retain them, so only a caller that
    owns the full packet lifecycle (synthetic workloads, micro-benchmarks)
    can safely :meth:`release`. Reused packets are re-initialised through
    ``Packet.__init__`` — every field including the classification
    attributes is recomputed, so a recycled packet is indistinguishable
    from a fresh one apart from object identity.

    :meth:`release` additionally **hard-resets** every classification,
    flag and ECN attribute so a free-listed packet can never leak its
    previous life's state: re-init recomputes everything, but anything
    still holding a stale reference (a trace subscriber, a forgotten
    local) now observes an inert scrubbed packet instead of a misleading
    SYN-ACK with ECE/CE bits set. Double releases are refused — pooling
    the same instance twice would hand one object to two owners, which
    corrupts both flows' state in undebuggable ways.

    Parameters
    ----------
    max_size:
        Free-list capacity; releases beyond it fall through to the garbage
        collector.
    """

    __slots__ = ("_free", "max_size", "allocated", "reused")

    def __init__(self, max_size: int = 1024):
        self._free: List[Packet] = []
        self.max_size = int(max_size)
        #: Packets constructed fresh because the free list was empty.
        self.allocated = 0
        #: Packets served by re-initialising a released instance.
        self.reused = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self, *args, **kwargs) -> Packet:
        """Return a packet initialised with ``Packet(*args, **kwargs)``."""
        free = self._free
        if free:
            pkt = free.pop()
            pkt.__init__(*args, **kwargs)
            self.reused += 1
            return pkt
        self.allocated += 1
        return Packet(*args, **kwargs)

    #: ``pkt_id`` sentinel marking a packet as sitting on a free list.
    RELEASED = -1

    def release(self, pkt: Packet) -> None:
        """Return ``pkt`` to the free list (caller must hold the only ref).

        Scrubs all header and classification state (see class docstring)
        and raises :class:`ValueError` on a double release.
        """
        if pkt.pkt_id == PacketPool.RELEASED:
            raise ValueError(
                "double release: packet is already on the free list")
        # Hard reset: no stale ECN/flag/ownership state may survive on the
        # free list, whatever the packet's previous life looked like.
        pkt.pkt_id = PacketPool.RELEASED
        pkt.src = pkt.sport = pkt.dst = pkt.dport = -1
        pkt.seq = pkt.ack = 0
        pkt.payload = 0
        pkt.flags = 0
        pkt.ecn = ECN_NOT_ECT
        pkt.size = 0
        pkt.created_at = pkt.enqueued_at = 0.0
        pkt.hops = 0
        pkt.marked_bytes = 0
        pkt.is_ect = pkt.is_ce = False
        pkt.has_ece = pkt.has_cwr = False
        pkt.is_syn = pkt.is_fin = False
        pkt.is_pure_ack = pkt.is_data = False
        if len(self._free) < self.max_size:
            self._free.append(pkt)
