"""Node identifiers and flow keys.

Hosts and switches are identified by small integers assigned by the
topology builder; a flow is the usual 4-tuple (we omit the protocol field —
everything here is TCP).
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["FlowKey"]


class FlowKey(NamedTuple):
    """Directed TCP flow identifier (src host, src port, dst host, dst port)."""

    src: int
    sport: int
    dst: int
    dport: int

    def reversed(self) -> "FlowKey":
        """The key of the opposite direction (for ACK demux)."""
        return FlowKey(self.dst, self.dport, self.src, self.sport)

    def __str__(self) -> str:
        return f"{self.src}:{self.sport}->{self.dst}:{self.dport}"
