"""NS-2-style packet trace export.

The original evaluation inspected NS-2 trace files ("snapshots from the
egress port of network equipment"); this module provides the equivalent:
a :class:`PacketTraceWriter` that subscribes to the simulation tracer and
formats one line per event in an NS-2-inspired schema::

    <ev> <time> <where> <src>:<sport> <dst>:<dport> <size> <flags> <ecn> seq=<n> ack=<n>

with event codes ``-`` (transmitted onto a link), ``d`` (dropped by a
queue), ``x`` (lost on a failed link) and ``r`` (delivered to the
destination host). A :class:`TraceAnalyzer` aggregates a finished trace
back into per-class counts for asserting behaviours in tests and
post-mortems.
"""

from __future__ import annotations

import io
from collections import Counter
from typing import Dict, List, Optional, TextIO

from repro.net.network import Network
from repro.net.packet import ECN_NAMES, Packet, flag_names
from repro.sim.trace import TraceRecord, Tracer

__all__ = ["PacketTraceWriter", "TraceAnalyzer", "format_event"]

#: tracer kind -> NS-2-ish event code
EVENT_CODES = {
    "tx": "-",
    "drop": "d",
    "link_loss": "x",
    "deliver": "r",
}


def format_event(code: str, time: float, where: str, pkt: Packet) -> str:
    """Format one trace line."""
    return (
        f"{code} {time:.9f} {where} "
        f"{pkt.src}:{pkt.sport} {pkt.dst}:{pkt.dport} "
        f"{pkt.size} {flag_names(pkt.flags)} {ECN_NAMES[pkt.ecn]} "
        f"seq={pkt.seq} ack={pkt.ack}"
    )


class PacketTraceWriter:
    """Stream simulation events into an NS-2-style text trace.

    Parameters
    ----------
    tracer:
        The tracer the network's ports emit into (pass the same instance
        to the topology builder).
    out:
        Destination text stream; defaults to an in-memory buffer
        retrievable via :meth:`getvalue`.
    kinds:
        Which event kinds to record (default: all four).
    """

    def __init__(
        self,
        tracer: Tracer,
        out: Optional[TextIO] = None,
        kinds: Optional[List[str]] = None,
    ):
        self._out = out if out is not None else io.StringIO()
        self._owns_buffer = out is None
        self.lines_written = 0
        for kind in kinds or list(EVENT_CODES):
            tracer.subscribe(kind, self._on_record)

    def attach_delivery(self, network: Network, tracer: Tracer) -> None:
        """Also emit ``r`` (deliver) events from every host of ``network``."""
        for host in network.hosts:
            host.add_delivery_hook(
                lambda pkt, now, name=host.name: tracer.emit(
                    now, "deliver", name, pkt
                )
            )

    def _on_record(self, rec: TraceRecord) -> None:
        code = EVENT_CODES.get(rec.kind)
        if code is None or rec.data is None:
            return
        self._out.write(format_event(code, rec.time, rec.where, rec.data))
        self._out.write("\n")
        self.lines_written += 1

    def getvalue(self) -> str:
        """The accumulated trace (in-memory buffer mode only)."""
        if not self._owns_buffer:
            raise ValueError("trace was written to an external stream")
        return self._out.getvalue()


class TraceAnalyzer:
    """Parse a text trace back into aggregate counts."""

    def __init__(self, text: str):
        self.events: List[Dict] = []
        for line in text.splitlines():
            if not line.strip():
                continue
            parts = line.split()
            self.events.append({
                "code": parts[0],
                "time": float(parts[1]),
                "where": parts[2],
                "src": parts[3],
                "dst": parts[4],
                "size": int(parts[5]),
                "flags": parts[6],
                "ecn": parts[7],
                "seq": int(parts[8].split("=")[1]),
                "ack": int(parts[9].split("=")[1]),
            })

    def count_by_code(self) -> Counter:
        """Event counts keyed by event code."""
        return Counter(e["code"] for e in self.events)

    def drops(self) -> List[Dict]:
        """All queue-drop events."""
        return [e for e in self.events if e["code"] == "d"]

    def dropped_acks(self) -> List[Dict]:
        """Queue-drop events whose packet was a pure ACK."""
        return [
            e for e in self.drops()
            if "ACK" in e["flags"] and "SYN" not in e["flags"]
            and e["size"] == 150
        ]

    def ce_marked_deliveries(self) -> List[Dict]:
        """Delivered packets carrying Congestion Encountered."""
        return [
            e for e in self.events if e["code"] == "r" and e["ecn"] == "CE"
        ]

    def bytes_delivered(self) -> int:
        """Total wire bytes of delivered packets."""
        return sum(e["size"] for e in self.events if e["code"] == "r")

    def timespan(self) -> float:
        """Duration between the first and last event."""
        if not self.events:
            return 0.0
        times = [e["time"] for e in self.events]
        return max(times) - min(times)
