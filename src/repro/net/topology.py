"""Topology builders.

Three shapes cover the paper's experiments and the examples:

* **single rack** — N hosts under one top-of-rack switch. This is the
  canonical MapReduce-cluster shape the paper simulates: during shuffle
  every host's *downlink* egress queue on the ToR is a bottleneck shared
  by data and ACKs.
* **dumbbell** — two switches joined by one bottleneck link; the textbook
  shape for isolating a single congested queue in unit tests.
* **leaf–spine** — L leaves × S spines with hosts under the leaves, for
  multi-rack experiments (static ECMP).

Builders take qdisc factories for the switch ports (where the paper's
AQMs live) and the host NIC ports (a deep DropTail by default, since end
hosts do not run the switch AQM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.core.droptail import DropTail
from repro.errors import ConfigError
from repro.net.host import Host
from repro.net.link import QdiscFactory
from repro.net.network import Network
from repro.net.switch import Switch
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.units import gbps, us

__all__ = [
    "TopologySpec",
    "default_host_qdisc",
    "build_single_rack",
    "build_dumbbell",
    "build_leaf_spine",
]

#: Host NIC transmit ring: large enough never to be the bottleneck queue.
HOST_NIC_BUFFER_PACKETS = 4096


def default_host_qdisc(name: str) -> DropTail:
    """Deep DropTail for host NICs (never the interesting queue)."""
    return DropTail(HOST_NIC_BUFFER_PACKETS, name=name)


@dataclass
class TopologySpec:
    """A built topology plus the handles experiments need."""

    network: Network
    hosts: List[Host]
    switches: List[Switch]
    link_rate_bps: float
    link_delay_s: float
    #: Ports whose queues congest during many-to-many traffic (ToR
    #: downlinks for a single rack; the bottleneck for a dumbbell; for a
    #: leaf–spine fabric this *includes* every leaf↔spine uplink — the
    #: actual bottleneck under oversubscription).
    hot_ports: List = field(default_factory=list)
    #: Leaf↔spine fabric ports only (both directions), in builder order:
    #: for each leaf, for each spine, the leaf→spine egress then the
    #: spine→leaf egress. Empty for single-rack/dumbbell shapes. Always a
    #: subset of :attr:`hot_ports`.
    uplink_ports: List = field(default_factory=list)

    @property
    def n_hosts(self) -> int:
        """Number of hosts in the fabric."""
        return len(self.hosts)


def build_single_rack(
    sim: Simulator,
    n_hosts: int,
    switch_qdisc: QdiscFactory,
    host_qdisc: Optional[QdiscFactory] = None,
    link_rate_bps: float = gbps(1),
    link_delay_s: float = us(20),
    tracer: Optional[Tracer] = None,
) -> TopologySpec:
    """N hosts under one ToR switch."""
    if n_hosts < 2:
        raise ConfigError(f"a rack needs at least 2 hosts, got {n_hosts}")
    host_qdisc = host_qdisc or default_host_qdisc
    net = Network(sim, tracer)
    hosts = [net.add_host(f"h{i}") for i in range(n_hosts)]
    tor = net.add_switch("tor")
    hot = []
    for h in hosts:
        link = net.connect(h, tor, link_rate_bps, link_delay_s, host_qdisc, switch_qdisc)
        hot.append(link.rev)  # the ToR downlink egress toward this host
    net.finalize()
    return TopologySpec(net, hosts, [tor], link_rate_bps, link_delay_s, hot)


def build_dumbbell(
    sim: Simulator,
    n_left: int,
    n_right: int,
    switch_qdisc: QdiscFactory,
    host_qdisc: Optional[QdiscFactory] = None,
    link_rate_bps: float = gbps(1),
    link_delay_s: float = us(20),
    bottleneck_rate_bps: Optional[float] = None,
    tracer: Optional[Tracer] = None,
) -> TopologySpec:
    """Left hosts — switch — bottleneck — switch — right hosts."""
    if n_left < 1 or n_right < 1:
        raise ConfigError("dumbbell needs hosts on both sides")
    host_qdisc = host_qdisc or default_host_qdisc
    bottleneck_rate_bps = bottleneck_rate_bps or link_rate_bps
    net = Network(sim, tracer)
    left = [net.add_host(f"l{i}") for i in range(n_left)]
    right = [net.add_host(f"r{i}") for i in range(n_right)]
    sw_l = net.add_switch("swL")
    sw_r = net.add_switch("swR")
    for h in left:
        net.connect(h, sw_l, link_rate_bps, link_delay_s, host_qdisc, switch_qdisc)
    for h in right:
        net.connect(h, sw_r, link_rate_bps, link_delay_s, host_qdisc, switch_qdisc)
    trunk = net.connect(
        sw_l, sw_r, bottleneck_rate_bps, link_delay_s, switch_qdisc, switch_qdisc
    )
    net.finalize()
    return TopologySpec(
        net,
        left + right,
        [sw_l, sw_r],
        link_rate_bps,
        link_delay_s,
        hot_ports=[trunk.fwd, trunk.rev],
    )


def build_leaf_spine(
    sim: Simulator,
    n_leaves: int,
    n_spines: int,
    hosts_per_leaf: int,
    switch_qdisc: QdiscFactory,
    host_qdisc: Optional[QdiscFactory] = None,
    link_rate_bps: float = gbps(1),
    link_delay_s: float = us(20),
    uplink_rate_bps: Optional[Union[float, Sequence[float]]] = None,
    per_packet_ecmp: bool = False,
    tracer: Optional[Tracer] = None,
) -> TopologySpec:
    """Classic two-tier Clos: every leaf connects to every spine.

    ``uplink_rate_bps`` may be a single rate for every uplink, or a
    sequence of ``n_spines`` per-spine rates for asymmetric fabrics (the
    paper's 5 Gbps-bottleneck scenario: one spine plane slower than the
    rest, so ECMP keeps hashing flows onto a constrained path). Every
    leaf↔spine port lands in both ``uplink_ports`` and ``hot_ports`` so
    queue monitors, telemetry and the fuzzer see the oversubscribed
    bottleneck, not just the ToR downlinks.

    ``per_packet_ecmp=True`` puts every switch in packet-spraying mode
    (see :class:`~repro.net.switch.Switch.ecmp_per_packet`).
    """
    if n_leaves < 1 or n_spines < 1 or hosts_per_leaf < 1:
        raise ConfigError("leaf-spine dimensions must be positive")
    host_qdisc = host_qdisc or default_host_qdisc
    if uplink_rate_bps is None:
        spine_rates = [link_rate_bps] * n_spines
    elif isinstance(uplink_rate_bps, (int, float)):
        spine_rates = [float(uplink_rate_bps)] * n_spines
    else:
        spine_rates = [float(r) for r in uplink_rate_bps]
        if len(spine_rates) != n_spines:
            raise ConfigError(
                f"per-spine uplink rates need {n_spines} entries, "
                f"got {len(spine_rates)}"
            )
    if any(r <= 0 for r in spine_rates):
        raise ConfigError(f"uplink rates must be positive ({spine_rates})")
    net = Network(sim, tracer)
    hosts: List[Host] = []
    leaves = [net.add_switch(f"leaf{i}") for i in range(n_leaves)]
    spines = [net.add_switch(f"spine{i}") for i in range(n_spines)]
    hot = []
    uplinks = []
    for li, leaf in enumerate(leaves):
        for j in range(hosts_per_leaf):
            h = net.add_host(f"h{li}_{j}")
            hosts.append(h)
            link = net.connect(h, leaf, link_rate_bps, link_delay_s, host_qdisc, switch_qdisc)
            hot.append(link.rev)
    for leaf in leaves:
        for si, spine in enumerate(spines):
            link = net.connect(
                leaf, spine, spine_rates[si], link_delay_s,
                switch_qdisc, switch_qdisc,
            )
            uplinks.append(link.fwd)  # leaf -> spine egress
            uplinks.append(link.rev)  # spine -> leaf egress
    if per_packet_ecmp:
        for sw in leaves + spines:
            sw.ecmp_per_packet = True
    net.finalize()
    return TopologySpec(
        net, hosts, leaves + spines, link_rate_bps, link_delay_s,
        hot_ports=hot + uplinks, uplink_ports=uplinks,
    )
