"""Output-queued store-and-forward switch.

Forwarding is by a static table (host id → egress port) computed once from
the topology (see :mod:`repro.net.routing`). All queueing happens at the
egress ports — the model the paper's analysis of egress-queue snapshots
assumes. When multiple equal-cost egress ports exist (leaf-spine), the
switch picks one per flow with a deterministic hash (static ECMP), so a
given TCP flow never reorders.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import RoutingError
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.port import Port

__all__ = ["Switch"]


def _flow_hash(pkt: Packet) -> int:
    """Deterministic per-flow hash for ECMP port selection.

    Pure function of the 4-tuple so both directions of a flow may take
    different paths (as real ECMP does) but each direction is stable.
    """
    h = (
        pkt.src * 0x9E3779B1
        ^ pkt.dst * 0x85EBCA77
        ^ pkt.sport * 0xC2B2AE3D
        ^ pkt.dport * 0x27D4EB2F
    )
    return h & 0x7FFFFFFF


class Switch(Node):
    """A switch with per-destination egress port lists."""

    def __init__(self, node_id: int, name: str):
        super().__init__(node_id, name)
        self.ports: List[Port] = []
        # dst host id -> candidate egress ports (ECMP set, usually size 1)
        self.fwd: Dict[int, List[Port]] = {}
        self.rx_packets = 0

    def add_port(self, port: Port) -> Port:
        """Register an egress port on this switch."""
        self.ports.append(port)
        return port

    def set_route(self, dst: int, ports: List[Port]) -> None:
        """Install the ECMP port set for destination host ``dst``."""
        if not ports:
            raise RoutingError(f"{self.name}: empty port set for dst {dst}")
        self.fwd[dst] = list(ports)

    def route_for(self, pkt: Packet) -> Port:
        """The egress port this packet will take."""
        ports = self.fwd.get(pkt.dst)
        if not ports:
            raise RoutingError(f"{self.name}: no route to host {pkt.dst}")
        if len(ports) == 1:
            return ports[0]
        return ports[_flow_hash(pkt) % len(ports)]

    def receive(self, pkt: Packet) -> None:
        self.rx_packets += 1
        pkt.hops += 1
        # Inlined route_for fast path: the common case is a single-port
        # ECMP set, and this runs once per packet per switch hop.
        ports = self.fwd.get(pkt.dst)
        if not ports:
            raise RoutingError(f"{self.name}: no route to host {pkt.dst}")
        if len(ports) == 1:
            ports[0].send(pkt)
        else:
            ports[_flow_hash(pkt) % len(ports)].send(pkt)
