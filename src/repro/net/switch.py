"""Output-queued store-and-forward switch.

Forwarding is by a static table (host id → egress port) computed once from
the topology (see :mod:`repro.net.routing`). All queueing happens at the
egress ports — the model the paper's analysis of egress-queue snapshots
assumes. When multiple equal-cost egress ports exist (leaf-spine), the
switch picks one per flow with a deterministic hash (static ECMP), so a
given TCP flow never reorders.

Two ECMP details matter for fabric studies:

* **Per-switch salt.** The flow hash mixes the switch's ``node_id`` into
  the 4-tuple hash. Without it, every switch facing an equal-sized ECMP
  set computes the same index for a given flow — the classic *hash
  polarization* pathology, where the leaf tier's choice predetermines the
  spine tier's and whole subsets of paths never carry traffic.
* **Per-packet spraying** (opt-in via ``ecmp_per_packet``). Instead of
  hashing, the switch round-robins each destination's ECMP set
  packet-by-packet. This maximizes instantaneous load balance but
  deliberately reorders flows whose paths have unequal queueing — the
  trade-off the fixedk reordering study measures. Off by default so all
  existing experiments keep flow-stable paths bit-identically.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import RoutingError
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.port import Port

__all__ = ["Switch"]


def _flow_hash(pkt: Packet, salt: int) -> int:
    """Deterministic per-flow hash for ECMP port selection.

    Pure function of the 4-tuple and the per-switch ``salt`` so both
    directions of a flow may take different paths (as real ECMP does),
    each direction is stable, and distinct switches decorrelate (no hash
    polarization). The xorshift-multiply finalizer spreads the salt into
    the low bits that ``% len(ports)`` actually consumes.
    """
    h = (
        pkt.src * 0x9E3779B1
        ^ pkt.dst * 0x85EBCA77
        ^ pkt.sport * 0xC2B2AE3D
        ^ pkt.dport * 0x27D4EB2F
        ^ salt
    ) & 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 0x7FEB352D) & 0xFFFFFFFF
    h ^= h >> 15
    return h & 0x7FFFFFFF


class Switch(Node):
    """A switch with per-destination egress port lists."""

    def __init__(self, node_id: int, name: str):
        super().__init__(node_id, name)
        self.ports: List[Port] = []
        # dst host id -> candidate egress ports (ECMP set, usually size 1)
        self.fwd: Dict[int, List[Port]] = {}
        self.rx_packets = 0
        #: Per-switch hash salt (golden-ratio spread of the node id).
        self._ecmp_salt = (node_id * 0x165667B1) & 0xFFFFFFFF
        #: Opt-in packet spraying: round-robin the ECMP set per packet
        #: instead of hashing per flow. Reorders; off by default.
        self.ecmp_per_packet = False
        # dst host id -> next round-robin index (per-packet mode only).
        self._rr: Dict[int, int] = {}

    def add_port(self, port: Port) -> Port:
        """Register an egress port on this switch."""
        self.ports.append(port)
        return port

    def set_route(self, dst: int, ports: List[Port]) -> None:
        """Install the ECMP port set for destination host ``dst``."""
        if not ports:
            raise RoutingError(f"{self.name}: empty port set for dst {dst}")
        self.fwd[dst] = list(ports)

    def route_for(self, pkt: Packet) -> Port:
        """The egress port this packet will take.

        In per-packet mode this *consumes* a round-robin slot, exactly as
        :meth:`receive` would — callers predicting a path should only use
        it in flow-hash mode.
        """
        ports = self.fwd.get(pkt.dst)
        if not ports:
            raise RoutingError(f"{self.name}: no route to host {pkt.dst}")
        if len(ports) == 1:
            return ports[0]
        if self.ecmp_per_packet:
            i = self._rr.get(pkt.dst, 0)
            self._rr[pkt.dst] = i + 1
            return ports[i % len(ports)]
        return ports[_flow_hash(pkt, self._ecmp_salt) % len(ports)]

    def receive(self, pkt: Packet) -> None:
        self.rx_packets += 1
        pkt.hops += 1
        # Inlined route_for fast path: the common case is a single-port
        # ECMP set, and this runs once per packet per switch hop.
        ports = self.fwd.get(pkt.dst)
        if not ports:
            raise RoutingError(f"{self.name}: no route to host {pkt.dst}")
        if len(ports) == 1:
            ports[0].send(pkt)
        elif self.ecmp_per_packet:
            i = self._rr.get(pkt.dst, 0)
            self._rr[pkt.dst] = i + 1
            ports[i % len(ports)].send(pkt)
        else:
            ports[_flow_hash(pkt, self._ecmp_salt) % len(ports)].send(pkt)
