"""Egress port: a queue discipline plus a store-and-forward transmitter.

Every unidirectional attachment of a node to a link is a :class:`Port`.
The port owns a :class:`~repro.core.qdisc.QueueDisc`; arriving packets are
offered to the qdisc, and a self-clocking transmit loop drains it at the
link rate, delivering each packet to the peer node after the propagation
delay. This mirrors the NS-2 queue/link pair the paper instrumented.

Hot-path layout: the transmit loop schedules **bound methods**, never
closures. The packet being serialized sits in the ``_pending_tx`` slot
(there is at most one — the transmitter is half-duplex by construction),
and packets in flight on the wire sit in the ``_wire`` FIFO (propagation
delay is constant per port, so deliveries complete in append order).
This removes the two per-packet lambda allocations the transmit path
used to pay, and gives the loop profiler stable ``Port._tx_done`` /
``Port._deliver_head`` categories for free.

Tracer ownership: **the port owns its qdisc's tracer.** ``Port.__init__``
installs the port's tracer on the qdisc so queue events ("mark",
"enqueue") ride the same bus as port events ("tx", "drop"). A qdisc that
already carries a *different* tracer is a wiring bug (two observers would
silently diverge), so that raises :class:`~repro.errors.TopologyError`
instead of overwriting.
"""

from __future__ import annotations

from typing import Deque, Optional, TYPE_CHECKING
from collections import deque

from repro.core.qdisc import QueueDisc
from repro.errors import TopologyError
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.node import Node

__all__ = ["Port"]


class Port:
    """One egress interface: qdisc + transmitter + attached wire.

    Parameters
    ----------
    sim:
        The simulation kernel.
    name:
        Trace identifier, e.g. ``"switch0.p3"``.
    rate_bps:
        Link serialization rate in bits/second.
    delay_s:
        One-way propagation delay in seconds.
    qdisc:
        The queue discipline buffering this port. Must not already carry
        a different tracer (the port owns that wiring; see module doc).
    tracer:
        Optional tracer; emits ``"drop"`` and ``"tx"`` events.
    """

    __slots__ = ("sim", "name", "port_id", "rate_bps", "delay_s", "qdisc",
                 "tracer", "_peer", "_busy", "_up", "_pending_tx", "_wire",
                 "_ser_s_per_byte", "_schedule",
                 "tx_packets", "tx_bytes", "failed_tx_packets")

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float,
        delay_s: float,
        qdisc: QueueDisc,
        tracer: Optional[Tracer] = None,
    ):
        if rate_bps <= 0:
            raise TopologyError(f"port {name}: rate must be positive, got {rate_bps}")
        if delay_s < 0:
            raise TopologyError(f"port {name}: delay must be >= 0, got {delay_s}")
        self.sim = sim
        self.name = name
        #: Creation-order id assigned by :meth:`Network.connect`. Routing
        #: sorts ECMP candidate sets by this, not by name, so path
        #: selection is stable under node renaming ("p10" < "p2"
        #: lexicographically). -1 until the port joins a network.
        self.port_id = -1
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.qdisc = qdisc
        qdisc.name = name
        # Let rate-aware qdiscs (RED idle decay) know their drain rate.
        set_rate = getattr(qdisc, "set_link_rate", None)
        if set_rate is not None:
            set_rate(rate_bps)
        self.tracer = tracer
        # Ownership rule: the port wires the shared trace bus into its
        # qdisc. A pre-existing *different* tracer means two components
        # think they own this queue's events — refuse rather than silently
        # detach the first one.
        if qdisc.tracer is not None and qdisc.tracer is not tracer:
            raise TopologyError(
                f"port {name}: qdisc already carries a different tracer; "
                "the owning port installs the trace bus (pass it to Port, "
                "not to the qdisc)"
            )
        qdisc.tracer = tracer  # qdiscs emit "mark"/"enqueue" on the same bus
        self._peer: Optional["Node"] = None
        self._busy = False
        self._up = True
        #: Serialization seconds per byte — one multiply per packet instead
        #: of a division, and ``sim.schedule`` resolved once per port.
        self._ser_s_per_byte = 8.0 / rate_bps
        self._schedule = sim.schedule
        #: The packet currently being serialized (at most one).
        self._pending_tx: Optional[Packet] = None
        #: Packets propagating on the wire, FIFO — constant per-port delay
        #: means deliveries complete in append order.
        self._wire: Deque[Packet] = deque()
        self.tx_packets = 0
        self.tx_bytes = 0
        self.failed_tx_packets = 0

    @property
    def peer(self) -> Optional["Node"]:
        """The node at the far end of the wire."""
        return self._peer

    def connect(self, peer: "Node") -> None:
        """Attach the far-end node. Must be called exactly once."""
        if self._peer is not None:
            raise TopologyError(f"port {self.name} is already connected")
        self._peer = peer

    @property
    def busy(self) -> bool:
        """True while a packet is being serialized."""
        return self._busy

    # -- failure injection -----------------------------------------------------

    @property
    def up(self) -> bool:
        """Link state. Packets transmitted while down are lost on the wire."""
        return self._up

    def set_down(self) -> None:
        """Fail the link: queued packets stay queued, transmitted packets
        are lost in flight (the far end never sees them). Idempotent."""
        self._up = False

    def set_up(self) -> None:
        """Restore the link and resume draining the queue. Idempotent."""
        if self._up:
            return
        self._up = True
        if not self._busy:
            self._start_tx()

    def send(self, pkt: Packet) -> None:
        """Offer a packet for transmission (may be dropped by the qdisc)."""
        if self._peer is None:
            raise TopologyError(f"port {self.name} is not connected")
        now = self.sim.now
        accepted = self.qdisc.enqueue(pkt, now)
        if not accepted:
            tr = self.tracer
            if tr is not None and tr.active:
                tr.emit(now, "drop", self.name, pkt)
            return
        if not self._busy:
            self._start_tx()

    def _start_tx(self) -> None:
        if not self._up:
            self._busy = False
            return
        pkt = self.qdisc.dequeue(self.sim.now)
        if pkt is None:
            self._busy = False
            return
        self._busy = True
        self._pending_tx = pkt
        self._schedule(pkt.size * self._ser_s_per_byte, self._tx_done)

    def _tx_done(self) -> None:
        pkt = self._pending_tx
        self._pending_tx = None
        if not self._up:
            # The link failed mid-serialization: the frame is lost and the
            # transmitter stays idle until set_up() restarts it.
            self.failed_tx_packets += 1
            self._busy = False
            tr = self.tracer
            if tr is not None and tr.active:
                tr.emit(self.sim.now, "link_loss", self.name, pkt)
            return
        self.tx_packets += 1
        self.tx_bytes += pkt.size
        tr = self.tracer
        if tr is not None and tr.active:
            tr.emit(self.sim.now, "tx", self.name, pkt)
        if self.delay_s > 0:
            self._wire.append(pkt)
            self._schedule(self.delay_s, self._deliver_head)
        else:
            self._peer.receive(pkt)
        # Inlined _start_tx (keep in sync) — this tail runs once per
        # transmitted packet. The link-state re-check is not redundant:
        # a trace subscriber above may have called set_down().
        if not self._up:
            self._busy = False
            return
        nxt = self.qdisc.dequeue(self.sim.now)
        if nxt is None:
            self._busy = False
            return
        self._busy = True
        self._pending_tx = nxt
        self._schedule(nxt.size * self._ser_s_per_byte, self._tx_done)

    def _deliver_head(self) -> None:
        """Propagation done for the oldest in-flight packet: hand it over."""
        self._peer.receive(self._wire.popleft())

    def register_metrics(self, registry) -> None:
        """Bind this port's transmit counters (and its queue) into ``registry``."""
        registry.gauge(
            "port.tx_packets", fn=lambda: self.tx_packets, port=self.name)
        registry.gauge(
            "port.tx_bytes", fn=lambda: self.tx_bytes, port=self.name)
        registry.gauge(
            "port.failed_tx_packets",
            fn=lambda: self.failed_tx_packets, port=self.name)
        self.qdisc.register_metrics(registry)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.name} {self.rate_bps/1e9:.1f}Gbps q={len(self.qdisc)}>"
