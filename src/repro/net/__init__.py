"""Packet-level network substrate: packets, links, ports, switches, hosts,
topologies and routing. The substrate replaces NS-2 for this reproduction."""

from repro.net.addresses import FlowKey
from repro.net.failures import LinkFlapper
from repro.net.host import Host
from repro.net.link import Link
from repro.net.network import Network
from repro.net.packet import (
    ECN_CE,
    ECN_ECT0,
    ECN_ECT1,
    ECN_NOT_ECT,
    FLAG_ACK,
    FLAG_CWR,
    FLAG_ECE,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    Packet,
    PacketPool,
)
from repro.net.port import Port
from repro.net.switch import Switch
from repro.net.topology import TopologySpec, build_leaf_spine, build_single_rack, build_dumbbell

__all__ = [
    "Packet",
    "PacketPool",
    "FlowKey",
    "Link",
    "Port",
    "Switch",
    "Host",
    "Network",
    "LinkFlapper",
    "TopologySpec",
    "build_single_rack",
    "build_leaf_spine",
    "build_dumbbell",
    "ECN_NOT_ECT",
    "ECN_ECT0",
    "ECN_ECT1",
    "ECN_CE",
    "FLAG_FIN",
    "FLAG_SYN",
    "FLAG_RST",
    "FLAG_PSH",
    "FLAG_ACK",
    "FLAG_ECE",
    "FLAG_CWR",
]
