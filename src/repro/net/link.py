"""Full-duplex link helper.

A :class:`Link` is a convenience record wiring two nodes together with a
pair of unidirectional :class:`~repro.net.port.Port` instances (one egress
port per endpoint). The qdiscs of the two directions are supplied by
factories so each direction can carry a different discipline — e.g. a RED
queue on the switch side and a plain DropTail on the host NIC side, as in
the paper's NS-2 setup.
"""

from __future__ import annotations

from typing import Callable

from repro.core.qdisc import QueueDisc
from repro.net.node import Node
from repro.net.port import Port
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

__all__ = ["Link", "QdiscFactory"]

#: A factory is called with the port name and returns a fresh qdisc.
QdiscFactory = Callable[[str], QueueDisc]


class Link:
    """Two nodes, two directions, two ports.

    Attributes
    ----------
    fwd:
        Egress port on ``a`` sending toward ``b``.
    rev:
        Egress port on ``b`` sending toward ``a``.
    """

    __slots__ = ("a", "b", "fwd", "rev")

    def __init__(
        self,
        sim: Simulator,
        a: Node,
        b: Node,
        rate_bps: float,
        delay_s: float,
        qdisc_a: QdiscFactory,
        qdisc_b: QdiscFactory,
        tracer: "Tracer | None" = None,
    ):
        self.a = a
        self.b = b
        name_fwd = f"{a.name}->{b.name}"
        name_rev = f"{b.name}->{a.name}"
        self.fwd = Port(sim, name_fwd, rate_bps, delay_s, qdisc_a(name_fwd), tracer)
        self.rev = Port(sim, name_rev, rate_bps, delay_s, qdisc_b(name_rev), tracer)
        self.fwd.connect(b)
        self.rev.connect(a)

    def port_from(self, node: Node) -> Port:
        """The egress port of ``node`` on this link."""
        if node is self.a:
            return self.fwd
        if node is self.b:
            return self.rev
        raise ValueError(f"{node!r} is not an endpoint of this link")
