"""End host: one uplink port and a transport-layer demultiplexer.

The host keeps the last-mile handoff minimal: packets addressed to it are
passed to registered receivers keyed by destination port, which is how
:class:`~repro.tcp.endpoint.TcpEndpoint` instances attach. Mis-addressed
packets raise — a routing bug should never be silently absorbed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import RoutingError, TcpError
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.port import Port
from repro.sim.engine import Simulator

__all__ = ["Host"]


class Host(Node):
    """A server attached to the fabric by a single uplink port."""

    def __init__(self, node_id: int, name: str, sim: Simulator):
        super().__init__(node_id, name)
        self.sim = sim
        self.uplink: Optional[Port] = None
        #: Trace bus shared with the owning network (set by Network);
        #: transport endpoints on this host emit their ``tcp.*`` events here.
        self.tracer = None
        self._receivers: Dict[int, Callable[[Packet], None]] = {}
        self._delivery_hooks: List[Callable[[Packet, float], None]] = []
        self.rx_packets = 0
        self._next_ephemeral = 49152

    def attach_uplink(self, port: Port) -> None:
        """Set the host's egress port toward its top-of-rack switch."""
        self.uplink = port

    # -- transport layer registration ----------------------------------------

    def bind(self, port_number: int, receiver: Callable[[Packet], None]) -> None:
        """Register a packet receiver on a local TCP port number."""
        if port_number in self._receivers:
            raise TcpError(f"{self.name}: port {port_number} already bound")
        self._receivers[port_number] = receiver

    def unbind(self, port_number: int) -> None:
        """Release a TCP port number. Idempotent."""
        self._receivers.pop(port_number, None)

    def allocate_port(self) -> int:
        """Allocate a fresh ephemeral TCP port number."""
        p = self._next_ephemeral
        self._next_ephemeral += 1
        return p

    def add_delivery_hook(self, hook: Callable[[Packet, float], None]) -> None:
        """Observe every packet delivered to this host (latency stats)."""
        self._delivery_hooks.append(hook)

    # -- data path ------------------------------------------------------------

    def send(self, pkt: Packet) -> None:
        """Transmit a packet onto the fabric via the uplink."""
        if self.uplink is None:
            raise RoutingError(f"{self.name}: no uplink attached")
        self.uplink.send(pkt)

    def receive(self, pkt: Packet) -> None:
        if pkt.dst != self.node_id:
            raise RoutingError(
                f"{self.name} (id {self.node_id}) received packet for host {pkt.dst}"
            )
        self.rx_packets += 1
        pkt.hops += 1
        now = self.sim.now
        for hook in self._delivery_hooks:
            hook(pkt, now)
        receiver = self._receivers.get(pkt.dport)
        if receiver is not None:
            receiver(pkt)
        # Unbound destination ports swallow the packet (like a host firewall
        # dropping to a closed port); TCP-level RST modelling is out of scope.
