"""Failure injection: scheduled link flaps.

A :class:`LinkFlapper` takes either direction's port (or both) down and
up on a schedule, for fault-tolerance testing: TCP must ride out the
outage via retransmission timeouts, and the MapReduce job must still
complete (the engine has no task-level failure handling — the transport
absorbs the fault, as it does for transient link errors in practice).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigError
from repro.net.link import Link
from repro.net.port import Port
from repro.sim.engine import Simulator

__all__ = ["LinkFlapper"]


class LinkFlapper:
    """Schedule (down_at, up_at) outage windows on a set of ports.

    Parameters
    ----------
    sim:
        Simulation kernel.
    ports:
        The ports to fail. Pass both directions of a link for a full
        cable pull, one for a unidirectional fault.
    outages:
        Sequence of (down_at, up_at) absolute times; must be ordered and
        non-overlapping.
    """

    def __init__(
        self,
        sim: Simulator,
        ports: Sequence[Port],
        outages: Sequence[Tuple[float, float]],
    ):
        if not ports:
            raise ConfigError("need at least one port to flap")
        last_up = -1.0
        for down_at, up_at in outages:
            if down_at >= up_at:
                raise ConfigError(f"outage ({down_at}, {up_at}) is empty")
            if down_at < last_up:
                raise ConfigError("outages must be ordered and disjoint")
            last_up = up_at
        self.ports = list(ports)
        self.outages = list(outages)
        self.downs = 0
        self.ups = 0
        for down_at, up_at in self.outages:
            sim.schedule_at(down_at, self._down)
            sim.schedule_at(up_at, self._up)

    @classmethod
    def cable_pull(
        cls, sim: Simulator, link: Link, down_at: float, up_at: float
    ) -> "LinkFlapper":
        """Fail both directions of ``link`` for one window."""
        return cls(sim, [link.fwd, link.rev], [(down_at, up_at)])

    def _down(self) -> None:
        self.downs += 1
        for p in self.ports:
            p.set_down()

    def _up(self) -> None:
        self.ups += 1
        for p in self.ports:
            p.set_up()
