"""Network assembly: nodes + links + routing + delivery hooks.

:class:`Network` is the container the topology builders populate and the
experiment runner talks to. It owns the simulator handle, the tracer, the
node table and the link list, and exposes aggregate queue statistics for
the metrics layer.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.qdisc import QueueDisc, QueueStats
from repro.errors import TopologyError
from repro.net.host import Host
from repro.net.link import Link, QdiscFactory
from repro.net.node import Node
from repro.net.port import Port
from repro.net.routing import compute_routes
from repro.net.switch import Switch
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

__all__ = ["Network"]


class Network:
    """A set of hosts and switches wired by full-duplex links."""

    def __init__(self, sim: Simulator, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.tracer = tracer
        self.nodes: Dict[int, Node] = {}
        self.links: List[Link] = []
        self._adjacency: Dict[int, List] = {}
        self._next_id = 0
        self._next_port_id = 0

    # -- construction ----------------------------------------------------------

    def add_host(self, name: Optional[str] = None) -> Host:
        """Create and register a new host."""
        nid = self._next_id
        self._next_id += 1
        host = Host(nid, name or f"h{nid}", self.sim)
        host.tracer = self.tracer
        self.nodes[nid] = host
        self._adjacency[nid] = []
        return host

    def add_switch(self, name: Optional[str] = None) -> Switch:
        """Create and register a new switch."""
        nid = self._next_id
        self._next_id += 1
        sw = Switch(nid, name or f"s{nid}")
        self.nodes[nid] = sw
        self._adjacency[nid] = []
        return sw

    def connect(
        self,
        a: Node,
        b: Node,
        rate_bps: float,
        delay_s: float,
        qdisc_a: QdiscFactory,
        qdisc_b: QdiscFactory,
    ) -> Link:
        """Wire ``a`` and ``b`` with a full-duplex link."""
        if a.node_id not in self.nodes or b.node_id not in self.nodes:
            raise TopologyError("both endpoints must be registered first")
        link = Link(self.sim, a, b, rate_bps, delay_s, qdisc_a, qdisc_b, self.tracer)
        # Creation-order port ids: the renaming-stable sort key for ECMP
        # candidate ordering (see repro.net.routing).
        link.fwd.port_id = self._next_port_id
        link.rev.port_id = self._next_port_id + 1
        self._next_port_id += 2
        self.links.append(link)
        self._adjacency[a.node_id].append((link.fwd, b))
        self._adjacency[b.node_id].append((link.rev, a))
        for node, port in ((a, link.fwd), (b, link.rev)):
            if isinstance(node, Switch):
                node.add_port(port)
            elif isinstance(node, Host):
                if node.uplink is not None:
                    raise TopologyError(f"host {node.name} already has an uplink")
                node.attach_uplink(port)
        return link

    def finalize(self) -> None:
        """Compute routes. Call once after all links are added."""
        compute_routes(self.nodes, self._adjacency)

    # -- introspection ------------------------------------------------------------

    @property
    def hosts(self) -> List[Host]:
        """All hosts, in id order."""
        return [n for n in self.nodes.values() if isinstance(n, Host)]

    @property
    def switches(self) -> List[Switch]:
        """All switches, in id order."""
        return [n for n in self.nodes.values() if isinstance(n, Switch)]

    def switch_ports(self) -> Iterable[Port]:
        """All switch egress ports (where the paper's AQMs live)."""
        for sw in self.switches:
            yield from sw.ports

    def switch_queues(self) -> Iterable[QueueDisc]:
        """The qdiscs on all switch egress ports."""
        for port in self.switch_ports():
            yield port.qdisc

    def aggregate_switch_stats(self) -> QueueStats:
        """Sum the per-class queue counters over every switch port."""
        total = QueueStats()
        for q in self.switch_queues():
            s = q.stats
            total.arrivals += s.arrivals
            total.arrival_bytes += s.arrival_bytes
            total.departures += s.departures
            total.departure_bytes += s.departure_bytes
            total.drops_tail += s.drops_tail
            total.drops_early += s.drops_early
            total.marks += s.marks
            total.protected += s.protected
            total.ect_arrivals += s.ect_arrivals
            total.ect_drops += s.ect_drops
            total.ack_arrivals += s.ack_arrivals
            total.ack_drops += s.ack_drops
            total.syn_arrivals += s.syn_arrivals
            total.syn_drops += s.syn_drops
            total.queue_delay_sum += s.queue_delay_sum
            total.queue_delay_count += s.queue_delay_count
            total.fluid_packets += s.fluid_packets
            total.fluid_bytes += s.fluid_bytes
        return total
