"""Reproducible performance benchmarks for the simulation core.

:mod:`repro.perf.bench` is the harness behind ``python -m repro.cli
bench``: deterministic micro-benchmarks of the hot primitives (event
heap churn, packet construction, RED enqueue/dequeue) plus macro runs of
pinned-seed canonical experiment cells, written out as a schema-stable
``BENCH_<stamp>.json`` artifact that can be diffed against a committed
baseline.
"""

from repro.perf.bench import (
    SCHEMA,
    canonical_cells,
    compare_to_baseline,
    default_bench_path,
    run_bench,
    write_bench,
)

__all__ = [
    "SCHEMA",
    "canonical_cells",
    "compare_to_baseline",
    "default_bench_path",
    "run_bench",
    "write_bench",
]
