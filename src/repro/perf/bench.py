"""The benchmark harness behind ``python -m repro.cli bench``.

Three layers, all fully deterministic in what they *execute* (wall time
is of course machine-dependent):

* a **calibration** workload — pure ``heapq``-of-tuples churn that uses
  no repro code at all. Its wall time measures the machine (and Python
  build), so two reports from different machines can be compared through
  *normalized* macro times (macro wall / calibration wall) instead of
  raw seconds.
* **micro** benchmarks of the hot primitives: event-heap
  schedule/cancel/fire churn, packet construction, and a RED
  enqueue/dequeue cycle. Each reports a best-of-N rate (ops/second).
* **macro** benchmarks: full pinned-seed canonical experiment cells run
  through :func:`~repro.experiments.runner.run_cell`, reporting wall
  time, events/second and delivered packets/second. Repeated runs of a
  cell must produce byte-identical results — the harness records (and
  the CLI enforces) that determinism guarantee on every invocation.

Reports serialize as ``BENCH_<stamp>.json`` (schema ``repro.bench/v1``)
and can be compared against a committed baseline with
:func:`compare_to_baseline`; see ``benchmarks/BENCH_baseline.json`` and
the CI bench-smoke job.

JSON schema (``repro.bench/v1``)::

    {
      "schema": "repro.bench/v1",
      "created": "<UTC timestamp>",
      "quick": bool,                  # --quick run (smoke cell only)
      "repeats": int,                 # timing samples per workload
      "host": {"python": ..., "implementation": ..., "platform": ...},
      "calibration": {"n": int, "best_s": float, "samples_s": [...],
                      "warmup": int,            # discarded warmup runs
                      "warmup_s": [...]},       # their timings (recorded,
                                                # never part of best_s)
      "micro": {
        "<name>": {"ops": int, "best_s": float, "rate_per_s": float,
                    "samples_s": [...]},
        ...
      },
      "macro": {
        "<cell>": {"label": str, "scale": float, "seed": int,
                    "wall_s_best": float, "wall_s_samples": [...],
                    "normalized": float,        # wall_s_best / calibration
                    "events": int, "events_per_s": float,
                    "packets_delivered": int, "packets_per_s": float,
                    "sim_runtime_s": float, "mean_latency_s": float,
                    "deterministic": bool},     # repeats bit-identical?
        ...
      }
    }
"""

from __future__ import annotations

import heapq
import json
import platform
import sys
import time
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.protection import ProtectionMode
from repro.experiments.config import (
    SHALLOW_BUFFER_PACKETS,
    ExperimentConfig,
    QueueSetup,
)
from repro.tcp.endpoint import TcpVariant
from repro.units import mb, us

__all__ = [
    "SCHEMA",
    "canonical_cells",
    "compare_to_baseline",
    "default_bench_path",
    "render_compare",
    "run_bench",
    "write_bench",
]

SCHEMA = "repro.bench/v1"

#: Canonical macro scale: the fig-2 smoke configuration (1/16th of the
#: 256 MB reference Terasort) — big enough to exercise every subsystem,
#: small enough for best-of-N timing in CI.
_SMOKE_SCALE = 0.0625

#: Default timing samples per workload.
_REPEATS_FULL = 5
_REPEATS_QUICK = 3


def _best_of(fn: Callable[[], object], repeats: int) -> Tuple[float, List[float]]:
    """Time ``fn()`` ``repeats`` times; return (best, all samples).

    Best-of-N is the standard answer to scheduler noise: every source of
    interference makes a sample *slower*, so the minimum is the best
    estimate of the true cost.
    """
    samples: List[float] = []
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        samples.append(perf_counter() - t0)
    return min(samples), samples


# -- calibration ------------------------------------------------------------

_CALIBRATION_N = 150_000

#: Calibration probe runs executed and *discarded* before any timed
#: sample is kept. The first executions of the probe run on a cold
#: allocator/bytecode cache and — on boost-clocked hardware — at a
#: transiently high frequency that the sustained bench never sees
#: again. Either effect can make an early sample the spurious minimum,
#: deflating ``calibration.best_s`` and inflating every normalized
#: macro time. The discarded timings are recorded in the report
#: (``calibration.warmup_s``) for post-hoc inspection but never enter
#: the minimum.
_CALIBRATION_WARMUP = 2


def _calibration_workload(n: int = _CALIBRATION_N) -> float:
    """Machine-speed probe: heapq-of-tuples churn using no repro code.

    Chosen to resemble the simulator's actual bottleneck mix (heap
    operations + float arithmetic) so the normalization transfers across
    machines; uses only the standard library so baseline and current
    report run *identical* calibration code even when repro changes.
    """
    heap: List[Tuple[int, int]] = []
    push = heapq.heappush
    pop = heapq.heappop
    acc = 0
    for i in range(n):
        push(heap, ((i * 2654435761) % 1000003, i))
        if i & 1:
            acc += pop(heap)[0]
    while heap:
        acc += pop(heap)[0]
    return acc


# -- micro benchmarks -------------------------------------------------------

def _micro_event_churn(n: int = 20_000) -> int:
    """Schedule/cancel/reschedule churn on a bare kernel; returns op count.

    The mix mirrors a TCP run: most events fire, a large minority
    (retransmission timers) are cancelled and rescheduled, which also
    exercises the lazy-cancel compaction path.
    """
    from repro.sim.engine import Simulator

    sim = Simulator()
    fired = [0]

    def cb() -> None:
        fired[0] += 1

    handles = []
    for i in range(n):
        # Deterministic pseudo-random delays (Knuth multiplicative hash).
        delay = 1e-7 * ((i * 2654435761) % 9973 + 1)
        handles.append(sim.schedule(delay, cb))
    for i in range(0, n, 2):  # cancel half, like timer churn
        handles[i].cancel()
    for i in range(n // 2):   # ...and re-arm replacements
        sim.schedule(1e-3 + 1e-7 * i, cb)
    sim.run()
    return n + n // 2 + n // 2  # schedules + cancels + reschedules


def _micro_packet_construct(n: int = 20_000) -> int:
    """Construct packets with per-run ids and read their classification."""
    from itertools import count

    from repro.net.packet import ECN_ECT0, FLAG_ACK, Packet

    ids = count()
    acc = 0
    for i in range(n):
        pkt = Packet(
            src=1, sport=5000, dst=2, dport=8020,
            seq=i * 1448, ack=0, payload=1448,
            flags=FLAG_ACK, ecn=ECN_ECT0,
            created_at=i * 1e-6, pkt_id=next(ids),
        )
        acc += pkt.is_ect + pkt.is_pure_ack + pkt.size
    return n


def _micro_red_cycle(n: int = 20_000) -> int:
    """RED enqueue/dequeue cycle with a deterministic LCG for the AQM.

    Holds the queue in RED's probabilistic band so the bench exercises
    the full admit path (EWMA update + early-action draw), not just the
    below-min-th fast exit.
    """
    from repro.core.red import RedParams, RedQueue
    from repro.net.packet import ECN_ECT0, Packet

    state = [12345]

    def rand() -> float:  # MINSTD LCG — deterministic, no numpy draw cost
        state[0] = (state[0] * 48271) % 2147483647
        return state[0] / 2147483647.0

    q = RedQueue(SHALLOW_BUFFER_PACKETS,
                 RedParams(min_th=5.0, max_th=15.0), rand=rand, name="bench")
    q.set_link_rate(1e9)
    now = 0.0
    for i in range(n):
        pkt = Packet(src=1, sport=1, dst=2, dport=2, payload=1448,
                     ecn=ECN_ECT0, created_at=now, pkt_id=i)
        q.enqueue(pkt, now)
        now += 6e-6
        if len(q) > 8:  # drain enough to sit inside the [min_th, max_th) band
            q.dequeue(now)
            q.dequeue(now)
    while q.dequeue(now) is not None:
        now += 6e-6
    return 2 * n


_MICRO_BENCHES: Dict[str, Callable[[], int]] = {
    "event_churn": _micro_event_churn,
    "packet_construct": _micro_packet_construct,
    "red_cycle": _micro_red_cycle,
}


# -- macro benchmarks -------------------------------------------------------

def canonical_cells(quick: bool = False) -> List[Tuple[str, ExperimentConfig]]:
    """The pinned-seed macro benchmark cells.

    ``fig2-smoke`` is *the* reference cell (RED default @ 500 µs target
    delay, shallow buffers, ECN transport, seed 42, scale 1/16) — the CI
    regression gate watches it. The full suite adds a droptail and a
    CoDel cell so all three qdisc hot paths get macro coverage, plus a
    ``mix-smoke`` coexistence cell (shuffle + partition-aggregate RPC +
    background flows) covering the workload-mix subsystem, plus the
    bulk pairs cell in both fidelities: the ``bulk-hybrid`` /
    ``bulk-packet`` normalized ratio *is* the fluid tier's speedup
    claim (see :mod:`repro.experiments.fidelity`).
    """
    def cfg(kind: str, **kw) -> ExperimentConfig:
        queue = QueueSetup(
            kind=kind,
            buffer_packets=SHALLOW_BUFFER_PACKETS,
            target_delay_s=None if kind == "droptail" else us(500.0),
            protection=ProtectionMode.DEFAULT,
        )
        return ExperimentConfig(
            queue=queue, variant=TcpVariant.ECN, seed=42, **kw
        ).scaled(_SMOKE_SCALE)

    cells = [("fig2-smoke", cfg("red"))]
    if not quick:
        import dataclasses

        from repro.experiments.bulkcell import BulkConfig
        from repro.experiments.mix import MixConfig

        cells.append(("droptail-shallow", cfg("droptail")))
        cells.append(("codel-default", cfg("codel")))
        cells.append(("mix-smoke", MixConfig(
            queue=QueueSetup(
                kind="red",
                buffer_packets=SHALLOW_BUFFER_PACKETS,
                target_delay_s=us(200.0),
            ),
            variant=TcpVariant.ECN,
            n_hosts=8,
            n_reducers=4,
            rpc_fanout=4,
            rpc_rate_qps=100.0,
            bg_rate_fps=20.0,
            seed=42,
        ).scaled(_SMOKE_SCALE)))
        bulk = BulkConfig()
        cells.append(("bulk-packet", bulk))
        cells.append(("bulk-hybrid",
                      dataclasses.replace(bulk, fidelity="hybrid")))
    return cells


def _run_macro_cell(
    config: ExperimentConfig,
    repeats: int,
    calib_samples: Optional[List[float]] = None,
) -> Dict[str, object]:
    """Run one canonical cell ``repeats`` times; best-of wall + rates.

    Also verifies the determinism guarantee: every repeat must reproduce
    the same simulated runtime, latency, delivered-packet count and
    event count bit-for-bit (``deterministic`` in the report).

    ``calib_samples``: when given, one calibration-probe timing is taken
    before each repeat and appended there. Interleaving matters: machine
    speed drifts over a bench run (thermal/scheduler effects), and the
    normalization is only honest if the calibration minimum comes from
    the same time windows as the macro minima.
    """
    from repro.experiments.runner import run_cell

    samples: List[float] = []
    fingerprints = []
    last = None
    for _ in range(repeats):
        if calib_samples is not None:
            t0 = perf_counter()
            _calibration_workload()
            calib_samples.append(perf_counter() - t0)
        t0 = perf_counter()
        cell = run_cell(config)
        samples.append(perf_counter() - t0)
        last = cell
        m = cell.metrics
        events = int(cell.manifest["timings"]["events"])
        fingerprints.append(
            (m.runtime, m.mean_latency, m.packets_delivered,
             m.retransmits, events)
        )
    best = min(samples)
    runtime, mean_latency, delivered, _retx, events = fingerprints[-1]
    # Bulk cells size themselves by per-flow volume, not a Terasort
    # data_bytes; scale stays relative to the 256 MB reference either way.
    data_bytes = getattr(config, "data_bytes", None)
    if data_bytes is None:
        data_bytes = (getattr(config, "flow_bytes", 0)
                      * getattr(config, "n_pairs", 1))
    return {
        "label": last.config.label(),
        "scale": data_bytes / mb(256),
        "seed": config.seed,
        "wall_s_best": best,
        "wall_s_samples": samples,
        "events": events,
        "events_per_s": events / best if best > 0 else 0.0,
        "packets_delivered": delivered,
        "packets_per_s": delivered / best if best > 0 else 0.0,
        "sim_runtime_s": runtime,
        "mean_latency_s": mean_latency,
        "deterministic": len(set(fingerprints)) == 1,
    }


# -- harness ----------------------------------------------------------------

def run_bench(
    quick: bool = False,
    repeats: Optional[int] = None,
    cells: Optional[List[Tuple[str, ExperimentConfig]]] = None,
) -> Dict[str, object]:
    """Run the benchmark suite and return the report dict.

    Parameters
    ----------
    quick:
        Smoke mode: only the ``fig2-smoke`` macro cell (micro benches are
        cheap and always run). This is what CI runs.
    repeats:
        Timing samples per workload (default 3 quick / 5 full).
    cells:
        Override the macro cell list (tests use tiny scaled-down cells).
    """
    if repeats is None:
        repeats = _REPEATS_QUICK if quick else _REPEATS_FULL
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")

    # Calibration samples are taken up front AND interleaved with every
    # macro repeat (see _run_macro_cell) so the normalization sees the
    # same machine-speed windows the macro timings did. A fixed warmup
    # prefix runs first and is discarded (see _CALIBRATION_WARMUP).
    _, warmup_samples = _best_of(_calibration_workload, _CALIBRATION_WARMUP)
    _, calib_samples = _best_of(_calibration_workload, repeats)

    micro: Dict[str, object] = {}
    for name, fn in _MICRO_BENCHES.items():
        ops_holder: List[int] = []
        best, samples = _best_of(lambda f=fn: ops_holder.append(f()), repeats)
        ops = ops_holder[-1]
        micro[name] = {
            "ops": ops,
            "best_s": best,
            "rate_per_s": ops / best if best > 0 else 0.0,
            "samples_s": samples,
        }

    macro: Dict[str, object] = {}
    rows = []
    for name, config in (cells if cells is not None else canonical_cells(quick)):
        rows.append((name, _run_macro_cell(config, repeats, calib_samples)))
    calib_best = min(calib_samples)
    for name, row in rows:
        row["normalized"] = (
            row["wall_s_best"] / calib_best if calib_best > 0 else 0.0
        )
        macro[name] = row

    return {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime()),
        "quick": quick,
        "repeats": repeats,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
        "calibration": {
            "n": _CALIBRATION_N,
            "best_s": calib_best,
            "samples_s": calib_samples,
            "warmup": _CALIBRATION_WARMUP,
            "warmup_s": warmup_samples,
        },
        "micro": micro,
        "macro": macro,
    }


def default_bench_path(when: Optional[float] = None) -> str:
    """``BENCH_<UTC stamp>.json`` — the conventional artifact name."""
    stamp = time.strftime(
        "%Y%m%d-%H%M%S", time.gmtime(when if when is not None else time.time())
    )
    return f"BENCH_{stamp}.json"


def write_bench(report: Dict[str, object], path: Optional[str] = None) -> str:
    """Serialize a report to ``path`` (default: ``BENCH_<stamp>.json``)."""
    if path is None:
        path = default_bench_path()
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


# -- baseline comparison ----------------------------------------------------

def compare_to_baseline(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = 0.25,
) -> Tuple[bool, List[str]]:
    """Compare macro cells of ``current`` against a baseline report.

    Times are compared *normalized* (macro wall / calibration wall), so a
    baseline recorded on a faster or slower machine still gates
    regressions in the code rather than in the hardware. A cell regresses
    when its normalized time exceeds the baseline's by more than
    ``tolerance`` (default 25%).

    Returns ``(ok, lines)`` — ``ok`` is False on any regression, and
    ``lines`` is a human-readable summary of every compared cell.
    """
    if baseline.get("schema") != SCHEMA:
        return False, [
            f"baseline schema {baseline.get('schema')!r} != {SCHEMA!r} "
            "(regenerate the baseline)"
        ]
    ok = True
    lines: List[str] = []
    base_macro = baseline.get("macro", {})
    for name, row in current.get("macro", {}).items():
        base = base_macro.get(name)
        if base is None:
            lines.append(f"{name}: not in baseline (skipped)")
            continue
        cur_norm = float(row["normalized"])
        base_norm = float(base["normalized"])
        if base_norm <= 0:
            lines.append(f"{name}: baseline has no normalized time (skipped)")
            continue
        ratio = cur_norm / base_norm
        speedup = base_norm / cur_norm if cur_norm > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = f"REGRESSION (> {tolerance:.0%} over baseline)"
            ok = False
        lines.append(
            f"{name}: {row['wall_s_best']:.3f}s wall, normalized "
            f"{cur_norm:.3f} vs baseline {base_norm:.3f} "
            f"({speedup:.2f}x vs baseline) — {verdict}"
        )
    if not lines:
        lines.append("no macro cells to compare")
    return ok, lines


def render_compare(
    report_a: Dict[str, object],
    report_b: Dict[str, object],
    tolerance: float = 0.25,
) -> Tuple[bool, List[str]]:
    """Side-by-side table of two reports' normalized macro times.

    ``A`` is the reference (older/baseline) report, ``B`` the candidate.
    Delta is ``(B - A) / A`` on the *normalized* time, so two reports
    from different machines compare through their own calibrations. A
    positive delta past ``tolerance`` is a regression; ``ok`` is False
    when any compared cell regresses. Cells present in only one report
    are listed but never gate.
    """
    for label, rep in (("A", report_a), ("B", report_b)):
        if rep.get("schema") != SCHEMA:
            return False, [
                f"report {label} schema {rep.get('schema')!r} != {SCHEMA!r}"
            ]
    macro_a = report_a.get("macro", {})
    macro_b = report_b.get("macro", {})
    names = list(macro_a) + [n for n in macro_b if n not in macro_a]
    width = max([len(n) for n in names] + [4])
    header = (f"{'cell':<{width}}  {'A norm':>10}  {'B norm':>10}  "
              f"{'delta':>8}  verdict")
    lines = [header, "-" * len(header)]
    ok = True
    for name in names:
        a, b = macro_a.get(name), macro_b.get(name)
        if a is None or b is None:
            only = "B" if a is None else "A"
            lines.append(f"{name:<{width}}  {'-':>10}  {'-':>10}  "
                         f"{'-':>8}  only in {only}")
            continue
        a_norm, b_norm = float(a["normalized"]), float(b["normalized"])
        if a_norm <= 0:
            lines.append(f"{name:<{width}}  {a_norm:>10.3f}  {b_norm:>10.3f}  "
                         f"{'-':>8}  no A time (skipped)")
            continue
        delta = (b_norm - a_norm) / a_norm
        verdict = "ok"
        if delta > tolerance:
            verdict = f"REGRESSION (> {tolerance:+.0%})"
            ok = False
        elif delta < -tolerance:
            verdict = "improved"
        lines.append(f"{name:<{width}}  {a_norm:>10.3f}  {b_norm:>10.3f}  "
                     f"{delta:>+8.1%}  {verdict}")
    if len(lines) == 2:
        lines.append("no macro cells to compare")
    return ok, lines


def render_report(report: Dict[str, object]) -> str:
    """Human-readable summary of one report."""
    lines = [
        f"bench        : schema {report['schema']}, repeats {report['repeats']}"
        f"{' (quick)' if report.get('quick') else ''}",
        f"calibration  : {report['calibration']['best_s'] * 1e3:.1f} ms "
        f"(heapq probe, n={report['calibration']['n']})",
    ]
    for name, row in report["micro"].items():
        lines.append(
            f"micro {name:<17}: {row['rate_per_s']:>12,.0f} ops/s "
            f"(best of {len(row['samples_s'])})"
        )
    for name, row in report["macro"].items():
        det = "deterministic" if row["deterministic"] else "NON-DETERMINISTIC"
        lines.append(
            f"macro {name:<17}: {row['wall_s_best']:.3f}s wall  "
            f"{row['events_per_s']:>10,.0f} ev/s  "
            f"{row['packets_per_s']:>9,.0f} pkt/s  [{det}]"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    rep = run_bench(quick="--quick" in sys.argv)
    print(render_report(rep))
    print(f"wrote {write_bench(rep)}")
