"""Event-loop profiling and sweep progress reporting.

:class:`LoopProfiler` attaches to a :class:`~repro.sim.engine.Simulator`
and measures where wall-clock time goes: events fired per second, heap
depth high-water mark, per-callback-category wall time, and the
sim-time/wall-time ratio (how much faster than real time the simulation
runs). When no profiler is attached the kernel's dispatch loop takes a
single predicted-not-taken branch per event — see
``tests/test_telemetry.py`` for the measured bound.

Callback categories are derived from ``__qualname__`` with any
``.<locals>`` closure suffix stripped. The transmit path schedules
**bound methods** (e.g. ``Port._tx_done``), whose qualname is already
``Class.method``; closures created inside a method (delayed-ACK timers,
RNG samplers) account to the enclosing method rather than to one
anonymous bucket per closure; ``functools.partial`` objects are unwrapped
to the function they wrap.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, Optional, TextIO

from repro.sim.engine import Simulator

__all__ = ["LoopProfiler", "ProgressFanout", "ProgressReporter"]


def callback_category(callback: Callable) -> str:
    """Stable accounting bucket for a scheduled callback.

    Bound methods and plain functions bucket by ``__qualname__``
    (``Port._tx_done``); closures bucket under the method that created
    them (the ``.<locals>`` suffix is stripped); ``functools.partial``
    chains are unwrapped to the underlying callable; callables without a
    qualname (rare) bucket by type name.
    """
    # Unwrap functools.partial (possibly nested) to the wrapped callable.
    func = getattr(callback, "func", None)
    while func is not None and callable(func):
        callback = func
        func = getattr(callback, "func", None)
    qn = getattr(callback, "__qualname__", None)
    if qn is None:
        return type(callback).__name__
    head, sep, _tail = qn.partition(".<locals>")
    return head if sep else qn


class LoopProfiler:
    """Measure the dispatch loop of one simulator run.

    Usage::

        prof = LoopProfiler()
        prof.attach(sim)
        sim.run()
        report = prof.finish()

    Attributes
    ----------
    categories:
        ``{category: [n_events, wall_seconds]}`` accumulated so far.
    """

    def __init__(self):
        self.categories: Dict[str, list] = {}
        self._sim: Optional[Simulator] = None
        self._t0_wall: Optional[float] = None
        self._t0_sim = 0.0
        self._t0_events = 0
        self._wall_elapsed = 0.0
        self._events = 0
        self._sim_elapsed = 0.0
        self._heap_high_water = 0

    # -- lifecycle ----------------------------------------------------------

    def attach(self, sim: Simulator) -> "LoopProfiler":
        """Start profiling ``sim``. One profiler per simulator at a time."""
        if self._sim is not None:
            raise ValueError("profiler is already attached")
        self._sim = sim
        self._t0_wall = time.perf_counter()
        self._t0_sim = sim.now
        self._t0_events = sim.events_processed
        sim.profiler = self
        return self

    def finish(self) -> Dict[str, object]:
        """Detach from the simulator and return :meth:`report`."""
        sim = self._sim
        if sim is not None:
            self._wall_elapsed += time.perf_counter() - self._t0_wall
            self._events += sim.events_processed - self._t0_events
            self._sim_elapsed += sim.now - self._t0_sim
            self._heap_high_water = max(
                self._heap_high_water, sim.heap_high_water)
            sim.profiler = None
            self._sim = None
        return self.report()

    # -- kernel-facing hot path ----------------------------------------------

    def record(self, callback: Callable, wall_dt: float) -> None:
        """Account one dispatched callback (called by the kernel)."""
        cat = callback_category(callback)
        slot = self.categories.get(cat)
        if slot is None:
            self.categories[cat] = [1, wall_dt]
        else:
            slot[0] += 1
            slot[1] += wall_dt

    # -- results -------------------------------------------------------------

    @property
    def events(self) -> int:
        """Events dispatched while attached."""
        if self._sim is not None:
            return self._events + self._sim.events_processed - self._t0_events
        return self._events

    @property
    def wall_seconds(self) -> float:
        """Wall-clock seconds spent while attached."""
        if self._sim is not None:
            return self._wall_elapsed + time.perf_counter() - self._t0_wall
        return self._wall_elapsed

    @property
    def events_per_second(self) -> float:
        """Dispatch throughput (events / wall second)."""
        wall = self.wall_seconds
        return self.events / wall if wall > 0 else 0.0

    @property
    def sim_wall_ratio(self) -> float:
        """Simulated seconds per wall second (>1 = faster than hardware)."""
        wall = self.wall_seconds
        if self._sim is not None:
            sim_dt = self._sim_elapsed + self._sim.now - self._t0_sim
        else:
            sim_dt = self._sim_elapsed
        return sim_dt / wall if wall > 0 else 0.0

    @property
    def heap_high_water(self) -> int:
        """Deepest the event heap got while attached."""
        if self._sim is not None:
            return max(self._heap_high_water, self._sim.heap_high_water)
        return self._heap_high_water

    def report(self) -> Dict[str, object]:
        """JSON-serialisable profile summary."""
        cats = {
            cat: {"events": n, "wall_s": w}
            for cat, (n, w) in sorted(
                self.categories.items(), key=lambda kv: -kv[1][1])
        }
        return {
            "events": self.events,
            "wall_s": self.wall_seconds,
            "events_per_s": self.events_per_second,
            "sim_wall_ratio": self.sim_wall_ratio,
            "heap_high_water": self.heap_high_water,
            "categories": cats,
        }

    def render(self, top: int = 12) -> str:
        """Human-readable profile table."""
        rep = self.report()
        lines = [
            f"events        : {rep['events']}",
            f"wall time     : {rep['wall_s']:.3f}s",
            f"events/sec    : {rep['events_per_s']:,.0f}",
            f"sim/wall ratio: {rep['sim_wall_ratio']:.2f}x",
            f"heap high-water: {rep['heap_high_water']} events",
        ]
        cats = list(rep["categories"].items())[:top]
        if cats:
            width = max(len(c) for c, _ in cats)
            lines.append("hottest callback categories (by wall time):")
            for cat, row in cats:
                lines.append(
                    f"  {cat:<{width}}  {row['events']:>9} ev  "
                    f"{row['wall_s'] * 1e3:>9.1f} ms"
                )
        return "\n".join(lines)


class ProgressReporter:
    """Progress callback for long sweeps, with rate and ETA.

    Instances are drop-in ``progress(done, total, label)`` callables for
    :func:`~repro.experiments.grids.run_grid`, the figure generators and
    the parallel sweep executor. Completion events from all worker
    processes funnel through the one parent-side instance, so ``done``
    aggregates naturally; cells served from the result cache (labels
    ending in ``[cached]``) are counted separately and excluded from the
    ETA estimate — a cache hit completes in microseconds and would
    otherwise make the remaining-time projection wildly optimistic.

    One reporter may also span **several consecutive batches**: the
    bifurcation sweep driver appends refinement cells mid-sweep and runs
    them as follow-up :func:`~repro.experiments.parallel.run_cells`
    calls against the same reporter. A new batch is detected when the
    incoming ``done`` counter rewinds (``done <= last done``); the
    finished batch is folded into cumulative offsets so the display and
    ETA keep counting up — ``[5/6]`` — instead of restarting at
    ``[1/1]`` for every refinement round.
    """

    CACHED_SUFFIX = " [cached]"
    #: Label suffix for cells that were deduplicated onto an identical
    #: config within the same submission (see
    #: :attr:`repro.experiments.parallel.SweepReport.aliases`). Like
    #: cache hits, they complete in microseconds and are excluded from
    #: the ETA's rate estimate.
    DEDUP_SUFFIX = " [dedup]"

    def __init__(self, stream: Optional[TextIO] = None, min_interval_s: float = 0.0):
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval_s = min_interval_s
        self._t0: Optional[float] = None
        self._last_print = 0.0
        self._done_offset = 0
        self._total_offset = 0
        self._last_raw_done = 0
        self._last_raw_total = 0
        #: Cells reported as served from a cache so far (all batches).
        self.cached = 0
        #: Cells reported as deduplicated within a submission (all batches).
        self.deduped = 0
        #: Total cells reported done so far (cached included, all batches).
        self.done = 0

    def __call__(self, done: int, total: int, label: str) -> None:
        now = time.perf_counter()
        if self._t0 is None:
            self._t0 = now
        if done <= self._last_raw_done:
            # The counter rewound: a new batch started on this reporter.
            self._done_offset += self._last_raw_done
            self._total_offset += self._last_raw_total
        self._last_raw_done = done
        self._last_raw_total = total
        done += self._done_offset
        total += self._total_offset
        self.done = done
        if label.endswith(self.CACHED_SUFFIX):
            self.cached += 1
        elif label.endswith(self.DEDUP_SUFFIX):
            self.deduped += 1
        elapsed = now - self._t0
        if done < total and now - self._last_print < self._min_interval_s:
            return
        self._last_print = now
        executed = done - self.cached - self.deduped
        if executed > 0 and elapsed > 0:
            rate = executed / elapsed
            eta = (total - done) / rate
            suffix = f" ({elapsed:.0f}s elapsed, ~{eta:.0f}s left)"
        else:
            suffix = ""
        if self.cached and done >= total:
            suffix += f" ({self.cached} cached)"
        print(f"  [{done:3d}/{total}] {label}{suffix}", file=self._stream)


class ProgressFanout:
    """Multiplex one ``(done, total, label)`` stream to many subscribers.

    A fanout is itself a progress callable, so anything that accepts a
    ``progress`` argument (:func:`~repro.experiments.parallel.run_cells`,
    the figure generators, the farm scheduler's per-job streams) can feed
    several consumers at once — a :class:`ProgressReporter` on stderr
    plus any number of watching farm clients, say.

    Subscribers are registered with :meth:`subscribe`, which returns a
    token for :meth:`unsubscribe`. A subscriber that raises is dropped
    (its first exception is remembered on ``dropped``): one dead watcher
    socket must never stall the sweep or the other subscribers.
    """

    def __init__(self):
        self._subs: Dict[int, Callable[[int, int, str], None]] = {}
        self._next_token = 0
        #: ``{token: exception}`` for subscribers dropped after raising.
        self.dropped: Dict[int, BaseException] = {}

    def subscribe(self, callback: Callable[[int, int, str], None]) -> int:
        """Register ``callback`` for future events; returns its token."""
        self._next_token += 1
        self._subs[self._next_token] = callback
        return self._next_token

    def unsubscribe(self, token: int) -> None:
        """Remove a subscriber; unknown/already-dropped tokens are a no-op."""
        self._subs.pop(token, None)

    def __len__(self) -> int:
        return len(self._subs)

    def __call__(self, done: int, total: int, label: str) -> None:
        for token, callback in list(self._subs.items()):
            try:
                callback(done, total, label)
            except Exception as exc:
                self._subs.pop(token, None)
                self.dropped[token] = exc
