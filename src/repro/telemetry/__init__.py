"""Unified observability layer.

One :class:`Telemetry` session bundles the four instruments every
performance investigation in this repo needs:

* a :class:`~repro.telemetry.registry.MetricsRegistry` the components
  (qdiscs, ports, hosts, the MapReduce engine) register into;
* per-flow TCP timelines and per-queue composition time-series collected
  off the :class:`~repro.sim.trace.Tracer` bus into bounded ring buffers
  (:mod:`repro.telemetry.recorders`);
* an event-loop profiler (:mod:`repro.telemetry.profiler`);
* run manifests (:mod:`repro.telemetry.manifest`) and JSONL/CSV exporters
  (:mod:`repro.telemetry.export`).

Usage with the experiment runner::

    from repro.experiments import run_cell, ExperimentConfig, QueueSetup
    from repro.telemetry import Telemetry
    from repro.units import us

    tel = Telemetry(profile=True, flow_timelines=True, queue_interval_s=2e-3)
    cell = run_cell(ExperimentConfig(
        queue=QueueSetup(kind="red", target_delay_s=us(500)),
    ).scaled(0.0625), telemetry=tel)
    print(tel.registry.snapshot()["gauges"]["queue.marks{queue=tor.p3}"])
    print(tel.profiler.render())

Everything is opt-in: a run without a session attached takes the same
code path it did before this layer existed, which is what keeps
telemetry-on and telemetry-off runs bit-identical (see
``tests/test_telemetry.py``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.telemetry.export import (
    PACKET_KINDS,
    TraceJsonlWriter,
    record_to_row,
    snapshot_to_row,
    write_csv,
    write_jsonl,
)
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    build_sweep_manifest,
    config_to_dict,
    git_describe,
    metrics_to_dict,
    write_manifest,
)
from repro.telemetry.profiler import LoopProfiler, ProgressFanout, ProgressReporter
from repro.telemetry.recorders import (
    FlowTimelineRecorder,
    QueueTimelineRecorder,
    RingBuffer,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
)

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "metric_key",
    "LoopProfiler",
    "ProgressFanout",
    "ProgressReporter",
    "FlowTimelineRecorder",
    "QueueTimelineRecorder",
    "RingBuffer",
    "TraceJsonlWriter",
    "PACKET_KINDS",
    "record_to_row",
    "snapshot_to_row",
    "write_jsonl",
    "write_csv",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "build_sweep_manifest",
    "write_manifest",
    "config_to_dict",
    "metrics_to_dict",
    "git_describe",
]


class Telemetry:
    """One run's observability session.

    Parameters
    ----------
    profile:
        Attach a :class:`LoopProfiler` to the kernel for the run.
    flow_timelines:
        Record per-flow ``tcp.*`` events into ring buffers.
    queue_interval_s:
        When set, sample every hot queue's depth/composition on this
        period (bounded per-queue ring buffers).
    registry, tracer:
        Bring-your-own instances (fresh ones are created by default).
        Subscribe any extra consumers (e.g. a :class:`TraceJsonlWriter`)
        to ``tracer`` *before* the run so the network layer sees them.
    ring_capacity:
        Ring-buffer size per flow / per queue.
    """

    def __init__(
        self,
        profile: bool = False,
        flow_timelines: bool = False,
        queue_interval_s: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        ring_capacity: int = 4096,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.profiler: Optional[LoopProfiler] = LoopProfiler() if profile else None
        self.flow_recorder: Optional[FlowTimelineRecorder] = None
        self.queue_recorder: Optional[QueueTimelineRecorder] = None
        self._flow_timelines = flow_timelines
        self._queue_interval_s = queue_interval_s
        self._ring_capacity = ring_capacity
        self.profile_report: Optional[dict] = None

    # -- runner integration ---------------------------------------------------

    def attach(self, sim: Simulator, spec, engine=None) -> "Telemetry":
        """Wire this session into one built experiment.

        ``spec`` is a :class:`~repro.net.topology.TopologySpec`; ``engine``
        an optional :class:`~repro.mapreduce.engine.MapReduceEngine`.
        Called by :func:`~repro.experiments.runner.run_cell` when a session
        is passed in, but usable directly for hand-built topologies.
        """
        if self.profiler is not None:
            self.profiler.attach(sim)
        if self._flow_timelines and self.flow_recorder is None:
            self.flow_recorder = FlowTimelineRecorder(
                self.tracer, capacity_per_flow=self._ring_capacity)
            # Retention gauges: a wrapped ring means the recorded series
            # is a suffix of the run, and the manifest should say so.
            self.flow_recorder.register_metrics(self.registry)
        if self._queue_interval_s is not None and self.queue_recorder is None:
            self.queue_recorder = QueueTimelineRecorder(
                sim, spec.hot_ports, self._queue_interval_s,
                capacity_per_queue=self._ring_capacity, tracer=self.tracer,
            )
            self.queue_recorder.register_metrics(self.registry)
        # Deliver events come from host delivery hooks; only pay for them
        # when some consumer subscribed to the kind.
        if self.tracer.wants("deliver"):
            for host in spec.network.hosts:
                host.add_delivery_hook(
                    lambda pkt, now, name=host.name, tr=self.tracer:
                        tr.emit(now, "deliver", name, pkt)
                )
        self.register_network(spec.network)
        if engine is not None:
            engine.register_metrics(self.registry)
        return self

    def finish(self, sim: Simulator) -> Optional[dict]:
        """Stop recorders, detach the profiler, return its report (if any)."""
        if self.queue_recorder is not None:
            self.queue_recorder.stop()
        if self.profiler is not None and sim.profiler is self.profiler:
            self.profile_report = self.profiler.finish()
        return self.profile_report

    # -- component registration -----------------------------------------------

    def register_network(self, network) -> None:
        """Register every switch queue, port, and host of ``network``."""
        for port in network.switch_ports():
            port.register_metrics(self.registry)
        for host in network.hosts:
            self.registry.gauge(
                "host.rx_packets",
                fn=lambda h=host: h.rx_packets,
                host=host.name,
            )
            if host.uplink is not None:
                host.uplink.register_metrics(self.registry)

    def snapshot(self) -> dict:
        """The registry's current JSON-safe snapshot."""
        return self.registry.snapshot()
