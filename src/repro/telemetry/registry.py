"""The metrics registry: one labeled namespace for every counter in the run.

Components across the stack (qdiscs, ports, hosts, TCP endpoints, the
MapReduce engine) keep their counters where the hot path lives — a
``QueueStats`` block, a ``SenderStats`` dataclass, plain attributes — and
*register* them here so one snapshot call sees everything under uniform
``name{label=value}`` keys. Three instrument types cover the repo's needs:

* :class:`Counter` — a monotonically increasing count the owner increments;
* :class:`Gauge` — a point-in-time value, either pushed (``set``) or pulled
  from a zero-argument callable at snapshot time (the idiom used to bind
  pre-existing counters into the registry without touching their hot path);
* :class:`Histogram` — log-spaced bins between ``lo`` and ``hi``, the same
  constant-memory technique :class:`~repro.stats.collect.LatencyCollector`
  uses for percentiles.

``MetricsRegistry.snapshot()`` returns a plain JSON-serialisable dict; it
is what run manifests embed and what ``repro cell --json`` prints.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "metric_key"]


def metric_key(name: str, labels: Dict[str, str]) -> str:
    """Canonical ``name{k=v,...}`` key with labels sorted for stability."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("key", "_value")

    def __init__(self, key: str):
        self.key = key
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0) to the count."""
        if n < 0:
            raise ValueError(f"counter {self.key}: cannot decrease by {n}")
        self._value += n

    @property
    def value(self) -> int:
        """Current count."""
        return self._value


class Gauge:
    """A point-in-time value, pushed via :meth:`set` or pulled via ``fn``."""

    __slots__ = ("key", "_value", "_fn")

    def __init__(self, key: str, fn: Optional[Callable[[], float]] = None):
        self.key = key
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        """Record the current value (push mode only)."""
        if self._fn is not None:
            raise ValueError(f"gauge {self.key} is pull-based; cannot set()")
        self._value = value

    @property
    def value(self) -> float:
        """Current value (invokes the pull callable if one was bound)."""
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Log-spaced-bin histogram with constant memory.

    Observations below ``lo`` land in an underflow bin, above ``hi`` in an
    overflow bin; percentile error is bounded by the bin ratio.
    """

    __slots__ = ("key", "lo", "hi", "n_bins", "count", "total", "max_value",
                 "_bins", "_log_lo", "_log_ratio")

    def __init__(self, key: str, lo: float = 1e-7, hi: float = 10.0,
                 n_bins: int = 200):
        if lo <= 0 or hi <= lo or n_bins < 1:
            raise ValueError(f"histogram {key}: need 0 < lo < hi and n_bins >= 1")
        self.key = key
        self.lo = lo
        self.hi = hi
        self.n_bins = n_bins
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0
        self._bins = [0] * (n_bins + 2)
        self._log_lo = math.log(lo)
        self._log_ratio = (math.log(hi) - self._log_lo) / n_bins

    def observe(self, v: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += v
        if v > self.max_value:
            self.max_value = v
        if v <= self.lo:
            idx = 0
        elif v >= self.hi:
            idx = self.n_bins + 1
        else:
            idx = 1 + int((math.log(v) - self._log_lo) / self._log_ratio)
        self._bins[idx] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate percentile (q in [0, 100]) from the bins."""
        if self.count == 0:
            return 0.0
        target = self.count * q / 100.0
        cum = 0
        for idx, n in enumerate(self._bins):
            cum += n
            if cum >= target:
                if idx <= 0:
                    return self.lo
                if idx >= self.n_bins + 1:
                    return self.max_value
                lo_edge = math.exp(self._log_lo + (idx - 1) * self._log_ratio)
                hi_edge = math.exp(self._log_lo + idx * self._log_ratio)
                return math.sqrt(lo_edge * hi_edge)
        return self.max_value  # pragma: no cover - cum always reaches target

    def to_dict(self) -> Dict[str, float]:
        """Summary stats (count/mean/p50/p99/max) for snapshots."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.max_value,
        }


class MetricsRegistry:
    """Get-or-create instrument store keyed by ``name`` + labels.

    Instruments of one kind requested twice with the same name and labels
    return the same object, so independent components can share a counter.
    Requesting the same key as a different instrument type raises.
    """

    def __init__(self):
        self._metrics: Dict[str, Any] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    def __len__(self) -> int:
        return len(self._metrics)

    def _get_or_create(self, cls, key: str, factory) -> Any:
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {key!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        metric = factory()
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create a counter."""
        key = metric_key(name, labels)
        return self._get_or_create(Counter, key, lambda: Counter(key))

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              **labels: str) -> Gauge:
        """Get or create a gauge; ``fn`` makes it pull-based."""
        key = metric_key(name, labels)
        return self._get_or_create(Gauge, key, lambda: Gauge(key, fn))

    def histogram(self, name: str, lo: float = 1e-7, hi: float = 10.0,
                  n_bins: int = 200, **labels: str) -> Histogram:
        """Get or create a histogram."""
        key = metric_key(name, labels)
        return self._get_or_create(
            Histogram, key, lambda: Histogram(key, lo, hi, n_bins))

    def add_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run at the start of every :meth:`snapshot`.

        Components that cannot expose pull gauges (e.g. values that need a
        ``now`` argument) use a collector to push fresh values instead.
        """
        self._collectors.append(fn)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable view of every registered instrument."""
        for fn in self._collectors:
            fn(self)
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for key in sorted(self._metrics):
            m = self._metrics[key]
            if isinstance(m, Counter):
                out["counters"][key] = m.value
            elif isinstance(m, Gauge):
                out["gauges"][key] = m.value
            else:
                out["histograms"][key] = m.to_dict()
        return out

    def find(self, prefix: str) -> List[Tuple[str, Any]]:
        """All (key, instrument) pairs whose key starts with ``prefix``."""
        return [(k, v) for k, v in sorted(self._metrics.items())
                if k.startswith(prefix)]
