"""Run manifests: one JSON artifact per experiment run.

A manifest bundles everything needed to reproduce and audit a run — the
full :class:`~repro.experiments.config.ExperimentConfig` (enums rendered
as their string values), the seed, the package version, ``git describe``
of the working tree (when available), wall-clock timings, and the final
metrics snapshot. ``repro cell --json`` prints one; sweeps can write one
per grid. The schema:

.. code-block:: json

    {
      "schema": "repro.run_manifest/v1",
      "kind": "cell",
      "label": "tcp-ecn/red-default@500us/shallow",
      "config": {"queue": {"kind": "red", ...}, "variant": "tcp-ecn", ...},
      "seed": 42,
      "version": "1.0.0",
      "git": "b80b213",
      "timings": {"wall_s": 1.93, "sim_s": 4.71, "events": 1203456,
                   "events_per_s": 623000.0, "sim_wall_ratio": 2.44},
      "metrics": {"runtime": 4.71, "queue": {...}, "extra": {...}},
      "telemetry": {"counters": {...}, "gauges": {...}, "histograms": {...}}
    }

``metrics`` is always present; ``telemetry`` and ``profile`` appear only
when a registry / profiler was active for the run.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
import subprocess
from typing import Any, Dict, Optional

__all__ = [
    "MANIFEST_SCHEMA",
    "config_to_dict",
    "metrics_to_dict",
    "git_describe",
    "build_manifest",
    "build_sweep_manifest",
    "write_manifest",
]

MANIFEST_SCHEMA = "repro.run_manifest/v1"

_GIT_CACHE: Dict[str, Optional[str]] = {}


def _json_safe(value: Any) -> Any:
    """Recursively convert dataclasses/enums into JSON-serialisable values."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _json_safe(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if not f.name.startswith("_")
        }
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def config_to_dict(config) -> Dict[str, Any]:
    """ExperimentConfig (or any dataclass) as a JSON-safe dict."""
    return _json_safe(config)


def metrics_to_dict(metrics) -> Dict[str, Any]:
    """RunMetrics as a JSON-safe dict, including derived throughputs."""
    out = _json_safe(metrics)
    out["throughput_per_node_bps"] = metrics.throughput_per_node_bps
    out["cluster_throughput_bps"] = metrics.cluster_throughput_bps
    return out


def git_describe(path: Optional[str] = None) -> Optional[str]:
    """``git describe --always --dirty`` of the tree containing ``path``.

    Returns None when git or the repository is unavailable (e.g. an
    installed wheel); results are cached per directory.
    """
    if path is None:
        path = os.path.dirname(os.path.abspath(__file__))
    if path in _GIT_CACHE:
        return _GIT_CACHE[path]
    try:
        out = subprocess.run(
            ["git", "-C", path, "describe", "--always", "--dirty", "--tags"],
            capture_output=True, text=True, timeout=5,
        )
        result = out.stdout.strip() if out.returncode == 0 else None
    except (OSError, subprocess.SubprocessError):
        result = None
    _GIT_CACHE[path] = result
    return result


def build_manifest(
    config,
    metrics,
    wall_s: float,
    events: Optional[int] = None,
    telemetry_snapshot: Optional[Dict[str, Any]] = None,
    profile: Optional[Dict[str, Any]] = None,
    kind: str = "cell",
) -> Dict[str, Any]:
    """Assemble the manifest dict for one finished run."""
    from repro import __version__

    sim_s = float(metrics.runtime)
    timings: Dict[str, Any] = {"wall_s": wall_s, "sim_s": sim_s}
    if events is not None:
        timings["events"] = events
        timings["events_per_s"] = events / wall_s if wall_s > 0 else 0.0
    timings["sim_wall_ratio"] = sim_s / wall_s if wall_s > 0 else 0.0

    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "kind": kind,
        "label": config.label(),
        "config": config_to_dict(config),
        "seed": config.seed,
        "version": __version__,
        "git": git_describe(),
        "timings": timings,
        "metrics": metrics_to_dict(metrics),
    }
    if telemetry_snapshot is not None:
        manifest["telemetry"] = telemetry_snapshot
    if profile is not None:
        manifest["profile"] = profile
    return manifest


def build_sweep_manifest(
    cell_manifests: Dict[str, Optional[Dict[str, Any]]],
    **fields: Any,
) -> Dict[str, Any]:
    """Merge per-cell run manifests into one sweep manifest.

    ``cell_manifests`` maps cell label to the per-cell (per-worker, when
    the sweep ran in parallel) manifest; ``fields`` are sweep-level
    attributes recorded verbatim (``deep``, ``scale``, ``seed``,
    ``jobs``, executed/cached partitions, wall time, …).
    """
    from repro import __version__

    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "kind": "sweep",
        **fields,
        "version": __version__,
        "git": git_describe(),
        "cells": dict(cell_manifests),
    }
    return manifest


def write_manifest(manifest: Dict[str, Any], path: str) -> str:
    """Write a manifest as pretty-printed JSON; returns the path."""
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path
