"""Machine-readable exports: JSONL trace streams and CSV tables.

The JSONL trace schema (one JSON object per line) is deliberately flat so
``jq``/pandas can consume it directly. Every row carries:

``t``
    Simulation time of the event (seconds, float).
``kind``
    Event kind as emitted on the :class:`~repro.sim.trace.Tracer` bus:
    ``enqueue``, ``drop``, ``mark``, ``tx``, ``link_loss``, ``deliver``
    for packet events; ``queue.sample`` for queue composition samples;
    ``tcp.cwnd``, ``tcp.retx``, ``tcp.rto``, ``tcp.ece`` for per-flow
    transport events.
``where``
    Emitting component (``"tor.p3"``, ``"h0"``, a flow key string…).

Packet events additionally carry ``src, sport, dst, dport, seq, ack,
payload, size, flags, ecn`` (flags and ecn as human-readable strings);
``queue.sample`` rows carry the :class:`~repro.core.monitor.QueueSnapshot`
fields; ``tcp.*`` rows carry whatever dict the endpoint attached (cwnd,
ssthresh, rto, state…). Unknown payload types fall back to ``repr``.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO

from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "record_to_row",
    "snapshot_to_row",
    "TraceJsonlWriter",
    "write_jsonl",
    "write_csv",
]

#: Every packet-event kind the network layer emits.
PACKET_KINDS = ("enqueue", "drop", "mark", "tx", "link_loss", "deliver")


def _packet_fields(pkt) -> Dict[str, Any]:
    from repro.net.packet import ECN_NAMES, flag_names

    return {
        "src": pkt.src, "sport": pkt.sport,
        "dst": pkt.dst, "dport": pkt.dport,
        "seq": pkt.seq, "ack": pkt.ack,
        "payload": pkt.payload, "size": pkt.size,
        "flags": flag_names(pkt.flags), "ecn": ECN_NAMES[pkt.ecn],
    }


def snapshot_to_row(snap) -> Dict[str, Any]:
    """Flatten a :class:`~repro.core.monitor.QueueSnapshot` into a dict."""
    return {
        "t": snap.time,
        "qlen_packets": snap.qlen_packets,
        "qlen_bytes": snap.qlen_bytes,
        "limit_packets": snap.limit_packets,
        "ect_data": snap.ect_data,
        "nonect_data": snap.nonect_data,
        "pure_acks": snap.pure_acks,
        "syns": snap.syns,
        "ce_marked": snap.ce_marked,
        "occupancy": snap.occupancy,
    }


def record_to_row(rec: TraceRecord) -> Dict[str, Any]:
    """Convert one trace record into a flat JSON-serialisable row."""
    row: Dict[str, Any] = {"t": rec.time, "kind": rec.kind, "where": rec.where}
    data = rec.data
    if data is None:
        return row
    if isinstance(data, dict):
        row.update(data)
        return row
    # QueueSnapshot rows keep their own sample time under "t".
    if hasattr(data, "qlen_packets") and hasattr(data, "ect_data"):
        snap_row = snapshot_to_row(data)
        snap_row.pop("t", None)
        row.update(snap_row)
        return row
    if hasattr(data, "sport") and hasattr(data, "ecn"):
        row.update(_packet_fields(data))
        return row
    row["data"] = repr(data)
    return row


class TraceJsonlWriter:
    """Subscribe to tracer kinds and stream JSONL rows to a text sink.

    Parameters
    ----------
    tracer:
        The bus the network emits into (pass the same instance to the
        topology builder / telemetry session).
    out:
        Destination text stream; defaults to an in-memory buffer
        readable via :meth:`getvalue`.
    kinds:
        Which event kinds to record (default: the packet kinds).
    """

    def __init__(
        self,
        tracer: Tracer,
        out: Optional[TextIO] = None,
        kinds: Optional[Sequence[str]] = None,
    ):
        self._tracer = tracer
        self._out = out if out is not None else io.StringIO()
        self._owns_buffer = out is None
        self.kinds = tuple(kinds) if kinds else PACKET_KINDS
        self.rows_written = 0
        for kind in self.kinds:
            tracer.subscribe(kind, self._on_record)

    def _on_record(self, rec: TraceRecord) -> None:
        json.dump(record_to_row(rec), self._out, separators=(",", ":"))
        self._out.write("\n")
        self.rows_written += 1

    def detach(self) -> None:
        """Unsubscribe from every kind (idempotent)."""
        for kind in self.kinds:
            try:
                self._tracer.unsubscribe(kind, self._on_record)
            except ValueError:
                pass

    def getvalue(self) -> str:
        """The accumulated JSONL text (in-memory buffer mode only)."""
        if not self._owns_buffer:
            raise ValueError("trace was written to an external stream")
        return self._out.getvalue()


def write_jsonl(rows: Iterable[Dict[str, Any]], out: TextIO) -> int:
    """Write dict rows as JSON lines; returns the number written."""
    n = 0
    for row in rows:
        json.dump(row, out, separators=(",", ":"))
        out.write("\n")
        n += 1
    return n


def write_csv(rows: Sequence[Dict[str, Any]], out: TextIO) -> int:
    """Write dict rows as CSV with the union of keys as header.

    Values containing commas, quotes or newlines are quoted per RFC 4180
    by :class:`csv.DictWriter`; rows missing a key emit an empty field
    (not the string ``"None"``), and lines end in ``\\n`` regardless of
    platform so exports diff cleanly against committed fixtures.
    """
    import csv

    rows = list(rows)
    if not rows:
        return 0
    fields: List[str] = []
    for row in rows:
        for k in row:
            if k not in fields:
                fields.append(k)
    writer = csv.DictWriter(out, fieldnames=fields,
                            restval="", lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return len(rows)
