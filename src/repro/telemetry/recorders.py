"""Bounded time-series recorders fed by the :class:`~repro.sim.trace.Tracer` bus.

Two recorders give the packet-granularity visibility the paper's analysis
needed (and "Disentangling Flaws in Linux DCTCP" argues is required to see
DCTCP pathologies at all):

* :class:`FlowTimelineRecorder` — per-flow TCP timelines: cwnd / ssthresh
  samples, RTO firings, retransmits, ECE echoes, as emitted by
  :class:`~repro.tcp.endpoint.TcpSender` on the ``tcp.*`` trace kinds.
* :class:`QueueTimelineRecorder` — per-queue depth/composition samples,
  reusing :class:`~repro.core.monitor.QueueMonitor` (one shared snapshot
  path) with a bounded buffer per queue.

Both store rows in :class:`RingBuffer` instances so a long run keeps the
most recent window instead of growing without bound, and both export
through :mod:`repro.telemetry.export` (JSONL or CSV).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO

from repro.sim.trace import TraceRecord, Tracer
from repro.telemetry.export import record_to_row, write_csv, write_jsonl

__all__ = ["RingBuffer", "FlowTimelineRecorder", "QueueTimelineRecorder"]

#: Trace kinds a TcpSender emits for its timeline.
TCP_TIMELINE_KINDS = ("tcp.cwnd", "tcp.retx", "tcp.rto", "tcp.ece")


class RingBuffer:
    """A bounded append-only row store (drops the oldest when full)."""

    __slots__ = ("_rows", "dropped")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"ring buffer capacity must be positive, got {capacity}")
        self._rows: deque = deque(maxlen=capacity)
        self.dropped = 0

    def append(self, row: Any) -> None:
        """Append one row, evicting the oldest if at capacity."""
        if len(self._rows) == self._rows.maxlen:
            self.dropped += 1
        self._rows.append(row)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    @property
    def capacity(self) -> int:
        """Maximum retained rows."""
        return self._rows.maxlen


class FlowTimelineRecorder:
    """Collect per-flow TCP events from the tracer into ring buffers.

    Rows are keyed by the emitting flow (the record's ``where`` string);
    each flow gets its own bounded buffer so one pathological flow cannot
    evict everyone else's history.

    Parameters
    ----------
    tracer:
        The bus the TCP endpoints emit into.
    capacity_per_flow:
        Ring size per flow (default 4096 rows).
    kinds:
        Which ``tcp.*`` kinds to record (default: all of them).
    """

    def __init__(
        self,
        tracer: Tracer,
        capacity_per_flow: int = 4096,
        kinds: Sequence[str] = TCP_TIMELINE_KINDS,
    ):
        self._tracer = tracer
        self._capacity = capacity_per_flow
        self.kinds = tuple(kinds)
        self.flows: Dict[str, RingBuffer] = {}
        self.events_seen = 0
        for kind in self.kinds:
            tracer.subscribe(kind, self._on_record)

    def _on_record(self, rec: TraceRecord) -> None:
        buf = self.flows.get(rec.where)
        if buf is None:
            buf = self.flows[rec.where] = RingBuffer(self._capacity)
        self.events_seen += 1
        buf.append(record_to_row(rec))

    def detach(self) -> None:
        """Stop recording (idempotent)."""
        for kind in self.kinds:
            try:
                self._tracer.unsubscribe(kind, self._on_record)
            except ValueError:
                pass

    # -- retention accounting -------------------------------------------------

    def dropped_total(self) -> int:
        """Rows evicted across all flows because a ring wrapped.

        Non-zero means :meth:`rows` is a suffix of the run's timeline,
        not the whole of it — surfaced as a registry gauge so truncated
        series can't masquerade as complete ones in manifests.
        """
        return sum(buf.dropped for buf in self.flows.values())

    def wrapped_flows(self) -> int:
        """How many flows lost at least one row to ring wrap-around."""
        return sum(1 for buf in self.flows.values() if buf.dropped)

    def register_metrics(self, registry) -> None:
        """Expose retention counters as pull gauges in ``registry``."""
        registry.gauge("telemetry.flow_events_seen",
                       fn=lambda: float(self.events_seen))
        registry.gauge("telemetry.flow_rows_dropped",
                       fn=lambda: float(self.dropped_total()))
        registry.gauge("telemetry.flow_rings_wrapped",
                       fn=lambda: float(self.wrapped_flows()))

    # -- export --------------------------------------------------------------

    def rows(self, flow: Optional[str] = None) -> List[Dict[str, Any]]:
        """All retained rows (optionally for one flow), time-ordered."""
        if flow is not None:
            if flow not in self.flows:
                raise ValueError(f"no timeline recorded for flow {flow!r}")
            return list(self.flows[flow])
        out: List[Dict[str, Any]] = []
        for buf in self.flows.values():
            out.extend(buf)
        out.sort(key=lambda r: r["t"])
        return out

    def export_jsonl(self, out: TextIO, flow: Optional[str] = None) -> int:
        """Write retained rows as JSONL; returns row count."""
        return write_jsonl(self.rows(flow), out)

    def export_csv(self, out: TextIO, flow: Optional[str] = None) -> int:
        """Write retained rows as CSV; returns row count."""
        return write_csv(self.rows(flow), out)


class QueueTimelineRecorder:
    """Periodic depth/composition sampling of a set of queues.

    A thin orchestration layer over :class:`~repro.core.monitor.QueueMonitor`
    — the monitor owns the (single) snapshot path; this recorder bounds its
    retention and funnels every queue's rows through the shared exporters.
    """

    def __init__(self, sim, ports: Iterable, interval_s: float,
                 capacity_per_queue: int = 4096,
                 tracer: Optional[Tracer] = None):
        from repro.core.monitor import QueueMonitor

        self.monitors = []
        for port in ports:
            mon = QueueMonitor(
                sim, port.qdisc, interval_s,
                max_samples=capacity_per_queue, tracer=tracer,
            )
            mon.start()
            self.monitors.append(mon)

    def stop(self) -> None:
        """Stop every monitor's sampling timer."""
        for mon in self.monitors:
            mon.stop()

    # -- retention accounting -------------------------------------------------

    def dropped_total(self) -> int:
        """Samples evicted across all queues because a ring wrapped."""
        return sum(mon.dropped for mon in self.monitors)

    def wrapped_queues(self) -> int:
        """How many queues lost at least one sample to ring wrap-around."""
        return sum(1 for mon in self.monitors if mon.dropped)

    def register_metrics(self, registry) -> None:
        """Expose per-queue monitor gauges plus aggregate retention
        counters in ``registry``."""
        for mon in self.monitors:
            mon.register_metrics(registry)
        registry.gauge("telemetry.queue_samples_dropped",
                       fn=lambda: float(self.dropped_total()))
        registry.gauge("telemetry.queue_rings_wrapped",
                       fn=lambda: float(self.wrapped_queues()))

    def rows(self) -> List[Dict[str, Any]]:
        """All retained samples across queues, time-ordered, labeled."""
        out: List[Dict[str, Any]] = []
        for mon in self.monitors:
            out.extend(mon.rows())
        out.sort(key=lambda r: r["t"])
        return out

    def snapshots(self) -> list:
        """All retained :class:`QueueSnapshot` rows (runner compatibility)."""
        return [s for mon in self.monitors for s in mon.snapshots]

    def export_jsonl(self, out: TextIO) -> int:
        """Write every queue's samples as JSONL; returns row count."""
        return write_jsonl(self.rows(), out)

    def export_csv(self, out: TextIO) -> int:
        """Write every queue's samples as CSV; returns row count."""
        return write_csv(self.rows(), out)
