"""Invariant checkers fed by the Tracer bus.

The paper's argument is an *accounting* argument — which ACK/SYN packets an
AQM drops versus marks — so a single conservation or stale-state bug
silently corrupts every figure. This module provides an always-available,
off-by-default validation layer: each :class:`Checker` subscribes to the
existing trace bus (and host delivery hooks), accumulates
:class:`InvariantViolation` records, and performs a final ground-truth
sweep at :meth:`Checker.finish`.

Checkers **only observe**: they never schedule events, never draw from any
RNG stream and never mutate packets or queues. Arming a
:class:`ValidationSuite` therefore cannot perturb a run — armed and
unarmed runs are bit-identical (a property the test-suite asserts).

The four checkers:

* :class:`ConservationChecker` — a packet ledger: every packet that enters
  the fabric is delivered, dropped, or physically in flight exactly once
  at sim end. Each sighting also re-derives the packet's classification
  attributes from its raw header fields, which catches
  :class:`~repro.net.packet.PacketPool` reuse leaking stale ECN/flag
  state.
* :class:`QueueAccountingChecker` — per-queue counter equations
  (occupancy = arrivals − drops − departures, protected ≤ arrivals,
  marks ≤ ECT arrivals, byte totals) checked on every queue event and
  once exhaustively at the end.
* :class:`TcpChecker` — sequence-space invariants per flow over the
  ``tcp.cwnd`` stream: the cumulative ACK point never regresses,
  ``flight == snd_nxt − snd_una``, Karn's suppression window is
  monotone, RTO stays within configured bounds.
* :class:`EngineChecker` — samples
  :meth:`~repro.sim.engine.Simulator.check_invariants` between events
  (heap property, truthful cancelled-entry counts, no events in the
  past) and verifies trace timestamps agree with the simulation clock.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.errors import ValidationError
from repro.net.packet import (
    ECN_CE,
    ECN_NOT_ECT,
    FLAG_ACK,
    FLAG_CWR,
    FLAG_ECE,
    FLAG_FIN,
    FLAG_SYN,
    Packet,
)

__all__ = [
    "InvariantViolation",
    "Checker",
    "ConservationChecker",
    "QueueAccountingChecker",
    "TcpChecker",
    "EngineChecker",
    "ValidationSuite",
    "CHECKER_NAMES",
    "checkers_from_names",
]


class InvariantViolation(NamedTuple):
    """One invariant breach observed during a run."""

    time: float      #: simulation time of the observation
    checker: str     #: which checker flagged it
    where: str       #: component name (queue/port/flow) or ``"-"``
    message: str     #: human-readable description

    def __str__(self) -> str:
        return f"t={self.time:.6f} [{self.checker}] {self.where}: {self.message}"


def _iter_ports(network) -> Iterable:
    """Every egress port in the network: switch ports plus host uplinks."""
    for sw in network.switches:
        yield from sw.ports
    for host in network.hosts:
        if host.uplink is not None:
            yield host.uplink


class Checker:
    """Base class: violation list with a bounded memory footprint.

    Pathological runs can breach an invariant once per packet; retaining
    every instance would turn a diagnostic layer into a memory leak, so
    each checker keeps at most :attr:`max_violations` records and counts
    the overflow in :attr:`suppressed`.
    """

    name = "checker"
    max_violations = 200

    def __init__(self) -> None:
        self.violations: List[InvariantViolation] = []
        self.suppressed = 0

    def _flag(self, time: float, where: str, message: str) -> None:
        if len(self.violations) < self.max_violations:
            self.violations.append(
                InvariantViolation(time, self.name, where, message))
        else:
            self.suppressed += 1

    # -- lifecycle ----------------------------------------------------------

    def attach(self, sim, network, tracer) -> None:
        """Subscribe to the trace bus. Must run before the first event."""
        raise NotImplementedError

    def finish(self, now: float) -> None:
        """End-of-run ground-truth sweep (default: nothing)."""

    def stats(self) -> Dict[str, int]:
        """Checker-specific summary counters for the run manifest."""
        return {}


# -- packet conservation ------------------------------------------------------

# Ledger states. A packet id is absent until first sighted on the bus.
_QUEUED = "queued"        # sitting in some qdisc (or being serialized)
_INFLIGHT = "inflight"    # transmitted, propagating on a wire
_DELIVERED = "delivered"  # handed to a destination host (terminal)
_DROPPED = "dropped"      # rejected/early-dropped by a queue (terminal)
_LOST = "lost"            # lost to a link failure mid-flight (terminal)

_TERMINAL = (_DELIVERED, _DROPPED, _LOST)


def _classification_errors(pkt: Packet) -> List[str]:
    """Re-derive the cached classification attrs from the raw header.

    The cached attributes are computed once at construction; a pooled
    packet whose reset path missed a field will disagree with its own
    header here.
    """
    flags = pkt.flags
    ecn = pkt.ecn
    payload = pkt.payload
    expected = (
        ("is_ect", ecn != ECN_NOT_ECT),
        ("is_ce", ecn == ECN_CE),
        ("has_ece", flags & FLAG_ECE != 0),
        ("has_cwr", flags & FLAG_CWR != 0),
        ("is_syn", flags & FLAG_SYN != 0),
        ("is_fin", flags & FLAG_FIN != 0),
        ("is_data", payload > 0),
        ("is_pure_ack",
         flags & FLAG_ACK != 0 and payload == 0
         and flags & (FLAG_SYN | FLAG_FIN) == 0),
    )
    errs = []
    for attr, want in expected:
        if getattr(pkt, attr) != want:
            errs.append(
                f"stale classification: {attr}={getattr(pkt, attr)} but header "
                f"(flags={flags:#04x} ecn={ecn} payload={payload}) implies {want}"
            )
    return errs


class ConservationChecker(Checker):
    """Packet-conservation ledger over the trace bus.

    Tracks every packet id through a small state machine driven by
    ``enqueue``/``drop``/``tx``/``link_loss`` events and host delivery
    hooks, then sweeps the physical network at the end of the run: every
    packet must be delivered, dropped, lost, or still physically present
    (in a queue, a serializer slot, or on a wire) **exactly once**.
    Catches double delivery, use-after-drop, vanished packets, and — via
    the per-sighting classification recompute — stale state on recycled
    :class:`~repro.net.packet.PacketPool` instances.
    """

    name = "conservation"

    def __init__(self) -> None:
        super().__init__()
        self._state: Dict[int, str] = {}
        self._loc: Dict[int, str] = {}
        self.created = 0
        self.delivered = 0
        self.dropped = 0
        self.lost = 0
        self._network = None

    def attach(self, sim, network, tracer) -> None:
        self._network = network
        tracer.subscribe("enqueue", self._on_enqueue)
        tracer.subscribe("drop", self._on_drop)
        tracer.subscribe("tx", self._on_tx)
        tracer.subscribe("link_loss", self._on_link_loss)
        tracer.subscribe("mark", self._on_mark)
        for host in network.hosts:
            host.add_delivery_hook(self._make_delivery_hook(host.name))

    # -- transitions --------------------------------------------------------

    def _sight(self, pkt: Packet, time: float, where: str) -> None:
        errs = _classification_errors(pkt)
        for e in errs:
            self._flag(time, where, f"pkt #{pkt.pkt_id}: {e}")

    def _on_enqueue(self, rec) -> None:
        pkt = rec.data
        pid = pkt.pkt_id
        self._sight(pkt, rec.time, rec.where)
        st = self._state.get(pid)
        if st is None:
            self.created += 1
        elif st == _QUEUED:
            self._flag(rec.time, rec.where,
                       f"pkt #{pid} enqueued while already queued at "
                       f"{self._loc.get(pid)} (duplicate presence)")
        elif st in _TERMINAL:
            self._flag(rec.time, rec.where,
                       f"pkt #{pid} enqueued after terminal state {st!r} "
                       f"at {self._loc.get(pid)}")
        self._state[pid] = _QUEUED
        self._loc[pid] = rec.where

    def _on_drop(self, rec) -> None:
        pkt = rec.data
        pid = pkt.pkt_id
        self._sight(pkt, rec.time, rec.where)
        st = self._state.get(pid)
        if st is None:
            # First sighting: rejected at its very first queue.
            self.created += 1
        elif st in _TERMINAL:
            self._flag(rec.time, rec.where,
                       f"pkt #{pid} dropped after terminal state {st!r} "
                       f"at {self._loc.get(pid)}")
        # _QUEUED is legal here: CoDel drops queued packets at dequeue
        # time; _INFLIGHT is legal: rejected at the next hop's queue.
        self._state[pid] = _DROPPED
        self._loc[pid] = rec.where
        self.dropped += 1

    def _on_tx(self, rec) -> None:
        pkt = rec.data
        pid = pkt.pkt_id
        st = self._state.get(pid)
        if st != _QUEUED:
            self._flag(rec.time, rec.where,
                       f"pkt #{pid} transmitted from state {st!r} "
                       f"(expected a queued packet)")
        self._state[pid] = _INFLIGHT
        self._loc[pid] = rec.where

    def _on_link_loss(self, rec) -> None:
        pkt = rec.data
        pid = pkt.pkt_id
        st = self._state.get(pid)
        if st != _QUEUED:
            self._flag(rec.time, rec.where,
                       f"pkt #{pid} lost on a failed link from state {st!r}")
        self._state[pid] = _LOST
        self._loc[pid] = rec.where
        self.lost += 1

    def _on_mark(self, rec) -> None:
        pkt = rec.data
        if not (pkt.is_ce and pkt.is_ect):
            self._flag(rec.time, rec.where,
                       f"pkt #{pkt.pkt_id} CE-marked but carries "
                       f"ecn={pkt.ecn} (is_ce={pkt.is_ce}, is_ect={pkt.is_ect})")

    def _make_delivery_hook(self, host_name: str):
        def hook(pkt: Packet, now: float) -> None:
            pid = pkt.pkt_id
            st = self._state.get(pid)
            if st == _DELIVERED:
                self._flag(now, host_name, f"pkt #{pid} delivered twice")
            elif st != _INFLIGHT:
                self._flag(now, host_name,
                           f"pkt #{pid} delivered from state {st!r} "
                           f"(expected in-flight)")
            self._state[pid] = _DELIVERED
            self._loc[pid] = host_name
            self.delivered += 1
        return hook

    # -- end-of-run sweep ---------------------------------------------------

    def finish(self, now: float) -> None:
        network = self._network
        if network is None:
            return
        # Where every non-terminal packet must physically be.
        physical: Dict[int, Tuple[str, str]] = {}  # pid -> (state, place)
        for port in _iter_ports(network):
            for pkt, state, place in self._physical_packets(port):
                pid = pkt.pkt_id
                prev = physical.get(pid)
                if prev is not None:
                    self._flag(now, port.name,
                               f"pkt #{pid} physically present twice: "
                               f"{prev[1]} and {place} (aliased instance?)")
                physical[pid] = (state, place)

        for pid, (state, place) in physical.items():
            ledger = self._state.get(pid)
            if ledger is None:
                self._flag(now, place,
                           f"pkt #{pid} physically present but never "
                           f"sighted on the trace bus")
            elif ledger != state:
                self._flag(now, place,
                           f"pkt #{pid} ledger says {ledger!r} but it is "
                           f"physically {state} at {place}")

        in_flight = 0
        for pid, st in self._state.items():
            if st in _TERMINAL:
                continue
            in_flight += 1
            if pid not in physical:
                self._flag(now, self._loc.get(pid, "-"),
                           f"pkt #{pid} vanished: ledger state {st!r} but "
                           f"not found in any queue, serializer or wire")

        total = self.delivered + self.dropped + self.lost + in_flight
        if total != self.created:
            self._flag(now, "-",
                       f"conservation broken: created={self.created} but "
                       f"delivered={self.delivered} + dropped={self.dropped} "
                       f"+ lost={self.lost} + in_flight={in_flight} = {total}")

    @staticmethod
    def _physical_packets(port):
        for pkt in port.qdisc.packets():
            yield pkt, _QUEUED, f"queue {port.name}"
        pending = port._pending_tx
        if pending is not None:
            # Being serialized: the ledger still counts it as queued
            # (no event separates dequeue from tx-complete).
            yield pending, _QUEUED, f"serializer {port.name}"
        for pkt in port._wire:
            yield pkt, _INFLIGHT, f"wire {port.name}"

    def stats(self) -> Dict[str, int]:
        in_flight = sum(1 for s in self._state.values() if s not in _TERMINAL)
        return {
            "created": self.created,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "lost": self.lost,
            "in_flight_at_end": in_flight,
        }


# -- queue accounting ---------------------------------------------------------

class QueueAccountingChecker(Checker):
    """Counter-equation checks on every queue of the network.

    Per queue event (cheap, O(1)): instantaneous occupancy must equal
    ``arrivals − drops_tail − drops_early − departures``, stay within the
    physical limit, and the per-class counters must be mutually
    consistent (``protected ≤ arrivals``, ``marks ≤ ect_arrivals``, class
    drops ≤ class arrivals). RED's ``avg`` must stay finite and
    non-negative. At :meth:`finish`, an exhaustive sweep additionally
    re-sums queued bytes against ``qlen_bytes`` for every queue.
    """

    name = "queues"

    def __init__(self) -> None:
        super().__init__()
        self._queues: Dict[str, object] = {}
        self.events_checked = 0

    def attach(self, sim, network, tracer) -> None:
        for port in _iter_ports(network):
            self._queues[port.name] = port.qdisc
        tracer.subscribe("enqueue", self._on_event)
        tracer.subscribe("drop", self._on_event)
        tracer.subscribe("mark", self._on_event)

    def _on_event(self, rec) -> None:
        q = self._queues.get(rec.where)
        if q is None:
            self._flag(rec.time, rec.where,
                       f"{rec.kind} event from a queue not present in the "
                       f"network port map")
            return
        self.events_checked += 1
        # "mark" is emitted from inside the admit decision: RED and the
        # simple marker trace it mid-enqueue, after the arrival counters
        # but before the append, so at that instant the occupancy may
        # legitimately trail the counter equation by the one packet being
        # admitted. (CoDel marks at dequeue with settled counters, so the
        # slack must be a tolerance, not a fixed offset.)
        self._check_counters(q, rec.time,
                             slack=1 if rec.kind == "mark" else 0)

    def _check_counters(self, q, now: float, slack: int = 0) -> None:
        st = q.stats
        qlen = q.qlen_packets
        expected = st.arrivals - st.drops_tail - st.drops_early - st.departures
        if not (expected - slack <= qlen <= expected):
            self._flag(now, q.name,
                       f"occupancy {qlen} != arrivals {st.arrivals} - drops "
                       f"{st.drops_tail}+{st.drops_early} - departures "
                       f"{st.departures} (= {expected})")
        if qlen > q.limit_packets:
            self._flag(now, q.name,
                       f"occupancy {qlen} exceeds physical limit "
                       f"{q.limit_packets}")
        if q.qlen_bytes < 0:
            self._flag(now, q.name, f"negative byte count {q.qlen_bytes}")
        if st.protected > st.arrivals:
            self._flag(now, q.name,
                       f"protected {st.protected} > arrivals {st.arrivals}")
        if st.marks > st.ect_arrivals:
            self._flag(now, q.name,
                       f"marks {st.marks} > ECT arrivals {st.ect_arrivals}")
        if st.ect_drops > st.ect_arrivals:
            self._flag(now, q.name,
                       f"ECT drops {st.ect_drops} > ECT arrivals "
                       f"{st.ect_arrivals}")
        if st.ack_drops > st.ack_arrivals:
            self._flag(now, q.name,
                       f"ACK drops {st.ack_drops} > ACK arrivals "
                       f"{st.ack_arrivals}")
        if st.syn_drops > st.syn_arrivals:
            self._flag(now, q.name,
                       f"SYN drops {st.syn_drops} > SYN arrivals "
                       f"{st.syn_arrivals}")
        if st.drops_tail + st.drops_early + st.departures > st.arrivals:
            self._flag(now, q.name,
                       f"drops+departures exceed arrivals "
                       f"({st.drops_tail}+{st.drops_early}+{st.departures} "
                       f"> {st.arrivals})")
        if st._occ_last_t > now + 1e-12:
            self._flag(now, q.name,
                       f"occupancy integral advanced to t={st._occ_last_t} "
                       f"which is in the future")
        avg = getattr(q, "avg", None)
        if avg is not None and not (math.isfinite(avg) and avg >= 0.0):
            self._flag(now, q.name, f"RED avg is {avg!r}")

    def finish(self, now: float) -> None:
        for q in self._queues.values():
            self._check_counters(q, now)
            byte_sum = sum(p.size for p in q.packets())
            if byte_sum != q.qlen_bytes:
                self._flag(now, q.name,
                           f"queued packets sum to {byte_sum} B but "
                           f"qlen_bytes={q.qlen_bytes}")
            st = q.stats
            if st.arrival_bytes < st.departure_bytes + q.qlen_bytes:
                self._flag(now, q.name,
                           f"byte conservation broken: arrival_bytes "
                           f"{st.arrival_bytes} < departure_bytes "
                           f"{st.departure_bytes} + queued {q.qlen_bytes}")

    def stats(self) -> Dict[str, int]:
        return {"queues": len(self._queues),
                "events_checked": self.events_checked}


# -- TCP sequence space -------------------------------------------------------

class TcpChecker(Checker):
    """Per-flow sequence-space invariants over the ``tcp.cwnd`` stream.

    Parameters
    ----------
    min_rto, max_rto:
        Optional RTO bounds from the run's
        :class:`~repro.tcp.endpoint.TcpConfig`; when given, every traced
        RTO must lie within them (Karn backoff saturation included).
    """

    name = "tcp"

    def __init__(self, min_rto: Optional[float] = None,
                 max_rto: Optional[float] = None) -> None:
        super().__init__()
        self.min_rto = min_rto
        self.max_rto = max_rto
        self._flows: Dict[str, Dict[str, float]] = {}
        self.samples = 0

    def attach(self, sim, network, tracer) -> None:
        tracer.subscribe("tcp.cwnd", self._on_cwnd)
        tracer.subscribe("tcp.rto", self._on_rto)

    def _on_cwnd(self, rec) -> None:
        d = rec.data
        una = d.get("snd_una")
        if una is None:
            # An emitter predating the sequence-space extension: nothing
            # to check (and flagging it would fail old pickled traces).
            return
        self.samples += 1
        flow = rec.where
        nxt = d["snd_nxt"]
        nsb = d["no_sample_below"]
        flight = d["flight"]
        nbytes = d.get("nbytes")
        prev = self._flows.get(flow)
        if prev is not None:
            if una < prev["snd_una"]:
                self._flag(rec.time, flow,
                           f"cumulative ACK regressed: snd_una {una} < "
                           f"previous {prev['snd_una']}")
            if nsb < prev["no_sample_below"]:
                self._flag(rec.time, flow,
                           f"Karn suppression window regressed: {nsb} < "
                           f"previous {prev['no_sample_below']}")
        if nxt < una:
            self._flag(rec.time, flow, f"snd_nxt {nxt} < snd_una {una}")
        if flight != nxt - una:
            self._flag(rec.time, flow,
                       f"flight {flight} != snd_nxt {nxt} - snd_una {una}")
        if nbytes is not None and nxt > nbytes:
            self._flag(rec.time, flow,
                       f"snd_nxt {nxt} beyond flow size {nbytes}")
        if d["cwnd"] <= 0:
            self._flag(rec.time, flow, f"non-positive cwnd {d['cwnd']}")
        rto = d["rto"]
        if rto <= 0:
            self._flag(rec.time, flow, f"non-positive RTO {rto}")
        if self.max_rto is not None and rto > self.max_rto + 1e-9:
            self._flag(rec.time, flow,
                       f"RTO {rto} exceeds max_rto {self.max_rto}")
        if self.min_rto is not None and rto < self.min_rto - 1e-9:
            self._flag(rec.time, flow,
                       f"RTO {rto} below min_rto {self.min_rto}")
        self._flows[flow] = {"snd_una": una, "no_sample_below": nsb}

    def _on_rto(self, rec) -> None:
        d = rec.data
        una, nxt = d.get("snd_una"), d.get("snd_nxt")
        if una is not None and nxt is not None and nxt < una:
            self._flag(rec.time, rec.where,
                       f"RTO with snd_nxt {nxt} < snd_una {una}")

    def stats(self) -> Dict[str, int]:
        return {"flows": len(self._flows), "samples": self.samples}


# -- event engine -------------------------------------------------------------

class EngineChecker(Checker):
    """Samples the kernel's self-diagnosis between events.

    Every ``stride``-th enqueue event (and once at the end) this runs
    :meth:`Simulator.check_invariants` — heap property, truthful
    cancelled-entry counts across compactions, no pending events in the
    past — and verifies that trace timestamps agree with ``sim.now``
    (an emitter stamping stale times would corrupt every recorder).
    Piggybacking on trace events rather than scheduling its own sampler
    keeps the event sequence — and thus the run — bit-identical.
    """

    name = "engine"

    def __init__(self, stride: int = 512) -> None:
        super().__init__()
        if stride <= 0:
            raise ValidationError(f"stride must be positive, got {stride}")
        self.stride = stride
        self._sim = None
        self._n = 0
        self._last_time = float("-inf")
        self.audits = 0

    def attach(self, sim, network, tracer) -> None:
        self._sim = sim
        tracer.subscribe("enqueue", self._on_event)

    def _audit(self, now: float) -> None:
        self.audits += 1
        for msg in self._sim.check_invariants():
            self._flag(now, "sim", msg)

    def _on_event(self, rec) -> None:
        sim = self._sim
        if rec.time != sim.now:
            self._flag(rec.time, rec.where,
                       f"trace timestamp {rec.time} != sim clock {sim.now}")
        if rec.time < self._last_time:
            self._flag(rec.time, rec.where,
                       f"trace time went backwards ({rec.time} after "
                       f"{self._last_time})")
        self._last_time = rec.time
        self._n += 1
        if self._n % self.stride == 0:
            self._audit(rec.time)

    def finish(self, now: float) -> None:
        if self._sim is not None:
            self._audit(now)

    def stats(self) -> Dict[str, int]:
        return {"audits": self.audits}


# -- the suite ----------------------------------------------------------------

#: CLI-facing checker registry (``repro check --checkers ...``).
CHECKER_NAMES = ("conservation", "queues", "tcp", "engine")


def checkers_from_names(names: Iterable[str]) -> List[Checker]:
    """Build checker instances from registry names.

    Raises :class:`ValidationError` on an unknown name so CLI typos fail
    loudly instead of silently validating nothing.
    """
    table = {
        "conservation": ConservationChecker,
        "queues": QueueAccountingChecker,
        "tcp": TcpChecker,
        "engine": EngineChecker,
    }
    out: List[Checker] = []
    for n in names:
        cls = table.get(n)
        if cls is None:
            raise ValidationError(
                f"unknown checker {n!r}; available: {', '.join(CHECKER_NAMES)}")
        out.append(cls())
    return out


class ValidationSuite:
    """A set of checkers wired to one run.

    Usage::

        suite = ValidationSuite()            # all four checkers
        suite.attach(sim, network, tracer)   # before the first event
        sim.run()
        suite.finish()                       # end-of-run sweeps
        if not suite.ok:
            print(suite.report())

    ``attach`` must happen before any traffic: the conservation ledger
    needs to see every packet's first enqueue.
    """

    def __init__(self, checkers: Optional[Iterable[Checker]] = None):
        if checkers is None:
            checkers = [ConservationChecker(), QueueAccountingChecker(),
                        TcpChecker(), EngineChecker()]
        self.checkers: List[Checker] = list(checkers)
        self._sim = None
        self._finished = False

    def attach(self, sim, network, tracer) -> "ValidationSuite":
        """Subscribe every checker. Returns self for chaining."""
        if tracer is None:
            raise ValidationError(
                "ValidationSuite needs the run's tracer; build the network "
                "with a Tracer before attaching checkers")
        if self._sim is not None:
            raise ValidationError("ValidationSuite is already attached")
        for c in self.checkers:
            c.attach(sim, network, tracer)
        self._sim = sim
        return self

    def finish(self) -> List[InvariantViolation]:
        """Run every checker's end-of-run sweep; return all violations."""
        if self._sim is None:
            raise ValidationError(
                "ValidationSuite.finish() called before attach()")
        if not self._finished:
            now = self._sim.now
            for c in self.checkers:
                c.finish(now)
            self._finished = True
        return self.violations

    @property
    def violations(self) -> List[InvariantViolation]:
        """All violations accumulated so far, in checker order."""
        return [v for c in self.checkers for v in c.violations]

    @property
    def suppressed(self) -> int:
        """Violations dropped by the per-checker retention cap."""
        return sum(c.suppressed for c in self.checkers)

    @property
    def ok(self) -> bool:
        """True when no checker flagged anything."""
        return not any(c.violations for c in self.checkers)

    def raise_if_violations(self) -> None:
        """Raise :class:`ValidationError` summarising any violations."""
        if self.ok:
            return
        raise ValidationError(
            f"{len(self.violations)} invariant violation(s):\n" + self.report())

    def report(self) -> str:
        """Multi-line human-readable summary of all violations."""
        lines = [str(v) for v in self.violations]
        if self.suppressed:
            lines.append(f"... and {self.suppressed} more suppressed")
        return "\n".join(lines) if lines else "all invariants hold"

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary for run manifests."""
        return {
            "ok": self.ok,
            "violation_count": len(self.violations) + self.suppressed,
            "violations": [
                {"time": v.time, "checker": v.checker,
                 "where": v.where, "message": v.message}
                for v in self.violations
            ],
            "checkers": {c.name: c.stats() for c in self.checkers},
        }
