"""Armed smoke cells: invariants + bit-identity on the paper's grid.

``repro check`` runs each representative figure cell **twice** — once
plain, once with a :class:`~repro.validate.ValidationSuite` armed — and
compares a metrics fingerprint of the two runs. This enforces both
halves of the validation contract at once:

* every invariant holds on the real experiment pipeline (not just the
  fuzzer's synthetic flows), and
* arming the checkers does not perturb the run: identical fingerprints
  mean the observation layer stayed an observation layer.

The cell list covers the queue disciplines and protection modes behind
figures 2/3/4: RED under all three protection modes, the DropTail
baseline, the simple marking queue and the CoDel extension.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.protection import ProtectionMode
from repro.experiments.config import (
    SHALLOW_BUFFER_PACKETS,
    CellResult,
    ExperimentConfig,
    QueueSetup,
)
from repro.experiments.runner import run_cell
from repro.tcp.endpoint import TcpVariant
from repro.units import us
from repro.validate.checkers import (
    CHECKER_NAMES,
    TcpChecker,
    ValidationSuite,
    checkers_from_names,
)

__all__ = ["smoke_cells", "build_suite", "check_cell", "fingerprint",
           "stability_smoke_cells"]

#: Default dataset scale for ``repro check`` cells (1/32 of the 256 MB
#: reference — the same size the sweep smoke tests use).
SMOKE_SCALE = 0.03125


def smoke_cells(scale: float = SMOKE_SCALE,
                seed: int = 42) -> List[Tuple[str, ExperimentConfig]]:
    """The representative fig2/3/4 cells ``repro check`` validates."""
    def cfg(kind: str, protection: ProtectionMode = ProtectionMode.DEFAULT,
            ) -> ExperimentConfig:
        queue = QueueSetup(
            kind=kind,
            buffer_packets=SHALLOW_BUFFER_PACKETS,
            target_delay_s=None if kind == "droptail" else us(500.0),
            protection=protection,
        )
        return ExperimentConfig(
            queue=queue, variant=TcpVariant.ECN, seed=seed,
        ).scaled(scale)

    return [
        ("red-default", cfg("red")),
        ("red-ece", cfg("red", ProtectionMode.ECE)),
        ("red-ack+syn", cfg("red", ProtectionMode.ACK_SYN)),
        ("droptail-shallow", cfg("droptail")),
        ("marking", cfg("marking")),
        ("codel-default", cfg("codel")),
    ]


def stability_smoke_cells(seed: int = 42):
    """The pinned regime cells ``repro stability --smoke`` classifies.

    Returns ``(name, expected_classification, config)`` triples: a
    NewReno+ECN marking queue at an aggressive 100 µs threshold (a clean
    synchronized sawtooth — the canonical limit cycle) and DCTCP against
    a 500 µs threshold (K large enough that the √K-relative amplitude is
    small — the canonical damped loop). Expectations are part of the
    contract: a classifier or simulator change that flips either regime
    fails the smoke, not just the bit-identity compare.
    """
    from repro.analysis.stability import CLASS_LIMIT_CYCLE, CLASS_STABLE
    from repro.experiments.probe import StabilityProbeConfig

    def probe(kind: str, variant: TcpVariant, td_s: float,
              ) -> StabilityProbeConfig:
        return StabilityProbeConfig(
            queue=QueueSetup(kind=kind,
                             buffer_packets=SHALLOW_BUFFER_PACKETS,
                             target_delay_s=td_s),
            variant=variant, duration_s=1.0, seed=seed,
        )

    return [
        ("oscillating", CLASS_LIMIT_CYCLE,
         probe("marking", TcpVariant.ECN, us(100.0))),
        ("damped", CLASS_STABLE,
         probe("marking", TcpVariant.DCTCP, us(500.0))),
    ]


def build_suite(config: ExperimentConfig,
                checker_names: Optional[List[str]] = None) -> ValidationSuite:
    """A suite for one cell, with the cell's RTO bounds wired into the
    TCP checker."""
    checkers = checkers_from_names(checker_names or list(CHECKER_NAMES))
    tcp_cfg = config.tcp_config()
    for c in checkers:
        if isinstance(c, TcpChecker):
            c.min_rto = tcp_cfg.min_rto
            c.max_rto = tcp_cfg.max_rto
    return ValidationSuite(checkers)


def fingerprint(cell: CellResult) -> Dict[str, object]:
    """Deterministic run digest: identical runs ⇒ identical fingerprints.

    Covers the simulated clock, the latency distribution endpoints, TCP
    effort counters, the event count and every per-class queue counter —
    any perturbation of the event sequence moves at least one of these.
    """
    m = cell.metrics
    q = m.queue
    return {
        "runtime": m.runtime,
        "mean_latency": m.mean_latency,
        "p99_latency": m.p99_latency,
        "packets_delivered": m.packets_delivered,
        "retransmits": m.retransmits,
        "rtos": m.rtos,
        "syn_retries": m.syn_retries,
        "events": int(cell.manifest["timings"]["events"]),
        "queue": {
            "arrivals": q.arrivals,
            "departures": q.departures,
            "drops_tail": q.drops_tail,
            "drops_early": q.drops_early,
            "marks": q.marks,
            "protected": q.protected,
            "ect_drops": q.ect_drops,
            "ack_drops": q.ack_drops,
            "syn_drops": q.syn_drops,
        },
    }


def check_cell(config: ExperimentConfig,
               checker_names: Optional[List[str]] = None) -> Dict[str, object]:
    """Run one cell unarmed then armed; validate and compare fingerprints.

    Returns a JSON-serialisable record::

        {"label": ..., "ok": bool, "identical": bool,
         "validation": <suite.as_dict()>, "fingerprint": {...}}

    ``ok`` requires both zero invariant violations **and** a bit-identical
    armed re-run.
    """
    plain = run_cell(config)
    suite = build_suite(config, checker_names)
    armed = run_cell(config, checks=suite)
    fp_plain = fingerprint(plain)
    fp_armed = fingerprint(armed)
    identical = fp_plain == fp_armed
    validation = armed.manifest["validation"]
    return {
        "label": config.label(),
        "ok": bool(validation["ok"]) and identical,
        "identical": identical,
        "validation": validation,
        "fingerprint": fp_plain,
        "fingerprint_armed": None if identical else fp_armed,
    }
