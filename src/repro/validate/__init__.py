"""Simulation invariant checking and scenario fuzzing.

An always-available, **off-by-default** validation layer: checkers ride
the existing :class:`~repro.sim.trace.Tracer` bus (pure observation —
armed runs are bit-identical to unarmed ones) and audit packet
conservation, queue accounting, TCP sequence space and event-engine
bookkeeping. A randomized scenario fuzzer drives topologies × qdiscs ×
protection modes × seeds with the checkers armed and shrinks failures to
a minimal repro dict. Exposed on the command line as ``repro check``.
"""

from repro.validate.checkers import (
    CHECKER_NAMES,
    Checker,
    ConservationChecker,
    EngineChecker,
    InvariantViolation,
    QueueAccountingChecker,
    TcpChecker,
    ValidationSuite,
    checkers_from_names,
)
from repro.validate.fuzz import (
    FuzzReport,
    Scenario,
    fuzz,
    run_scenario,
    shrink,
)

__all__ = [
    "CHECKER_NAMES",
    "Checker",
    "ConservationChecker",
    "EngineChecker",
    "InvariantViolation",
    "QueueAccountingChecker",
    "TcpChecker",
    "ValidationSuite",
    "checkers_from_names",
    "FuzzReport",
    "Scenario",
    "fuzz",
    "run_scenario",
    "shrink",
]
