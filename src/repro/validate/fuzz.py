"""Randomized scenario fuzzer for the invariant checkers.

Each :class:`Scenario` is a small, fully-seeded simulation — a topology
shape × a queue discipline × a protection mode × TCP variant × flow
pattern — run with every checker armed. The fuzzer sweeps randomized
scenarios from one master seed (fully deterministic: same seed, same
scenarios, same verdicts) and, when a scenario breaches an invariant,
**shrinks** it by greedily reducing flows/bytes/hosts while the failure
persists, ending with a minimal repro dict that can be replayed with
``run_scenario(Scenario(**d))``.

Scenarios deliberately include the ugly corners: incast fan-in onto one
downlink, link flaps that force long RTO-backoff blackouts, shallow
buffers that tail-drop, and CoDel's head-drop path — exactly where
stale-state and conservation bugs hide.

The ``pattern`` field picks the traffic shape: plain ``"bulk"`` flows,
``"rpc"`` (a partition-aggregate query stream — fan-out/fan-in incast
with per-query bookkeeping), or ``"mixed"`` (bulk + RPC concurrently on
separate allocator-assigned ports, the coexistence scenario the mix
experiments run at scale).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Callable, Dict, List, NamedTuple, Optional

import numpy as np

from repro.core.codel import CodelParams, CodelQueue
from repro.core.curvyred import CurvyRedParams, CurvyRedQueue
from repro.core.droptail import DropTail
from repro.core.marking import SimpleMarkingQueue
from repro.core.protection import ProtectionMode
from repro.core.red import RedParams, RedQueue
from repro.core.registry import TINY_BUFFER_PACKETS
from repro.errors import ValidationError
from repro.net.topology import build_dumbbell, build_single_rack
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer
from repro.tcp.endpoint import TcpConfig, TcpListener, TcpVariant
from repro.tcp.flow import start_bulk_flow
from repro.units import mbps, us
from repro.workloads.ports import port_allocator
from repro.workloads.rpc import PartitionAggregateWorkload
from repro.validate.checkers import (
    ConservationChecker,
    EngineChecker,
    QueueAccountingChecker,
    TcpChecker,
    ValidationSuite,
)

__all__ = ["Scenario", "ScenarioResult", "FuzzReport", "run_scenario",
           "fuzz", "shrink"]

#: Destination TCP port used by bulk fuzzer flows (the sim's first
#: allocator-assigned port — see :mod:`repro.workloads.ports`).
FUZZ_PORT = 40000

_TOPOLOGIES = ("rack", "dumbbell")
_QDISCS = ("droptail", "red", "codel", "curvyred", "tinybuffer")
_PROTECTIONS = ("default", "ece", "ack+syn")
_VARIANTS = ("newreno", "tcp-ecn", "dctcp")
_PATTERNS = ("bulk", "rpc", "mixed")
#: Congestion-control override axis: "" keeps the variant's default CC,
#: the rest are registry keys (see :mod:`repro.tcp.cc`).
_CCS = ("", "cubic", "d2tcp")


@dataclass(frozen=True)
class Scenario:
    """One fully-determined fuzz case (every field is serialisable)."""

    topology: str = "rack"        #: "rack" or "dumbbell"
    n_hosts: int = 4              #: total hosts (dumbbell splits them)
    qdisc: str = "red"            #: "droptail", "red" or "codel"
    protection: str = "default"   #: ProtectionMode value string
    variant: str = "tcp-ecn"      #: TcpVariant value string
    buffer_packets: int = 50      #: switch buffer depth
    n_flows: int = 4
    flow_bytes: int = 30_000
    incast: bool = True           #: all flows target one host (fan-in)
    link_flap: bool = False       #: fail a hot port mid-run (blackout)
    seed: int = 0
    horizon_s: float = 20.0       #: simulated-time safety cap
    pattern: str = "bulk"         #: "bulk", "rpc" or "mixed" traffic
    cc: str = ""                  #: CC registry key ("" = variant default)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (the shrunk repro artifact)."""
        return asdict(self)

    def validate(self) -> "Scenario":
        """Raise :class:`ValidationError` on out-of-domain fields."""
        if self.topology not in _TOPOLOGIES:
            raise ValidationError(f"unknown topology {self.topology!r}")
        if self.qdisc not in _QDISCS:
            raise ValidationError(f"unknown qdisc {self.qdisc!r}")
        if self.protection not in _PROTECTIONS:
            raise ValidationError(f"unknown protection {self.protection!r}")
        if self.variant not in _VARIANTS:
            raise ValidationError(f"unknown variant {self.variant!r}")
        if self.pattern not in _PATTERNS:
            raise ValidationError(f"unknown pattern {self.pattern!r}")
        if self.cc not in _CCS:
            raise ValidationError(f"unknown cc {self.cc!r}")
        if self.n_hosts < 2 or self.n_flows < 1 or self.flow_bytes < 1:
            raise ValidationError(f"degenerate scenario: {self}")
        return self


class ScenarioResult(NamedTuple):
    """Outcome of one fuzz scenario."""

    scenario: Scenario
    ok: bool
    violations: List[str]
    completed_flows: int
    failed_flows: int
    events: int


def _qdisc_factory(sc: Scenario, rng: RngRegistry) -> Callable:
    prot = ProtectionMode(sc.protection)
    buf = sc.buffer_packets
    if sc.qdisc == "droptail":
        return lambda name: DropTail(buf, name=name)
    if sc.qdisc == "red":
        min_th = max(2.0, 0.15 * buf)
        params = RedParams(min_th=min_th, max_th=max(min_th + 1.0, 0.45 * buf),
                           protection=prot)
        return lambda name: RedQueue(
            buf, params, rand=rng.uniform_fn(f"red.{name}"), name=name)
    if sc.qdisc == "codel":
        params = CodelParams(target_s=200e-6, interval_s=2e-3, protection=prot)
        return lambda name: CodelQueue(buf, params, name=name)
    if sc.qdisc == "curvyred":
        params = CurvyRedParams(range_packets=max(4.0, 0.3 * buf),
                                protection=prot)
        return lambda name: CurvyRedQueue(
            buf, params, rand=rng.uniform_fn(f"curvyred.{name}"), name=name)
    if sc.qdisc == "tinybuffer":
        tiny = min(buf, TINY_BUFFER_PACKETS)
        return lambda name: SimpleMarkingQueue(
            tiny, max(1, tiny // 2), name=name)
    raise ValidationError(f"unknown qdisc {sc.qdisc!r}")


def run_scenario(sc: Scenario,
                 suite: Optional[ValidationSuite] = None) -> ScenarioResult:
    """Build and run one scenario with all checkers armed.

    A caller may inject a pre-built ``suite`` (the CLI does, to choose a
    checker subset); by default all four checkers run with the scenario's
    TCP RTO bounds wired into the TCP checker.
    """
    sc.validate()
    cfg = TcpConfig(variant=TcpVariant(sc.variant), cc=sc.cc or None)
    sim = Simulator()
    tracer = Tracer()
    rng = RngRegistry(sc.seed)
    factory = _qdisc_factory(sc, rng)

    if sc.topology == "rack":
        spec = build_single_rack(
            sim, sc.n_hosts, factory,
            link_rate_bps=mbps(50), link_delay_s=us(20), tracer=tracer)
        sources = spec.hosts
        sinks = spec.hosts
    else:
        n_left = max(1, sc.n_hosts // 2)
        n_right = max(1, sc.n_hosts - n_left)
        spec = build_dumbbell(
            sim, n_left, n_right, factory,
            link_rate_bps=mbps(50), link_delay_s=us(20), tracer=tracer)
        sources = spec.hosts[:n_left]
        sinks = spec.hosts[n_left:]

    if suite is None:
        suite = ValidationSuite([
            ConservationChecker(), QueueAccountingChecker(),
            TcpChecker(min_rto=cfg.min_rto, max_rto=cfg.max_rto),
            EngineChecker(),
        ])
    suite.attach(sim, spec.network, tracer)

    # Traffic parts by pattern: bulk flows, an RPC query stream, or both.
    # The run stops once every part has finished its work.
    if sc.pattern == "bulk":
        n_bulk, n_queries = sc.n_flows, 0
    elif sc.pattern == "rpc":
        n_bulk, n_queries = 0, sc.n_flows
    else:  # mixed
        n_bulk = max(1, sc.n_flows // 2)
        n_queries = max(1, sc.n_flows - n_bulk)
    parts = {"open": (1 if n_bulk else 0) + (1 if n_queries else 0)}

    def part_finished():
        parts["open"] -= 1
        if parts["open"] == 0:
            sim.stop()

    # Flow pattern from the scenario's own named streams (reproducible).
    pick = rng.stream("fuzz.pattern")
    fixed_sink = sinks[int(pick.integers(len(sinks)))]
    done: List[bool] = []
    flows = []
    bulk_port = port_allocator(sim).allocate()  # == FUZZ_PORT on a fresh sim

    def on_done(result, _done=done):
        _done.append(result.failed)
        if len(_done) == n_bulk:
            part_finished()

    listeners = {}
    for i in range(n_bulk):
        if sc.incast:
            dst = fixed_sink
        else:
            dst = sinks[int(pick.integers(len(sinks)))]
        candidates = [h for h in sources if h is not dst]
        src = candidates[int(pick.integers(len(candidates)))]
        if dst.node_id not in listeners:
            listeners[dst.node_id] = TcpListener(sim, dst, bulk_port, cfg)
        delay = float(pick.uniform(0.0, 5e-3))
        flows.append(start_bulk_flow(
            sim, src, dst, bulk_port, sc.flow_bytes, cfg,
            on_done=on_done, delay=delay))

    rpc = None
    if n_queries:
        rpc = PartitionAggregateWorkload(
            sim, spec.hosts, cfg, rng=rng.stream("fuzz.rpc"),
            rate_qps=200.0,
            fanout=max(1, min(sc.n_hosts - 1, sc.n_flows)),
            response_bytes=sc.flow_bytes,
            max_queries=n_queries, name="fuzz-rpc")
        rpc.on_idle = part_finished
        rpc.start(first_delay=1e-4)

    if sc.link_flap:
        # Black out the congested port long enough to force repeated RTO
        # backoff, then restore it well before the horizon.
        port = spec.hot_ports[0]
        sim.schedule(10e-3, port.set_down)
        sim.schedule(10e-3 + 0.5, port.set_up)

    sim.run(until=sc.horizon_s)
    suite.finish()
    rpc_flows = rpc.flow_results if rpc is not None else []
    return ScenarioResult(
        scenario=sc,
        ok=suite.ok,
        violations=[str(v) for v in suite.violations],
        completed_flows=(sum(1 for failed in done if not failed)
                         + sum(1 for f in rpc_flows if not f.failed)),
        failed_flows=(sum(1 for failed in done if failed)
                      + sum(1 for f in rpc_flows if f.failed)),
        events=sim.events_processed,
    )


# -- shrinking ----------------------------------------------------------------

def _reductions(sc: Scenario):
    """Candidate one-step simplifications, most aggressive first."""
    if sc.link_flap:
        yield replace(sc, link_flap=False)
    if sc.cc:
        yield replace(sc, cc="")  # the variant default is the simpler CC
    if sc.pattern != "bulk":
        yield replace(sc, pattern="bulk")  # bulk is the simplest traffic
    if sc.n_flows > 1:
        yield replace(sc, n_flows=max(1, sc.n_flows // 2))
    if sc.flow_bytes > 2_000:
        yield replace(sc, flow_bytes=max(2_000, sc.flow_bytes // 2))
    if sc.n_hosts > 2:
        yield replace(sc, n_hosts=max(2, sc.n_hosts // 2))
    if sc.topology == "dumbbell":
        yield replace(sc, topology="rack")
    if not sc.incast:
        yield replace(sc, incast=True)  # incast is the simpler fixed pattern
    if sc.buffer_packets > 8:
        yield replace(sc, buffer_packets=max(8, sc.buffer_packets // 2))


def shrink(sc: Scenario, max_attempts: int = 48) -> Scenario:
    """Greedily reduce ``sc`` while it still violates an invariant.

    Returns the smallest still-failing scenario found within
    ``max_attempts`` re-runs (the original if no reduction reproduces).
    """
    current = sc
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for cand in _reductions(current):
            attempts += 1
            if not run_scenario(cand).ok:
                current = cand
                improved = True
                break
            if attempts >= max_attempts:
                break
    return current


# -- the sweep ----------------------------------------------------------------

@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz sweep."""

    seed: int
    scenarios_run: int = 0
    total_events: int = 0
    completed_flows: int = 0
    failures: List[Dict[str, object]] = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.failures is None:
            self.failures = []

    @property
    def ok(self) -> bool:
        """True when no scenario breached any invariant."""
        return not self.failures

    def as_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "scenarios_run": self.scenarios_run,
            "total_events": self.total_events,
            "completed_flows": self.completed_flows,
            "ok": self.ok,
            "failures": self.failures,
        }


def _random_scenario(gen: np.random.Generator, horizon_s: float) -> Scenario:
    return Scenario(
        topology=_TOPOLOGIES[int(gen.integers(len(_TOPOLOGIES)))],
        n_hosts=int(gen.integers(3, 9)),
        qdisc=_QDISCS[int(gen.integers(len(_QDISCS)))],
        protection=_PROTECTIONS[int(gen.integers(len(_PROTECTIONS)))],
        variant=_VARIANTS[int(gen.integers(len(_VARIANTS)))],
        buffer_packets=int(gen.integers(10, 80)),
        n_flows=int(gen.integers(2, 7)),
        flow_bytes=int(gen.integers(8_000, 60_000)),
        incast=bool(gen.integers(2)),
        link_flap=bool(gen.random() < 0.25),
        seed=int(gen.integers(2**31)),
        horizon_s=horizon_s,
        pattern=_PATTERNS[int(gen.integers(len(_PATTERNS)))],
        cc=_CCS[int(gen.integers(len(_CCS)))],
    )


def fuzz(
    n: int = 50,
    seed: int = 0,
    shrink_failures: bool = True,
    horizon_s: float = 20.0,
    progress: Optional[Callable[[int, int, ScenarioResult], None]] = None,
) -> FuzzReport:
    """Run ``n`` randomized scenarios derived from ``seed``.

    Fully deterministic: the same ``(n, seed)`` always produces the same
    scenarios and verdicts. Failing scenarios are shrunk (unless
    ``shrink_failures`` is off) and reported with both the original and
    the minimal repro dict.
    """
    if n < 1:
        raise ValidationError(f"need at least one scenario, got {n}")
    gen = np.random.Generator(np.random.PCG64(int(seed)))
    report = FuzzReport(seed=int(seed))
    for i in range(n):
        sc = _random_scenario(gen, horizon_s)
        result = run_scenario(sc)
        report.scenarios_run += 1
        report.total_events += result.events
        report.completed_flows += result.completed_flows
        if not result.ok:
            entry: Dict[str, object] = {
                "scenario": sc.as_dict(),
                "violations": result.violations[:20],
            }
            if shrink_failures:
                entry["shrunk"] = shrink(sc).as_dict()
            report.failures.append(entry)
        if progress is not None:
            progress(i + 1, n, result)
    return report
