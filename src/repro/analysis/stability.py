"""Limit-cycle detection over recorded queue timelines.

The D2TCP-II analysis (PAPERS.md) shows that the TCP/AQM control loop
does not merely "perform worse" past its stability boundary — it
bifurcates into sustained queue oscillation. This module is the detector
side of the repo's stability observatory: it consumes the per-queue
depth series a run already records (queue monitors / the telemetry
:class:`~repro.telemetry.recorders.QueueTimelineRecorder`) as a **pure
observer** and classifies each queue, and the cell overall, into one of
three regimes:

``stable``
    The queue settles: fluctuation is small relative to (and in absolute
    packets around) its operating point. Covers both the empty-queue and
    the held-at-threshold (DCTCP at K) cases.
``limit-cycle``
    Sustained periodic oscillation: spectral power concentrated at one
    frequency *and* the series actually repeats at that period
    (autocorrelation at one period-lag stays high). The classic ECN/RED
    sawtooth.
``chaotic-irregular``
    Large-amplitude fluctuation with no coherent period — the
    desynchronized / aperiodic regime (e.g. several NewReno flows
    tail-dropping out of phase in a deep buffer).

Everything is a deterministic pure function of the recorded samples, so
an armed run is bit-identical to an unarmed one and repeated analyses of
the same run produce byte-identical ``manifest["stability"]`` blocks
(enforced by ``repro stability --smoke``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.stats.signal import (
    DominantPeriod,
    detrend,
    dominant_period,
    oscillation_amplitude,
    resample_uniform,
    synchronization_score,
)

__all__ = [
    "STABILITY_SCHEMA",
    "CLASS_STABLE",
    "CLASS_LIMIT_CYCLE",
    "CLASS_IRREGULAR",
    "SeriesEvidence",
    "StabilityReport",
    "StabilityAnalysis",
    "classify_series",
    "snapshots_by_queue",
]

STABILITY_SCHEMA = "repro.stability/v1"

CLASS_STABLE = "stable"
CLASS_LIMIT_CYCLE = "limit-cycle"
CLASS_IRREGULAR = "chaotic-irregular"

#: Severity order for aggregating per-queue verdicts into a cell verdict.
_SEVERITY = {CLASS_STABLE: 0, CLASS_IRREGULAR: 1, CLASS_LIMIT_CYCLE: 2}

#: Classification thresholds, calibrated on the steady-state probe cells
#: (see tests/test_stability.py): a NewReno+ECN marking-queue sawtooth
#: shows peak ratios of 10^3..10^5 with acf(T) > 0.5, DCTCP held at an
#: adequate K shows relative amplitude ~0.1, and desynchronized deep-
#: buffer DropTail shows a drifting spectral peak with acf(T) ~ 0.
MIN_SAMPLES = 32          #: below this, classify stable at low confidence
REL_AMP_STABLE = 0.15     #: amplitude/operating-point below => stable
ABS_AMP_STABLE = 0.75     #: amplitude below this many packets => stable
PEAK_RATIO_LC = 50.0      #: spectral peak/median power for a limit cycle
ACF_LC = 0.3              #: self-similarity at one period for a limit cycle

#: Fraction of each series discarded as start-up transient before
#: classification (slow-start ramp, empty-queue warm-up).
TRANSIENT_FRACTION = 0.2

#: Points kept in the evidence profile embedded in the report.
PROFILE_POINTS = 64


def _round(x: float, digits: int = 6) -> float:
    """JSON-friendly rounding; keeps blocks readable and deterministic."""
    return round(float(x), digits)


@dataclass(frozen=True)
class SeriesEvidence:
    """Classification of one queue's depth series, with its evidence."""

    name: str
    classification: str
    confidence: float
    n_samples: int
    mean: float
    amplitude: float          #: robust oscillation amplitude (packets)
    rel_amplitude: float      #: amplitude / operating point
    period_s: Optional[float]       #: dominant period (None: no spectrum)
    peak_ratio: Optional[float]     #: spectral peak / median power
    acf_at_period: Optional[float]  #: autocorrelation at one period-lag
    #: Down-sampled depth profile (time, packets) — the evidence series a
    #: human (or the regime-map renderer) can eyeball without re-running.
    profile: Tuple[Tuple[float, float], ...] = field(default=())

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "classification": self.classification,
            "confidence": self.confidence,
            "n_samples": self.n_samples,
            "mean": self.mean,
            "amplitude": self.amplitude,
            "rel_amplitude": self.rel_amplitude,
            "period_s": self.period_s,
            "peak_ratio": self.peak_ratio,
            "acf_at_period": self.acf_at_period,
            "profile": [[t, v] for t, v in self.profile],
        }


def classify_series(
    times: Sequence[float],
    values: Sequence[float],
    name: str = "",
    keep_profile: bool = False,
) -> SeriesEvidence:
    """Classify one (time, depth) series into a stability regime.

    The series is resampled onto a uniform grid (spectral estimates need
    even spacing), its leading ``TRANSIENT_FRACTION`` is discarded, and
    the decision cascades:

    1. too short / constant / small amplitude (relative *and* absolute)
       => ``stable``;
    2. spectral power concentrated at one frequency and autocorrelation
       at that period still high => ``limit-cycle``;
    3. otherwise => ``chaotic-irregular``.
    """
    t, v = resample_uniform(times, values)
    cut = int(len(v) * TRANSIENT_FRACTION)
    t, v = t[cut:], v[cut:]
    n = len(v)

    profile: Tuple[Tuple[float, float], ...] = ()
    if keep_profile and n >= 2:
        pt, pv = resample_uniform(t, v, n=min(n, PROFILE_POINTS))
        profile = tuple((_round(a), _round(b)) for a, b in zip(pt, pv))

    def evidence(cls: str, conf: float, mean: float, amp: float, rel: float,
                 period: Optional[DominantPeriod] = None) -> SeriesEvidence:
        return SeriesEvidence(
            name=name,
            classification=cls,
            confidence=_round(min(1.0, max(0.0, conf))),
            n_samples=n,
            mean=_round(mean),
            amplitude=_round(amp),
            rel_amplitude=_round(rel),
            period_s=None if period is None else _round(period.period_s, 9),
            peak_ratio=None if period is None else _round(period.peak_ratio, 2),
            acf_at_period=(None if period is None
                           else _round(period.acf_at_period)),
            profile=profile,
        )

    if n < MIN_SAMPLES:
        return evidence(CLASS_STABLE, 0.25, float(np.mean(v)) if n else 0.0,
                        0.0, 0.0)

    mean = float(np.mean(v))
    amp = oscillation_amplitude(v)
    # Operating point for the relative amplitude: the mean depth, floored
    # at one packet so a near-empty queue is judged on absolute packets.
    rel = amp / max(mean, 1.0)

    if amp < ABS_AMP_STABLE or rel < REL_AMP_STABLE:
        x = detrend(v, kind="mean")
        flat = amp < ABS_AMP_STABLE and not np.any(x)
        conf = 1.0 if flat else 1.0 - rel / (2.0 * max(REL_AMP_STABLE, 1e-9))
        return evidence(CLASS_STABLE, max(conf, 0.5), mean, amp, rel)

    dt = float(t[1] - t[0]) if len(t) >= 2 else 1.0
    period = dominant_period(v, dt=dt)
    if (period is not None
            and period.peak_ratio >= PEAK_RATIO_LC
            and period.acf_at_period >= ACF_LC):
        conf = 0.5 + period.acf_at_period / 2.0
        return evidence(CLASS_LIMIT_CYCLE, conf, mean, amp, rel, period)
    return evidence(CLASS_IRREGULAR, min(0.5 + rel / 2.0, 0.9),
                    mean, amp, rel, period)


def snapshots_by_queue(snapshots: Sequence) -> "Dict[str, Tuple[List[float], List[float]]]":
    """Split a merged snapshot list into per-queue ``(times, depths)``.

    Uses the snapshot's ``queue`` label when present; unlabeled snapshots
    (pre-existing caches, hand-built monitors) are segmented on time
    resets — :func:`~repro.experiments.runner.run_cell` concatenates the
    monitors' buffers back to back, so a backwards time step marks the
    next queue's series.
    """
    out: Dict[str, Tuple[List[float], List[float]]] = {}
    anon = 0
    last_t = float("inf")
    current: Optional[Tuple[List[float], List[float]]] = None
    for snap in snapshots:
        label = getattr(snap, "queue", "") or ""
        if label:
            series = out.get(label)
            if series is None:
                series = out[label] = ([], [])
        else:
            if snap.time < last_t or current is None:
                current = out[f"queue{anon}"] = ([], [])
                anon += 1
            series = current
            last_t = snap.time
        series[0].append(snap.time)
        series[1].append(float(snap.qlen_packets))
    return out


@dataclass
class StabilityReport:
    """Per-run stability verdict: classification + evidence per queue."""

    classification: str
    confidence: float
    dominant_queue: Optional[str]
    queues: List[SeriesEvidence]
    sync_score: Optional[float]
    counts: Dict[str, int]

    def to_dict(self) -> Dict[str, object]:
        """The JSON block landed under ``manifest["stability"]``."""
        return {
            "schema": STABILITY_SCHEMA,
            "classification": self.classification,
            "confidence": self.confidence,
            "dominant_queue": self.dominant_queue,
            "counts": dict(self.counts),
            "sync_score": self.sync_score,
            "queues": [q.to_dict() for q in self.queues],
        }


class StabilityAnalysis:
    """The ``analyses=`` plug-in that lands ``manifest["stability"]``.

    Pass an instance to :func:`~repro.experiments.runner.run_cell`::

        run_cell(config, analyses=[StabilityAnalysis()])

    or apply it after the fact to any :class:`CellResult` that carries
    queue snapshots (including cache hits — snapshots round-trip through
    the result cache exactly, so a cached cell analyses to the same
    block a fresh one does)::

        cell.manifest["stability"] = StabilityAnalysis().analyze(cell)

    The analysis reads only the recorded samples; it subscribes to
    nothing and runs after the simulation finished, which is what keeps
    armed and unarmed runs bit-identical.
    """

    #: Manifest key the runner lands :meth:`analyze`'s block under.
    key = "stability"

    def __init__(self, keep_profiles: bool = True):
        self._keep_profiles = keep_profiles

    def analyze(self, cell, telemetry=None) -> Dict[str, object]:
        """Classify ``cell`` (a :class:`CellResult`); returns the block."""
        return self.report(cell).to_dict()

    def report(self, cell) -> StabilityReport:
        """Structured :class:`StabilityReport` for ``cell``."""
        per_queue = snapshots_by_queue(cell.snapshots)
        evidences: List[SeriesEvidence] = []
        for qname in sorted(per_queue):
            times, depths = per_queue[qname]
            evidences.append(classify_series(
                times, depths, name=qname,
                keep_profile=self._keep_profiles))
        return self._aggregate(evidences, per_queue)

    def _aggregate(
        self,
        evidences: List[SeriesEvidence],
        per_queue: Dict[str, Tuple[List[float], List[float]]],
    ) -> StabilityReport:
        counts = {CLASS_STABLE: 0, CLASS_LIMIT_CYCLE: 0, CLASS_IRREGULAR: 0}
        for ev in evidences:
            counts[ev.classification] += 1

        if not evidences:
            return StabilityReport(
                classification=CLASS_STABLE, confidence=0.25,
                dominant_queue=None, queues=[], sync_score=None,
                counts=counts)

        # The cell's verdict comes from the queue with the largest
        # absolute oscillation — ties broken by severity then name so the
        # aggregate is deterministic.
        dominant = max(
            evidences,
            key=lambda ev: (ev.amplitude, _SEVERITY[ev.classification],
                            ev.name),
        )

        # Synchronization across the queues that actually fluctuate,
        # resampled onto a common length so lags are comparable.
        active = [per_queue[ev.name] for ev in evidences
                  if ev.amplitude >= ABS_AMP_STABLE]
        sync = None
        if len(active) >= 2:
            n = min(min(len(t) for t, _v in active), 2048)
            resampled = [resample_uniform(t, v, n=n)[1] for t, v in active]
            sync = synchronization_score(resampled)
            if sync is not None:
                sync = _round(sync)

        return StabilityReport(
            classification=dominant.classification,
            confidence=dominant.confidence,
            dominant_queue=dominant.name,
            queues=evidences,
            sync_score=sync,
            counts=counts,
        )
