"""Analytical models used as sanity checks against the simulator."""

from repro.analysis.models import (
    dctcp_queue_amplitude_packets,
    dctcp_recommended_threshold_packets,
    ideal_shuffle_time,
    red_stationary_drop_probability,
    tcp_throughput_mathis,
)

__all__ = [
    "dctcp_queue_amplitude_packets",
    "dctcp_recommended_threshold_packets",
    "ideal_shuffle_time",
    "tcp_throughput_mathis",
    "red_stationary_drop_probability",
]
