"""Analytical models and post-run analyses of recorded telemetry."""

from repro.analysis.models import (
    dctcp_queue_amplitude_packets,
    dctcp_recommended_threshold_packets,
    ideal_shuffle_time,
    red_stationary_drop_probability,
    tcp_throughput_mathis,
)
from repro.analysis.stability import (
    CLASS_IRREGULAR,
    CLASS_LIMIT_CYCLE,
    CLASS_STABLE,
    STABILITY_SCHEMA,
    SeriesEvidence,
    StabilityAnalysis,
    StabilityReport,
    classify_series,
    snapshots_by_queue,
)

__all__ = [
    "dctcp_queue_amplitude_packets",
    "dctcp_recommended_threshold_packets",
    "ideal_shuffle_time",
    "tcp_throughput_mathis",
    "red_stationary_drop_probability",
    "CLASS_IRREGULAR",
    "CLASS_LIMIT_CYCLE",
    "CLASS_STABLE",
    "STABILITY_SCHEMA",
    "SeriesEvidence",
    "StabilityAnalysis",
    "StabilityReport",
    "classify_series",
    "snapshots_by_queue",
]
