"""Closed-form models from the literature the paper builds on.

These are not used by the simulator itself; they provide independent
predictions that the test suite compares simulation output against
(coarse agreement — factor-of-two bands — is the goal, as these models
idealise away slow start, timeouts and scheduling).

* :func:`dctcp_recommended_threshold_packets` — the DCTCP paper's
  guideline K > (C x RTT)/7 for full throughput with a single marking
  threshold (the "65 packets at 10 Gbps" the paper quotes).
* :func:`dctcp_queue_amplitude_packets` — DCTCP's queue oscillation
  amplitude O(sqrt(C x RTT)) around K.
* :func:`tcp_throughput_mathis` — the Mathis et al. square-root model
  relating loss rate to TCP throughput; explains why even sub-percent
  ACK/data loss with RTOs wrecks shuffle throughput.
* :func:`ideal_shuffle_time` — network lower bound for an all-to-all
  shuffle on a non-blocking rack: every host must *receive* its share at
  link rate.
* :func:`red_stationary_drop_probability` — RED's early-action
  probability at a given average queue, for threshold sanity checks.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

__all__ = [
    "dctcp_recommended_threshold_packets",
    "dctcp_queue_amplitude_packets",
    "tcp_throughput_mathis",
    "ideal_shuffle_time",
    "red_stationary_drop_probability",
]


def _check_positive(**kw: float) -> None:
    for name, value in kw.items():
        if value <= 0:
            raise ConfigError(f"{name} must be positive, got {value}")


def dctcp_recommended_threshold_packets(
    rate_bps: float, rtt_s: float, pkt_bytes: int = 1500
) -> float:
    """DCTCP's K > (C x RTT) / 7 guideline, in packets."""
    _check_positive(rate_bps=rate_bps, rtt_s=rtt_s, pkt_bytes=pkt_bytes)
    bdp_packets = rate_bps * rtt_s / (8.0 * pkt_bytes)
    return bdp_packets / 7.0


def dctcp_queue_amplitude_packets(
    rate_bps: float, rtt_s: float, pkt_bytes: int = 1500
) -> float:
    """DCTCP queue oscillation amplitude ~ sqrt(C x RTT) / 2 (packets)."""
    _check_positive(rate_bps=rate_bps, rtt_s=rtt_s, pkt_bytes=pkt_bytes)
    bdp_packets = rate_bps * rtt_s / (8.0 * pkt_bytes)
    return math.sqrt(bdp_packets) / 2.0


def tcp_throughput_mathis(
    mss_bytes: int, rtt_s: float, loss_rate: float
) -> float:
    """Mathis model: throughput ≈ (MSS/RTT) x sqrt(3/2) / sqrt(p), b/s."""
    _check_positive(mss_bytes=mss_bytes, rtt_s=rtt_s, loss_rate=loss_rate)
    if loss_rate >= 1.0:
        raise ConfigError(f"loss rate must be < 1, got {loss_rate}")
    return (mss_bytes * 8.0 / rtt_s) * math.sqrt(1.5) / math.sqrt(loss_rate)


def ideal_shuffle_time(
    bytes_per_receiver: float, link_rate_bps: float
) -> float:
    """Lower bound on all-to-all shuffle time on a non-blocking rack.

    Each receiver's downlink must carry its whole shuffle share; with
    perfect overlap every downlink finishes simultaneously.
    """
    _check_positive(bytes_per_receiver=bytes_per_receiver,
                    link_rate_bps=link_rate_bps)
    return bytes_per_receiver * 8.0 / link_rate_bps


def red_stationary_drop_probability(
    avg_queue: float, min_th: float, max_th: float, max_p: float
) -> float:
    """RED's early-action probability (before count correction) at ``avg``."""
    _check_positive(min_th=min_th, max_th=max_th, max_p=max_p)
    if max_th < min_th:
        raise ConfigError("max_th < min_th")
    if avg_queue < min_th:
        return 0.0
    if max_th == min_th or avg_queue >= max_th:
        return max_p
    return max_p * (avg_queue - min_th) / (max_th - min_th)
