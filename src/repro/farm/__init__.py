"""The sweep farm: a daemonized job-queue service for simulation sweeps.

The paper's evaluation — and every study layered on top of it — is a
grid of independent cells, each a pure function of its config. The farm
turns that purity into a service: one **scheduler** process owns the
content-addressed :class:`~repro.experiments.cache.ResultCache`, an
append-only journal and an artifact store; N **worker** processes pull
cells from a priority queue; and any number of clients talk JSON over a
Unix socket (``submit`` / ``status`` / ``results`` / ``cancel`` /
``watch``). Identical configs submitted by different clients share one
execution, long cells preempt gracefully at event-loop checkpoints, and
a killed scheduler or worker resumes from the journal plus the cache
with at most in-flight cells lost.

Modules
-------
:mod:`repro.farm.protocol`
    Wire format: newline-delimited JSON, config (de)serialisation.
:mod:`repro.farm.journal`
    Append-only crash-safe journal (fsynced JSONL, tolerant replay).
:mod:`repro.farm.store`
    Append-only artifact store (submitted specs, finished job results).
:mod:`repro.farm.scheduler`
    The service: socket loop, priority queue, dedup, preemption, resume.
:mod:`repro.farm.worker`
    Worker process main loop + checkpoint-based preemption.
:mod:`repro.farm.client`
    Blocking client library used by the CLI verbs and tests.
:mod:`repro.farm.smoke`
    The ``repro farm --smoke`` CI gate.
"""

from repro.farm.client import FarmClient
from repro.farm.journal import Journal
from repro.farm.protocol import config_from_dict, config_kind, config_to_wire
from repro.farm.scheduler import FarmScheduler
from repro.farm.store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "FarmClient",
    "FarmScheduler",
    "Journal",
    "config_from_dict",
    "config_kind",
    "config_to_wire",
]
