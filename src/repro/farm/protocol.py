"""Farm wire format: newline-delimited JSON + config (de)serialisation.

Every message on the client socket is one JSON object per line (UTF-8,
``\\n``-terminated). Requests carry an ``op`` field; responses carry
``ok`` (plus ``error`` when false); streamed events carry ``ev``. The
framing is deliberately trivial — any language that can open a Unix
socket and split on newlines is a farm client.

Config transport
----------------
A cell config crosses the wire as ``{"kind": <registry name>, "config":
<config_to_dict(...)>}``. The ``kind`` discriminates the five config
dataclasses that :func:`~repro.experiments.runner.run_cell` dispatches
on; :func:`config_from_dict` rebuilds the frozen dataclass (enums,
nested :class:`~repro.experiments.config.QueueSetup`, tuples) so that
the round trip preserves the content-addressed cache key exactly::

    config_cache_key(config_from_dict(config_kind(c), config_to_dict(c)))
        == config_cache_key(c)

That identity is what lets the scheduler dedup submissions from
different clients against each other and against the on-disk cache.
"""

from __future__ import annotations

import dataclasses
import json
import socket
from typing import Any, Dict, Iterator, Optional, Tuple, Type

from repro.core.protection import ProtectionMode
from repro.errors import ConfigError, FarmError
from repro.experiments.bulkcell import BulkConfig
from repro.experiments.config import ExperimentConfig, QueueSetup
from repro.experiments.fixedk import FixedKConfig
from repro.experiments.mix import MixConfig
from repro.experiments.probe import StabilityProbeConfig
from repro.tcp.endpoint import TcpVariant
from repro.telemetry.manifest import config_to_dict

__all__ = [
    "PROTOCOL_SCHEMA",
    "CONFIG_KINDS",
    "config_kind",
    "config_from_dict",
    "config_to_wire",
    "config_from_wire",
    "send_json",
    "recv_json_lines",
    "error_response",
]

PROTOCOL_SCHEMA = "repro.farm_protocol/v1"

#: ``kind`` string -> config dataclass. Order matters for
#: :func:`config_kind` only in that subclasses (none today) would need
#: to precede their bases.
CONFIG_KINDS: Dict[str, type] = {
    "cell": ExperimentConfig,
    "mix": MixConfig,
    "fixedk": FixedKConfig,
    "probe": StabilityProbeConfig,
    "bulk": BulkConfig,
}

_KIND_OF: Dict[type, str] = {cls: name for name, cls in CONFIG_KINDS.items()}

#: Fields that deserialise through an enum constructor.
_ENUM_FIELDS: Dict[str, type] = {
    "variant": TcpVariant,
    "protection": ProtectionMode,
}

#: Fields whose JSON list must come back as a tuple (frozen dataclasses
#: hash their field values).
_TUPLE_FIELDS = frozenset({"uplink_rates_bps"})


def config_kind(config) -> str:
    """Registry name for a config instance (raises FarmError if unknown)."""
    kind = _KIND_OF.get(type(config))
    if kind is None:
        raise FarmError(
            f"unknown config type {type(config).__name__}; the farm knows "
            f"{', '.join(sorted(CONFIG_KINDS))}")
    return kind


def _queue_from_dict(d: Dict[str, Any]) -> QueueSetup:
    return _rebuild(QueueSetup, d)


def _rebuild(cls: Type, d: Dict[str, Any]):
    """Rebuild one (frozen) config dataclass from its JSON-safe dict."""
    if not isinstance(d, dict):
        raise FarmError(f"{cls.__name__} config must be an object, "
                        f"got {type(d).__name__}")
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(d) - names)
    if unknown:
        raise FarmError(
            f"unknown {cls.__name__} field(s): {', '.join(unknown)}")
    kwargs: Dict[str, Any] = {}
    for name, value in d.items():
        if value is not None:
            if name == "queue":
                value = _queue_from_dict(value)
            elif name in _ENUM_FIELDS:
                try:
                    value = _ENUM_FIELDS[name](value)
                except ValueError as exc:
                    raise FarmError(str(exc)) from exc
            elif name in _TUPLE_FIELDS:
                value = tuple(value)
        kwargs[name] = value
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise FarmError(f"bad {cls.__name__} config: {exc}") from exc


def config_from_dict(kind: str, d: Dict[str, Any]):
    """Rebuild and validate a config from its wire rendering."""
    cls = CONFIG_KINDS.get(kind)
    if cls is None:
        raise FarmError(f"unknown config kind {kind!r}; known: "
                        f"{', '.join(sorted(CONFIG_KINDS))}")
    config = _rebuild(cls, d)
    try:
        config.validate()
    except ConfigError as exc:
        raise FarmError(f"invalid {kind} config: {exc}") from exc
    return config


def config_to_wire(config) -> Dict[str, Any]:
    """``{"kind": ..., "config": ...}`` wire envelope for one config."""
    return {"kind": config_kind(config), "config": config_to_dict(config)}


def config_from_wire(envelope: Dict[str, Any]):
    """Inverse of :func:`config_to_wire`."""
    if not isinstance(envelope, dict) or "config" not in envelope:
        raise FarmError("config envelope must be {'kind': ..., 'config': ...}")
    return config_from_dict(envelope.get("kind", "cell"), envelope["config"])


# -- socket framing -----------------------------------------------------------


def send_json(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Send one message (a JSON object + newline). Raises FarmError on a
    closed peer."""
    try:
        sock.sendall(json.dumps(message, separators=(",", ":")).encode()
                     + b"\n")
    except (OSError, BrokenPipeError) as exc:
        raise FarmError(f"peer went away mid-send: {exc}") from exc


def recv_json_lines(sock: socket.socket,
                    bufsize: int = 65536) -> Iterator[Dict[str, Any]]:
    """Yield messages from ``sock`` until the peer closes.

    Blocking; used by the client library and the smoke harness. The
    scheduler side uses its own non-blocking buffers inside the
    selector loop.
    """
    buf = b""
    while True:
        try:
            chunk = sock.recv(bufsize)
        except OSError as exc:
            raise FarmError(f"recv failed: {exc}") from exc
        if not chunk:
            if buf.strip():
                raise FarmError("peer closed mid-message")
            return
        buf += chunk
        while b"\n" in buf:
            line, buf = buf.split(b"\n", 1)
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise FarmError(f"bad message from peer: {exc}") from exc


def parse_lines(buf: bytearray) -> Tuple[list, bytearray]:
    """Split complete JSON lines out of a receive buffer (scheduler side).

    Returns ``(messages, remainder)``; a malformed line becomes a
    ``{"_malformed": <text>}`` marker so the caller can answer with a
    protocol error instead of killing the connection loop.
    """
    messages = []
    while b"\n" in buf:
        idx = buf.index(b"\n")
        line = bytes(buf[:idx])
        del buf[: idx + 1]
        if not line.strip():
            continue
        try:
            messages.append(json.loads(line))
        except json.JSONDecodeError:
            messages.append({"_malformed": line.decode(errors="replace")})
    return messages, buf


def error_response(message: str, **extra: Any) -> Dict[str, Any]:
    """Uniform error envelope."""
    return {"ok": False, "error": message, **extra}


def job_summary(job_id: str, state: str, counts: Dict[str, int],
                priority: int, **extra: Any) -> Dict[str, Any]:
    """Uniform job-status envelope (shared by status/submit responses)."""
    return {"id": job_id, "state": state, "priority": priority,
            "cells": counts, **extra}


def make_request(op: str, **fields: Any) -> Dict[str, Any]:
    """Build a request message (clients)."""
    req: Dict[str, Any] = {"op": op}
    req.update(fields)
    return req


def one_shot(socket_path: str, request: Dict[str, Any],
             timeout: Optional[float] = 30.0) -> Dict[str, Any]:
    """Connect, send one request, return the first response line."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        try:
            sock.connect(socket_path)
        except OSError as exc:
            raise FarmError(
                f"cannot reach farm at {socket_path}: {exc} — is "
                f"`repro serve` running?") from exc
        send_json(sock, request)
        for message in recv_json_lines(sock):
            return message
    raise FarmError("farm closed the connection without answering")
