"""Blocking client for the sweep farm (CLI verbs, tests, scripts).

Every call is one short-lived connection — connect, one JSON request,
one JSON response — except :meth:`FarmClient.watch`, which keeps its
connection open and yields streamed progress events until the job
reaches a terminal state. The farm holds no per-client state beyond
open watch subscriptions, so clients are free to crash, retry, and poll
from anywhere that can reach the Unix socket.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import FarmError
from repro.experiments.config import CellResult
from repro.experiments.cache import result_from_entry
from repro.farm.protocol import (
    config_from_dict,
    config_to_wire,
    make_request,
    one_shot,
    recv_json_lines,
    send_json,
)

__all__ = ["FarmClient"]


class FarmClient:
    """Talk to a running farm over its Unix socket.

    Parameters
    ----------
    socket_path:
        The farm's socket (``<farm-dir>/farm.sock`` by default).
    timeout:
        Per-call socket timeout in seconds (None = block forever).
    client:
        Identity string stamped on submissions (shows up in status and
        the artifact store).
    """

    def __init__(self, socket_path: str, timeout: Optional[float] = 30.0,
                 client: str = "cli"):
        self.socket_path = socket_path
        self.timeout = timeout
        self.client = client

    # -- plumbing ------------------------------------------------------------

    def _call(self, op: str, **fields: Any) -> Dict[str, Any]:
        resp = one_shot(self.socket_path, make_request(op, **fields),
                        timeout=self.timeout)
        if resp.get("ok") is False:
            raise FarmError(f"{op}: {resp.get('error', 'unknown error')}")
        return resp

    # -- ops -----------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Liveness + identity of the serving scheduler."""
        return self._call("ping")

    def stats(self) -> Dict[str, Any]:
        """Scheduler counters: jobs, units, workers, cache, preemptions."""
        return self._call("stats")

    def submit(self, cells: Iterable[Tuple[str, Any]], priority: int = 0,
               client: Optional[str] = None) -> Dict[str, Any]:
        """Submit ``(label, config)`` pairs; returns the submit response.

        ``config`` objects are any of the five cell config dataclasses;
        they cross the wire via :func:`config_to_wire`, so the farm
        computes the same cache key a local sweep would.
        """
        wire = [{"label": label, **config_to_wire(config)}
                for label, config in cells]
        return self._call("submit", cells=wire, priority=priority,
                          client=client or self.client)

    def status(self, job_id: Optional[str] = None) -> Dict[str, Any]:
        """One job's detailed status, or all jobs when ``job_id`` is None."""
        return self._call("status", id=job_id) if job_id \
            else self._call("status")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a job; running cells are preempted, not killed."""
        return self._call("cancel", id=job_id)

    def results(self, job_id: str) -> Dict[str, Any]:
        """Raw results response: cache-entry docs keyed by label."""
        return self._call("results", id=job_id)

    def fetch(self, job_id: str) -> Dict[str, CellResult]:
        """Rebuilt :class:`CellResult` objects for a finished job.

        Round-trips each entry through the same codec the on-disk cache
        uses, so a farm-fetched result compares equal (``metrics ==``)
        to a locally-run one.
        """
        resp = self.results(job_id)
        if resp.get("missing"):
            raise FarmError(
                f"job {job_id} has {len(resp['missing'])} unfinished "
                f"cell(s): {', '.join(resp['missing'][:5])}")
        kinds = resp.get("kinds", {})
        out: Dict[str, CellResult] = {}
        for label, entry in resp["results"].items():
            config = config_from_dict(kinds.get(label, "cell"),
                                      entry["config"])
            out[label] = result_from_entry(entry, config)
        return out

    def shutdown(self) -> Dict[str, Any]:
        """Ask the farm to drain in-flight cells and exit."""
        return self._call("shutdown")

    # -- streaming -----------------------------------------------------------

    def watch(self, job_id: str,
              timeout: Optional[float] = None) -> Iterator[Dict[str, Any]]:
        """Yield the job's event stream until it reaches a terminal state.

        Events: one ``{"ev": "watch", ...}`` snapshot, then
        ``{"ev": "progress", "done": ..., "total": ..., "label": ...}``
        per completed cell, then a final ``{"ev": "job_done", ...}``.
        ``timeout`` bounds the silence between events, not the total
        watch (None = wait as long as the job takes).
        """
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            try:
                sock.connect(self.socket_path)
            except OSError as exc:
                raise FarmError(
                    f"cannot reach farm at {self.socket_path}: {exc}") from exc
            send_json(sock, make_request("watch", id=job_id))
            for event in recv_json_lines(sock):
                if event.get("ok") is False:
                    raise FarmError(
                        f"watch: {event.get('error', 'unknown error')}")
                yield event
                if event.get("ev") == "job_done":
                    return
        finally:
            sock.close()

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the job finishes; returns the ``job_done`` event."""
        last: Optional[Dict[str, Any]] = None
        for event in self.watch(job_id, timeout=timeout):
            last = event
        if last is None or last.get("ev") != "job_done":
            raise FarmError(f"watch stream for {job_id} ended early "
                            f"(last event: {last})")
        return last

    def labels_seen(self, job_id: str,
                    timeout: Optional[float] = None) -> List[str]:
        """Convenience: the streamed progress labels, in arrival order."""
        return [e["label"] for e in self.watch(job_id, timeout=timeout)
                if e.get("ev") == "progress"]
