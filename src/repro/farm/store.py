"""Append-only artifact store for finished farm jobs.

One directory per job under ``<farm-dir>/artifacts/``:

* ``<job-id>/job.json`` — the submitted spec (labels, config dicts,
  priority, client), written at submit time;
* ``<job-id>/results.json`` — the merged sweep-style manifest written
  once when the job completes (per-cell manifests by label, executed /
  cached / deduped partitions, wall time).

Plus ``index.jsonl``, one line appended per *completed* job — the
audit trail a nightly-grid dashboard tails. Append-only means exactly
that: the store refuses to overwrite an existing artifact (job ids are
unique per journal history; a resumed scheduler that re-completes a job
after a crash overwrote nothing — the second ``results.json`` write is
skipped with the original left in place).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

__all__ = ["ArtifactStore"]


class ArtifactStore:
    """Filesystem-backed append-only job artifacts."""

    def __init__(self, root: str):
        os.makedirs(root, exist_ok=True)
        self.root = root
        self.index_path = os.path.join(root, "index.jsonl")

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.root, job_id)

    def _write_once(self, job_id: str, name: str,
                    payload: Dict[str, Any]) -> Optional[str]:
        """Atomically write one artifact unless it already exists."""
        d = self.job_dir(job_id)
        os.makedirs(d, exist_ok=True)
        path = os.path.join(d, name)
        if os.path.exists(path):
            return None  # append-only: first write wins
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    def put_job(self, job_id: str, spec: Dict[str, Any]) -> Optional[str]:
        """Record the submitted spec; returns the path (None if present)."""
        return self._write_once(job_id, "job.json", spec)

    def put_results(self, job_id: str,
                    results: Dict[str, Any]) -> Optional[str]:
        """Record the finished job's results + append the index line."""
        path = self._write_once(job_id, "results.json", results)
        if path is not None:
            with open(self.index_path, "a") as fh:
                fh.write(json.dumps({
                    "id": job_id,
                    "t": time.time(),
                    "state": results.get("state", "done"),
                    "cells": len(results.get("cells", {})),
                }, separators=(",", ":")) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        return path

    def read(self, job_id: str, name: str) -> Optional[Dict[str, Any]]:
        """Load one artifact, or None if absent/unreadable."""
        try:
            with open(os.path.join(self.job_dir(job_id), name)) as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def jobs(self) -> List[str]:
        """Job ids present on disk (sorted)."""
        try:
            return sorted(
                d for d in os.listdir(self.root)
                if os.path.isdir(os.path.join(self.root, d))
            )
        except OSError:
            return []
