"""Append-only crash-safe journal for the farm scheduler.

One JSONL file. Every record is a single fsynced line, so the journal
after a crash — even ``kill -9`` mid-append — is a valid prefix of the
intended history plus at most one truncated trailing line, which
:func:`Journal.replay` tolerates (and reports) instead of refusing to
start. Replay plus the content-addressed result cache is the whole
resume story: jobs and their cells come back from ``job`` records,
completed work is whatever the cache already holds (``done`` records are
an optimisation — the scheduler re-checks the cache for any cell the
journal does not account for), and in-flight cells at crash time simply
re-run.

Record shapes (all carry ``"t"``, a Unix timestamp):

* ``{"ev": "header", "schema": "repro.farm_journal/v1"}``
* ``{"ev": "job", "id": ..., "priority": ..., "client": ...,
  "cells": [{"label": ..., "key": ..., "kind": ..., "config": {...}}]}``
* ``{"ev": "done", "key": ...}`` — the unit's result reached the cache
* ``{"ev": "failed", "key": ..., "error": ...}``
* ``{"ev": "cancel", "id": ...}``
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FarmError

__all__ = ["JOURNAL_SCHEMA", "Journal"]

JOURNAL_SCHEMA = "repro.farm_journal/v1"


class Journal:
    """Appender + replayer for one journal file."""

    def __init__(self, path: str):
        self.path = path
        self._fh = None

    # -- writing -------------------------------------------------------------

    def _file(self):
        if self._fh is None:
            fresh = not os.path.exists(self.path)
            if not fresh:
                fresh = self._trim_torn_tail() == 0
            self._fh = open(self.path, "a")
            if fresh:
                self.append({"ev": "header", "schema": JOURNAL_SCHEMA})
        return self._fh

    def _trim_torn_tail(self) -> int:
        """Drop a truncated final line before the first append; returns
        the resulting file size.

        :meth:`replay` tolerates a torn final line, but appending after
        one would fuse the new record onto the fragment — a malformed
        line that is then no longer final, which the *next* replay must
        refuse. Truncating back to the last complete line keeps resume
        idempotent: the torn record was never acknowledged, so dropping
        it loses nothing.
        """
        with open(self.path, "rb+") as fh:
            data = fh.read()
            if not data or data.endswith(b"\n"):
                return len(data)
            keep = data.rfind(b"\n") + 1  # 0 when no complete line at all
            fh.truncate(keep)
            fh.flush()
            os.fsync(fh.fileno())
            return keep

    def append(self, record: Dict[str, Any]) -> None:
        """Write one record durably (flush + fsync before returning)."""
        fh = self._file()
        record = {**record, "t": time.time()}
        fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        fh.flush()
        os.fsync(fh.fileno())

    def fileno(self) -> Optional[int]:
        """Fd of the open journal file (None before the first append)."""
        return self._fh.fileno() if self._fh is not None else None

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- replay --------------------------------------------------------------

    def replay(self) -> Tuple[List[Dict[str, Any]], int]:
        """Read every intact record; returns ``(records, n_truncated)``.

        A truncated *final* line (the scheduler died mid-append) is
        skipped and counted. A malformed line anywhere else means the
        file is not a journal — that raises, because silently resuming
        from a corrupt history would be worse than refusing to.
        """
        if not os.path.exists(self.path):
            return [], 0
        records: List[Dict[str, Any]] = []
        bad_at: Optional[int] = None
        with open(self.path) as fh:
            lines = fh.read().split("\n")
        # A well-formed journal ends with "\n" -> last split element "".
        if lines and lines[-1] == "":
            lines.pop()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                bad_at = i
                break
        if bad_at is not None:
            if bad_at != len(lines) - 1:
                raise FarmError(
                    f"{self.path}: malformed journal line {bad_at + 1} "
                    f"(not the final line — refusing to resume)")
            return records, 1
        return records, 0
