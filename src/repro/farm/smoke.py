"""The ``repro farm --smoke`` CI gate.

Exercises the whole service loop against a throwaway farm directory:

1. start a scheduler (in-process thread, real workers, real socket);
2. two clients submit overlapping cell sets that share one config —
   the shared cell must execute **once** (cross-client dedup) and the
   second client must see it arrive with the ``[dedup]`` suffix in its
   streamed progress;
3. both jobs' fetched results must be bit-identical (``metrics ==``)
   to a local :func:`~repro.experiments.runner.run_cell` of the same
   configs;
4. re-submitting the same cells must be served entirely from the cache
   (``cached == total``, zero new executions);
5. a clean ``shutdown`` must drain, retire the workers, and remove the
   socket file.

Returns a JSON-safe report; raises nothing — the caller gates on
``report["ok"]``.
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
import threading
import time
from dataclasses import replace
from typing import Any, Dict, Optional

from repro.experiments.config import ExperimentConfig, QueueSetup
from repro.experiments.runner import run_cell
from repro.farm.client import FarmClient
from repro.farm.scheduler import FarmScheduler
from repro.tcp.endpoint import TcpVariant
from repro.telemetry.profiler import ProgressReporter
from repro.units import mb, us

__all__ = ["SMOKE_SCHEMA", "run_smoke"]

SMOKE_SCHEMA = "repro.farm_smoke/v1"


def _tiny(queue: QueueSetup, **kw) -> ExperimentConfig:
    """Same tiny-cell shape the test suite uses: 4 hosts, 2 MB Terasort."""
    return replace(
        ExperimentConfig(queue=queue, variant=TcpVariant.ECN),
        n_hosts=4, data_bytes=mb(2), block_bytes=mb(1), n_reducers=4, **kw
    )


def run_smoke(progress: Optional[Any] = None,
              workers: int = 2) -> Dict[str, Any]:
    """Run the gate; returns the report dict (``report["ok"]`` gates CI)."""
    say = progress or (lambda msg: None)
    # Short tempdir: AF_UNIX socket paths are length-limited.
    farm_dir = tempfile.mkdtemp(prefix="farm-smoke-")
    checks: Dict[str, bool] = {}
    report: Dict[str, Any] = {"schema": SMOKE_SCHEMA, "farm_dir": farm_dir,
                              "checks": checks}
    shared = _tiny(QueueSetup(kind="red", target_delay_s=us(100)))
    only_a = _tiny(QueueSetup(kind="droptail"))
    only_b = _tiny(QueueSetup(kind="marking", target_delay_s=us(100)))

    sched = FarmScheduler(farm_dir, workers=workers)
    thread = threading.Thread(target=sched.serve_forever, daemon=True)
    thread.start()
    t0 = time.time()
    try:
        client_a = FarmClient(sched.socket_path, client="smoke-a")
        client_b = FarmClient(sched.socket_path, client="smoke-b")
        _wait_for_socket(client_a)
        say("farm up; submitting two overlapping jobs")

        sub_a = client_a.submit([("a/plain", only_a), ("a/shared", shared)])
        sub_b = client_b.submit([("b/shared", shared), ("b/plain", only_b)])
        # Watch both jobs concurrently: progress events are streamed
        # live, not replayed, so each watcher must be attached before
        # its job's cells start completing.
        events_a: list = []
        events_b: list = []
        watchers = [
            threading.Thread(
                target=lambda ev=events_a: ev.extend(
                    client_a.watch(sub_a["id"], timeout=120.0))),
            threading.Thread(
                target=lambda ev=events_b: ev.extend(
                    client_b.watch(sub_b["id"], timeout=120.0))),
        ]
        for w in watchers:
            w.start()
        for w in watchers:
            w.join(timeout=180.0)
        checks["streamed_progress"] = (
            any(e.get("ev") == "progress" for e in events_a)
            and events_a[-1].get("ev") == "job_done"
            and events_b[-1].get("ev") == "job_done")

        # Cross-client dedup: 4 labels, 3 distinct configs -> exactly 3
        # executions, and one of the shared labels arrived as [dedup].
        stats = client_a.stats()
        outcomes = {**_labels(client_a, sub_a["id"]),
                    **_labels(client_b, sub_b["id"])}
        shared_outcomes = sorted((outcomes["a/shared"], outcomes["b/shared"]))
        checks["deduped_shared_cell"] = shared_outcomes == ["dedup",
                                                           "executed"]
        checks["three_entries_cached"] = stats["cache"]["entries"] == 3
        dedup_labels = [e["label"] for e in events_a + events_b
                        if e.get("ev") == "progress"
                        and e["label"].endswith(ProgressReporter.DEDUP_SUFFIX)]
        checks["dedup_visible_in_stream"] = len(dedup_labels) == 1
        say(f"dedup ok: {shared_outcomes} "
            f"({stats['cache']['entries']} cache entries)")

        # Farm results must be bit-identical to local runs.
        got = {**client_a.fetch(sub_a["id"]), **client_b.fetch(sub_b["id"])}
        local = {"a/plain": run_cell(only_a), "a/shared": run_cell(shared),
                 "b/plain": run_cell(only_b)}
        local["b/shared"] = local["a/shared"]
        checks["bit_identical_to_local"] = all(
            got[label].metrics == local[label].metrics for label in got)
        say("farm results bit-identical to local runs")

        # Second submission of the same configs: all served from cache.
        sub_c = client_a.submit([("c/plain", only_a), ("c/shared", shared),
                                 ("c/other", only_b)])
        checks["resubmission_cache_served"] = (
            sub_c["state"] == "done"
            and sub_c["cells"]["cached"] == sub_c["cells"]["total"] == 3)
        say("resubmission served entirely from cache")

        client_a.shutdown()
        thread.join(timeout=60.0)
        checks["clean_shutdown"] = (not thread.is_alive()
                                    and not os.path.exists(sched.socket_path))
        say("clean shutdown")
    except Exception as exc:  # the gate reports, it does not crash CI logs
        report["error"] = f"{type(exc).__name__}: {exc}"
        checks["no_exception"] = False
    finally:
        sched.stop()
        thread.join(timeout=10.0)
        shutil.rmtree(farm_dir, ignore_errors=True)

    report["wall_s"] = time.time() - t0
    report["ok"] = bool(checks) and all(checks.values())
    return report


def _labels(client: FarmClient, job_id: str) -> Dict[str, str]:
    return client.status(job_id)["labels"]


def _wait_for_socket(client: FarmClient, timeout_s: float = 10.0) -> None:
    from repro.errors import FarmError

    deadline = time.time() + timeout_s
    while True:
        try:
            client.ping()
            return
        except FarmError:
            if time.time() >= deadline:
                raise
            time.sleep(0.05)


def main() -> int:  # pragma: no cover - exercised via the CLI verb
    report = run_smoke(progress=lambda m: print(f"  {m}", file=sys.stderr))
    print(f"farm --smoke: {'OK' if report['ok'] else 'FAILED'} "
          f"(wall time {report['wall_s']:.1f}s)")
    for name, ok in report["checks"].items():
        print(f"  {name:<28}: {'ok' if ok else 'FAILED'}")
    if report.get("error"):
        print(f"  error: {report['error']}", file=sys.stderr)
    return 0 if report["ok"] else 1
