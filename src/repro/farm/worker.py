"""Farm worker process: pull cells, run them, stream results back.

A worker is a child process of the scheduler connected by one
``multiprocessing.Pipe``. The loop is strictly request/response-free —
the scheduler pushes ``{"op": "run", ...}`` messages and the worker
answers with exactly one terminal message per cell::

    {"ev": "ready"}                       # once, at startup
    {"ev": "done", "key": ..., "entry": <cache-entry doc>, "wall_s": ...}
    {"ev": "preempted", "key": ...}       # cell yielded at a checkpoint
    {"ev": "error", "key": ..., "error": "..."}

Results travel as the same JSON-safe cache-entry document the on-disk
cache stores (:func:`~repro.experiments.cache.result_to_entry`), so the
scheduler persists them verbatim and a farm-served result is
byte-identical to a locally-cached one.

Preemption
----------
The scheduler sends ``SIGUSR1``; the handler only sets a flag. The flag
is *observed* at event-loop checkpoints: the worker installs a
:attr:`~repro.sim.engine.Simulator.on_create` birth hook that arms a
self-re-arming simulated-time event on every kernel the cell builds.
Each checkpoint rewinds the ``events_processed`` counter by one (the
checkpoint is harness bookkeeping, not workload — manifests must match
un-checkpointed runs exactly), raises
:class:`~repro.errors.PreemptedError` if the flag is up, and re-arms
only while the heap is non-empty so heap-drain termination still works.
Checkpoints only read kernel state, so a preempted-and-rerun cell is
bit-identical to an undisturbed one.

``SIGTERM`` requests a graceful exit: finish (or preempt) the current
cell, then leave the loop.
"""

from __future__ import annotations

import os
import signal
import traceback
from typing import Optional, Sequence

from repro.errors import FarmError, PreemptedError
from repro.experiments.cache import result_to_entry
from repro.experiments.runner import run_cell
from repro.farm.protocol import config_from_dict
from repro.sim.engine import Simulator

__all__ = ["CHECKPOINT_INTERVAL_S", "install_checkpoints", "worker_main"]

#: Simulated seconds between preemption checkpoints. Cells simulate tens
#: of seconds, so this bounds preemption latency to a small fraction of a
#: cell while adding only a handful of (accounting-neutral) events.
CHECKPOINT_INTERVAL_S = 0.25

#: Set by the SIGUSR1 handler, consumed at the next checkpoint.
_preempt_requested = False
#: Set by the SIGTERM handler, consumed between cells.
_exit_requested = False


def _on_sigusr1(_signum, _frame) -> None:
    global _preempt_requested
    _preempt_requested = True


def _on_sigterm(_signum, _frame) -> None:
    global _exit_requested
    _exit_requested = True


def install_checkpoints(interval_s: float = CHECKPOINT_INTERVAL_S):
    """Install the preemption birth hook; returns the previous hook.

    Every :class:`Simulator` constructed while the hook is installed gets
    a periodic checkpoint event. The checkpoint:

    * subtracts itself from ``events_processed`` (manifests record that
      counter; a checkpointed run must report the same number as a plain
      one);
    * raises :class:`PreemptedError` when SIGUSR1 arrived;
    * re-arms only while other events remain, so it never keeps an
      otherwise-finished kernel alive.
    """
    previous = Simulator.on_create

    def arm(sim: Simulator) -> None:
        def tick() -> None:
            sim._events_processed -= 1  # harness event: invisible to manifests
            if _preempt_requested:
                raise PreemptedError(
                    f"preempted at t={sim.now:.3f}s (checkpoint)")
            if sim._heap:  # drained heap = cell finishing; let it
                sim.schedule(interval_s, tick)

        sim.schedule(interval_s, tick)
        if previous is not None:
            previous(sim)

    Simulator.on_create = arm
    return previous


def _run_request(conn, request) -> None:
    """Execute one ``run`` request and send the terminal message.

    The preemption flag is cleared when the terminal message goes out —
    never at the start of a run. The scheduler may SIGUSR1 as soon as it
    dispatches; a start-of-run reset would silently erase a request that
    landed between dispatch and the reset, leaving the high-priority
    unit to wait out the whole cell. Clearing at the terminal send means
    a request for the finished cell cannot leak into the next one, while
    a request for the *new* cell (delivered any time after dispatch)
    survives until its first checkpoint.
    """
    global _preempt_requested
    key = request.get("key", "?")
    try:
        config = config_from_dict(request["kind"], request["config"])
        result = run_cell(config)
        entry = result_to_entry(result)
        _preempt_requested = False
        conn.send({"ev": "done", "key": key, "entry": entry,
                   "wall_s": result.manifest["timings"]["wall_s"]
                   if result.manifest else None})
    except PreemptedError:
        _preempt_requested = False
        conn.send({"ev": "preempted", "key": key})
    except Exception:
        _preempt_requested = False
        conn.send({"ev": "error", "key": key,
                   "error": traceback.format_exc(limit=8)})


def worker_main(conn, interval_s: float = CHECKPOINT_INTERVAL_S,
                close_fds: Sequence[int] = ()) -> None:
    """Entry point for a worker process (``multiprocessing.Process`` target).

    Parameters
    ----------
    conn:
        Worker end of a ``multiprocessing.Pipe`` to the scheduler.
    interval_s:
        Simulated-time spacing of preemption checkpoints.
    close_fds:
        Parent file descriptors to close immediately (fork inherits
        them). The scheduler passes every fd only it should own — the
        listener, connected client sockets, the journal, sibling worker
        pipes. An orphaned worker keeping any of those alive would make
        a SIGKILLed farm's socket accept connections nobody answers, or
        rob a client of the EOF that tells it the farm died.
    """
    global _exit_requested, _preempt_requested
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    _exit_requested = False
    _preempt_requested = False  # fork copies the parent's module state
    signal.signal(signal.SIGUSR1, _on_sigusr1)
    signal.signal(signal.SIGTERM, _on_sigterm)
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the scheduler owns ^C
    install_checkpoints(interval_s)
    conn.send({"ev": "ready"})
    try:
        while not _exit_requested:
            # Wake periodically so a SIGTERM between cells is noticed.
            if not conn.poll(0.2):
                continue
            try:
                request = conn.recv()
            except (EOFError, OSError):
                break  # scheduler went away; nothing to serve
            op = request.get("op") if isinstance(request, dict) else None
            if op == "run":
                _run_request(conn, request)
            elif op == "exit":
                break
            else:
                conn.send({"ev": "error", "key": "?",
                           "error": f"unknown worker op {op!r}"})
    except KeyboardInterrupt:  # pragma: no cover - belt and braces
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


def spawn_worker(interval_s: float = CHECKPOINT_INTERVAL_S, ctx=None,
                 close_fds: Sequence[int] = ()):
    """Start one worker; returns ``(process, scheduler_conn)``.

    Uses the given multiprocessing context (default: ``fork`` where
    available for cheap startup, else the platform default).
    """
    import multiprocessing as mp

    if ctx is None:
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            ctx = mp.get_context()
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(target=worker_main,
                       args=(child_conn, interval_s, tuple(close_fds)),
                       daemon=True)
    proc.start()
    child_conn.close()
    return proc, parent_conn
