"""The farm scheduler: socket loop, priority queue, dedup, resume.

One scheduler process owns everything mutable — the content-addressed
:class:`~repro.experiments.cache.ResultCache`, the crash-safe
:class:`~repro.farm.journal.Journal`, the append-only
:class:`~repro.farm.store.ArtifactStore` — and drives N worker processes
plus any number of client connections from a single ``selectors`` loop.
No locks anywhere: workers talk over ``multiprocessing.Pipe``\\ s, clients
over a Unix socket, and both kinds of file descriptor wake the same
loop.

Execution model
---------------
Work is deduplicated at the **execution unit** level: a unit is one
cache key (= one canonical config), and every ``(job, label)`` that
needs that key — from the same submission or from different clients —
is a *waiter* on the same unit. A unit runs at the **highest** priority
any waiter asked for, at most once; when it finishes, every waiter's
job ticks (the first waiter plainly, the rest with the ``[dedup]``
suffix the :class:`~repro.telemetry.profiler.ProgressReporter`
convention defines).

The pending queue is a lazy max-priority heap (``(-priority, seq)``
entries; stale entries are skipped when popped). When every worker is
busy and a pending unit outranks the lowest-priority running one, the
scheduler sends that worker ``SIGUSR1``: the worker's event-loop
checkpoint raises out of the cell, reports ``preempted``, and the unit
requeues — nothing is lost, because a cell is a pure function of its
config.

Crash safety
------------
Every submission is journalled (fsynced) before it is acknowledged, and
every completed unit's result reaches the cache before its ``done``
record. On startup the scheduler replays the journal — tolerating a
torn final line — and re-checks the cache at dispatch time, so a killed
scheduler resumes with at most the in-flight cells re-executed and a
killed worker costs exactly the cell it was running.
"""

from __future__ import annotations

import heapq
import json
import os
import selectors
import signal
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FarmError
from repro.experiments.cache import CACHE_SCHEMA, ResultCache
from repro.farm.journal import Journal
from repro.farm.protocol import (
    PROTOCOL_SCHEMA,
    config_from_dict,
    error_response,
    parse_lines,
    send_json,
)
from repro.farm.store import ArtifactStore
from repro.farm.worker import CHECKPOINT_INTERVAL_S, spawn_worker
from repro.telemetry.profiler import ProgressFanout, ProgressReporter

__all__ = ["FarmScheduler", "RESULTS_SCHEMA"]

RESULTS_SCHEMA = "repro.farm_results/v1"

#: A cell that crashes its worker this many times is declared failed
#: instead of being requeued forever.
MAX_UNIT_ATTEMPTS = 3

#: Consecutive worker deaths without a single completed cell in between
#: before the scheduler stops respawning (a poisoned environment, not a
#: poisoned cell).
MAX_CONSECUTIVE_CRASHES = 8

#: Label suffix for cells that failed (progress-stream convention,
#: alongside ``[cached]`` / ``[dedup]``).
FAILED_SUFFIX = " [failed]"

#: Per-event send deadline for watch progress streams. Progress is
#: best-effort: sends run synchronously inside the single selector
#: loop, so a watcher that cannot take a small event within this window
#: (full socket buffer, suspended client) is stalled and gets dropped
#: instead of wedging dispatch, worker messages and every other client
#: behind the 5s request timeout.
WATCH_SEND_TIMEOUT_S = 0.25

#: Request/response (and terminal-event) socket timeout.
CLIENT_SEND_TIMEOUT_S = 5.0


@dataclass
class ExecUnit:
    """One deduplicated execution: a cache key plus its waiters."""

    key: str
    kind: str
    config: Dict[str, Any]
    priority: int
    seq: int
    state: str = "pending"  #: pending | running | done | failed | cancelled
    waiters: List[Tuple[str, str]] = field(default_factory=list)
    attempts: int = 0
    error: Optional[str] = None


@dataclass
class Job:
    """One client submission: an ordered set of labelled cells."""

    id: str
    client: str
    priority: int
    labels: List[str] = field(default_factory=list)
    key_of: Dict[str, str] = field(default_factory=dict)
    kind_of: Dict[str, str] = field(default_factory=dict)
    #: label -> outcome ("executed" | "cached" | "dedup" | "failed")
    done: Dict[str, str] = field(default_factory=dict)
    cancelled: bool = False
    t_submit: float = field(default_factory=time.time)
    fanout: ProgressFanout = field(default_factory=ProgressFanout)
    watchers: List[socket.socket] = field(default_factory=list)

    @property
    def state(self) -> str:
        if self.cancelled:
            return "cancelled"
        if len(self.done) >= len(self.labels):
            return ("failed" if any(v == "failed"
                                    for v in self.done.values()) else "done")
        return "running"

    def counts(self) -> Dict[str, int]:
        out = {"total": len(self.labels), "done": len(self.done),
               "executed": 0, "cached": 0, "dedup": 0, "failed": 0}
        for outcome in self.done.values():
            out[outcome] += 1
        return out


class _WorkerSlot:
    """One worker process + its pipe, as seen by the scheduler."""

    __slots__ = ("proc", "conn", "busy", "preempting")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.busy: Optional[str] = None  #: key of the running unit
        self.preempting = False


class _ClientState:
    """Per-connection receive buffer + watcher registration."""

    __slots__ = ("buf", "watching")

    def __init__(self):
        self.buf = bytearray()
        self.watching: Optional[Tuple[str, int]] = None  #: (job_id, token)


class FarmScheduler:
    """The sweep-farm service (see module docstring).

    Parameters
    ----------
    farm_dir:
        Service state directory: ``cache/``, ``artifacts/``,
        ``journal.jsonl`` and (by default) ``farm.sock`` live here. An
        existing directory is **resumed**, not wiped.
    workers:
        Worker processes to keep alive.
    socket_path:
        Unix-socket override. ``AF_UNIX`` paths are limited to ~100
        characters — pass a short path (e.g. under ``/tmp``) when the
        farm dir is deeply nested.
    checkpoint_s:
        Simulated-time spacing of worker preemption checkpoints.
    """

    def __init__(
        self,
        farm_dir: str,
        workers: int = 2,
        socket_path: Optional[str] = None,
        checkpoint_s: float = CHECKPOINT_INTERVAL_S,
    ):
        if workers < 1:
            raise FarmError(f"workers must be >= 1, got {workers}")
        os.makedirs(farm_dir, exist_ok=True)
        self.farm_dir = farm_dir
        self.socket_path = socket_path or os.path.join(farm_dir, "farm.sock")
        if len(self.socket_path.encode()) > 100:
            raise FarmError(
                f"socket path too long for AF_UNIX "
                f"({len(self.socket_path)} chars): pass socket_path= / "
                f"--socket with a short path (e.g. under /tmp)")
        self.n_workers = workers
        self.checkpoint_s = checkpoint_s
        self.cache = ResultCache(os.path.join(farm_dir, "cache"))
        self.journal = Journal(os.path.join(farm_dir, "journal.jsonl"))
        self.store = ArtifactStore(os.path.join(farm_dir, "artifacts"))

        self.jobs: Dict[str, Job] = {}
        self.units: Dict[str, ExecUnit] = {}
        self._heap: List[Tuple[int, int, str]] = []
        self._seq = 0
        self._job_seq = 0
        self.preemptions = 0
        self.worker_crashes = 0
        self._consecutive_crashes = 0
        self._shutdown = False
        self._selector: Optional[selectors.BaseSelector] = None
        self._listener: Optional[socket.socket] = None
        self._slots: List[_WorkerSlot] = []
        self._clients: Dict[socket.socket, _ClientState] = {}

        self.resumed_jobs = 0
        self.resumed_truncated = 0
        self._resume()

    # -- journal resume ------------------------------------------------------

    def _resume(self) -> None:
        records, truncated = self.journal.replay()
        self.resumed_truncated = truncated
        for rec in records:
            ev = rec.get("ev")
            if ev == "job":
                self._add_job(rec["id"], rec.get("client", "?"),
                              int(rec.get("priority", 0)), rec["cells"])
                self.resumed_jobs += 1
            elif ev == "done":
                unit = self.units.get(rec.get("key", ""))
                # Trust the cache, not the record: a pruned cache entry
                # means the work is genuinely gone and must re-run.
                if unit is not None and unit.state in ("pending", "running"):
                    if self._cache_has(unit.key):
                        self._unit_finished(unit, "executed")
            elif ev == "failed":
                unit = self.units.get(rec.get("key", ""))
                if unit is not None and unit.state in ("pending", "running"):
                    unit.error = rec.get("error")
                    self._unit_finished(unit, "failed")
            elif ev == "cancel":
                job = self.jobs.get(rec.get("id", ""))
                if job is not None and not job.cancelled:
                    self._cancel_job(job, journal=False)

    # -- bookkeeping helpers -------------------------------------------------

    def _cache_has(self, key: str) -> bool:
        """Is a well-formed entry for ``key`` on disk right now?"""
        try:
            with open(os.path.join(self.cache.root, key + ".json")) as fh:
                return json.load(fh).get("schema") == CACHE_SCHEMA
        except (OSError, json.JSONDecodeError):
            return False

    def _cache_entry(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            with open(os.path.join(self.cache.root, key + ".json")) as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        return entry if entry.get("schema") == CACHE_SCHEMA else None

    def _push(self, unit: ExecUnit) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (-unit.priority, self._seq, unit.key))

    def _pop_pending(self) -> Optional[ExecUnit]:
        """Highest-priority pending unit with live waiters (lazy heap)."""
        while self._heap:
            _np, _seq, key = heapq.heappop(self._heap)
            unit = self.units.get(key)
            if unit is None or unit.state != "pending":
                continue  # stale entry (already dispatched/finished)
            if not unit.waiters:
                unit.state = "cancelled"
                continue
            return unit
        return None

    def _peek_priority(self) -> Optional[int]:
        """Priority of the best live pending unit (cleans stale heads)."""
        while self._heap:
            _np, _seq, key = self._heap[0]
            unit = self.units.get(key)
            if unit is None or unit.state != "pending" or not unit.waiters:
                heapq.heappop(self._heap)
                if unit is not None and unit.state == "pending":
                    unit.state = "cancelled"
                continue
            return unit.priority
        return None

    # -- job lifecycle -------------------------------------------------------

    def _add_job(self, job_id: str, client: str, priority: int,
                 cells: List[Dict[str, Any]]) -> Job:
        """Register one submission (shared by the submit op and resume)."""
        job = Job(id=job_id, client=client, priority=priority)
        self.jobs[job_id] = job
        self._job_seq = max(self._job_seq, _job_number(job_id))
        for cell in cells:
            label, key = cell["label"], cell["key"]
            job.labels.append(label)
            job.key_of[label] = key
            job.kind_of[label] = cell.get("kind", "cell")
        # Second pass so job.labels is complete before any completion
        # tick can declare the job done.
        for cell in cells:
            label, key = cell["label"], cell["key"]
            if self._cache_has(key):
                job.done[label] = "cached"
                self._tick(job, label, ProgressReporter.CACHED_SUFFIX)
                continue
            unit = self.units.get(key)
            if unit is None or unit.state in ("done", "failed", "cancelled"):
                # done-but-evicted / previously-failed keys get a fresh
                # unit: resubmission is the retry mechanism.
                self._seq += 1
                unit = ExecUnit(key=key, kind=cell.get("kind", "cell"),
                                config=cell["config"], priority=priority,
                                seq=self._seq)
                self.units[key] = unit
                unit.waiters.append((job_id, label))
                self._push(unit)
            else:
                unit.waiters.append((job_id, label))
                if priority > unit.priority:
                    unit.priority = priority
                    if unit.state == "pending":
                        self._push(unit)  # re-rank; old entry goes stale
        return job

    def _tick(self, job: Job, label: str, suffix: str = "") -> None:
        """One label of ``job`` completed; stream progress, maybe finish."""
        job.fanout(len(job.done), len(job.labels), label + suffix)
        if len(job.done) >= len(job.labels):
            self._complete_job(job)

    def _complete_job(self, job: Job) -> None:
        doc = {
            "schema": RESULTS_SCHEMA,
            "id": job.id,
            "client": job.client,
            "priority": job.priority,
            "state": job.state,
            "cells": {label: {"key": job.key_of[label],
                              "outcome": job.done.get(label, "lost")}
                      for label in job.labels},
            "wall_s": time.time() - job.t_submit,
        }
        self.store.put_results(job.id, doc)
        self._notify_job_done(job)

    def _notify_job_done(self, job: Job) -> None:
        """Send the terminal event to watchers and drop them."""
        for sock in list(job.watchers):
            try:
                send_json(sock, {"ev": "job_done", "id": job.id,
                                 "state": job.state,
                                 "cells": job.counts()})
            except FarmError:
                pass
            self._close_client(sock)

    def _unit_finished(self, unit: ExecUnit, outcome: str) -> None:
        """Credit every waiter of a finished unit.

        ``outcome`` is "executed", "cached" (dispatch-time cache hit) or
        "failed". The first executed waiter ticks plainly; the rest tick
        with the ``[dedup]`` suffix — that is the cross-client dedup
        made visible.
        """
        unit.state = "failed" if outcome == "failed" else "done"
        first = True
        for job_id, label in unit.waiters:
            job = self.jobs.get(job_id)
            if job is None or job.cancelled or label in job.done:
                continue
            if outcome == "executed":
                job.done[label] = "executed" if first else "dedup"
                suffix = "" if first else ProgressReporter.DEDUP_SUFFIX
                first = False
            elif outcome == "cached":
                job.done[label] = "cached"
                suffix = ProgressReporter.CACHED_SUFFIX
            else:
                job.done[label] = "failed"
                suffix = FAILED_SUFFIX
            self._tick(job, label, suffix)
        unit.waiters = []

    def _cancel_job(self, job: Job, journal: bool = True) -> None:
        job.cancelled = True
        if journal:
            self.journal.append({"ev": "cancel", "id": job.id})
        for unit in self.units.values():
            if unit.state not in ("pending", "running"):
                continue
            before = len(unit.waiters)
            unit.waiters = [(j, l) for j, l in unit.waiters if j != job.id]
            if before and not unit.waiters:
                if unit.state == "pending":
                    unit.state = "cancelled"
                elif unit.state == "running":
                    # Free the worker; the preempted unit has nobody
                    # left waiting and will be discarded on report.
                    self._preempt_key(unit.key)
        self._notify_job_done(job)

    # -- worker management ---------------------------------------------------

    def _spawn_one(self) -> None:
        # The forked child must not keep scheduler-only fds alive after
        # a scheduler SIGKILL: the listener would leave the socket
        # accepting connections nobody answers; a client socket (watch
        # streams — workers respawned mid-session fork while clients
        # are connected) would rob that client of its EOF; a sibling's
        # pipe end would mask that worker's death; the journal fd could
        # outlive the scheduler that owns the append order.
        fds: List[int] = []
        if self._listener is not None:
            fds.append(self._listener.fileno())
        for sock in self._clients:
            try:
                fds.append(sock.fileno())
            except OSError:  # pragma: no cover - closing race
                pass
        for other in self._slots:
            try:
                fds.append(other.conn.fileno())
            except OSError:  # pragma: no cover - dying sibling
                pass
        journal_fd = self.journal.fileno()
        if journal_fd is not None:
            fds.append(journal_fd)
        proc, conn = spawn_worker(self.checkpoint_s,
                                  close_fds=[fd for fd in fds if fd >= 0])
        slot = _WorkerSlot(proc, conn)
        self._slots.append(slot)
        if self._selector is not None:
            self._selector.register(conn, selectors.EVENT_READ,
                                    ("worker", slot))

    def _preempt_key(self, key: str) -> None:
        for slot in self._slots:
            if slot.busy == key and not slot.preempting:
                slot.preempting = True
                self.preemptions += 1
                try:
                    os.kill(slot.proc.pid, signal.SIGUSR1)
                except (OSError, TypeError):  # pragma: no cover - dying worker
                    pass
                return

    def _pump(self) -> None:
        """Dispatch pending units to idle workers; trigger preemption."""
        if self._shutdown:
            return
        for slot in self._slots:
            if slot.busy is not None:
                continue
            unit = self._pop_pending()
            if unit is None:
                break
            # Dispatch-time cache check: the resume path after a crash
            # (journal lost its tail, cache kept the result) and the
            # window where another client's identical cell finished
            # between submit and dispatch both land here.
            if self._cache_has(unit.key):
                self.journal.append({"ev": "done", "key": unit.key})
                self._unit_finished(unit, "cached")
                continue
            slot.conn.send({"op": "run", "key": unit.key,
                            "kind": unit.kind, "config": unit.config})
            slot.busy = unit.key
            unit.state = "running"
        # Priority inversion? Preempt the lowest-priority running unit
        # when a pending one outranks it and no worker is idle.
        top = self._peek_priority()
        if top is None:
            return
        victim: Optional[_WorkerSlot] = None
        victim_priority = top
        for slot in self._slots:
            if slot.busy is None or slot.preempting:
                continue
            unit = self.units.get(slot.busy)
            if unit is not None and unit.priority < victim_priority:
                victim = slot
                victim_priority = unit.priority
        if victim is not None:
            self._preempt_key(victim.busy)

    def _on_worker_message(self, slot: _WorkerSlot, msg: Dict[str, Any]) -> None:
        ev = msg.get("ev")
        if ev == "ready":
            return
        key = msg.get("key", "")
        unit = self.units.get(key)
        if slot.busy == key:
            slot.busy = None
            slot.preempting = False
        if ev == "done":
            self._consecutive_crashes = 0
            # Result becomes durable *before* the journal says so.
            self.cache.put_entry(msg["entry"])
            self.journal.append({"ev": "done", "key": key})
            if unit is not None and unit.state == "running":
                self._unit_finished(unit, "executed")
        elif ev == "preempted":
            if unit is not None and unit.state == "running":
                if unit.waiters:
                    unit.state = "pending"
                    self._push(unit)
                else:
                    unit.state = "cancelled"
        elif ev == "error":
            err = str(msg.get("error", "?"))[-2000:]
            self.journal.append({"ev": "failed", "key": key, "error": err})
            if unit is not None and unit.state == "running":
                unit.error = err
                self._unit_finished(unit, "failed")

    def _on_worker_death(self, slot: _WorkerSlot) -> None:
        self.worker_crashes += 1
        self._consecutive_crashes += 1
        if self._selector is not None:
            try:
                self._selector.unregister(slot.conn)
            except (KeyError, ValueError):
                pass
        try:
            slot.conn.close()
        except OSError:
            pass
        if slot in self._slots:
            self._slots.remove(slot)
        slot.proc.join(timeout=1.0)
        key = slot.busy
        if key:
            unit = self.units.get(key)
            if unit is not None and unit.state == "running":
                unit.attempts += 1
                if unit.attempts >= MAX_UNIT_ATTEMPTS:
                    err = (f"worker died {unit.attempts} times running this "
                           f"cell")
                    self.journal.append({"ev": "failed", "key": key,
                                         "error": err})
                    unit.error = err
                    self._unit_finished(unit, "failed")
                elif unit.waiters:
                    unit.state = "pending"
                    self._push(unit)
                else:
                    unit.state = "cancelled"
        if (not self._shutdown
                and self._consecutive_crashes < MAX_CONSECUTIVE_CRASHES):
            self._spawn_one()

    # -- client ops ----------------------------------------------------------

    def _handle_request(self, sock: socket.socket,
                        req: Dict[str, Any]) -> None:
        if "_malformed" in req:
            send_json(sock, error_response(
                f"not valid JSON: {req['_malformed'][:120]!r}"))
            return
        op = req.get("op")
        handler = {
            "ping": self._op_ping,
            "stats": self._op_stats,
            "submit": self._op_submit,
            "status": self._op_status,
            "results": self._op_results,
            "cancel": self._op_cancel,
            "watch": self._op_watch,
            "shutdown": self._op_shutdown,
        }.get(op)
        if handler is None:
            send_json(sock, error_response(f"unknown op {op!r}"))
            return
        try:
            handler(sock, req)
        except FarmError as exc:
            send_json(sock, error_response(str(exc)))

    def _op_ping(self, sock, req) -> None:
        send_json(sock, {"ok": True, "schema": PROTOCOL_SCHEMA,
                         "pid": os.getpid(), "workers": len(self._slots),
                         "jobs": len(self.jobs)})

    def _op_stats(self, sock, req) -> None:
        by_state: Dict[str, int] = {}
        for unit in self.units.values():
            by_state[unit.state] = by_state.get(unit.state, 0) + 1
        send_json(sock, {
            "ok": True,
            "jobs": {jid: {"state": j.state, "cells": j.counts()}
                     for jid, j in self.jobs.items()},
            "units": by_state,
            "workers": len(self._slots),
            "busy": sum(1 for s in self._slots if s.busy is not None),
            "preemptions": self.preemptions,
            "worker_crashes": self.worker_crashes,
            "resumed_jobs": self.resumed_jobs,
            "resumed_truncated_lines": self.resumed_truncated,
            "cache": self.cache.stats(),
        })

    def _op_submit(self, sock, req) -> None:
        raw_cells = req.get("cells")
        if not isinstance(raw_cells, list) or not raw_cells:
            raise FarmError("submit needs a non-empty 'cells' list")
        priority = int(req.get("priority", 0))
        client = str(req.get("client", "?"))
        from repro.experiments.cache import config_cache_key
        from repro.telemetry.manifest import config_to_dict

        cells: List[Dict[str, Any]] = []
        seen_labels = set()
        for i, cell in enumerate(raw_cells):
            if not isinstance(cell, dict) or "config" not in cell:
                raise FarmError(
                    f"cells[{i}] must be "
                    "{'label': ..., 'kind': ..., 'config': ...}")
            kind = cell.get("kind", "cell")
            config = config_from_dict(kind, cell["config"])
            label = str(cell.get("label") or config.label())
            if label in seen_labels:
                raise FarmError(f"duplicate cell label {label!r}")
            seen_labels.add(label)
            cells.append({
                "label": label,
                "kind": kind,
                # Re-render from the validated object so the journal
                # holds exactly what the key was computed over.
                "config": config_to_dict(config),
                "key": config_cache_key(config),
            })

        self._job_seq += 1
        job_id = f"job-{self._job_seq:06d}"
        # Durability order: journal first (the ack promise), artifacts
        # second, memory last.
        self.journal.append({"ev": "job", "id": job_id, "client": client,
                             "priority": priority, "cells": cells})
        self.store.put_job(job_id, {
            "schema": RESULTS_SCHEMA, "id": job_id, "client": client,
            "priority": priority,
            "cells": [{k: v for k, v in c.items()} for c in cells],
        })
        job = self._add_job(job_id, client, priority, cells)
        self._pump()
        counts = job.counts()
        # In-submission and cross-client dedup, made visible: pending
        # labels whose unit already carries another waiter.
        deduped = sum(
            1 for label in job.labels
            if label not in job.done
            and (self.units.get(job.key_of[label]) is not None
                 and (job.id, label) != self.units[job.key_of[label]].waiters[0])
        )
        send_json(sock, {"ok": True, "id": job_id, "state": job.state,
                         "priority": priority, "cells": counts,
                         "deduped_pending": deduped})

    def _require_job(self, req) -> Job:
        job_id = req.get("id")
        job = self.jobs.get(job_id or "")
        if job is None:
            raise FarmError(f"unknown job {job_id!r}")
        return job

    def _op_status(self, sock, req) -> None:
        if req.get("id"):
            job = self._require_job(req)
            labels = {label: job.done.get(label, "pending")
                      for label in job.labels}
            send_json(sock, {"ok": True, "id": job.id, "state": job.state,
                             "client": job.client, "priority": job.priority,
                             "cells": job.counts(), "labels": labels})
        else:
            send_json(sock, {"ok": True, "jobs": [
                {"id": j.id, "state": j.state, "client": j.client,
                 "priority": j.priority, "cells": j.counts()}
                for j in self.jobs.values()
            ]})

    def _op_results(self, sock, req) -> None:
        job = self._require_job(req)
        results: Dict[str, Any] = {}
        missing: List[str] = []
        for label in job.labels:
            entry = self._cache_entry(job.key_of[label])
            if entry is None:
                missing.append(label)
            else:
                results[label] = entry
        send_json(sock, {"ok": True, "id": job.id, "state": job.state,
                         "kinds": dict(job.kind_of), "results": results,
                         "missing": missing})

    def _op_cancel(self, sock, req) -> None:
        job = self._require_job(req)
        if not job.cancelled and job.state == "running":
            self._cancel_job(job)
        send_json(sock, {"ok": True, "id": job.id, "state": job.state})

    def _op_watch(self, sock, req) -> None:
        job = self._require_job(req)
        send_json(sock, {"ev": "watch", "ok": True, "id": job.id,
                         "state": job.state, "cells": job.counts()})
        if job.state != "running":
            send_json(sock, {"ev": "job_done", "id": job.id,
                             "state": job.state, "cells": job.counts()})
            self._close_client(sock)
            return

        def stream(done: int, total: int, label: str) -> None:
            # send_json raises FarmError on a dead peer; the fanout
            # drops the subscriber. A *stalled* peer is treated the
            # same: the tight timeout turns a full socket buffer into
            # FarmError (socket.timeout is an OSError) and the client
            # is closed here, so one slow watcher costs the loop at
            # most WATCH_SEND_TIMEOUT_S once, not 5s per event.
            sock.settimeout(WATCH_SEND_TIMEOUT_S)
            try:
                send_json(sock, {"ev": "progress", "id": job.id,
                                 "done": done, "total": total,
                                 "label": label})
            except FarmError:
                self._close_client(sock)
                raise
            finally:
                try:
                    sock.settimeout(CLIENT_SEND_TIMEOUT_S)
                except OSError:  # pragma: no cover - just closed above
                    pass

        token = job.fanout.subscribe(stream)
        state = self._clients.get(sock)
        if state is not None:
            state.watching = (job.id, token)
        job.watchers.append(sock)

    def _op_shutdown(self, sock, req) -> None:
        send_json(sock, {"ok": True, "draining": sum(
            1 for s in self._slots if s.busy is not None)})
        self._shutdown = True

    # -- the loop ------------------------------------------------------------

    def _open_socket(self) -> None:
        path = self.socket_path
        if os.path.exists(path):
            # A connect alone is not proof of life: a process that
            # inherited the old listener fd (or a half-dead scheduler)
            # can leave the socket accepting connections nobody answers.
            # Only an actual ping reply counts as "already serving".
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(1.0)
            alive = False
            try:
                probe.connect(path)
                probe.sendall(b'{"op": "ping"}\n')
                alive = bool(probe.recv(1))
            except OSError:
                alive = False
            finally:
                probe.close()
            if alive:
                raise FarmError(f"a farm is already serving on {path}")
            try:
                os.unlink(path)  # stale socket from a dead scheduler
            except OSError:
                pass
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(16)
        listener.setblocking(False)
        self._listener = listener

    def serve_forever(self, poll_s: float = 0.2) -> None:
        """Run the service until :meth:`stop` or a ``shutdown`` request.

        Opens the socket, spawns the workers, then multiplexes client
        connections and worker pipes through one ``selectors`` loop.
        On exit: drains in-flight cells, retires the workers, removes
        the socket, closes the journal.
        """
        self._open_socket()
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ,
                                ("listen", None))
        for _ in range(self.n_workers):
            self._spawn_one()
        try:
            while not self._shutdown:
                self._loop_once(poll_s)
        finally:
            self._teardown()

    def stop(self) -> None:
        """Request the loop to exit (signal handlers, tests)."""
        self._shutdown = True

    def _loop_once(self, poll_s: float) -> None:
        for sel_key, _mask in self._selector.select(timeout=poll_s):
            tag, obj = sel_key.data
            if tag == "listen":
                self._accept()
            elif tag == "client":
                self._read_client(sel_key.fileobj)
            elif tag == "worker":
                slot = obj
                try:
                    msg = slot.conn.recv()
                except (EOFError, OSError):
                    self._on_worker_death(slot)
                else:
                    self._on_worker_message(slot, msg)
        # Reap workers that died without a readable EOF (rare but
        # possible under SIGKILL between selector wakeups).
        for slot in list(self._slots):
            if not slot.proc.is_alive():
                self._on_worker_death(slot)
        self._pump()

    def _accept(self) -> None:
        try:
            conn, _addr = self._listener.accept()
        except OSError:
            return
        # Writes must never wedge the loop for long (progress streams
        # tighten this further per-send; see _op_watch).
        conn.settimeout(CLIENT_SEND_TIMEOUT_S)
        self._clients[conn] = _ClientState()
        self._selector.register(conn, selectors.EVENT_READ, ("client", None))

    def _read_client(self, sock: socket.socket) -> None:
        try:
            data = sock.recv(65536)
        except OSError:
            data = b""
        if not data:
            self._close_client(sock)
            return
        state = self._clients.get(sock)
        if state is None:
            return
        state.buf += data
        messages, state.buf = parse_lines(state.buf)
        for msg in messages:
            try:
                self._handle_request(sock, msg)
            except FarmError:
                self._close_client(sock)
                return
            except Exception as exc:  # never let one client kill the farm
                try:
                    send_json(sock, error_response(
                        f"internal error: {type(exc).__name__}: {exc}"))
                except FarmError:
                    self._close_client(sock)
                    return

    def _close_client(self, sock: socket.socket) -> None:
        state = self._clients.pop(sock, None)
        if state is not None and state.watching is not None:
            job_id, token = state.watching
            job = self.jobs.get(job_id)
            if job is not None:
                job.fanout.unsubscribe(token)
                if sock in job.watchers:
                    job.watchers.remove(sock)
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError):
            pass
        try:
            sock.close()
        except OSError:
            pass

    def _teardown(self, drain_timeout_s: float = 60.0) -> None:
        # Graceful: let in-flight cells finish (bounded), journal their
        # results, then retire the workers.
        deadline = time.time() + drain_timeout_s
        while (any(s.busy is not None for s in self._slots)
               and time.time() < deadline):
            for sel_key, _mask in self._selector.select(timeout=0.2):
                tag, obj = sel_key.data
                if tag != "worker":
                    continue
                try:
                    msg = obj.conn.recv()
                except (EOFError, OSError):
                    self._on_worker_death(obj)
                else:
                    self._on_worker_message(obj, msg)
            for slot in list(self._slots):
                if not slot.proc.is_alive():
                    self._on_worker_death(slot)
        for slot in self._slots:
            try:
                slot.conn.send({"op": "exit"})
            except (OSError, ValueError):
                pass
        for slot in self._slots:
            slot.proc.join(timeout=2.0)
            if slot.proc.is_alive():
                slot.proc.terminate()
                slot.proc.join(timeout=2.0)
            try:
                slot.conn.close()
            except OSError:
                pass
        self._slots = []
        for sock in list(self._clients):
            self._close_client(sock)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        self.journal.close()


def _job_number(job_id: str) -> int:
    """Numeric suffix of a ``job-NNNNNN`` id (0 for foreign formats)."""
    try:
        return int(job_id.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return 0
