"""Per-simulation workload port allocation.

The workload generators used to bind their listeners on hard-coded
well-known ports (``40000`` for bulk, ``41000`` for probes), which made
it impossible to run two instances of the same workload on the same
hosts — their listeners collided. A :class:`PortAllocator` hands out
destination ports from one contiguous range, one block per workload, so
any number of concurrent workloads coexist on the same fabric.

The allocator is **per-run state**: it hangs off the
:class:`~repro.sim.engine.Simulator` (``sim.workload_ports``) so that —
like packet ids — port numbers reset with the run and back-to-back runs
produce bit-identical traces. Workloads created in the same order always
receive the same ports.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.sim.engine import Simulator

__all__ = ["WORKLOAD_PORT_BASE", "WORKLOAD_PORT_LIMIT", "PortAllocator",
           "port_allocator"]

#: First destination port handed out to workloads. Chosen to keep the
#: historical bulk-generator port (the first allocation on a fresh sim
#: is exactly the old ``BULK_PORT``).
WORKLOAD_PORT_BASE = 40000

#: One past the last allocatable port; everything above is reserved for
#: ephemeral source ports.
WORKLOAD_PORT_LIMIT = 60000


class PortAllocator:
    """Monotonic allocator over ``[base, limit)``; raises on exhaustion."""

    __slots__ = ("base", "limit", "_next")

    def __init__(self, base: int = WORKLOAD_PORT_BASE,
                 limit: int = WORKLOAD_PORT_LIMIT):
        if not (0 < base < limit <= 65536):
            raise ConfigError(
                f"port range [{base}, {limit}) is not a valid TCP port range")
        self.base = base
        self.limit = limit
        self._next = base

    @property
    def allocated(self) -> int:
        """Ports handed out so far."""
        return self._next - self.base

    def allocate(self, count: int = 1) -> int:
        """Reserve ``count`` consecutive ports; returns the first one."""
        if count < 1:
            raise ConfigError(f"must allocate at least one port, got {count}")
        first = self._next
        if first + count > self.limit:
            raise ConfigError(
                f"workload port space exhausted: need {count} ports but only "
                f"{self.limit - first} of [{self.base}, {self.limit}) remain")
        self._next = first + count
        return first


def port_allocator(sim: Simulator) -> PortAllocator:
    """The (lazily created) allocator owned by ``sim``."""
    alloc = sim.workload_ports
    if alloc is None:
        alloc = sim.workload_ports = PortAllocator()
    return alloc
