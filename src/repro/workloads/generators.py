"""CDF-driven traffic generators.

Two arrival disciplines bracket how real services load a fabric:

* :class:`OpenLoopGenerator` — flows arrive according to an exogenous
  process (Poisson or deterministic) regardless of how the network is
  doing. This is the honest way to measure latency under load: a
  congested network does **not** slow the offered load down, so queues
  actually build.
* :class:`ClosedLoopGenerator` — a fixed population of workers, each
  issuing one flow, thinking for a (lognormal or fixed) think time, then
  issuing the next. Offered load self-throttles with congestion, like
  interactive users.

Both draw flow sizes from a pluggable :class:`~repro.workloads.cdf.SizeCDF`
and source/destination pairs uniformly from their host set, all from one
caller-supplied RNG stream (hand them
``RngRegistry.stream("workload.<name>")`` and runs are bit-reproducible).
Listeners bind on a port from the per-sim
:func:`~repro.workloads.ports.port_allocator`, so any number of
generators coexist on the same hosts.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.net.host import Host
from repro.sim.engine import Simulator
from repro.tcp.endpoint import TcpConfig, TcpListener
from repro.tcp.flow import FlowResult, start_bulk_flow
from repro.workloads.cdf import SizeCDF
from repro.workloads.ports import port_allocator

__all__ = ["OpenLoopGenerator", "ClosedLoopGenerator"]

_ARRIVALS = ("poisson", "deterministic")
_THINKS = ("lognormal", "fixed")


class _FlowWorkload:
    """Shared plumbing: listeners, result collection, idle detection."""

    kind = "flows"

    def __init__(self, sim: Simulator, hosts: List[Host], cfg: TcpConfig,
                 sizes: SizeCDF, rng: np.random.Generator,
                 port: Optional[int], max_flows: Optional[int],
                 name: str):
        if len(hosts) < 2:
            raise ConfigError(f"workload {name!r} needs at least 2 hosts")
        if max_flows is not None and max_flows < 1:
            raise ConfigError(f"max_flows must be positive, got {max_flows}")
        self.sim = sim
        self.hosts = hosts
        self.cfg = cfg
        self.sizes = sizes
        self.name = name
        self.max_flows = max_flows
        self._rng = rng
        self.port = port if port is not None else port_allocator(sim).allocate()
        self._listeners = [TcpListener(sim, h, self.port, cfg) for h in hosts]
        self.results: List[FlowResult] = []
        self.issued = 0
        self.in_flight = 0
        self._running = False
        #: Optional callback fired once the workload has stopped *and*
        #: every issued flow has completed (mix drain / fuzzer stop).
        self.on_idle: Optional[Callable[[], None]] = None

    @property
    def running(self) -> bool:
        """True while new flows may still be issued."""
        return self._running

    def stop(self) -> None:
        """Stop issuing new flows (in-flight transfers still complete)."""
        was = self._running
        self._running = False
        if was and self.in_flight == 0:
            self._notify_idle()

    def _notify_idle(self) -> None:
        if self.on_idle is not None:
            self.on_idle()

    def _pick_pair(self):
        i, j = self._rng.choice(len(self.hosts), size=2, replace=False)
        return self.hosts[int(i)], self.hosts[int(j)]

    def _issue(self, src: Host, dst: Host, nbytes: int) -> None:
        self.issued += 1
        self.in_flight += 1
        start_bulk_flow(self.sim, src, dst, self.port, nbytes, self.cfg,
                        on_done=self._flow_done)
        if self.max_flows is not None and self.issued >= self.max_flows:
            self._running = False

    def _flow_done(self, result: FlowResult) -> None:
        self.in_flight -= 1
        self.results.append(result)
        self._on_flow_done(result)
        if not self._running and self.in_flight == 0:
            self._notify_idle()

    def _on_flow_done(self, result: FlowResult) -> None:
        """Hook for subclasses (closed loop re-arms its worker here)."""

    def summary_bucket(self, line_rate_bps: float) -> dict:
        """Per-workload result bucket (see :mod:`repro.workloads.metrics`)."""
        from repro.workloads.metrics import flow_bucket

        bucket = flow_bucket(self.results, line_rate_bps)
        bucket["kind"] = self.kind
        bucket["issued"] = self.issued
        bucket["in_flight_at_end"] = self.in_flight
        bucket["sizes"] = self.sizes.name
        return bucket


class OpenLoopGenerator(_FlowWorkload):
    """Exogenous flow arrivals at ``rate_fps`` flows/second.

    Parameters
    ----------
    sim, hosts, cfg:
        Kernel, participating hosts, transport config.
    rate_fps:
        Mean arrival rate (flows per second).
    sizes:
        Flow-size distribution.
    rng:
        Seeded stream; consumed in a fixed order (gap, pair, size) per
        arrival, so runs are reproducible.
    arrival:
        ``"poisson"`` (exponential gaps) or ``"deterministic"``
        (fixed ``1/rate`` spacing).
    port:
        Listener port; allocated from the sim's port allocator when None.
    max_flows:
        Stop after issuing this many flows (None = until :meth:`stop`).
    """

    kind = "open-loop"

    def __init__(self, sim, hosts, cfg, rate_fps: float, sizes: SizeCDF,
                 rng: np.random.Generator, arrival: str = "poisson",
                 port: Optional[int] = None, max_flows: Optional[int] = None,
                 name: str = "open-loop"):
        super().__init__(sim, hosts, cfg, sizes, rng, port, max_flows, name)
        if rate_fps <= 0:
            raise ConfigError(f"arrival rate must be positive, got {rate_fps}")
        if arrival not in _ARRIVALS:
            raise ConfigError(f"unknown arrival process {arrival!r} "
                              f"(expected one of {', '.join(_ARRIVALS)})")
        self.rate_fps = float(rate_fps)
        self.arrival = arrival

    def start(self, first_delay: Optional[float] = None) -> None:
        """Begin generating; first arrival after ``first_delay`` (default:
        one drawn/fixed inter-arrival gap). No-op if already running."""
        if self._running:
            return
        self._running = True
        delay = self._gap() if first_delay is None else max(first_delay, 1e-12)
        self.sim.schedule(delay, self._fire)

    def _gap(self) -> float:
        if self.arrival == "poisson":
            return float(self._rng.exponential(1.0 / self.rate_fps))
        return 1.0 / self.rate_fps

    def _fire(self) -> None:
        if not self._running:
            return
        src, dst = self._pick_pair()
        nbytes = self.sizes.sample(float(self._rng.random()))
        self._issue(src, dst, nbytes)
        if self._running:
            self.sim.schedule(max(self._gap(), 1e-12), self._fire)


class ClosedLoopGenerator(_FlowWorkload):
    """``n_workers`` request loops with think time between flows.

    Each worker issues one flow, waits for it to complete, thinks for a
    lognormal (or fixed) think time with mean ``think_s``, then issues
    the next — offered load backs off when the network slows down.
    """

    kind = "closed-loop"

    def __init__(self, sim, hosts, cfg, n_workers: int, sizes: SizeCDF,
                 rng: np.random.Generator, think_s: float,
                 think: str = "lognormal", think_sigma: float = 1.0,
                 port: Optional[int] = None, max_flows: Optional[int] = None,
                 name: str = "closed-loop"):
        super().__init__(sim, hosts, cfg, sizes, rng, port, max_flows, name)
        if n_workers < 1:
            raise ConfigError(f"need at least one worker, got {n_workers}")
        if think_s <= 0:
            raise ConfigError(f"think time must be positive, got {think_s}")
        if think not in _THINKS:
            raise ConfigError(f"unknown think-time model {think!r} "
                              f"(expected one of {', '.join(_THINKS)})")
        if think_sigma <= 0:
            raise ConfigError(f"think sigma must be positive, got {think_sigma}")
        self.n_workers = n_workers
        self.think_s = float(think_s)
        self.think = think
        self.think_sigma = float(think_sigma)
        # mu chosen so the lognormal's *mean* is exactly think_s.
        self._mu = (np.log(self.think_s)
                    - 0.5 * self.think_sigma * self.think_sigma)

    def start(self, first_delay: float = 0.0) -> None:
        """Launch the worker loops, each after ``first_delay`` plus one
        think-time draw of stagger. No-op if already running."""
        if self._running:
            return
        self._running = True
        for _ in range(self.n_workers):
            delay = max(first_delay, 0.0) + self._think_gap()
            self.sim.schedule(max(delay, 1e-12), self._worker_fire)

    def _think_gap(self) -> float:
        if self.think == "lognormal":
            return float(self._rng.lognormal(self._mu, self.think_sigma))
        return self.think_s

    def _worker_fire(self) -> None:
        if not self._running:
            return
        src, dst = self._pick_pair()
        nbytes = self.sizes.sample(float(self._rng.random()))
        self._issue(src, dst, nbytes)

    def _on_flow_done(self, result: FlowResult) -> None:
        if self._running:
            self.sim.schedule(max(self._think_gap(), 1e-12),
                              self._worker_fire)
