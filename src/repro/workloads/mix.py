"""WorkloadMix: run several workloads concurrently on one fabric.

The paper's whole argument is about *mixed-use* clusters — batch shuffle
traffic coexisting with latency-sensitive services. A
:class:`WorkloadMix` owns that composition: any number of named
workloads (open/closed-loop generators, partition-aggregate RPC, latency
probes — anything exposing ``start``/``stop``/``summary_bucket``) run
concurrently on the same hosts, each on its own destination port from
the per-sim :func:`~repro.workloads.ports.port_allocator` (so they can
never collide), each inside an optional ``[start_s, stop_s)`` window,
and each landing its results in its own named bucket.

.. code-block:: python

    mix = WorkloadMix(sim, spec.hosts, spec.link_rate_bps)
    mix.add_rpc("rpc", cfg, rng.stream("workload.rpc"),
                rate_qps=200, fanout=8, deadline_s=0.01)
    mix.add_open_loop("background", cfg, rng.stream("workload.bg"),
                      rate_fps=50, sizes=WEB_SEARCH.truncated(mb(1)))
    mix.start()
    sim.run(until=horizon)
    manifest["workloads"] = mix.summary()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.net.host import Host
from repro.sim.engine import Simulator
from repro.tcp.endpoint import TcpConfig
from repro.workloads.cdf import SizeCDF
from repro.workloads.generators import ClosedLoopGenerator, OpenLoopGenerator
from repro.workloads.rpc import PartitionAggregateWorkload

__all__ = ["WorkloadMix"]


@dataclass
class _Entry:
    name: str
    workload: object
    start_s: float
    stop_s: Optional[float]


class WorkloadMix:
    """Named workloads composed over one simulator + host set.

    Parameters
    ----------
    sim, hosts:
        Kernel and the hosts every added workload runs over (individual
        workloads may be given a subset via the ``hosts`` keyword).
    line_rate_bps:
        Edge line rate; anchors the ideal FCT in slowdown metrics.
    """

    def __init__(self, sim: Simulator, hosts: List[Host],
                 line_rate_bps: float):
        if line_rate_bps <= 0:
            raise ConfigError(
                f"line rate must be positive, got {line_rate_bps}")
        self.sim = sim
        self.hosts = hosts
        self.line_rate_bps = float(line_rate_bps)
        self._entries: List[_Entry] = []
        self._started = False

    # -- registration -------------------------------------------------------

    def add(self, name: str, workload, start_s: float = 0.0,
            stop_s: Optional[float] = None):
        """Register a pre-built workload under ``name``.

        ``workload`` must expose ``start()``, ``stop()`` and
        ``summary_bucket(line_rate_bps)``. ``start_s``/``stop_s`` bound
        its activity window in simulated seconds (``stop_s=None`` runs
        until :meth:`stop_all` or the workload's own flow/query limit).
        """
        if any(e.name == name for e in self._entries):
            raise ConfigError(f"duplicate workload name {name!r}")
        if start_s < 0:
            raise ConfigError(f"start_s must be >= 0, got {start_s}")
        if stop_s is not None and stop_s <= start_s:
            raise ConfigError(
                f"stop_s ({stop_s}) must be after start_s ({start_s})")
        for attr in ("start", "stop", "summary_bucket"):
            if not callable(getattr(workload, attr, None)):
                raise ConfigError(
                    f"workload {name!r} lacks a callable {attr}()")
        self._entries.append(_Entry(name, workload, float(start_s), stop_s))
        return workload

    def add_open_loop(self, name: str, cfg: TcpConfig,
                      rng: np.random.Generator, rate_fps: float,
                      sizes: SizeCDF, arrival: str = "poisson",
                      hosts: Optional[List[Host]] = None,
                      max_flows: Optional[int] = None,
                      start_s: float = 0.0,
                      stop_s: Optional[float] = None) -> OpenLoopGenerator:
        """Create + register an :class:`OpenLoopGenerator`."""
        gen = OpenLoopGenerator(
            self.sim, hosts if hosts is not None else self.hosts, cfg,
            rate_fps=rate_fps, sizes=sizes, rng=rng, arrival=arrival,
            max_flows=max_flows, name=name)
        return self.add(name, gen, start_s, stop_s)

    def add_closed_loop(self, name: str, cfg: TcpConfig,
                        rng: np.random.Generator, n_workers: int,
                        sizes: SizeCDF, think_s: float,
                        think: str = "lognormal", think_sigma: float = 1.0,
                        hosts: Optional[List[Host]] = None,
                        max_flows: Optional[int] = None,
                        start_s: float = 0.0,
                        stop_s: Optional[float] = None) -> ClosedLoopGenerator:
        """Create + register a :class:`ClosedLoopGenerator`."""
        gen = ClosedLoopGenerator(
            self.sim, hosts if hosts is not None else self.hosts, cfg,
            n_workers=n_workers, sizes=sizes, rng=rng, think_s=think_s,
            think=think, think_sigma=think_sigma, max_flows=max_flows,
            name=name)
        return self.add(name, gen, start_s, stop_s)

    def add_rpc(self, name: str, cfg: TcpConfig, rng: np.random.Generator,
                rate_qps: float, fanout: int,
                response_bytes=20_000, deadline_s: Optional[float] = None,
                arrival: str = "poisson",
                hosts: Optional[List[Host]] = None,
                max_queries: Optional[int] = None,
                start_s: float = 0.0,
                stop_s: Optional[float] = None) -> PartitionAggregateWorkload:
        """Create + register a :class:`PartitionAggregateWorkload`."""
        wl = PartitionAggregateWorkload(
            self.sim, hosts if hosts is not None else self.hosts, cfg,
            rng=rng, rate_qps=rate_qps, fanout=fanout,
            response_bytes=response_bytes, deadline_s=deadline_s,
            arrival=arrival, max_queries=max_queries, name=name)
        return self.add(name, wl, start_s, stop_s)

    # -- lifecycle ----------------------------------------------------------

    @property
    def names(self) -> List[str]:
        """Registered workload names, in registration order."""
        return [e.name for e in self._entries]

    def __getitem__(self, name: str):
        for e in self._entries:
            if e.name == name:
                return e.workload
        raise KeyError(name)

    def start(self) -> None:
        """Arm every workload's start/stop window. Call once."""
        if self._started:
            raise ConfigError("WorkloadMix.start() called twice")
        if not self._entries:
            raise ConfigError("WorkloadMix has no workloads")
        self._started = True
        now = self.sim.now
        for e in self._entries:
            wl = e.workload
            delay = e.start_s - now
            if delay < 0:
                raise ConfigError(
                    f"workload {e.name!r} window starts in the past "
                    f"(start_s={e.start_s}, now={now})")
            if delay == 0:
                wl.start()
            else:
                self.sim.schedule(delay, wl.start)
            if e.stop_s is not None:
                self.sim.schedule(e.stop_s - now, wl.stop)

    def stop_all(self) -> None:
        """Stop every workload now (in-flight work still completes)."""
        for e in self._entries:
            e.workload.stop()

    def active_count(self) -> int:
        """Workloads still issuing new flows/queries."""
        return sum(1 for e in self._entries
                   if getattr(e.workload, "running", False))

    # -- results ------------------------------------------------------------

    def results(self) -> Dict[str, list]:
        """Raw per-workload result lists (flows or queries)."""
        return {e.name: list(e.workload.results) for e in self._entries}

    def summary(self) -> Dict[str, dict]:
        """Per-workload buckets for ``manifest["workloads"]``."""
        out: Dict[str, dict] = {}
        for e in self._entries:
            bucket = e.workload.summary_bucket(self.line_rate_bps)
            bucket["port"] = getattr(e.workload, "port", None)
            bucket["window_s"] = [e.start_s, e.stop_s]
            out[e.name] = bucket
        return out
