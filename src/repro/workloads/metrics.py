"""Per-workload result buckets for the run manifest.

Every workload in a :class:`~repro.workloads.mix.WorkloadMix` lands one
JSON-safe bucket under ``manifest["workloads"]``: flow-level FCT and FCT
*slowdown* percentiles (p50/p95/p99 — the literature's short-flow tail
metric), a short/long size-bin breakdown, goodput fairness, and — for
partition-aggregate workloads — query completion times and deadline-miss
accounting. Buckets are plain dicts of floats/ints so they serialize
into manifests and result caches without adapters.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List

from repro.stats.fairness import fct_slowdown, goodput_fairness
from repro.stats.summary import summarize

__all__ = ["SHORT_FLOW_BYTES", "summary_dict", "flow_bucket", "rpc_bucket"]

#: Short/long split: flows at or under this are "short" (query/RPC-class
#: traffic — the flows AQM latency work cares about), above it "long".
SHORT_FLOW_BYTES = 100_000


def summary_dict(samples: Iterable[float]) -> Dict[str, float]:
    """JSON-safe :class:`~repro.stats.summary.Summary` of ``samples``."""
    return dataclasses.asdict(summarize(list(samples)))


def _bin_stats(flows: List, line_rate_bps: float) -> Dict[str, object]:
    completed = [f for f in flows if not f.failed]
    return {
        "flows": len(flows),
        "flows_failed": sum(1 for f in flows if f.failed),
        "bytes": int(sum(f.nbytes for f in completed)),
        "fct_s": summary_dict(f.fct for f in completed),
        "slowdown": summary_dict(fct_slowdown(flows, line_rate_bps)),
    }


def flow_bucket(flows: List, line_rate_bps: float) -> Dict[str, object]:
    """Flow-level bucket: FCT, slowdown, fairness, short/long bins.

    ``flows`` is any list of :class:`~repro.tcp.flow.FlowResult`;
    ``line_rate_bps`` anchors the ideal FCT in the slowdown metric.
    """
    short = [f for f in flows if f.nbytes <= SHORT_FLOW_BYTES]
    long_ = [f for f in flows if f.nbytes > SHORT_FLOW_BYTES]
    bucket = _bin_stats(flows, line_rate_bps)
    bucket["goodput_fairness"] = goodput_fairness(flows)
    bucket["size_bins"] = {
        "short": _bin_stats(short, line_rate_bps),
        "long": _bin_stats(long_, line_rate_bps),
    }
    return bucket


def rpc_bucket(workload, line_rate_bps: float) -> Dict[str, object]:
    """Query-level bucket for a partition-aggregate workload.

    Wraps the per-response flow bucket and adds query completion time
    percentiles plus deadline accounting. Queries still open when the
    run ended are reported (they are neither hits nor misses — the run
    simply ended first).
    """
    results = workload.results
    misses = sum(1 for r in results if r.missed)
    bucket: Dict[str, object] = {
        "kind": workload.kind,
        "fanout": workload.fanout,
        "queries_issued": workload.queries_issued,
        "queries_completed": len(results),
        "queries_open_at_end": workload.queries_open,
        "queries_failed": sum(1 for r in results if not r.ok),
        "qct_s": summary_dict(r.qct for r in results),
        "deadline_s": workload.deadline_s,
        "deadline_misses": misses,
        "deadline_miss_rate": workload.deadline_miss_rate(),
        "responses": flow_bucket(workload.flow_results, line_rate_bps),
    }
    return bucket
