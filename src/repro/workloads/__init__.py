"""Synthetic traffic generators complementing the MapReduce engine:
bulk N-to-N / incast patterns for microbenchmarks, and small latency
probes modelling the latency-sensitive services the paper wants to
co-locate with Hadoop."""

from repro.workloads.bulk import all_to_all, incast, permutation
from repro.workloads.probe import LatencyProbe, ProbeResult

__all__ = [
    "all_to_all",
    "incast",
    "permutation",
    "LatencyProbe",
    "ProbeResult",
]
