"""Traffic-generation subsystem for mixed-use cluster experiments.

Four layers, composable on one simulator:

* **Patterns** (:mod:`~repro.workloads.bulk`) — one-shot bulk shapes:
  all-to-all, incast, permutation.
* **Generators** (:mod:`~repro.workloads.generators`,
  :mod:`~repro.workloads.rpc`, :mod:`~repro.workloads.probe`) — ongoing
  arrival processes: open/closed-loop CDF-driven flows,
  partition-aggregate RPC with deadlines, fixed-rate latency probes.
* **Sizes** (:mod:`~repro.workloads.cdf`) — pluggable empirical
  flow-size CDFs (web-search, data-mining, fixed, uniform).
* **Composition** (:mod:`~repro.workloads.mix`) — :class:`WorkloadMix`
  runs any set of the above concurrently, each on its own port from the
  per-sim :mod:`~repro.workloads.ports` allocator, each in its own
  result bucket for ``manifest["workloads"]``.
"""

from repro.workloads.bulk import all_to_all, incast, permutation
from repro.workloads.cdf import (
    BUILTIN_CDFS,
    DATA_MINING,
    WEB_SEARCH,
    SizeCDF,
    named_cdf,
)
from repro.workloads.generators import ClosedLoopGenerator, OpenLoopGenerator
from repro.workloads.metrics import (
    SHORT_FLOW_BYTES,
    flow_bucket,
    rpc_bucket,
    summary_dict,
)
from repro.workloads.mix import WorkloadMix
from repro.workloads.ports import (
    WORKLOAD_PORT_BASE,
    WORKLOAD_PORT_LIMIT,
    PortAllocator,
    port_allocator,
)
from repro.workloads.probe import LatencyProbe, ProbeResult
from repro.workloads.rpc import PartitionAggregateWorkload, QueryResult

__all__ = [
    # patterns
    "all_to_all",
    "incast",
    "permutation",
    # generators
    "OpenLoopGenerator",
    "ClosedLoopGenerator",
    "PartitionAggregateWorkload",
    "QueryResult",
    "LatencyProbe",
    "ProbeResult",
    # sizes
    "SizeCDF",
    "WEB_SEARCH",
    "DATA_MINING",
    "BUILTIN_CDFS",
    "named_cdf",
    # composition
    "WorkloadMix",
    "PortAllocator",
    "port_allocator",
    "WORKLOAD_PORT_BASE",
    "WORKLOAD_PORT_LIMIT",
    # metrics
    "SHORT_FLOW_BYTES",
    "summary_dict",
    "flow_bucket",
    "rpc_bucket",
]
