"""Bulk traffic patterns over the TCP stack.

Three canonical datacenter patterns, each returning the created flows and
collecting results through a shared callback:

* :func:`all_to_all` — every host sends to every other host (the shuffle
  communication pattern, without the MapReduce timing);
* :func:`incast` — N senders converge on one receiver;
* :func:`permutation` — host i sends to host (i+1) mod N: one flow per
  link, no oversubscription.

Each pattern binds its listeners on a port from the per-sim
:func:`~repro.workloads.ports.port_allocator` (pass ``port=`` to pin
one), so bulk patterns compose with generators and RPC workloads on the
same hosts without colliding.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import ConfigError
from repro.net.host import Host
from repro.sim.engine import Simulator
from repro.tcp.endpoint import TcpConfig, TcpListener
from repro.tcp.flow import BulkFlow, FlowResult, start_bulk_flow
from repro.workloads.ports import port_allocator

__all__ = ["all_to_all", "incast", "permutation"]


def _bulk_port(sim: Simulator, port: Optional[int]) -> int:
    return port if port is not None else port_allocator(sim).allocate()


def all_to_all(
    sim: Simulator,
    hosts: List[Host],
    nbytes: int,
    cfg: TcpConfig,
    on_done: Optional[Callable[[FlowResult], None]] = None,
    stagger: float = 0.0,
    port: Optional[int] = None,
) -> List[BulkFlow]:
    """Every ordered host pair transfers ``nbytes``.

    ``stagger`` spaces out flow starts (seconds between consecutive
    senders) to avoid a fully synchronised start, which no real shuffle
    exhibits.
    """
    if len(hosts) < 2:
        raise ConfigError("all_to_all needs at least 2 hosts")
    port = _bulk_port(sim, port)
    for h in hosts:
        TcpListener(sim, h, port, cfg)
    flows = []
    for i, src in enumerate(hosts):
        for dst in hosts:
            if src is dst:
                continue
            flows.append(
                start_bulk_flow(sim, src, dst, port, nbytes, cfg,
                                on_done=on_done, delay=i * stagger)
            )
    return flows


def incast(
    sim: Simulator,
    hosts: List[Host],
    receiver_index: int,
    nbytes: int,
    cfg: TcpConfig,
    on_done: Optional[Callable[[FlowResult], None]] = None,
    port: Optional[int] = None,
) -> List[BulkFlow]:
    """All other hosts send ``nbytes`` to ``hosts[receiver_index]`` at once."""
    if len(hosts) < 2:
        raise ConfigError("incast needs at least 2 hosts")
    receiver = hosts[receiver_index]
    port = _bulk_port(sim, port)
    TcpListener(sim, receiver, port, cfg)
    return [
        start_bulk_flow(sim, src, receiver, port, nbytes, cfg, on_done=on_done)
        for src in hosts
        if src is not receiver
    ]


def permutation(
    sim: Simulator,
    hosts: List[Host],
    nbytes: int,
    cfg: TcpConfig,
    on_done: Optional[Callable[[FlowResult], None]] = None,
    port: Optional[int] = None,
) -> List[BulkFlow]:
    """Host i sends ``nbytes`` to host (i+1) mod N."""
    if len(hosts) < 2:
        raise ConfigError("permutation needs at least 2 hosts")
    port = _bulk_port(sim, port)
    for h in hosts:
        TcpListener(sim, h, port, cfg)
    n = len(hosts)
    return [
        start_bulk_flow(sim, hosts[i], hosts[(i + 1) % n], port, nbytes,
                        cfg, on_done=on_done)
        for i in range(n)
    ]
