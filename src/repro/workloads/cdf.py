"""Pluggable empirical flow-size distributions.

Datacenter traffic is famously heavy-tailed: most flows are a few KB of
query/RPC traffic, most *bytes* travel in MB-scale background transfers.
A :class:`SizeCDF` is an empirical cumulative distribution over flow
sizes, sampled by inverse transform from a U(0,1) draw — the same
mechanism NS-2/htsim traffic generators use, so published workload CDFs
drop in as plain data.

Two classic distributions ship as data:

* :data:`WEB_SEARCH` — the partition-aggregate search workload measured
  in the DCTCP paper (query/short-message heavy, tail to ~30 MB);
* :data:`DATA_MINING` — the VL2 data-mining workload (80% of flows under
  ~10 KB, tail to 1 GB).

Plus two synthetic families: :meth:`SizeCDF.fixed` (degenerate, every
flow the same size) and :meth:`SizeCDF.uniform`. :func:`named_cdf`
resolves the spec strings the CLI and experiment configs use
(``"web-search"``, ``"data-mining"``, ``"fixed:65536"``,
``"uniform:1000:100000"``).

Sampling is pure: ``cdf.sample(u)`` maps one uniform draw to one size,
so determinism is entirely the caller's RNG stream's concern.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigError

__all__ = ["SizeCDF", "WEB_SEARCH", "DATA_MINING", "BUILTIN_CDFS",
           "named_cdf"]


class SizeCDF:
    """Empirical flow-size CDF with inverse-transform sampling.

    Parameters
    ----------
    points:
        ``(size_bytes, cumulative_probability)`` pairs, strictly
        increasing in both coordinates, last probability exactly 1.0.
        A leading implicit ``(first_size, 0.0)`` anchor is added when the
        first given probability is positive, so the smallest sizes are
        drawn as often as the data says.
    name:
        Label used in configs, manifests and error messages.
    """

    __slots__ = ("name", "_sizes", "_probs")

    def __init__(self, points: Sequence[Tuple[float, float]], name: str):
        if len(points) < 1:
            raise ConfigError(f"CDF {name!r} needs at least one point")
        pts = [(float(s), float(p)) for s, p in points]
        if pts[0][1] > 0.0:
            pts.insert(0, (pts[0][0], 0.0))
        sizes = [s for s, _ in pts]
        probs = [p for _, p in pts]
        if abs(probs[-1] - 1.0) > 1e-12:
            raise ConfigError(
                f"CDF {name!r} must end at probability 1.0, got {probs[-1]}")
        for i in range(1, len(pts)):
            if sizes[i] < sizes[i - 1] or probs[i] <= probs[i - 1]:
                raise ConfigError(
                    f"CDF {name!r} points must be non-decreasing in size and "
                    f"strictly increasing in probability (point {i})")
        if sizes[0] < 1:
            raise ConfigError(f"CDF {name!r} has sizes below one byte")
        self.name = name
        self._sizes = sizes
        self._probs = probs

    # -- constructors -------------------------------------------------------

    @classmethod
    def fixed(cls, nbytes: int) -> "SizeCDF":
        """Degenerate CDF: every flow is exactly ``nbytes``."""
        if nbytes < 1:
            raise ConfigError(f"flow size must be positive, got {nbytes}")
        return cls([(nbytes, 1.0)], name=f"fixed:{nbytes}")

    @classmethod
    def uniform(cls, lo: int, hi: int) -> "SizeCDF":
        """Uniform over ``[lo, hi]`` bytes."""
        if not (1 <= lo < hi):
            raise ConfigError(f"need 1 <= lo < hi, got [{lo}, {hi}]")
        return cls([(lo, 0.0), (hi, 1.0)], name=f"uniform:{lo}:{hi}")

    # -- sampling -----------------------------------------------------------

    def sample(self, u: float) -> int:
        """Inverse transform: map ``u`` in [0, 1) to a flow size in bytes.

        Linear interpolation between neighbouring points (the convention
        of NS-2's ``EmpiricalRandomVariable`` in interpolation mode).
        """
        if not (0.0 <= u <= 1.0):
            raise ConfigError(f"u must be in [0, 1], got {u}")
        probs = self._probs
        sizes = self._sizes
        # Find the first point with prob >= u (len(points) is tiny;
        # a linear scan beats bisect's call overhead at these sizes).
        for i in range(1, len(probs)):
            if u <= probs[i]:
                p0, p1 = probs[i - 1], probs[i]
                s0, s1 = sizes[i - 1], sizes[i]
                frac = (u - p0) / (p1 - p0)
                return max(1, int(round(s0 + frac * (s1 - s0))))
        return max(1, int(round(sizes[-1])))

    def mean(self) -> float:
        """Analytic mean flow size (trapezoid over the inverse CDF)."""
        total = 0.0
        for i in range(1, len(self._probs)):
            dp = self._probs[i] - self._probs[i - 1]
            total += dp * 0.5 * (self._sizes[i] + self._sizes[i - 1])
        return total

    @property
    def min_bytes(self) -> int:
        """Smallest possible sample."""
        return max(1, int(round(self._sizes[0])))

    @property
    def max_bytes(self) -> int:
        """Largest possible sample."""
        return max(1, int(round(self._sizes[-1])))

    def truncated(self, max_bytes: int) -> "SizeCDF":
        """Copy with the tail capped at ``max_bytes``.

        Probability mass beyond the cap collapses onto ``max_bytes``
        (the flows still happen, they are just smaller) — the standard
        trick for keeping heavy-tailed workloads tractable at simulation
        scale while preserving the arrival mix.
        """
        if max_bytes < self.min_bytes:
            raise ConfigError(
                f"cannot truncate {self.name!r} below its minimum "
                f"({self.min_bytes} bytes)")
        if max_bytes >= self.max_bytes:
            return self
        pts: List[Tuple[float, float]] = []
        for s, p in zip(self._sizes, self._probs):
            if s >= max_bytes:
                break
            pts.append((s, p))
        pts.append((float(max_bytes), 1.0))
        return SizeCDF(pts, name=f"{self.name}<=#{max_bytes}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SizeCDF({self.name!r}, {len(self._sizes)} points, "
                f"[{self.min_bytes}, {self.max_bytes}] bytes)")


#: DCTCP's web-search workload: partition-aggregate query traffic with a
#: medium tail. Sizes in bytes, probabilities cumulative.
WEB_SEARCH = SizeCDF(
    [
        (6_000, 0.15),
        (13_000, 0.20),
        (19_000, 0.30),
        (33_000, 0.40),
        (53_000, 0.53),
        (133_000, 0.60),
        (667_000, 0.70),
        (1_333_000, 0.80),
        (3_333_000, 0.90),
        (6_667_000, 0.97),
        (20_000_000, 1.00),
    ],
    name="web-search",
)

#: VL2's data-mining workload: overwhelmingly tiny flows with an extreme
#: elephant tail (the regime where short flows queue behind bulk data).
DATA_MINING = SizeCDF(
    [
        (100, 0.015),
        (180, 0.10),
        (250, 0.20),
        (560, 0.30),
        (900, 0.40),
        (1_100, 0.50),
        (1_870, 0.60),
        (3_160, 0.70),
        (10_000, 0.80),
        (400_000, 0.90),
        (3_160_000, 0.95),
        (100_000_000, 0.98),
        (1_000_000_000, 1.00),
    ],
    name="data-mining",
)

#: The named distributions a config string may reference directly.
BUILTIN_CDFS = {
    "web-search": WEB_SEARCH,
    "data-mining": DATA_MINING,
}


def named_cdf(spec: str) -> SizeCDF:
    """Resolve a CDF spec string.

    ``"web-search"`` / ``"data-mining"`` name the built-ins;
    ``"fixed:N"`` and ``"uniform:LO:HI"`` build the synthetic families.
    """
    built = BUILTIN_CDFS.get(spec)
    if built is not None:
        return built
    kind, _, rest = spec.partition(":")
    try:
        if kind == "fixed" and rest:
            return SizeCDF.fixed(int(rest))
        if kind == "uniform" and rest:
            lo, _, hi = rest.partition(":")
            return SizeCDF.uniform(int(lo), int(hi))
    except ValueError:
        raise ConfigError(f"malformed CDF spec {spec!r}") from None
    raise ConfigError(
        f"unknown flow-size CDF {spec!r} (expected one of "
        f"{', '.join(sorted(BUILTIN_CDFS))}, fixed:N, or uniform:LO:HI)")
