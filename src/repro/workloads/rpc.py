"""Partition–aggregate RPC: the paper's latency-sensitive co-tenant.

The canonical datacenter query pattern (search, SQL-on-Hadoop front
ends): an aggregator fans a query out to ``fanout`` workers, every
worker sends its response back, and the query completes when the **last**
response arrives. The synchronized fan-in is exactly the incast the AQM
literature worries about — ``fanout`` simultaneous short flows
converging on one ToR downlink — and the last-response semantics make
query completion time a tail statistic by construction: one dropped SYN
or retransmitted segment on any response stalls the whole query.

Queries may carry a **deadline**: a query whose last response lands
after ``deadline_s`` counts as missed (the flows are not killed — like
real partition-aggregate systems, the work still completes, it is just
useless). Deadline-miss rate and the query completion time distribution
are the workload's headline metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

import numpy as np

from repro.errors import ConfigError
from repro.net.host import Host
from repro.sim.engine import Simulator
from repro.tcp.endpoint import TcpConfig, TcpListener
from repro.tcp.flow import FlowResult, start_bulk_flow
from repro.workloads.cdf import SizeCDF
from repro.workloads.ports import port_allocator

__all__ = ["QueryResult", "PartitionAggregateWorkload"]

_ARRIVALS = ("poisson", "deterministic")


@dataclass(frozen=True)
class QueryResult:
    """One completed query: fan-out, fan-in, and deadline verdict."""

    query_id: int
    start_time: float
    end_time: float
    aggregator: int            #: aggregator host node id
    n_workers: int
    failed_responses: int
    response_bytes: int        #: total bytes aggregated
    deadline_s: Optional[float]

    @property
    def qct(self) -> float:
        """Query completion time: issue to last response (seconds)."""
        return self.end_time - self.start_time

    @property
    def ok(self) -> bool:
        """True when every response transfer completed."""
        return self.failed_responses == 0

    @property
    def missed(self) -> Optional[bool]:
        """Deadline verdict (None when the query carried no deadline)."""
        if self.deadline_s is None:
            return None
        return self.qct > self.deadline_s


class _OpenQuery:
    """In-flight bookkeeping for one query."""

    __slots__ = ("query_id", "start_time", "aggregator", "remaining",
                 "failed", "nbytes")

    def __init__(self, query_id: int, start_time: float, aggregator: int,
                 remaining: int):
        self.query_id = query_id
        self.start_time = start_time
        self.aggregator = aggregator
        self.remaining = remaining
        self.failed = 0
        self.nbytes = 0


class PartitionAggregateWorkload:
    """Fan-out/fan-in query stream over the TCP stack.

    Parameters
    ----------
    sim, hosts, cfg:
        Kernel, participating hosts, transport config.
    rng:
        Seeded stream; per query it draws (gap, aggregator, workers
        [, response sizes]) in a fixed order — reproducible runs.
    rate_qps:
        Mean query arrival rate (queries per second).
    fanout:
        Workers per query; must leave at least one non-aggregator host.
    response_bytes:
        Per-worker response size — an ``int`` or a
        :class:`~repro.workloads.cdf.SizeCDF` sampled per response.
    deadline_s:
        Optional per-query deadline (seconds).
    arrival:
        ``"poisson"`` or ``"deterministic"`` query arrivals.
    port:
        Listener port; allocated from the sim's allocator when None.
    max_queries:
        Stop after issuing this many queries (None = until :meth:`stop`).
    aggregator_index:
        Pin every query's aggregator to ``hosts[aggregator_index]``
        (workers are then drawn from the remaining hosts). Fabric studies
        use this to force a known fan-in point — e.g. a fixed host whose
        responses must cross the leaf–spine uplinks. None (default) draws
        a fresh aggregator per query.
    """

    kind = "partition-aggregate"

    def __init__(self, sim: Simulator, hosts: List[Host], cfg: TcpConfig,
                 rng: np.random.Generator, rate_qps: float, fanout: int,
                 response_bytes: Union[int, SizeCDF] = 20_000,
                 deadline_s: Optional[float] = None,
                 arrival: str = "poisson", port: Optional[int] = None,
                 max_queries: Optional[int] = None,
                 aggregator_index: Optional[int] = None, name: str = "rpc"):
        if len(hosts) < 2:
            raise ConfigError(f"workload {name!r} needs at least 2 hosts")
        if rate_qps <= 0:
            raise ConfigError(f"query rate must be positive, got {rate_qps}")
        if not (1 <= fanout <= len(hosts) - 1):
            raise ConfigError(
                f"fanout {fanout} needs 1..{len(hosts) - 1} workers "
                f"({len(hosts)} hosts, one is the aggregator)")
        if isinstance(response_bytes, int) and response_bytes < 1:
            raise ConfigError(
                f"response size must be positive, got {response_bytes}")
        if deadline_s is not None and deadline_s <= 0:
            raise ConfigError(f"deadline must be positive, got {deadline_s}")
        if arrival not in _ARRIVALS:
            raise ConfigError(f"unknown arrival process {arrival!r} "
                              f"(expected one of {', '.join(_ARRIVALS)})")
        if max_queries is not None and max_queries < 1:
            raise ConfigError(f"max_queries must be positive, got {max_queries}")
        if (aggregator_index is not None
                and not (0 <= aggregator_index < len(hosts))):
            raise ConfigError(
                f"aggregator_index {aggregator_index} out of range "
                f"for {len(hosts)} hosts")
        self.sim = sim
        self.hosts = hosts
        self.cfg = cfg
        self.name = name
        self.rate_qps = float(rate_qps)
        self.fanout = fanout
        self.response_bytes = response_bytes
        self.deadline_s = deadline_s
        self.arrival = arrival
        self.max_queries = max_queries
        self.aggregator_index = aggregator_index
        self._rng = rng
        self.port = port if port is not None else port_allocator(sim).allocate()
        # Any host can be an aggregator, so every host listens.
        self._listeners = [TcpListener(sim, h, self.port, cfg) for h in hosts]
        self.results: List[QueryResult] = []
        self.flow_results: List[FlowResult] = []   #: individual responses
        self.queries_issued = 0
        self.queries_open = 0
        self._running = False
        self.on_idle: Optional[Callable[[], None]] = None

    @property
    def running(self) -> bool:
        """True while new queries may still be issued."""
        return self._running

    def start(self, first_delay: Optional[float] = None) -> None:
        """Begin issuing queries (first after ``first_delay``, default one
        inter-arrival gap). No-op if already running."""
        if self._running:
            return
        self._running = True
        delay = self._gap() if first_delay is None else max(first_delay, 1e-12)
        self.sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Stop issuing queries (open queries still complete)."""
        was = self._running
        self._running = False
        if was and self.queries_open == 0:
            self._notify_idle()

    def _notify_idle(self) -> None:
        if self.on_idle is not None:
            self.on_idle()

    def _gap(self) -> float:
        if self.arrival == "poisson":
            return float(self._rng.exponential(1.0 / self.rate_qps))
        return 1.0 / self.rate_qps

    def _fire(self) -> None:
        if not self._running:
            return
        self._issue_query()
        if self._running:
            self.sim.schedule(max(self._gap(), 1e-12), self._fire)

    def _issue_query(self) -> None:
        if self.aggregator_index is not None:
            aggregator = self.hosts[self.aggregator_index]
        else:
            aggregator = self.hosts[int(self._rng.integers(len(self.hosts)))]
        others = [h for h in self.hosts if h is not aggregator]
        picks = self._rng.choice(len(others), size=self.fanout, replace=False)
        workers = [others[int(i)] for i in picks]

        q = _OpenQuery(self.queries_issued, self.sim.now,
                       aggregator.node_id, self.fanout)
        self.queries_issued += 1
        self.queries_open += 1
        for w in workers:
            if isinstance(self.response_bytes, SizeCDF):
                nbytes = self.response_bytes.sample(float(self._rng.random()))
            else:
                nbytes = self.response_bytes
            start_bulk_flow(
                self.sim, w, aggregator, self.port, nbytes, self.cfg,
                on_done=lambda r, _q=q: self._response_done(_q, r),
                deadline_s=self.deadline_s)
        if (self.max_queries is not None
                and self.queries_issued >= self.max_queries):
            self._running = False

    def _response_done(self, q: _OpenQuery, result: FlowResult) -> None:
        self.flow_results.append(result)
        q.remaining -= 1
        if result.failed:
            q.failed += 1
        else:
            q.nbytes += result.nbytes
        if q.remaining == 0:
            self.queries_open -= 1
            self.results.append(QueryResult(
                query_id=q.query_id,
                start_time=q.start_time,
                end_time=self.sim.now,
                aggregator=q.aggregator,
                n_workers=self.fanout,
                failed_responses=q.failed,
                response_bytes=q.nbytes,
                deadline_s=self.deadline_s,
            ))
            if not self._running and self.queries_open == 0:
                self._notify_idle()

    # -- metrics ------------------------------------------------------------

    def deadline_miss_rate(self) -> float:
        """Fraction of completed queries past their deadline (0.0 when no
        deadline is configured or no query completed)."""
        if self.deadline_s is None or not self.results:
            return 0.0
        misses = sum(1 for r in self.results if r.missed)
        return misses / len(self.results)

    def summary_bucket(self, line_rate_bps: float) -> dict:
        """Per-workload result bucket (see :mod:`repro.workloads.metrics`)."""
        from repro.workloads.metrics import rpc_bucket

        return rpc_bucket(self, line_rate_bps)
