"""Latency probes: the co-located latency-sensitive service.

The paper's motivation is mixed-use clusters where low-latency services
(SQL-on-Hadoop, IoT pipelines) share the fabric with batch jobs. A
:class:`LatencyProbe` emits small request flows between random host pairs
at a fixed rate and records their completion times, giving a
service-level view of the network latency that complements the per-packet
metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.net.host import Host
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTimer
from repro.stats.summary import Summary, summarize
from repro.tcp.endpoint import TcpConfig, TcpListener
from repro.tcp.flow import FlowResult, start_bulk_flow
from repro.workloads.ports import port_allocator

__all__ = ["ProbeResult", "LatencyProbe"]


@dataclass(frozen=True)
class ProbeResult:
    """One probe request's completion record."""

    start_time: float
    fct: float
    src: int
    dst: int
    failed: bool


class LatencyProbe:
    """Emit ``request_bytes`` flows between random pairs every ``interval``.

    Parameters
    ----------
    sim, hosts:
        Kernel and probe-capable hosts.
    cfg:
        Transport config for the probe flows (typically the same variant
        as the batch traffic).
    interval:
        Seconds between probes.
    request_bytes:
        Probe flow size (default 8 KB — an RPC-sized request).
    rng:
        Seeded generator for pair selection.
    port:
        Listener port; allocated from the sim's port allocator when None.
    """

    def __init__(
        self,
        sim: Simulator,
        hosts: List[Host],
        cfg: TcpConfig,
        interval: float,
        request_bytes: int = 8192,
        rng: np.random.Generator = None,
        port: Optional[int] = None,
    ):
        if len(hosts) < 2:
            raise ConfigError("probe needs at least 2 hosts")
        self.sim = sim
        self.hosts = hosts
        self.cfg = cfg
        self.request_bytes = request_bytes
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.results: List[ProbeResult] = []
        self.port = port if port is not None else port_allocator(sim).allocate()
        self._listeners = [TcpListener(sim, h, self.port, cfg) for h in hosts]
        self._timer = PeriodicTimer(sim, interval, self._fire)

    def start(self, first_delay: float = 0.0) -> None:
        """Begin probing (first probe fires immediately by default)."""
        self._timer.start(first_delay=max(first_delay, 1e-12))

    def stop(self) -> None:
        """Stop issuing new probes (in-flight probes still complete)."""
        self._timer.stop()

    def _fire(self) -> None:
        i, j = self._rng.choice(len(self.hosts), size=2, replace=False)
        src, dst = self.hosts[int(i)], self.hosts[int(j)]
        start = self.sim.now

        def done(r: FlowResult) -> None:
            self.results.append(
                ProbeResult(start, r.fct, r.src, r.dst, r.failed)
            )

        start_bulk_flow(self.sim, src, dst, self.port, self.request_bytes,
                        self.cfg, on_done=done)

    def fct_summary(self) -> Summary:
        """Distribution of completed probe FCTs."""
        return summarize([r.fct for r in self.results if not r.failed])

    def summary_bucket(self, line_rate_bps: float) -> dict:
        """Per-workload result bucket (composes with ``WorkloadMix``)."""
        from repro.workloads.metrics import summary_dict

        completed = [r for r in self.results if not r.failed]
        ideal = self.request_bytes * 8.0 / line_rate_bps
        return {
            "kind": "probe",
            "probes": len(self.results),
            "probes_failed": len(self.results) - len(completed),
            "request_bytes": self.request_bytes,
            "fct_s": summary_dict(r.fct for r in completed),
            "slowdown": summary_dict(
                r.fct / ideal for r in completed if r.fct > 0),
        }
