"""Exception hierarchy for the repro package.

Every exception raised intentionally by this package derives from
:class:`ReproError`, so callers can catch simulator-level failures without
swallowing genuine programming errors (``TypeError`` etc.).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "SchedulingError",
    "ConfigError",
    "TopologyError",
    "RoutingError",
    "QueueError",
    "TcpError",
    "MapReduceError",
    "ExperimentError",
    "ValidationError",
    "FarmError",
    "PreemptedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Generic failure inside the discrete-event kernel."""


class SchedulingError(SimulationError):
    """Attempt to schedule an event in the past or on a stopped simulator."""


class ConfigError(ReproError):
    """Invalid or inconsistent configuration values."""


class TopologyError(ReproError):
    """Malformed network topology (dangling link, duplicate node id…)."""


class RoutingError(ReproError):
    """No route between two hosts, or a forwarding table miss."""


class QueueError(ReproError):
    """Queue discipline misuse (dequeue from empty queue, bad thresholds…)."""


class TcpError(ReproError):
    """TCP endpoint state machine violation."""


class MapReduceError(ReproError):
    """MapReduce engine failure (unschedulable job, missing block…)."""


class ExperimentError(ReproError):
    """Experiment harness failure (unknown grid cell, missing baseline…)."""


class ValidationError(ReproError):
    """A run violated a simulation invariant (see :mod:`repro.validate`)."""


class FarmError(ReproError):
    """Sweep-farm failure (protocol violation, dead service, bad journal…)."""


class PreemptedError(FarmError):
    """A cell was preempted at an event-loop checkpoint.

    Raised from inside the simulation's dispatch loop by the farm
    worker's checkpoint hook; the partial run is discarded and the cell
    goes back to the scheduler's queue.
    """
