"""Dependency-free SVG rendering of the reproduction's figures."""

from repro.plotting.svg import SvgCanvas
from repro.plotting.charts import (
    figure_to_svg,
    grid_regime_map_to_svg,
    queue_snapshot_to_svg,
    regime_map_to_svg,
    timeseries_to_svg,
)

__all__ = [
    "SvgCanvas",
    "figure_to_svg",
    "grid_regime_map_to_svg",
    "queue_snapshot_to_svg",
    "regime_map_to_svg",
    "timeseries_to_svg",
]
