"""A minimal SVG canvas.

The execution environment has no plotting libraries, so the figure
renderers write SVG by hand through this tiny element builder. Only the
primitives the charts need are implemented (lines, polylines, rects,
text, dashed strokes); everything escapes its text content.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple
from xml.sax.saxutils import escape

__all__ = ["SvgCanvas"]


class SvgCanvas:
    """Accumulates SVG elements and serialises a standalone document."""

    def __init__(self, width: int, height: int, background: str = "#ffffff"):
        self.width = width
        self.height = height
        self._parts: List[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # -- primitives -----------------------------------------------------------

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str = "#000", width: float = 1.0,
             dashed: bool = False) -> None:
        """Straight line segment."""
        dash = ' stroke-dasharray="6,4"' if dashed else ""
        self._parts.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{stroke}" stroke-width="{width}"{dash}/>'
        )

    def polyline(self, points: Sequence[Tuple[float, float]],
                 stroke: str = "#000", width: float = 1.5,
                 dashed: bool = False) -> None:
        """Connected line through ``points``."""
        if not points:
            return
        pts = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        dash = ' stroke-dasharray="6,4"' if dashed else ""
        self._parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"{dash}/>'
        )

    def rect(self, x: float, y: float, w: float, h: float,
             fill: str = "#ccc", stroke: str = "#000") -> None:
        """Axis-aligned rectangle."""
        self._parts.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" height="{h:.2f}" '
            f'fill="{fill}" stroke="{stroke}"/>'
        )

    def circle(self, cx: float, cy: float, r: float, fill: str = "#000") -> None:
        """Filled circle (series markers)."""
        self._parts.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{r:.2f}" fill="{fill}"/>'
        )

    def text(self, x: float, y: float, content: str, size: int = 12,
             anchor: str = "start", fill: str = "#000") -> None:
        """Text element; content is XML-escaped."""
        self._parts.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" '
            f'font-family="sans-serif" text-anchor="{anchor}" '
            f'fill="{fill}">{escape(content)}</text>'
        )

    # -- output ------------------------------------------------------------------

    def to_svg(self) -> str:
        """Serialise the document."""
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n{body}\n</svg>\n'
        )

    def save(self, path: str) -> None:
        """Write the document to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_svg())
