"""Chart renderers: FigureData / QueueSnapshot / TimeSeries to SVG.

The goal is a faithful visual counterpart of the paper's plots — series
lines over the target-delay axis with the DropTail reference as a dashed
line — with no plotting dependency. A small qualitative palette with
distinguishable hues is baked in.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.monitor import QueueSnapshot
from repro.plotting.svg import SvgCanvas
from repro.stats.series import TimeSeries

__all__ = ["figure_to_svg", "queue_snapshot_to_svg", "timeseries_to_svg",
           "regime_map_to_svg", "grid_regime_map_to_svg"]

#: Qualitative palette (colorblind-safe-ish hues).
PALETTE = (
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0",
    "#3ca951", "#ff8ab7", "#a463f2", "#97bbf5",
)

MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 70, 200, 40, 50


def _axes(canvas: SvgCanvas, x0, y0, x1, y1, title: str,
          xlabel: str, ylabel: str) -> None:
    canvas.line(x0, y1, x1, y1, stroke="#333")  # x axis
    canvas.line(x0, y0, x0, y1, stroke="#333")  # y axis
    canvas.text((x0 + x1) / 2, 20, title, size=14, anchor="middle")
    canvas.text((x0 + x1) / 2, y1 + 35, xlabel, size=11, anchor="middle")
    canvas.text(14, (y0 + y1) / 2, ylabel, size=11, anchor="middle")


def figure_to_svg(
    fig,
    width: int = 760,
    height: int = 420,
    ylabel: Optional[str] = None,
) -> str:
    """Render an :class:`~repro.experiments.figures.FigureData` to SVG."""
    canvas = SvgCanvas(width, height)
    x0, y0 = MARGIN_L, MARGIN_T
    x1, y1 = width - MARGIN_R, height - MARGIN_B

    delays = list(fig.delays)
    all_vals = [v for vals in fig.series.values() for v in vals]
    all_vals += list(fig.references.values()) + [1.0]
    vmax = max(all_vals) * 1.1
    vmin = 0.0

    def sx(i: int) -> float:
        if len(delays) == 1:
            return (x0 + x1) / 2
        return x0 + (x1 - x0) * i / (len(delays) - 1)

    def sy(v: float) -> float:
        return y1 - (y1 - y0) * (v - vmin) / (vmax - vmin)

    _axes(canvas, x0, y0, x1, y1, fig.title,
          "target delay", ylabel or f"normalized to {fig.normalized_against}")

    # gridline + tick labels
    ticks = 5
    for t in range(ticks + 1):
        v = vmin + (vmax - vmin) * t / ticks
        y = sy(v)
        canvas.line(x0, y, x1, y, stroke="#eee")
        canvas.text(x0 - 6, y + 4, f"{v:.2f}", size=10, anchor="end")
    for i, d in enumerate(delays):
        canvas.text(sx(i), y1 + 16, f"{d * 1e6:.0f}us", size=10, anchor="middle")

    # the y=1.0 baseline (DropTail) as a thin reference
    canvas.line(x0, sy(1.0), x1, sy(1.0), stroke="#999", width=0.8)

    legend_y = y0
    for idx, (label, vals) in enumerate(sorted(fig.series.items())):
        color = PALETTE[idx % len(PALETTE)]
        pts = [(sx(i), sy(v)) for i, v in enumerate(vals)]
        canvas.polyline(pts, stroke=color, width=1.8)
        for x, y in pts:
            canvas.circle(x, y, 2.4, fill=color)
        canvas.line(x1 + 10, legend_y, x1 + 30, legend_y, stroke=color, width=2)
        canvas.text(x1 + 36, legend_y + 4, label, size=10)
        legend_y += 16

    for ref, v in fig.references.items():
        canvas.line(x0, sy(v), x1, sy(v), stroke="#444", width=1.2, dashed=True)
        canvas.line(x1 + 10, legend_y, x1 + 30, legend_y, stroke="#444",
                    width=1.2, dashed=True)
        canvas.text(x1 + 36, legend_y + 4, f"{ref} (ref)", size=10)
        legend_y += 16

    return canvas.to_svg()


def queue_snapshot_to_svg(
    snapshot: QueueSnapshot,
    mark_threshold: Optional[int] = None,
    width: int = 700,
    height: int = 220,
) -> str:
    """Render a Figure-1 style queue-composition bar."""
    canvas = SvgCanvas(width, height)
    x0, y0 = 30, 70
    bar_h = 46
    bar_w = width - 60
    limit = max(snapshot.limit_packets, 1)

    canvas.text(width / 2, 24, "Switch egress queue snapshot", size=14,
                anchor="middle")
    canvas.text(width / 2, 42,
                f"t={snapshot.time:.3f}s  occupancy "
                f"{snapshot.qlen_packets}/{snapshot.limit_packets} packets",
                size=11, anchor="middle")

    segments = [
        ("ECT data", snapshot.ect_data + snapshot.ce_marked, "#4269d0"),
        ("pure ACKs", snapshot.pure_acks, "#ff725c"),
        ("SYNs", snapshot.syns, "#efb118"),
        ("other", snapshot.nonect_data, "#6cc5b0"),
    ]
    x = x0
    canvas.rect(x0, y0, bar_w, bar_h, fill="#f4f4f4", stroke="#333")
    legend_x = x0
    for label, count, color in segments:
        w = bar_w * count / limit
        if w > 0:
            canvas.rect(x, y0, w, bar_h, fill=color, stroke="none")
            x += w
        canvas.rect(legend_x, y0 + bar_h + 22, 10, 10, fill=color, stroke="none")
        canvas.text(legend_x + 14, y0 + bar_h + 31, f"{label} ({count})", size=10)
        legend_x += 150

    if mark_threshold is not None and mark_threshold <= limit:
        tx = x0 + bar_w * mark_threshold / limit
        canvas.line(tx, y0 - 10, tx, y0 + bar_h + 10, stroke="#d00",
                    width=1.2, dashed=True)
        canvas.text(tx + 4, y0 - 12, f"K={mark_threshold}", size=10, fill="#d00")

    return canvas.to_svg()


#: Regime colors for the stability map (match the classification names
#: in :mod:`repro.analysis.stability`).
REGIME_COLORS = {
    "stable": "#3ca951",
    "limit-cycle": "#ff725c",
    "chaotic-irregular": "#efb118",
}


def regime_map_to_svg(
    m,
    width: int = 760,
    height: int = 420,
) -> str:
    """Render a :class:`~repro.experiments.bifurcation.StabilityMap`.

    The swept parameter runs along a log-scaled x axis; y is the
    dominant queue's relative oscillation amplitude. Points are colored
    by regime (refined points ringed), the amplitude curve connects
    them, and each bracketed stable↔oscillatory transition is shaded.
    """
    import math

    canvas = SvgCanvas(width, height)
    x0, y0 = MARGIN_L, MARGIN_T
    x1, y1 = width - MARGIN_R, height - MARGIN_B

    points = list(m.points)
    if not points:
        canvas.text(width / 2, height / 2, "(no points)", anchor="middle")
        return canvas.to_svg()

    lo, hi = points[0].value, points[-1].value
    log_lo, log_hi = math.log(lo), math.log(max(hi, lo * 1.0001))
    vmax = max(max(p.rel_amplitude for p in points) * 1.15, 0.3)

    def sx(v: float) -> float:
        if log_hi == log_lo:
            return (x0 + x1) / 2
        return x0 + (x1 - x0) * (math.log(v) - log_lo) / (log_hi - log_lo)

    def sy(a: float) -> float:
        return y1 - (y1 - y0) * a / vmax

    unit = "target delay" if m.axis == "target-delay" else m.axis
    _axes(canvas, x0, y0, x1, y1,
          f"Stability map: {m.base_label} over {m.axis}",
          unit, "relative oscillation amplitude")

    # Shaded transition brackets first, so everything draws on top.
    for t in m.transitions:
        bx0, bx1 = sx(t.lo), sx(t.hi)
        canvas.rect(bx0, y0, max(bx1 - bx0, 2.0), y1 - y0,
                    fill="#fbe9e7", stroke="none")

    for tick in range(6):
        a = vmax * tick / 5
        canvas.line(x0, sy(a), x1, sy(a), stroke="#eee")
        canvas.text(x0 - 6, sy(a) + 4, f"{a:.2f}", size=10, anchor="end")
    for p in points:
        label = (f"{p.value * 1e6:.3g}us" if m.axis == "target-delay"
                 else f"{p.value:.3g}")
        canvas.text(sx(p.value), y1 + 16, label, size=9, anchor="middle")

    canvas.polyline([(sx(p.value), sy(p.rel_amplitude)) for p in points],
                    stroke="#bbb", width=1.0)
    for p in points:
        color = REGIME_COLORS.get(p.classification, "#4269d0")
        x, y = sx(p.value), sy(p.rel_amplitude)
        if p.refined:
            canvas.circle(x, y, 5.4, fill="#333")
        canvas.circle(x, y, 3.6, fill=color)

    legend_y = y0
    for name, color in REGIME_COLORS.items():
        canvas.circle(x1 + 16, legend_y, 4, fill=color)
        canvas.text(x1 + 26, legend_y + 4, name, size=10)
        legend_y += 16
    canvas.circle(x1 + 16, legend_y, 5.4, fill="#333")
    canvas.circle(x1 + 16, legend_y, 3.6, fill="#fff")
    canvas.text(x1 + 26, legend_y + 4, "refined point", size=10)
    legend_y += 16
    canvas.rect(x1 + 10, legend_y - 5, 12, 10, fill="#fbe9e7", stroke="#ccc")
    canvas.text(x1 + 26, legend_y + 4, "transition bracket", size=10)

    return canvas.to_svg()


def grid_regime_map_to_svg(
    m,
    width: int = 760,
    height: int = 420,
) -> str:
    """Render a K-vs-load categorical regime grid.

    ``m`` is a :class:`~repro.experiments.fixedk.FixedKRegimeMap`-shaped
    object: ``k_values`` (x axis, sorted), ``loads`` (y axis, sorted),
    ``title``, and ``cells`` mapping ``(k_index, load_index)`` to a point
    dict with at least ``classification`` and ``rel_amplitude``. Each
    grid cell is a tile colored by regime; the tile's inner dot scales
    with the dominant queue's relative oscillation amplitude, so a row
    of growing dots shows the loop sliding toward its bifurcation even
    before the classification flips.
    """
    canvas = SvgCanvas(width, height)
    x0, y0 = MARGIN_L, MARGIN_T
    x1, y1 = width - MARGIN_R, height - MARGIN_B

    ks, loads = list(m.k_values), list(m.loads)
    if not ks or not loads:
        canvas.text(width / 2, height / 2, "(no points)", anchor="middle")
        return canvas.to_svg()

    _axes(canvas, x0, y0, x1, y1, m.title, "K (packets)", "offered load")

    tile_w = (x1 - x0) / len(ks)
    tile_h = (y1 - y0) / len(loads)
    for ki, k in enumerate(ks):
        canvas.text(x0 + (ki + 0.5) * tile_w, y1 + 16, f"{k}",
                    size=10, anchor="middle")
    for li, load in enumerate(loads):
        # loads grow upward: row 0 sits at the bottom of the grid.
        cy = y1 - (li + 0.5) * tile_h
        canvas.text(x0 - 6, cy + 4, f"{load:.2f}", size=10, anchor="end")

    max_dot = max(2.0, min(tile_w, tile_h) / 2 - 4)
    for ki in range(len(ks)):
        for li in range(len(loads)):
            tx = x0 + ki * tile_w
            ty = y1 - (li + 1) * tile_h
            point = m.cells.get((ki, li))
            if point is None:
                canvas.rect(tx, ty, tile_w, tile_h, fill="#f4f4f4",
                            stroke="#fff")
                continue
            color = REGIME_COLORS.get(str(point["classification"]), "#4269d0")
            canvas.rect(tx, ty, tile_w, tile_h, fill=color, stroke="#fff")
            rel = float(point.get("rel_amplitude") or 0.0)
            r = max_dot * min(rel, 1.0)
            if r > 0.5:
                canvas.circle(tx + tile_w / 2, ty + tile_h / 2, r,
                              fill="#00000055")

    legend_y = y0
    for name, color in REGIME_COLORS.items():
        canvas.rect(x1 + 10, legend_y - 5, 12, 10, fill=color, stroke="none")
        canvas.text(x1 + 26, legend_y + 4, name, size=10)
        legend_y += 16
    canvas.circle(x1 + 16, legend_y, 4, fill="#00000055")
    canvas.text(x1 + 26, legend_y + 4, "dot ∝ rel. amplitude", size=10)

    return canvas.to_svg()


def timeseries_to_svg(
    series: Sequence[TimeSeries],
    title: str = "",
    width: int = 760,
    height: int = 320,
    y_scale: float = 1.0,
    ylabel: str = "",
) -> str:
    """Render one or more TimeSeries (e.g. cwnd traces) as SVG lines."""
    canvas = SvgCanvas(width, height)
    x0, y0 = MARGIN_L, MARGIN_T
    x1, y1 = width - MARGIN_R, height - MARGIN_B

    series = [s for s in series if len(s)]
    if not series:
        canvas.text(width / 2, height / 2, "(no samples)", anchor="middle")
        return canvas.to_svg()

    tmax = max(s.times[-1] for s in series)
    tmin = min(s.times[0] for s in series)
    vmax = max(s.max() for s in series) * y_scale * 1.05 or 1.0

    def sx(t: float) -> float:
        if tmax == tmin:
            return (x0 + x1) / 2
        return x0 + (x1 - x0) * (t - tmin) / (tmax - tmin)

    def sy(v: float) -> float:
        return y1 - (y1 - y0) * v / vmax

    _axes(canvas, x0, y0, x1, y1, title, "time (s)", ylabel)
    for t in range(6):
        v = vmax * t / 5
        canvas.line(x0, sy(v), x1, sy(v), stroke="#eee")
        canvas.text(x0 - 6, sy(v) + 4, f"{v:.3g}", size=10, anchor="end")

    legend_y = y0
    for idx, s in enumerate(series):
        color = PALETTE[idx % len(PALETTE)]
        pts = [(sx(t), sy(v * y_scale)) for t, v in zip(s.times, s.values)]
        canvas.polyline(pts, stroke=color, width=1.2)
        canvas.line(x1 + 10, legend_y, x1 + 30, legend_y, stroke=color, width=2)
        canvas.text(x1 + 36, legend_y + 4, s.name or f"series {idx}", size=10)
        legend_y += 16

    return canvas.to_svg()
