"""Command-line interface: ``repro-hadoop-ecn`` / ``python -m repro``.

Subcommands regenerate each paper artifact:

* ``tables`` — Tables I & II
* ``fig1``   — the queue snapshot + ACK-drop asymmetry
* ``fig2|fig3|fig4`` — the normalized sweep figures (``--deep`` for (b))
* ``claims`` — check the paper's quantitative claims (C1-C6)
* ``report`` — run everything and write EXPERIMENTS.md
* ``cell``   — run one configuration and dump its metrics

``--scale`` shrinks the Terasort dataset for quick looks (1.0 = the 256 MB
reference configuration; 0.25 runs in roughly a quarter of the time).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.core.protection import ProtectionMode
from repro.experiments.config import (
    DEEP_BUFFER_PACKETS,
    SHALLOW_BUFFER_PACKETS,
    ExperimentConfig,
    QueueSetup,
)
from repro.experiments.figures import (
    fig1_queue_snapshot,
    fig2_runtime,
    fig3_throughput,
    fig4_latency,
    render_fig1,
    render_figure,
)
from repro.experiments.report import check_claims, render_claims, write_experiments_md
from repro.experiments.runner import run_cell
from repro.experiments.tables import render_table1, render_table2
from repro.tcp.endpoint import TcpVariant
from repro.units import fmt_rate, fmt_time, us

__all__ = ["main"]


def _progress(done: int, total: int, label: str) -> None:
    print(f"  [{done:3d}/{total}] {label}", file=sys.stderr)


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scale", type=float, default=1.0,
                   help="dataset scale factor (default 1.0 = 256 MB)")
    p.add_argument("--seed", type=int, default=42, help="experiment seed")
    p.add_argument("--quiet", action="store_true", help="suppress progress")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hadoop-ecn",
        description="Reproduce 'High Throughput and Low Latency on Hadoop "
                    "Clusters using ECN' (CLUSTER 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables I and II")

    p1 = sub.add_parser("fig1", help="queue snapshot + ACK drop asymmetry")
    p1.add_argument("--svg", metavar="PATH",
                    help="also write the figure as an SVG file")
    _add_common(p1)

    for name, help_text in (
        ("fig2", "Hadoop runtime vs target delay"),
        ("fig3", "cluster throughput vs target delay"),
        ("fig4", "network latency vs target delay"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--deep", action="store_true",
                       help="deep-buffer variant (sub-figure b)")
        p.add_argument("--svg", metavar="PATH",
                       help="also write the figure as an SVG file")
        _add_common(p)

    pc = sub.add_parser("claims", help="check paper claims C1-C6")
    _add_common(pc)

    pr = sub.add_parser("report", help="write EXPERIMENTS.md")
    pr.add_argument("--out", default="EXPERIMENTS.md", help="output path")
    _add_common(pr)

    pcell = sub.add_parser("cell", help="run one configuration")
    pcell.add_argument("--queue",
                       choices=["droptail", "red", "marking", "codel"],
                       default="red")
    pcell.add_argument("--protection",
                       choices=[m.value for m in ProtectionMode],
                       default="default")
    pcell.add_argument("--variant",
                       choices=[v.value for v in TcpVariant],
                       default=TcpVariant.ECN.value)
    pcell.add_argument("--deep", action="store_true")
    pcell.add_argument("--target-delay-us", type=float, default=500.0)
    _add_common(pcell)

    return parser


def _cmd_cell(args: argparse.Namespace) -> int:
    queue = QueueSetup(
        kind=args.queue,
        buffer_packets=DEEP_BUFFER_PACKETS if args.deep else SHALLOW_BUFFER_PACKETS,
        target_delay_s=None if args.queue == "droptail" else us(args.target_delay_us),
        protection=ProtectionMode(args.protection),
    )
    cfg = ExperimentConfig(
        queue=queue,
        variant=TcpVariant(args.variant),
        seed=args.seed,
    ).scaled(args.scale)
    t0 = time.time()
    cell = run_cell(cfg)
    m = cell.metrics
    q = m.queue
    print(f"cell     : {cfg.label()}")
    print(f"runtime  : {fmt_time(m.runtime)}")
    print(f"tput/node: {fmt_rate(m.throughput_per_node_bps)}")
    print(f"latency  : mean {fmt_time(m.mean_latency)}  p99 {fmt_time(m.p99_latency)}")
    print(f"queueing : early drops {q.drops_early}  tail drops {q.drops_tail}  "
          f"marks {q.marks}  protected {q.protected}")
    print(f"ack drops: {q.ack_drops}/{q.ack_arrivals} ({q.ack_drop_rate():.2%})")
    print(f"tcp      : retx {m.retransmits}  rtos {m.rtos}  syn retries {m.syn_retries}")
    print(f"(wall time {time.time() - t0:.1f}s)")
    return 0


def main(argv: Optional[list] = None) -> int:
    """CLI entry point."""
    # Die quietly when piped into `head` etc. instead of tracebacking.
    try:
        import signal

        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    except (ImportError, ValueError, AttributeError):  # pragma: no cover
        pass  # non-POSIX platform or non-main thread
    args = build_parser().parse_args(argv)
    progress = None if getattr(args, "quiet", True) else _progress

    if args.command == "tables":
        print(render_table1())
        print()
        print(render_table2())
        return 0
    if args.command == "fig1":
        data = fig1_queue_snapshot(args.scale, args.seed)
        print(render_fig1(data))
        if args.svg:
            from repro.plotting import queue_snapshot_to_svg

            with open(args.svg, "w") as fh:
                fh.write(queue_snapshot_to_svg(
                    data.snapshot, data.mark_threshold_packets))
            print(f"wrote {args.svg}", file=sys.stderr)
        return 0
    if args.command in ("fig2", "fig3", "fig4"):
        fn = {"fig2": fig2_runtime, "fig3": fig3_throughput,
              "fig4": fig4_latency}[args.command]
        fig = fn(args.deep, args.scale, args.seed, progress=progress)
        print(render_figure(fig))
        if args.svg:
            from repro.plotting import figure_to_svg

            with open(args.svg, "w") as fh:
                fh.write(figure_to_svg(fig))
            print(f"wrote {args.svg}", file=sys.stderr)
        return 0
    if args.command == "claims":
        print(render_claims(check_claims(args.scale, args.seed,
                                         progress=progress)))
        return 0
    if args.command == "report":
        write_experiments_md(args.out, args.scale, args.seed,
                             progress=progress)
        print(f"wrote {args.out}")
        return 0
    if args.command == "cell":
        return _cmd_cell(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
