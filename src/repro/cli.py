"""Command-line interface: ``repro-hadoop-ecn`` / ``python -m repro``.

Subcommands regenerate each paper artifact:

* ``tables`` — Tables I & II
* ``fig1``   — the queue snapshot + ACK-drop asymmetry
* ``fig2|fig3|fig4`` — the normalized sweep figures (``--deep`` for (b))
* ``claims`` — check the paper's quantitative claims (C1-C6)
* ``report`` — run everything and write EXPERIMENTS.md
* ``sweep``  — run the full target-delay grid once (``--jobs N`` fans
  cells out over worker processes; ``--cache-dir``/``--resume`` persist
  and reuse per-cell results across interrupted runs)
* ``cell``   — run one configuration and dump its metrics
  (``--json [PATH]`` emits the machine-readable run manifest instead)
* ``profile`` — run one configuration with the event-loop profiler and
  report events/sec, heap high-water mark, and the sim/wall ratio
* ``trace`` — run one configuration and export a JSONL packet/queue/tcp
  trace (``--kinds drop,mark,deliver --out trace.jsonl``)
* ``bench`` — run the reproducible benchmark suite (micro primitives +
  pinned-seed canonical cells) and write ``BENCH_<stamp>.json``;
  ``--baseline PATH`` gates regressions (``--quick`` is the CI smoke
  mode); ``--compare A B`` renders a side-by-side table of two
  committed reports' normalized macro times without running anything
* ``fluid`` — validate the hybrid fluid/packet fidelity tier
  (``fidelity="hybrid"`` on a cell config): bit-identity to packet mode
  where no flow qualifies, pinned RunMetrics tolerances on the bulk
  pairs cell where the fluid recurrence carries most bytes, and
  bit-exact determinism with the invariant checkers armed (``--smoke``
  is the CI mode)
* ``check`` — arm the simulation invariant checkers (packet
  conservation, queue accounting, TCP sequence space, event engine) on
  representative figure cells, verify armed runs are bit-identical to
  unarmed ones, and fuzz randomized scenarios (``--smoke`` is the CI
  mode; failing scenarios are shrunk to a minimal repro dict)
* ``stability`` — the stability observatory: sweep one control-loop
  parameter (ECN threshold K via target delay, or the DCTCP gain) with
  steady-state incast probe cells, classify each point as stable /
  limit-cycle / chaotic-irregular, automatically refine the grid near
  regime boundaries, and write the stability map as SVG + JSON
  (``--smoke`` pins one oscillating and one damped cell for CI)
* ``fixedk`` — the Fixed-K ECN study: single-threshold RED
  (``min_th == max_th == K``) on the leaf–spine fabric under
  partition-aggregate incast, swept over K × offered load × fan-in ×
  protection mode × transport; prints the FCT-slowdown-vs-K table and
  ASCII K-vs-load regime grids, and writes one regime-map SVG per
  (variant, protection, fan-in) slice (``--smoke`` replays a pinned
  8-cell mini-grid bit-for-bit for CI)
* ``serve`` — run the sweep-farm scheduler: a daemonized job-queue
  service (result cache + crash-safe journal + artifact store + N
  worker processes) answering submit/status/results/cancel/watch as
  JSON over a Unix socket; killing and restarting it resumes from the
  journal with at most the in-flight cells re-executed
* ``farm`` — sweep-farm client: submit the target-delay grids to a
  running ``serve`` (``--priority`` jumps the queue, preempting
  lower-priority cells at their next event-loop checkpoint), stream
  live progress, fetch results, cancel jobs, or run the ``--smoke``
  CI gate against a throwaway farm
* ``cache`` — inspect a content-addressed result cache: list entries
  with label/size/age, ``--stats``, and ``--prune-age HOURS`` /
  ``--keep-grid`` hygiene (corrupt entries and stale ``*.tmp`` files
  from killed writers are collected too)
* ``flaws`` — the Linux-DCTCP flaws pack: re-run one pinned tiny-buffer
  incast cell with each Misund endpoint flaw (delayed-ACK mark
  coalescing, ECT retransmits, α-freeze across RTO) re-enabled and print
  the flawed-vs-corrected comparison table (``--smoke`` replays every
  profile bit-for-bit, checkers armed, and gates on the flawed α
  exceeding the corrected α)

``--scale`` shrinks the Terasort dataset for quick looks (1.0 = the 256 MB
reference configuration; 0.25 runs in roughly a quarter of the time).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional

from repro.core.protection import ProtectionMode
from repro.core.registry import qdisc_entry, qdisc_names
from repro.experiments.config import (
    DEEP_BUFFER_PACKETS,
    SHALLOW_BUFFER_PACKETS,
    ExperimentConfig,
    QueueSetup,
)
from repro.experiments.figures import (
    fig1_queue_snapshot,
    fig2_runtime,
    fig3_throughput,
    fig4_latency,
    render_fig1,
    render_figure,
)
from repro.experiments.report import check_claims, render_claims, write_experiments_md
from repro.experiments.runner import run_cell
from repro.experiments.tables import render_table1, render_table2
from repro.tcp.cc import cc_names
from repro.tcp.endpoint import FLAW_PROFILES, TcpVariant
from repro.units import fmt_rate, fmt_time, us

__all__ = ["main"]


def _progress(done: int, total: int, label: str) -> None:
    # Kept for API stability; sweeps below use a ProgressReporter (adds ETA).
    print(f"  [{done:3d}/{total}] {label}", file=sys.stderr)


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scale", type=float, default=1.0,
                   help="dataset scale factor (default 1.0 = 256 MB)")
    p.add_argument("--seed", type=int, default=42, help="experiment seed")
    p.add_argument("--quiet", action="store_true", help="suppress progress")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hadoop-ecn",
        description="Reproduce 'High Throughput and Low Latency on Hadoop "
                    "Clusters using ECN' (CLUSTER 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables I and II")

    p1 = sub.add_parser("fig1", help="queue snapshot + ACK drop asymmetry")
    p1.add_argument("--svg", metavar="PATH",
                    help="also write the figure as an SVG file")
    _add_common(p1)

    for name, help_text in (
        ("fig2", "Hadoop runtime vs target delay"),
        ("fig3", "cluster throughput vs target delay"),
        ("fig4", "network latency vs target delay"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--deep", action="store_true",
                       help="deep-buffer variant (sub-figure b)")
        p.add_argument("--svg", metavar="PATH",
                       help="also write the figure as an SVG file")
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the underlying sweep "
                            "(default 1 = serial; results are identical)")
        _add_common(p)

    pc = sub.add_parser("claims", help="check paper claims C1-C6")
    pc.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes for the underlying sweeps")
    _add_common(pc)

    pr = sub.add_parser("report", help="write EXPERIMENTS.md")
    pr.add_argument("--out", default="EXPERIMENTS.md", help="output path")
    pr.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes for the underlying sweeps")
    _add_common(pr)

    def _add_cell_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--queue",
                       choices=list(qdisc_names()),
                       default="red")
        p.add_argument("--protection",
                       choices=[m.value for m in ProtectionMode],
                       default="default")
        p.add_argument("--variant",
                       choices=[v.value for v in TcpVariant],
                       default=TcpVariant.ECN.value)
        p.add_argument("--cc", choices=list(cc_names()), default=None,
                       help="congestion-control override (registry key; "
                            "default: the variant's own CC)")
        p.add_argument("--flaw-profile", choices=sorted(FLAW_PROFILES),
                       default=None,
                       help="re-enable a Linux-DCTCP endpoint flaw "
                            "profile (default: corrected stack)")
        p.add_argument("--deep", action="store_true")
        p.add_argument("--target-delay-us", type=float, default=500.0)
        _add_common(p)

    psweep = sub.add_parser(
        "sweep",
        help="run the target-delay grid once, optionally in parallel "
             "against a resumable on-disk result cache")
    psweep.add_argument("--deep", action="store_true",
                        help="deep-buffer grid (default: shallow)")
    psweep.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1 = serial; "
                             "parallel results are bit-identical)")
    psweep.add_argument("--cache-dir", metavar="DIR",
                        help="persist per-cell results here, keyed by "
                             "config content")
    psweep.add_argument("--resume", action="store_true",
                        help="skip cells already present in --cache-dir "
                             "(resume an interrupted sweep)")
    psweep.add_argument("--manifest", metavar="PATH",
                        help="write the merged sweep manifest as JSON")
    psweep.add_argument("--limit", type=int, default=None, metavar="N",
                        help="run only the first N cells (smoke tests)")
    _add_common(psweep)

    pmix = sub.add_parser(
        "mix",
        help="mixed-cluster coexistence: Terasort shuffle + "
             "partition-aggregate RPC + background flows per queue scheme")
    pmix.add_argument("--smoke", action="store_true",
                      help="CI mode: one tiny coexistence cell, run "
                           "back-to-back (plain twice, then with the "
                           "validation checkers armed) and compared "
                           "bit-for-bit")
    pmix.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="worker processes (default 1 = serial)")
    pmix.add_argument("--cache-dir", metavar="DIR",
                      help="persist per-cell results here, keyed by "
                           "config content")
    pmix.add_argument("--resume", action="store_true",
                      help="skip cells already present in --cache-dir")
    pmix.add_argument("--manifest", metavar="PATH",
                      help="write the run manifest as JSON (--smoke "
                           "default: mix_smoke_manifest.json)")
    pmix.add_argument("--limit", type=int, default=None, metavar="N",
                      help="run only the first N grid cells")
    _add_common(pmix)

    pcell = sub.add_parser("cell", help="run one configuration")
    pcell.add_argument("--json", nargs="?", const="-", metavar="PATH",
                       help="emit the run manifest as JSON to PATH "
                            "(default: stdout) instead of the text summary")
    _add_cell_options(pcell)

    pprof = sub.add_parser(
        "profile", help="profile the event loop over one configuration")
    pprof.add_argument("--json", nargs="?", const="-", metavar="PATH",
                       help="emit the profile report as JSON")
    _add_cell_options(pprof)

    ptrace = sub.add_parser(
        "trace", help="export a JSONL event trace of one configuration")
    ptrace.add_argument("--kinds", default="drop,mark,deliver",
                        help="comma-separated event kinds (default "
                             "drop,mark,deliver; also: enqueue,tx,link_loss,"
                             "queue.sample,tcp.cwnd,tcp.retx,tcp.rto,tcp.ece)")
    ptrace.add_argument("--out", default="trace.jsonl", metavar="PATH",
                        help="output file ('-' for stdout)")
    ptrace.add_argument("--queue-interval-us", type=float, default=None,
                        help="also sample queue composition on this period "
                             "(emits queue.sample records)")
    _add_cell_options(ptrace)

    pcheck = sub.add_parser(
        "check",
        help="arm the simulation invariant checkers on representative "
             "figure cells (plus a randomized scenario fuzz sweep) and "
             "verify armed runs stay bit-identical")
    pcheck.add_argument("--smoke", action="store_true",
                        help="CI mode: fewer cells and a shorter fuzz "
                             "sweep")
    pcheck.add_argument("--fuzz", type=int, default=None, metavar="N",
                        help="randomized scenarios to run (default: 50, "
                             "or 10 with --smoke; 0 disables fuzzing)")
    pcheck.add_argument("--checkers", default=",".join(
                            "conservation queues tcp engine".split()),
                        help="comma-separated checker subset (default: "
                             "all four)")
    pcheck.add_argument("--no-shrink", action="store_true",
                        help="report failing fuzz scenarios without "
                             "shrinking them")
    pcheck.add_argument("--json", nargs="?", const="-", metavar="PATH",
                        help="emit the full check report as JSON")
    pcheck.add_argument("--scale", type=float, default=None,
                        help="dataset scale for the armed cells "
                             "(default 0.03125)")
    pcheck.add_argument("--seed", type=int, default=42, help="master seed")
    pcheck.add_argument("--quiet", action="store_true",
                        help="suppress progress")

    pstab = sub.add_parser(
        "stability",
        help="stability observatory: sweep one control-loop parameter "
             "with steady-state incast probe cells, classify each point "
             "(stable / limit-cycle / chaotic-irregular), refine the "
             "grid near regime boundaries, and write the stability map "
             "(SVG + JSON)")
    pstab.add_argument("--smoke", action="store_true",
                       help="CI mode: classify one pinned oscillating "
                            "and one pinned damped cell, each run twice "
                            "plain and once with the validation checkers "
                            "armed; classifications, stability blocks "
                            "and run fingerprints must all match")
    pstab.add_argument("--axis", choices=["target-delay", "dctcp-g"],
                       default="target-delay",
                       help="parameter to sweep (target-delay sets the "
                            "ECN threshold K; default target-delay)")
    pstab.add_argument("--values", default=None, metavar="V1,V2,...",
                       help="initial sweep grid — microseconds for "
                            "target-delay, raw gain for dctcp-g "
                            "(default: 50,100,200,500,1000 / "
                            "0.02,0.0625,0.25,0.5)")
    pstab.add_argument("--queue", choices=["red", "marking", "codel"],
                       default="marking",
                       help="probe queue discipline (default marking)")
    pstab.add_argument("--variant",
                       choices=[v.value for v in TcpVariant],
                       default=TcpVariant.DCTCP.value,
                       help="probe transport (default dctcp)")
    pstab.add_argument("--senders", type=int, default=4, metavar="N",
                       help="incast fan-in of each probe cell (default 4)")
    pstab.add_argument("--duration-s", type=float, default=1.0,
                       help="simulated seconds each probe holds the loop "
                            "in steady state (default 1.0)")
    pstab.add_argument("--rounds", type=int, default=3, metavar="N",
                       help="max automatic refinement passes near "
                            "detected regime boundaries (default 3)")
    pstab.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (default 1 = serial)")
    pstab.add_argument("--cache-dir", metavar="DIR",
                       help="persist per-cell results here, keyed by "
                            "config content")
    pstab.add_argument("--resume", action="store_true",
                       help="skip cells already present in --cache-dir")
    pstab.add_argument("--svg", metavar="PATH", default="stability_map.svg",
                       help="stability-map SVG path "
                            "(default stability_map.svg)")
    pstab.add_argument("--json", metavar="PATH", default="stability_map.json",
                       help="stability-map JSON path "
                            "(default stability_map.json)")
    pstab.add_argument("--manifest", metavar="PATH",
                       help="--smoke: write the smoke manifest here "
                            "(default stability_smoke_manifest.json)")
    pstab.add_argument("--seed", type=int, default=42, help="probe seed")
    pstab.add_argument("--quiet", action="store_true",
                       help="suppress progress")

    pfk = sub.add_parser(
        "fixedk",
        help="Fixed-K ECN study on the leaf-spine fabric: sweep the "
             "single-threshold RED (min_th == max_th == K) over K x load "
             "x fan-in x protection mode x transport under "
             "partition-aggregate incast; report FCT-slowdown tails, "
             "uplink ACK loss, and K-vs-load regime maps")
    pfk.add_argument("--smoke", action="store_true",
                     help="CI mode: a pinned 8-cell mini-grid (2 K values "
                          "x 2 fan-ins x 2 protection modes), each cell "
                          "run back-to-back (plain twice, then with the "
                          "validation checkers armed) and compared "
                          "bit-for-bit")
    pfk.add_argument("--k-values", default=None, metavar="K1,K2,...",
                     help="marking thresholds in packets "
                          "(default 4,8,16,32,64)")
    pfk.add_argument("--loads", default=None, metavar="L1,L2,...",
                     help="offered loads as fractions of the fan-in "
                          "capacity (default 0.4,0.8)")
    pfk.add_argument("--fanouts", default=None, metavar="N1,N2,...",
                     help="incast fan-ins (default 4,8)")
    pfk.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (default 1 = serial)")
    pfk.add_argument("--cache-dir", metavar="DIR",
                     help="persist per-cell results here, keyed by "
                          "config content")
    pfk.add_argument("--resume", action="store_true",
                     help="skip cells already present in --cache-dir")
    pfk.add_argument("--limit", type=int, default=None, metavar="N",
                     help="run only the first N grid cells")
    pfk.add_argument("--svg", metavar="PREFIX", default="fixedk_regime",
                     help="write one K-vs-load regime map SVG per "
                          "(variant, protection, fan-in) slice as "
                          "PREFIX_<slice>.svg (default fixedk_regime; "
                          "empty string disables)")
    pfk.add_argument("--manifest", metavar="PATH",
                     help="write the run manifest as JSON (--smoke "
                          "default: fixedk_smoke_manifest.json)")
    pfk.add_argument("--seed", type=int, default=42, help="cell seed")
    pfk.add_argument("--quiet", action="store_true",
                     help="suppress progress")

    pflaws = sub.add_parser(
        "flaws",
        help="Linux-DCTCP flaws pack: flawed vs corrected endpoint "
             "fidelity on one pinned tiny-buffer incast cell")
    pflaws.add_argument("--smoke", action="store_true",
                        help="CI mode: run every profile back-to-back "
                             "(plain twice, then checkers armed), compare "
                             "bit-for-bit and gate on the flawed-vs-fixed "
                             "α ordering")
    pflaws.add_argument("--duration-s", type=float, default=1.0,
                        metavar="S",
                        help="simulated horizon per profile (default 1.0)")
    pflaws.add_argument("--json", nargs="?", const="-", metavar="PATH",
                        help="emit the comparison rows as JSON to PATH "
                             "(default: stdout)")
    pflaws.add_argument("--manifest", metavar="PATH",
                        help="write the run manifest as JSON (--smoke "
                             "default: flaws_smoke_manifest.json)")
    pflaws.add_argument("--seed", type=int, default=42, help="cell seed")
    pflaws.add_argument("--quiet", action="store_true",
                        help="suppress progress")

    pbench = sub.add_parser(
        "bench",
        help="run the reproducible benchmark suite and write BENCH_<stamp>.json")
    pbench.add_argument("--quick", action="store_true",
                        help="smoke mode: fig2-smoke macro cell only "
                             "(what CI runs)")
    pbench.add_argument("--repeats", type=int, default=None, metavar="N",
                        help="timing samples per workload "
                             "(default: 3 with --quick, else 5)")
    pbench.add_argument("--out", metavar="PATH", default=None,
                        help="report path (default BENCH_<stamp>.json in "
                             "the current directory; '-' prints the JSON "
                             "to stdout without writing a file)")
    pbench.add_argument("--baseline", metavar="PATH",
                        help="compare against this committed report "
                             "(e.g. benchmarks/BENCH_baseline.json) and "
                             "fail on regression")
    pbench.add_argument("--tolerance", type=float, default=0.25,
                        metavar="FRAC",
                        help="allowed normalized-time regression vs the "
                             "baseline (default 0.25 = 25%%)")
    pbench.add_argument("--compare", nargs=2, metavar=("A", "B"),
                        help="compare two existing BENCH_*.json reports "
                             "side by side (A = reference, B = candidate) "
                             "instead of running the suite; exit 1 when B "
                             "regresses past --tolerance on any shared "
                             "macro cell")

    pserve = sub.add_parser(
        "serve",
        help="run the sweep-farm scheduler: a daemonized job-queue "
             "service that owns a result cache, a crash-safe journal and "
             "an artifact store, drives N worker processes, and answers "
             "submit/status/results/cancel/watch as JSON over a Unix "
             "socket (restarting after a kill resumes from the journal)")
    pserve.add_argument("--farm-dir", required=True, metavar="DIR",
                        help="service state directory (cache/, artifacts/, "
                             "journal.jsonl, farm.sock); an existing "
                             "directory is resumed, not wiped")
    pserve.add_argument("--workers", type=int, default=2, metavar="N",
                        help="worker processes (default 2)")
    pserve.add_argument("--socket", metavar="PATH", default=None,
                        help="Unix-socket override (default "
                             "<farm-dir>/farm.sock; AF_UNIX paths are "
                             "length-limited — use /tmp for deep trees)")
    pserve.add_argument("--checkpoint-s", type=float, default=0.25,
                        metavar="S",
                        help="simulated seconds between preemption "
                             "checkpoints in workers (default 0.25)")

    pfarm = sub.add_parser(
        "farm",
        help="sweep-farm client: submit grids to, and inspect, a running "
             "`repro serve` instance (--smoke runs the self-contained CI "
             "gate: ephemeral farm, two clients, shared-config dedup, "
             "streamed progress, cache-served resubmission, clean "
             "shutdown)")
    pfarm.add_argument("--socket", metavar="PATH",
                       help="the farm's Unix socket "
                            "(<farm-dir>/farm.sock)")
    pfarm.add_argument("--smoke", action="store_true",
                       help="run the CI gate against a throwaway farm "
                            "(no --socket needed)")
    pfarm.add_argument("--ping", action="store_true",
                       help="liveness check")
    pfarm.add_argument("--stats", action="store_true",
                       help="scheduler counters: jobs, units, workers, "
                            "preemptions, cache")
    pfarm.add_argument("--submit", choices=["shallow", "deep"],
                       help="submit the target-delay grid (shallow or "
                            "deep buffers) as one job")
    pfarm.add_argument("--priority", type=int, default=0, metavar="P",
                       help="job priority for --submit (higher runs "
                            "first; may preempt lower-priority cells at "
                            "their next checkpoint; default 0)")
    pfarm.add_argument("--limit", type=int, default=None, metavar="N",
                       help="submit only the first N grid cells")
    pfarm.add_argument("--wait", action="store_true",
                       help="after --submit, stream progress until the "
                            "job finishes")
    pfarm.add_argument("--status", nargs="?", const="", metavar="JOB",
                       help="one job's per-label status, or all jobs "
                            "when no id is given")
    pfarm.add_argument("--results", metavar="JOB",
                       help="fetch a job's results (cache-entry "
                            "documents) as JSON")
    pfarm.add_argument("--out", metavar="PATH", default="-",
                       help="where --results writes ('-' = stdout)")
    pfarm.add_argument("--watch", metavar="JOB",
                       help="stream a job's live progress events")
    pfarm.add_argument("--cancel", metavar="JOB",
                       help="cancel a job (running cells are preempted)")
    pfarm.add_argument("--shutdown", action="store_true",
                       help="drain in-flight cells and stop the farm")
    _add_common(pfarm)

    pcache = sub.add_parser(
        "cache",
        help="inspect and prune a content-addressed result cache "
             "(the --cache-dir of sweep/mix/fixedk/stability, or a "
             "farm's <farm-dir>/cache)")
    pcache.add_argument("--cache-dir", required=True, metavar="DIR",
                        help="the cache directory to inspect")
    pcache.add_argument("--stats", action="store_true",
                        help="print summary statistics as JSON instead "
                             "of the entry listing")
    pcache.add_argument("--prune-age", type=float, default=None,
                        metavar="HOURS",
                        help="remove entries older than HOURS (also "
                             "collects corrupt entries and stale *.tmp "
                             "files)")
    pcache.add_argument("--keep-grid", choices=["shallow", "deep"],
                        default=None,
                        help="remove entries NOT in the named "
                             "target-delay grid (grid-membership prune; "
                             "uses --scale/--seed to rebuild the grid's "
                             "keys)")
    pcache.add_argument("--dry-run", action="store_true",
                        help="report what would be pruned without "
                             "deleting anything")
    _add_common(pcache)

    pfluid = sub.add_parser(
        "fluid",
        help="validate the hybrid fluid/packet fidelity tier: hybrid runs "
             "must be bit-identical to packet mode on cells where no flow "
             "qualifies, match packet RunMetrics within pinned tolerances "
             "on the bulk pairs cell, and stay deterministic with the "
             "invariant checkers armed")
    pfluid.add_argument("--smoke", action="store_true",
                        help="CI mode (currently the only mode; the flag "
                             "is accepted for symmetry with other verbs)")
    pfluid.add_argument("--manifest", metavar="PATH",
                        help="write the gate manifest as JSON "
                             "(default: fluid_smoke_manifest.json)")
    pfluid.add_argument("--quiet", action="store_true",
                        help="suppress progress")

    return parser


def _cell_config(args: argparse.Namespace) -> ExperimentConfig:
    """Build the ExperimentConfig shared by cell/profile/trace."""
    needs_td = qdisc_entry(args.queue).needs_target_delay
    queue = QueueSetup(
        kind=args.queue,
        buffer_packets=DEEP_BUFFER_PACKETS if args.deep else SHALLOW_BUFFER_PACKETS,
        target_delay_s=us(args.target_delay_us) if needs_td else None,
        protection=ProtectionMode(args.protection),
    )
    return ExperimentConfig(
        queue=queue,
        variant=TcpVariant(args.variant),
        seed=args.seed,
        cc=args.cc,
        flaw_profile=args.flaw_profile,
    ).scaled(args.scale)


def _emit_json(payload, dest: str) -> int:
    """Write JSON to a path or stdout (dest '-'); returns an exit code."""
    text = json.dumps(payload, indent=2)
    if dest == "-":
        print(text)
        return 0
    try:
        with open(dest, "w") as fh:
            fh.write(text + "\n")
    except OSError as exc:
        print(f"error: cannot write {dest}: {exc.strerror}", file=sys.stderr)
        return 1
    print(f"wrote {dest}", file=sys.stderr)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.errors import ExperimentError
    from repro.experiments.cache import ResultCache
    from repro.experiments.grids import grid_cells
    from repro.experiments.parallel import run_cells
    from repro.telemetry.manifest import build_sweep_manifest
    from repro.telemetry.profiler import ProgressReporter

    if args.jobs < 1:
        print(f"sweep: --jobs must be >= 1 (got {args.jobs})", file=sys.stderr)
        return 2
    if args.resume and not args.cache_dir:
        print("sweep: --resume needs --cache-dir (nothing to resume from)",
              file=sys.stderr)
        return 2
    if args.limit is not None and args.limit < 1:
        print(f"sweep: --limit must be >= 1 (got {args.limit})",
              file=sys.stderr)
        return 2

    todo = grid_cells(args.deep, args.scale, args.seed)
    if args.limit is not None:
        todo = todo[: args.limit]
    try:
        cache = ResultCache(args.cache_dir) if args.cache_dir else None
    except ExperimentError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    progress = None if args.quiet else ProgressReporter()

    report = run_cells(todo, jobs=args.jobs, cache=cache,
                       resume=args.resume, progress=progress)

    print(f"sweep    : {'deep' if args.deep else 'shallow'} buffers, "
          f"scale {args.scale}, seed {args.seed}")
    print(f"cells    : {len(report.results)} total — "
          f"{len(report.executed)} executed, {len(report.cached)} cached")
    print(f"jobs     : {report.jobs}")
    print(f"wall time: {report.wall_s:.1f}s")
    if cache is not None:
        print(f"cache    : {args.cache_dir} ({len(cache)} entries)")
    if args.manifest:
        sweep = build_sweep_manifest(
            {label: res.manifest for label, res in report.results.items()},
            deep=args.deep, scale=args.scale, seed=args.seed,
            jobs=report.jobs, executed=report.executed,
            cached=report.cached, wall_s=report.wall_s,
        )
        return _emit_json(sweep, args.manifest)
    return 0


#: Smoke-mode dataset scale for ``mix --smoke`` (4 MB shuffle).
MIX_SMOKE_SCALE = 1.0 / 16.0


def _mix_fingerprint(cell) -> dict:
    """Run digest for a mix cell: metrics digest + per-workload buckets."""
    from repro.validate.smoke import fingerprint

    return {**fingerprint(cell), "workloads": cell.manifest["workloads"]}


def _cmd_mix_smoke(args: argparse.Namespace) -> int:
    from repro.experiments.mix import MixConfig
    from repro.validate.smoke import build_suite

    cfg = MixConfig(
        queue=QueueSetup(kind="red", target_delay_s=us(200)),
        variant=TcpVariant.ECN,
        n_hosts=8,
        n_reducers=4,
        rpc_fanout=4,
        rpc_rate_qps=100.0,
        bg_rate_fps=20.0,
        seed=args.seed,
    ).scaled(MIX_SMOKE_SCALE * args.scale)

    t0 = time.time()
    first = run_cell(cfg)
    second = run_cell(cfg)
    armed = run_cell(cfg, checks=build_suite(cfg))
    fp = _mix_fingerprint(first)
    identical_plain = fp == _mix_fingerprint(second)
    identical_armed = fp == _mix_fingerprint(armed)
    validation = armed.manifest["validation"]

    wl = first.manifest["workloads"]
    rpc, bg = wl["rpc"], wl["background"]
    print(f"cell     : {cfg.label()}")
    print(f"shuffle  : runtime {fmt_time(first.metrics.runtime)}  "
          f"{wl['shuffle']['flows']} flows")
    print(f"rpc      : {rpc['queries_completed']} queries  "
          f"miss rate {rpc['deadline_miss_rate']:.2%}  "
          f"qct p99 {fmt_time(rpc['qct_s']['p99'])}")
    print(f"backgrnd : {bg['flows']} flows  "
          f"slowdown p99 {bg['slowdown']['p99']:.2f}x")
    print(f"replay   : plain {'identical' if identical_plain else 'DIVERGED'}"
          f"  armed {'identical' if identical_armed else 'DIVERGED'}")
    print(f"checkers : {'ok' if validation['ok'] else 'VIOLATIONS'} "
          f"({validation['violation_count']} violations)")
    print(f"(wall time {time.time() - t0:.1f}s)")

    manifest_path = args.manifest or "mix_smoke_manifest.json"
    payload = dict(first.manifest)
    payload["smoke"] = {
        "identical_plain_rerun": identical_plain,
        "identical_armed_rerun": identical_armed,
        "validation_ok": bool(validation["ok"]),
    }
    rc = _emit_json(payload, manifest_path)
    if rc != 0:
        return rc
    ok = identical_plain and identical_armed and bool(validation["ok"])
    return 0 if ok else 1


def _cmd_mix(args: argparse.Namespace) -> int:
    from repro.errors import ExperimentError
    from repro.experiments.cache import ResultCache
    from repro.experiments.mix import mix_grid, render_mix_table
    from repro.experiments.parallel import run_cells
    from repro.telemetry.manifest import build_sweep_manifest
    from repro.telemetry.profiler import ProgressReporter

    if args.smoke:
        return _cmd_mix_smoke(args)
    if args.jobs < 1:
        print(f"mix: --jobs must be >= 1 (got {args.jobs})", file=sys.stderr)
        return 2
    if args.resume and not args.cache_dir:
        print("mix: --resume needs --cache-dir (nothing to resume from)",
              file=sys.stderr)
        return 2
    if args.limit is not None and args.limit < 1:
        print(f"mix: --limit must be >= 1 (got {args.limit})", file=sys.stderr)
        return 2

    todo = mix_grid(args.scale, args.seed)
    if args.limit is not None:
        todo = todo[: args.limit]
    try:
        cache = ResultCache(args.cache_dir) if args.cache_dir else None
    except ExperimentError as exc:
        print(f"mix: {exc}", file=sys.stderr)
        return 2
    progress = None if args.quiet else ProgressReporter()

    report = run_cells(todo, jobs=args.jobs, cache=cache,
                       resume=args.resume, progress=progress)

    print(render_mix_table(report.results))
    print()
    print(f"cells    : {len(report.results)} total — "
          f"{len(report.executed)} executed, {len(report.cached)} cached")
    print(f"wall time: {report.wall_s:.1f}s")
    if cache is not None:
        print(f"cache    : {args.cache_dir} ({len(cache)} entries)")
    if args.manifest:
        sweep = build_sweep_manifest(
            {label: res.manifest for label, res in report.results.items()},
            kind_detail="mix", scale=args.scale, seed=args.seed,
            jobs=report.jobs, executed=report.executed,
            cached=report.cached, wall_s=report.wall_s,
        )
        return _emit_json(sweep, args.manifest)
    return 0


#: Default bifurcation grids per axis (target-delay values in µs).
_STABILITY_GRIDS = {
    "target-delay": (50.0, 100.0, 200.0, 500.0, 1000.0),
    "dctcp-g": (0.02, 0.0625, 0.25, 0.5),
}


def _cmd_stability_smoke(args: argparse.Namespace) -> int:
    from repro.analysis.stability import StabilityAnalysis
    from repro.validate.smoke import (
        build_suite,
        fingerprint,
        stability_smoke_cells,
    )

    sa = StabilityAnalysis()
    t0 = time.time()
    ok = True
    reports = []
    for name, expected, cfg in stability_smoke_cells(args.seed):
        first = run_cell(cfg, analyses=[sa])
        second = run_cell(cfg, analyses=[sa])
        armed = run_cell(cfg, checks=build_suite(cfg), analyses=[sa])
        blocks = [json.dumps(c.manifest["stability"], sort_keys=True)
                  for c in (first, second, armed)]
        identical_blocks = blocks[0] == blocks[1] == blocks[2]
        fp = fingerprint(first)
        identical_fp = fp == fingerprint(second) == fingerprint(armed)
        got = first.manifest["stability"]["classification"]
        validation = armed.manifest["validation"]
        cell_ok = (identical_blocks and identical_fp and got == expected
                   and bool(validation["ok"]))
        ok = ok and cell_ok
        dom = first.manifest["stability"]["dominant_queue"]
        print(f"cell {name:<12}: {cfg.label()}")
        print(f"  regime    : {got} (expected {expected}) "
              f"{'ok' if got == expected else 'MISMATCH'}")
        print(f"  dominant  : {dom}")
        print(f"  replay    : blocks "
              f"{'identical' if identical_blocks else 'DIVERGED'}  "
              f"fingerprints "
              f"{'identical' if identical_fp else 'DIVERGED'}")
        print(f"  checkers  : {'ok' if validation['ok'] else 'VIOLATIONS'} "
              f"({validation['violation_count']} violations)")
        reports.append({
            "name": name,
            "label": cfg.label(),
            "expected": expected,
            "classification": got,
            "identical_blocks": identical_blocks,
            "identical_fingerprints": identical_fp,
            "validation_ok": bool(validation["ok"]),
            "stability": first.manifest["stability"],
        })
    print(f"stability --smoke: {'OK' if ok else 'FAILED'} "
          f"(wall time {time.time() - t0:.1f}s)")

    payload = {
        "schema": "repro.stability_smoke/v1",
        "ok": ok,
        "seed": args.seed,
        "cells": reports,
    }
    rc = _emit_json(payload, args.manifest or "stability_smoke_manifest.json")
    return rc or (0 if ok else 1)


def _cmd_stability(args: argparse.Namespace) -> int:
    from repro.errors import ExperimentError
    from repro.experiments.bifurcation import (
        render_regime_table,
        run_bifurcation,
    )
    from repro.experiments.cache import ResultCache
    from repro.experiments.probe import StabilityProbeConfig
    from repro.telemetry.profiler import ProgressReporter

    if args.smoke:
        return _cmd_stability_smoke(args)
    if args.jobs < 1:
        print(f"stability: --jobs must be >= 1 (got {args.jobs})",
              file=sys.stderr)
        return 2
    if args.resume and not args.cache_dir:
        print("stability: --resume needs --cache-dir (nothing to resume "
              "from)", file=sys.stderr)
        return 2
    if args.rounds < 0:
        print(f"stability: --rounds must be >= 0 (got {args.rounds})",
              file=sys.stderr)
        return 2

    raw = args.values or ",".join(str(v)
                                  for v in _STABILITY_GRIDS[args.axis])
    try:
        values = [float(v) for v in raw.split(",") if v.strip()]
    except ValueError:
        print(f"stability: --values must be comma-separated numbers "
              f"(got {raw!r})", file=sys.stderr)
        return 2
    if args.axis == "target-delay":
        values = [us(v) for v in values]

    base = StabilityProbeConfig(
        queue=QueueSetup(kind=args.queue, target_delay_s=us(200.0)),
        variant=TcpVariant(args.variant),
        n_senders=args.senders,
        duration_s=args.duration_s,
        seed=args.seed,
    )
    try:
        cache = ResultCache(args.cache_dir) if args.cache_dir else None
        progress = None if args.quiet else ProgressReporter()
        m = run_bifurcation(base, args.axis, values, rounds=args.rounds,
                            jobs=args.jobs, cache=cache,
                            resume=args.resume, progress=progress)
    except ExperimentError as exc:
        print(f"stability: {exc}", file=sys.stderr)
        return 2

    print(render_regime_table(m))
    rc = _emit_json(m.to_dict(), args.json)
    if rc != 0:
        return rc
    if args.svg:
        from repro.plotting import regime_map_to_svg

        try:
            with open(args.svg, "w") as fh:
                fh.write(regime_map_to_svg(m))
        except OSError as exc:
            print(f"error: cannot write {args.svg}: {exc.strerror}",
                  file=sys.stderr)
            return 1
        print(f"wrote {args.svg}", file=sys.stderr)
    return 0


def _fixedk_fingerprint(cell) -> dict:
    """Run digest for a fixedk cell: metrics digest + the fixedk block."""
    from repro.validate.smoke import fingerprint

    return {**fingerprint(cell), "fixedk": cell.manifest["fixedk"]}


def _cmd_fixedk_smoke(args: argparse.Namespace) -> int:
    from repro.experiments.fixedk import fixedk_smoke_cells
    from repro.validate.smoke import build_suite

    t0 = time.time()
    ok = True
    reports = []
    for label, cfg in fixedk_smoke_cells(args.seed):
        first = run_cell(cfg)
        second = run_cell(cfg)
        armed = run_cell(cfg, checks=build_suite(cfg))
        fp = _fixedk_fingerprint(first)
        identical_plain = fp == _fixedk_fingerprint(second)
        identical_armed = fp == _fixedk_fingerprint(armed)
        validation = armed.manifest["validation"]
        cell_ok = (identical_plain and identical_armed
                   and bool(validation["ok"]))
        ok = ok and cell_ok

        fx = first.manifest["fixedk"]
        rpc, up = fx["rpc"], fx["uplinks"]
        print(f"cell {label}")
        print(f"  rpc       : {rpc['queries_completed']} queries  "
              f"qct p99 {fmt_time(rpc['qct_s']['p99'])}  "
              f"slowdown p99 {rpc['responses']['slowdown']['p99']:.1f}x")
        print(f"  uplinks   : ack loss {up['ack_loss_rate']:.2%}  "
              f"marks {up['marks']}  tail drops {up['drops_tail']}")
        print(f"  replay    : plain "
              f"{'identical' if identical_plain else 'DIVERGED'}  armed "
              f"{'identical' if identical_armed else 'DIVERGED'}")
        print(f"  checkers  : {'ok' if validation['ok'] else 'VIOLATIONS'} "
              f"({validation['violation_count']} violations)")
        reports.append({
            "label": label,
            "identical_plain_rerun": identical_plain,
            "identical_armed_rerun": identical_armed,
            "validation_ok": bool(validation["ok"]),
            "fixedk": fx,
        })
    print(f"fixedk --smoke: {'OK' if ok else 'FAILED'} "
          f"(wall time {time.time() - t0:.1f}s)")

    payload = {
        "schema": "repro.fixedk_smoke/v1",
        "ok": ok,
        "seed": args.seed,
        "cells": reports,
    }
    rc = _emit_json(payload, args.manifest or "fixedk_smoke_manifest.json")
    return rc or (0 if ok else 1)


def _cmd_flaws_smoke(args: argparse.Namespace) -> int:
    from repro.experiments.flaws import (
        FLAWS_PROFILES,
        flaws_cell,
        render_flaws_table,
        _row,
    )
    from repro.validate.smoke import build_suite, fingerprint

    t0 = time.time()
    ok = True
    reports = []
    rows = []
    for profile in FLAWS_PROFILES:
        cfg = flaws_cell(profile, seed=args.seed,
                         duration_s=args.duration_s)
        first = run_cell(cfg)
        second = run_cell(cfg)
        armed = run_cell(cfg, checks=build_suite(cfg))
        fp = fingerprint(first)
        identical = fp == fingerprint(second) == fingerprint(armed)
        validation = armed.manifest["validation"]
        cell_ok = identical and bool(validation["ok"])
        ok = ok and cell_ok
        row = _row(profile, first)
        rows.append(row)
        print(f"cell {row['profile']:<14}: {cfg.label()}")
        print(f"  alpha     : timeavg {row['alpha_timeavg']:.4f}  "
              f"end {row['alpha_mean']:.4f}")
        print(f"  replay    : "
              f"{'identical' if identical else 'DIVERGED'}")
        print(f"  checkers  : {'ok' if validation['ok'] else 'VIOLATIONS'} "
              f"({validation['violation_count']} violations)")
        reports.append({
            "profile": row["profile"],
            "label": cfg.label(),
            "identical_reruns": identical,
            "validation_ok": bool(validation["ok"]),
            "row": row,
        })

    # The pack's raison d'être: the flawed endpoints must overestimate
    # congestion on the pinned cell (time-averaged α, not the noisy
    # end-of-run snapshot).
    base = rows[0]["alpha_timeavg"]
    inflated = {r["profile"]: r["alpha_timeavg"] > base for r in rows[1:]}
    alpha_ok = inflated["linux-dctcp"] and inflated["coalesce"]
    ok = ok and alpha_ok
    print()
    print(render_flaws_table(rows))
    print(f"alpha inflation (flawed > fixed): "
          f"{'ok' if alpha_ok else 'MISSING'} "
          f"(linux-dctcp {'>' if inflated['linux-dctcp'] else '<='} fixed, "
          f"coalesce {'>' if inflated['coalesce'] else '<='} fixed)")
    print(f"flaws --smoke: {'OK' if ok else 'FAILED'} "
          f"(wall time {time.time() - t0:.1f}s)")

    payload = {
        "schema": "repro.flaws_smoke/v1",
        "ok": ok,
        "alpha_inflation_ok": alpha_ok,
        "seed": args.seed,
        "duration_s": args.duration_s,
        "cells": reports,
    }
    rc = _emit_json(payload, args.manifest or "flaws_smoke_manifest.json")
    return rc or (0 if ok else 1)


def _cmd_flaws(args: argparse.Namespace) -> int:
    if args.smoke:
        return _cmd_flaws_smoke(args)
    from repro.experiments.flaws import render_flaws_table, run_flaws

    t0 = time.time()
    cells, rows = run_flaws(seed=args.seed, duration_s=args.duration_s)
    print(render_flaws_table(rows))
    if not args.quiet:
        print(f"(5 profiles, wall time {time.time() - t0:.1f}s)",
              file=sys.stderr)
    if args.json:
        return _emit_json({"schema": "repro.flaws/v1", "seed": args.seed,
                           "duration_s": args.duration_s, "rows": rows},
                          args.json)
    return 0


def _parse_axis(name: str, raw: str, cast):
    try:
        return tuple(cast(v) for v in raw.split(",") if v.strip())
    except ValueError:
        print(f"fixedk: --{name} must be comma-separated numbers "
              f"(got {raw!r})", file=sys.stderr)
        return None


def _cmd_fixedk(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError, ExperimentError
    from repro.experiments.cache import ResultCache
    from repro.experiments.fixedk import (
        DEFAULT_FANOUTS,
        DEFAULT_K_VALUES,
        DEFAULT_LOADS,
        FixedKConfig,
        build_regime_maps,
        fixedk_grid,
        render_fixedk_table,
        render_regime_grid,
    )
    from repro.experiments.parallel import run_cells
    from repro.telemetry.manifest import build_sweep_manifest
    from repro.telemetry.profiler import ProgressReporter

    if args.smoke:
        return _cmd_fixedk_smoke(args)
    if args.jobs < 1:
        print(f"fixedk: --jobs must be >= 1 (got {args.jobs})",
              file=sys.stderr)
        return 2
    if args.resume and not args.cache_dir:
        print("fixedk: --resume needs --cache-dir (nothing to resume from)",
              file=sys.stderr)
        return 2
    if args.limit is not None and args.limit < 1:
        print(f"fixedk: --limit must be >= 1 (got {args.limit})",
              file=sys.stderr)
        return 2

    k_values = (_parse_axis("k-values", args.k_values, int)
                if args.k_values else DEFAULT_K_VALUES)
    loads = (_parse_axis("loads", args.loads, float)
             if args.loads else DEFAULT_LOADS)
    fanouts = (_parse_axis("fanouts", args.fanouts, int)
               if args.fanouts else DEFAULT_FANOUTS)
    if k_values is None or loads is None or fanouts is None:
        return 2

    base = FixedKConfig(seed=args.seed)
    try:
        todo = fixedk_grid(k_values=k_values, loads=loads, fanouts=fanouts,
                           seeds=(args.seed,), base=base)
        for _label, cfg in todo:
            cfg.validate()
        if args.limit is not None:
            todo = todo[: args.limit]
        cache = ResultCache(args.cache_dir) if args.cache_dir else None
    except (ExperimentError, ConfigError) as exc:
        print(f"fixedk: {exc}", file=sys.stderr)
        return 2
    progress = None if args.quiet else ProgressReporter()

    report = run_cells(todo, jobs=args.jobs, cache=cache,
                       resume=args.resume, progress=progress)

    # Regime maps stamp manifest["stability"] into every cell (cache hits
    # included), so the table below can show the regime column.
    maps = build_regime_maps(report.results)
    print(render_fixedk_table(report.results))
    for m in maps:
        print()
        print(render_regime_grid(m))
    print()
    print(f"cells    : {len(report.results)} total — "
          f"{len(report.executed)} executed, {len(report.cached)} cached")
    print(f"wall time: {report.wall_s:.1f}s")
    if cache is not None:
        print(f"cache    : {args.cache_dir} ({len(cache)} entries)")
    if args.svg:
        from repro.plotting import grid_regime_map_to_svg

        for m in maps:
            path = f"{args.svg}_{m.slice_id}.svg"
            try:
                with open(path, "w") as fh:
                    fh.write(grid_regime_map_to_svg(m))
            except OSError as exc:
                print(f"error: cannot write {path}: {exc.strerror}",
                      file=sys.stderr)
                return 1
            print(f"wrote {path}", file=sys.stderr)
    if args.manifest:
        sweep = build_sweep_manifest(
            {label: res.manifest for label, res in report.results.items()},
            kind_detail="fixedk", seed=args.seed,
            jobs=report.jobs, executed=report.executed,
            cached=report.cached, wall_s=report.wall_s,
        )
        sweep["regime_maps"] = [m.to_dict() for m in maps]
        return _emit_json(sweep, args.manifest)
    return 0


def _cmd_cell(args: argparse.Namespace) -> int:
    cfg = _cell_config(args)
    t0 = time.time()
    cell = run_cell(cfg)
    if args.json is not None:
        return _emit_json(cell.manifest, args.json)
    m = cell.metrics
    q = m.queue
    print(f"cell     : {cfg.label()}")
    print(f"runtime  : {fmt_time(m.runtime)}")
    print(f"tput/node: {fmt_rate(m.throughput_per_node_bps)}")
    print(f"latency  : mean {fmt_time(m.mean_latency)}  p99 {fmt_time(m.p99_latency)}")
    print(f"queueing : early drops {q.drops_early}  tail drops {q.drops_tail}  "
          f"marks {q.marks}  protected {q.protected}")
    print(f"ack drops: {q.ack_drops}/{q.ack_arrivals} ({q.ack_drop_rate():.2%})")
    print(f"tcp      : retx {m.retransmits}  rtos {m.rtos}  syn retries {m.syn_retries}")
    print(f"(wall time {time.time() - t0:.1f}s)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.telemetry import Telemetry

    cfg = _cell_config(args)
    tel = Telemetry(profile=True)
    cell = run_cell(cfg, telemetry=tel)
    if args.json is not None:
        return _emit_json(cell.manifest["profile"], args.json)
    print(f"cell      : {cfg.label()}")
    print(f"sim time  : {fmt_time(cell.metrics.runtime)}")
    print(tel.profiler.render())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import (
        compare_to_baseline,
        render_report,
        run_bench,
        write_bench,
    )

    if args.repeats is not None and args.repeats < 1:
        print(f"bench: --repeats must be >= 1 (got {args.repeats})",
              file=sys.stderr)
        return 2
    if not (0.0 <= args.tolerance):
        print(f"bench: --tolerance must be >= 0 (got {args.tolerance})",
              file=sys.stderr)
        return 2

    if args.compare:
        # Pure report-vs-report mode: nothing is executed, so it shares
        # the baseline failure classes — 3 for unreadable artifacts, 1
        # for a genuine regression.
        from repro.perf.bench import render_compare

        reports = []
        for path in args.compare:
            try:
                with open(path) as fh:
                    reports.append(json.load(fh))
            except OSError as exc:
                print(f"bench: cannot read {path}: {exc.strerror or exc}",
                      file=sys.stderr)
                return 3
            except ValueError as exc:
                print(f"bench: {path} is not valid JSON: {exc}",
                      file=sys.stderr)
                return 3
        ok, lines = render_compare(reports[0], reports[1],
                                   tolerance=args.tolerance)
        print(f"compare: A={args.compare[0]}  B={args.compare[1]}")
        for line in lines:
            print(f"  {line}")
        return 0 if ok else 1

    baseline = None
    if args.baseline:
        # A missing/corrupt baseline is its own failure class: exit 3, so
        # CI and scripts can tell "the gate itself is broken" (fix the
        # baseline artifact) apart from usage errors (2) and genuine
        # regressions (1).
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except OSError as exc:
            print(f"bench: cannot read baseline {args.baseline}: "
                  f"{exc.strerror or exc} — pass an existing report "
                  "(e.g. benchmarks/BENCH_baseline.json)", file=sys.stderr)
            return 3
        except ValueError as exc:
            print(f"bench: baseline {args.baseline} is not valid JSON: "
                  f"{exc} — regenerate it with `bench --out`",
                  file=sys.stderr)
            return 3

    report = run_bench(quick=args.quick, repeats=args.repeats)

    rc = 0
    if args.out == "-":
        print(json.dumps(report, indent=2))
    else:
        print(render_report(report))
        path = write_bench(report, args.out)
        print(f"wrote {path}", file=sys.stderr)

    broken = [name for name, row in report["macro"].items()
              if not row["deterministic"]]
    if broken:
        print(f"bench: NON-DETERMINISTIC macro cell(s): {', '.join(broken)} "
              "— repeated runs must be bit-identical", file=sys.stderr)
        rc = 1

    if baseline is not None:
        ok, lines = compare_to_baseline(report, baseline,
                                        tolerance=args.tolerance)
        print(f"baseline     : {args.baseline}", file=sys.stderr)
        for line in lines:
            print(f"  {line}", file=sys.stderr)
        if not ok:
            rc = 1
    return rc


def _cmd_fluid(args: argparse.Namespace) -> int:
    from repro.experiments.fidelity import fluid_smoke

    progress = None if args.quiet else (
        lambda msg: print(f"  {msg}", file=sys.stderr))
    payload = fluid_smoke(progress=progress)
    ok = payload["ok"]
    noop_bad = [e["cell"] for e in payload["noop"]
                if not e["identical"] or e["promotions"]]
    bulk = payload["bulk"]
    det = payload["determinism"]
    print(f"fluid --smoke: {'OK' if ok else 'FAILED'} — "
          f"{len(payload['noop'])} no-op cells "
          f"({'all bit-identical' if not noop_bad else 'BAD: ' + ', '.join(noop_bad)}), "
          f"bulk tolerances {'ok' if bulk['comparison']['ok'] else 'EXCEEDED'} "
          f"(engaged={bulk['engaged']}, "
          f"promotions={bulk['fluid']['promotions']}, "
          f"fluid_bytes={bulk['fluid']['fluid_bytes']}), "
          f"determinism {'ok' if det['repeat_identical'] and det['armed_identical'] else 'BROKEN'}, "
          f"checker violations={det['violations']}")
    rc = _emit_json(payload, args.manifest or "fluid_smoke_manifest.json")
    return rc or (0 if ok else 1)


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.errors import ValidationError
    from repro.validate import CHECKER_NAMES, fuzz
    from repro.validate.smoke import SMOKE_SCALE, check_cell, smoke_cells

    names = [c.strip() for c in args.checkers.split(",") if c.strip()]
    unknown = sorted(set(names) - set(CHECKER_NAMES))
    if not names or unknown:
        what = f"unknown checker(s): {', '.join(unknown)}" if unknown \
            else "--checkers must name at least one checker"
        print(f"check: {what} (available: {', '.join(CHECKER_NAMES)})",
              file=sys.stderr)
        return 2
    if args.fuzz is not None and args.fuzz < 0:
        print(f"check: --fuzz must be >= 0 (got {args.fuzz})", file=sys.stderr)
        return 2
    if args.scale is not None and args.scale <= 0:
        print(f"check: --scale must be positive (got {args.scale})",
              file=sys.stderr)
        return 2

    scale = args.scale if args.scale is not None else SMOKE_SCALE
    n_fuzz = args.fuzz if args.fuzz is not None else (10 if args.smoke else 50)
    cells = smoke_cells(scale, args.seed)
    if args.smoke:
        # CI subset: one RED protection-mode pair plus the other qdiscs —
        # every queue hot path, half the wall time.
        keep = {"red-default", "red-ack+syn", "droptail-shallow",
                "marking", "codel-default"}
        cells = [(n, c) for n, c in cells if n in keep]

    rc = 0
    cell_reports = []
    for name, config in cells:
        result = check_cell(config, checker_names=names)
        cell_reports.append(result)
        violations = result["validation"]["violation_count"]
        verdict = "ok" if result["ok"] else (
            "FINGERPRINT MISMATCH (armed run diverged)"
            if not result["identical"] else f"{violations} VIOLATION(S)")
        if not args.quiet or not result["ok"]:
            print(f"cell {name:<18}: {verdict}", file=sys.stderr)
        if not result["ok"]:
            for v in result["validation"]["violations"][:10]:
                print(f"    t={v['time']:.6f} [{v['checker']}] "
                      f"{v['where']}: {v['message']}", file=sys.stderr)
            rc = 1

    fuzz_report = None
    if n_fuzz > 0:
        def progress(i, n, result):
            if not args.quiet and (i % 10 == 0 or not result.ok):
                status = "ok" if result.ok else "VIOLATION"
                print(f"fuzz {i:3d}/{n}: {status}", file=sys.stderr)

        try:
            fuzz_report = fuzz(n=n_fuzz, seed=args.seed,
                               shrink_failures=not args.no_shrink,
                               progress=progress)
        except ValidationError as exc:
            print(f"check: {exc}", file=sys.stderr)
            return 2
        if not fuzz_report.ok:
            rc = 1
            for failure in fuzz_report.failures:
                repro_dict = failure.get("shrunk", failure["scenario"])
                print(f"fuzz FAILURE — minimal repro: {repro_dict}",
                      file=sys.stderr)
                for v in failure["violations"][:5]:
                    print(f"    {v}", file=sys.stderr)

    summary = {
        "ok": rc == 0,
        "checkers": names,
        "scale": scale,
        "seed": args.seed,
        "cells": cell_reports,
        "fuzz": fuzz_report.as_dict() if fuzz_report is not None else None,
    }
    if args.json is not None:
        json_rc = _emit_json(summary, args.json)
        return rc or json_rc
    n_cells_ok = sum(1 for r in cell_reports if r["ok"])
    print(f"check: {n_cells_ok}/{len(cell_reports)} cells clean"
          + (f", fuzz {fuzz_report.scenarios_run} scenarios "
             f"({len(fuzz_report.failures)} failing)"
             if fuzz_report is not None else "")
          + f" — {'OK' if rc == 0 else 'FAILED'}")
    return rc


#: Kinds something in the stack actually emits (for `trace` typo warnings).
_KNOWN_TRACE_KINDS = frozenset(
    ("enqueue", "drop", "mark", "tx", "link_loss", "deliver", "queue.sample",
     "tcp.cwnd", "tcp.retx", "tcp.rto", "tcp.ece")
)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import Telemetry, TraceJsonlWriter

    cfg = _cell_config(args)
    kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
    if not kinds:
        print("trace: --kinds must name at least one event kind",
              file=sys.stderr)
        return 2
    unknown = sorted(set(kinds) - _KNOWN_TRACE_KINDS)
    if unknown:
        print(f"trace: warning: nothing emits kind(s) {', '.join(unknown)} "
              f"(known: {', '.join(sorted(_KNOWN_TRACE_KINDS))})",
              file=sys.stderr)
    interval = (us(args.queue_interval_us)
                if args.queue_interval_us is not None else None)
    tel = Telemetry(queue_interval_s=interval)
    if args.out == "-":
        writer = TraceJsonlWriter(tel.tracer, out=sys.stdout, kinds=kinds)
        run_cell(cfg, telemetry=tel)
    else:
        try:
            fh = open(args.out, "w")
        except OSError as exc:
            print(f"error: cannot write {args.out}: {exc.strerror}",
                  file=sys.stderr)
            return 1
        with fh:
            writer = TraceJsonlWriter(tel.tracer, out=fh, kinds=kinds)
            run_cell(cfg, telemetry=tel)
        print(f"wrote {args.out} ({writer.rows_written} records, kinds: "
              f"{','.join(kinds)})", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.errors import FarmError
    from repro.farm.scheduler import FarmScheduler

    try:
        sched = FarmScheduler(args.farm_dir, workers=args.workers,
                              socket_path=args.socket,
                              checkpoint_s=args.checkpoint_s)
    except FarmError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda _s, _f: sched.stop())
    resumed = (f", resumed {sched.resumed_jobs} job(s) from the journal"
               if sched.resumed_jobs else "")
    print(f"serve: farm on {sched.socket_path} "
          f"({args.workers} worker(s){resumed})", file=sys.stderr)
    try:
        sched.serve_forever()
    except FarmError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 1
    print("serve: stopped", file=sys.stderr)
    return 0


def _cmd_farm(args: argparse.Namespace) -> int:
    from repro.errors import FarmError
    from repro.farm.client import FarmClient
    from repro.telemetry.profiler import ProgressReporter

    if args.smoke:
        from repro.farm.smoke import main as smoke_main

        return smoke_main()
    if not args.socket:
        print("farm: --socket is required (the farm's <farm-dir>/farm.sock)",
              file=sys.stderr)
        return 2
    client = FarmClient(args.socket)
    try:
        if args.ping:
            print(json.dumps(client.ping(), indent=2))
            return 0
        if args.stats:
            print(json.dumps(client.stats(), indent=2))
            return 0
        if args.submit:
            from repro.experiments.grids import grid_cells

            cells = grid_cells(args.submit == "deep", args.scale, args.seed)
            if args.limit is not None:
                cells = cells[: args.limit]
            resp = client.submit(cells, priority=args.priority)
            c = resp["cells"]
            print(f"farm: submitted {resp['id']} — {c['total']} cells "
                  f"({c['cached']} cached, {resp['deduped_pending']} "
                  f"deduped) at priority {resp['priority']}")
            if args.wait and resp["state"] == "running":
                reporter = None if args.quiet else ProgressReporter()
                final = None
                for ev in client.watch(resp["id"], timeout=None):
                    if ev.get("ev") == "progress" and reporter is not None:
                        reporter(ev["done"], ev["total"], ev["label"])
                    elif ev.get("ev") == "job_done":
                        final = ev
                print(f"farm: {resp['id']} "
                      f"{final['state'] if final else 'lost'}")
                return 0 if final and final["state"] == "done" else 1
            return 0
        if args.status is not None:
            payload = client.status(args.status or None)
            print(json.dumps(payload, indent=2))
            return 0
        if args.results:
            return _emit_json(client.results(args.results), args.out)
        if args.watch:
            final_state = "lost"
            for ev in client.watch(args.watch, timeout=None):
                print(json.dumps(ev))
                if ev.get("ev") == "job_done":
                    final_state = ev.get("state", "lost")
            return 0 if final_state == "done" else 1
        if args.cancel:
            resp = client.cancel(args.cancel)
            print(f"farm: {resp['id']} -> {resp['state']}")
            return 0
        if args.shutdown:
            resp = client.shutdown()
            print(f"farm: shutting down "
                  f"({resp.get('draining', 0)} cell(s) draining)")
            return 0
    except FarmError as exc:
        print(f"farm: {exc}", file=sys.stderr)
        return 1
    print("farm: nothing to do — pass one of --ping/--stats/--submit/"
          "--status/--results/--watch/--cancel/--shutdown/--smoke",
          file=sys.stderr)
    return 2


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.errors import ExperimentError
    from repro.experiments.cache import ResultCache, config_cache_key

    try:
        cache = ResultCache(args.cache_dir)
    except ExperimentError as exc:
        print(f"cache: {exc}", file=sys.stderr)
        return 2
    if args.prune_age is not None and args.prune_age < 0:
        print(f"cache: --prune-age must be >= 0 (got {args.prune_age})",
              file=sys.stderr)
        return 2

    if args.prune_age is not None or args.keep_grid is not None:
        keep_keys = None
        if args.keep_grid is not None:
            from repro.experiments.grids import grid_cells

            keep_keys = {config_cache_key(cfg) for _label, cfg in
                         grid_cells(args.keep_grid == "deep",
                                    args.scale, args.seed)}
        # Count before pruning: after a dry run the doomed entries are
        # still on disk, so entries() would double-count them.
        total = len(cache.entries())
        pruned = cache.prune(
            max_age_s=(args.prune_age * 3600.0
                       if args.prune_age is not None else None),
            keep_keys=keep_keys, dry_run=args.dry_run)
        verb = "would prune" if args.dry_run else "pruned"
        print(f"cache: {verb} {len(pruned)} of {total} entries"
              + (f" (keeping the {args.keep_grid} grid)"
                 if args.keep_grid else ""))
        for key in pruned:
            print(f"  {key[:16]}…")
        return 0

    if args.stats:
        print(json.dumps(cache.stats(), indent=2))
        return 0

    entries = cache.entries()
    if not entries:
        print(f"cache: {args.cache_dir} is empty")
        return 0
    print(f"{'key':<18} {'size':>8} {'age':>8}  label")
    for e in sorted(entries, key=lambda e: e.age_s):
        age = (f"{e.age_s:.0f}s" if e.age_s < 3600
               else f"{e.age_s / 3600:.1f}h")
        label = e.label if e.ok else "(corrupt entry)"
        print(f"{e.key[:16]}…  {e.bytes:>7}B {age:>8}  {label}")
    stale = cache.stale_tmp_files()
    if stale:
        print(f"({len(stale)} stale *.tmp file(s) — collect with --prune-age)")
    return 0


def main(argv: Optional[list] = None) -> int:
    """CLI entry point."""
    # Die quietly when piped into `head` etc. instead of tracebacking.
    try:
        import signal

        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    except (ImportError, ValueError, AttributeError):  # pragma: no cover
        pass  # non-POSIX platform or non-main thread
    args = build_parser().parse_args(argv)
    progress = None if getattr(args, "quiet", True) else _progress

    if args.command == "tables":
        print(render_table1())
        print()
        print(render_table2())
        return 0
    if args.command == "fig1":
        data = fig1_queue_snapshot(args.scale, args.seed)
        print(render_fig1(data))
        if args.svg:
            from repro.plotting import queue_snapshot_to_svg

            with open(args.svg, "w") as fh:
                fh.write(queue_snapshot_to_svg(
                    data.snapshot, data.mark_threshold_packets))
            print(f"wrote {args.svg}", file=sys.stderr)
        return 0
    if args.command in ("fig2", "fig3", "fig4"):
        fn = {"fig2": fig2_runtime, "fig3": fig3_throughput,
              "fig4": fig4_latency}[args.command]
        if args.jobs < 1:
            print(f"{args.command}: --jobs must be >= 1 (got {args.jobs})",
                  file=sys.stderr)
            return 2
        fig = fn(args.deep, args.scale, args.seed, progress=progress,
                 jobs=args.jobs)
        print(render_figure(fig))
        if args.svg:
            from repro.plotting import figure_to_svg

            with open(args.svg, "w") as fh:
                fh.write(figure_to_svg(fig))
            print(f"wrote {args.svg}", file=sys.stderr)
        return 0
    if args.command == "claims":
        print(render_claims(check_claims(args.scale, args.seed,
                                         progress=progress,
                                         jobs=args.jobs)))
        return 0
    if args.command == "report":
        write_experiments_md(args.out, args.scale, args.seed,
                             progress=progress, jobs=args.jobs)
        print(f"wrote {args.out}")
        return 0
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "mix":
        return _cmd_mix(args)
    if args.command == "stability":
        return _cmd_stability(args)
    if args.command == "flaws":
        return _cmd_flaws(args)
    if args.command == "fixedk":
        return _cmd_fixedk(args)
    if args.command == "cell":
        return _cmd_cell(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "fluid":
        return _cmd_fluid(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "farm":
        return _cmd_farm(args)
    if args.command == "cache":
        return _cmd_cache(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
