"""NewReno window policy (with classic ECN reaction).

The growth/shrink rules are all in the :class:`~repro.tcp.cc.CongestionControl`
base; NewReno is the named concrete policy used for the paper's "TCP-ECN"
flows. The once-per-RTT ECE gate lives in the sender (it needs sequence
numbers); when it fires it calls :meth:`on_ecn_signal`, which performs the
standard halving.
"""

from __future__ import annotations

from repro.tcp.cc import CongestionControl, register_cc

__all__ = ["NewRenoControl"]


@register_cc
class NewRenoControl(CongestionControl):
    """Classic AIMD policy: halve on loss or ECE, +1 MSS/RTT otherwise."""

    name = "newreno"
