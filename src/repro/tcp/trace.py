"""Per-flow congestion-window instrumentation.

A :class:`CwndTracer` samples a sender's congestion state on a fixed
period into :class:`~repro.stats.series.TimeSeries`, giving the classic
sawtooth pictures: TCP-ECN's halving vs DCTCP's shallow proportional
cuts (the "sawtooth behavior of TCP on a small scale" the paper credits
the marking scheme with). Used by the cwnd_sawtooth example and the
behavioural tests.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTimer
from repro.stats.series import TimeSeries
from repro.tcp.dctcp import DctcpControl
from repro.tcp.endpoint import TcpSender

__all__ = ["CwndTracer"]


class CwndTracer:
    """Sample cwnd / ssthresh / in-flight (and DCTCP α) of one sender.

    Parameters
    ----------
    sim, sender:
        The kernel and the flow to instrument.
    interval:
        Sampling period in seconds.
    autostop:
        Stop sampling automatically once the flow reaches a terminal
        state (done/failed).
    """

    def __init__(
        self,
        sim: Simulator,
        sender: TcpSender,
        interval: float = 1e-3,
        autostop: bool = True,
    ):
        self.sender = sender
        self.autostop = autostop
        self.cwnd = TimeSeries("cwnd_bytes")
        self.ssthresh = TimeSeries("ssthresh_bytes")
        self.flight = TimeSeries("flight_bytes")
        self.alpha: Optional[TimeSeries] = (
            TimeSeries("dctcp_alpha")
            if isinstance(sender.cc, DctcpControl)
            else None
        )
        self._sim = sim
        self._timer = PeriodicTimer(sim, interval, self._sample)

    def start(self) -> None:
        """Begin sampling (first sample after one interval)."""
        self._timer.start()

    def stop(self) -> None:
        """Stop sampling."""
        self._timer.stop()

    def _sample(self) -> None:
        s = self.sender
        if self.autostop and s.state in ("done", "failed"):
            self.stop()
            return
        now = self._sim.now
        self.cwnd.append(now, s.cc.cwnd)
        self.ssthresh.append(now, min(s.cc.ssthresh, 1e12))
        self.flight.append(now, float(s.flight_bytes))
        if self.alpha is not None:
            self.alpha.append(now, s.cc.alpha)

    # -- shape diagnostics ----------------------------------------------------

    def n_cuts(self, min_drop_fraction: float = 0.05) -> int:
        """Count downward cwnd steps larger than ``min_drop_fraction``."""
        v = self.cwnd.values
        if len(v) < 2:
            return 0
        cuts = 0
        for a, b in zip(v, v[1:]):
            if a > 0 and (a - b) / a > min_drop_fraction:
                cuts += 1
        return cuts

    def mean_cut_depth(self) -> float:
        """Average relative depth of the downward steps (0 if none)."""
        v = self.cwnd.values
        depths = [
            (a - b) / a for a, b in zip(v, v[1:]) if a > 0 and b < a * 0.95
        ]
        return sum(depths) / len(depths) if depths else 0.0
