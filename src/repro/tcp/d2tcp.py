"""D2TCP: deadline-aware DCTCP (Vamanan et al., SIGCOMM 2012).

D2TCP keeps the full DCTCP α machinery but modulates the cut with a
per-flow *deadline imminence* factor d::

    p = α^d,    cwnd ×= (1 - p/2)

where d = Tc / D, Tc is the time the flow still needs at its current rate
(remaining_bytes · srtt / cwnd) and D is the time left until its
deadline. A flow with slack (D ≫ Tc) has d < 1, so p = α^d > α and it
backs off *more* than DCTCP, donating bandwidth; a flow about to miss its
deadline has d > 1, so p < α and it backs off *less*. d is clamped to
[0.5, 2.0] per the paper; flows without a deadline (or unbound instances)
use d = 1 and behave exactly like DCTCP.

The deadline and clock come from the owning sender via
:meth:`bind_flow`; the RPC workload threads its per-query deadline into
``start_bulk_flow(..., deadline_s=...)``.
"""

from __future__ import annotations

from repro.tcp.cc import register_cc
from repro.tcp.dctcp import DctcpControl

__all__ = ["D2tcpControl"]

_D_MIN = 0.5
_D_MAX = 2.0


@register_cc
class D2tcpControl(DctcpControl):
    """DCTCP with the cut penalty p = α^d, d = Tc/D clamped to [0.5, 2]."""

    name = "d2tcp"
    fluid_model = None  # cut law depends on live deadline state

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._sender = None

    def bind_flow(self, sender) -> None:
        self._sender = sender

    def _deadline_factor(self) -> float:
        s = self._sender
        if s is None or getattr(s, "deadline_s", None) is None:
            return 1.0
        srtt = s.rtt.srtt
        if srtt is None or srtt <= 0.0 or self.cwnd <= 0.0:
            return 1.0
        remaining = s.nbytes - s.snd_una
        if remaining <= 0:
            return 1.0
        time_left = s.start_time + s.deadline_s - s.sim.now
        if time_left <= 0.0:
            return 1.0  # deadline already missed: fall back to DCTCP
        needed = remaining * srtt / self.cwnd
        d = needed / time_left
        if d < _D_MIN:
            return _D_MIN
        if d > _D_MAX:
            return _D_MAX
        return d

    def _cut_fraction(self) -> float:
        return self.alpha ** self._deadline_factor()
