"""DCTCP congestion control (Alizadeh et al., SIGCOMM 2010).

The sender keeps a running estimate α of the *fraction of bytes that were
CE-marked*, updated once per window of data::

    F = marked_bytes / acked_bytes            (over the last window)
    α = (1 - g) α + g F

and on windows containing at least one mark reduces::

    cwnd = cwnd × (1 - α / 2)

so a lightly-marked window costs a small decrease and a fully-marked
window behaves like classic halving. Growth (slow start / congestion
avoidance) is unchanged from NewReno. Loss and RTO reactions are also the
standard ones — DCTCP only changes the reaction to ECN marks.

The per-window bookkeeping is keyed on sequence numbers supplied by the
sender with each cumulative ACK (``on_ack_info``): a window ends when
``snd_una`` passes the ``snd_nxt`` recorded at the start of the window.

Fidelity notes (Misund, "Disentangling Flaws in Linux DCTCP",
arXiv:2211.07581). Three deployment pathologies live right here and are
reproducible through endpoint toggles:

* *Delayed-ACK mark coalescing* — with only the ECE flag available, a
  2-segment delayed ACK where one segment was CE counts **all** acked
  bytes as marked, inflating α. The fix is byte-precise accounting: the
  receiver echoes a per-ACK ``marked_bytes`` count which this class
  prefers over the flag (``TcpConfig.precise_ece_accounting``).
* *α-freeze across RTO/idle* — a stale ``_window_end``/mark pair from
  before a stall governs the first post-RTO window. Fixed by resetting
  the observation window in :meth:`on_rto`
  (``TcpConfig.dctcp_rto_window_reset``).
* *Double cut across fast recovery* — ``_window_end`` is re-armed from
  ``snd_nxt`` while retransmits advance ``snd_una`` through old data, so
  two cuts can land within one RTT. Fixed by suppressing α cuts while
  ``in_recovery`` (the loss cut already happened) and gating cuts on a
  ``snd_una >= _cwr_gate`` once-per-window check; α itself still updates
  every window.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.tcp.cc import CongestionControl, register_cc

__all__ = ["DctcpControl"]


@register_cc
class DctcpControl(CongestionControl):
    """DCTCP α-based proportional window reduction."""

    name = "dctcp"
    fluid_model = "dctcp"
    ecn_per_ack = True

    def __init__(
        self,
        mss: int,
        init_cwnd_segments: int = 10,
        g: float = 1.0 / 16.0,
        init_alpha: float = 1.0,
        rto_window_reset: bool = True,
    ):
        super().__init__(mss, init_cwnd_segments)
        if not (0.0 < g <= 1.0):
            raise ConfigError(f"DCTCP gain g must be in (0, 1], got {g}")
        if not (0.0 <= init_alpha <= 1.0):
            raise ConfigError(f"alpha must be in [0, 1], got {init_alpha}")
        self.g = g
        self.alpha = init_alpha
        self.rto_window_reset = rto_window_reset
        self._window_end: int | None = None  # snd_nxt at window start
        self._acked_bytes = 0
        self._marked_bytes = 0
        self._cwr_gate = 0  # no second cut until snd_una passes this

    @classmethod
    def from_config(cls, config):
        return cls(
            config.mss,
            config.init_cwnd_segments,
            g=config.dctcp_g,
            rto_window_reset=getattr(config, "dctcp_rto_window_reset", True),
        )

    def reset_observation_window(self) -> None:
        """Forget the in-progress observation window (RTO/idle restart)."""
        self._window_end = None
        self._acked_bytes = 0
        self._marked_bytes = 0

    def _cut_fraction(self) -> float:
        """Fraction p in cwnd ×= (1 - p/2). D2TCP overrides with α^d."""
        return self.alpha

    def on_ack_info(
        self,
        acked_bytes: int,
        ece: bool,
        snd_una: int,
        snd_nxt: int,
        marked_bytes: Optional[int] = None,
        in_recovery: bool = False,
    ) -> bool:
        """Accumulate mark statistics; cut the window at each boundary.

        Returns True when a reduction was applied (sender should set CWR).
        """
        if self._window_end is None:
            self._window_end = snd_nxt
        self._acked_bytes += acked_bytes
        if marked_bytes is not None:
            # Byte-precise receiver echo: never attribute more than this
            # ACK actually covered (lost-ACK echoes simply undercount).
            self._marked_bytes += (
                marked_bytes if marked_bytes < acked_bytes else acked_bytes
            )
        elif ece:
            # Flag-only fallback: the Linux coalescing flaw — every byte
            # of a delayed ACK inherits the single ECE bit.
            self._marked_bytes += acked_bytes
        if snd_una < self._window_end:
            return False

        # One observation window completed.
        reduce = False
        if self._acked_bytes > 0:
            frac = self._marked_bytes / self._acked_bytes
            self.alpha = (1.0 - self.g) * self.alpha + self.g * frac
            if (
                self._marked_bytes > 0
                and not in_recovery
                and snd_una >= self._cwr_gate
            ):
                self.cwnd = max(
                    self.cwnd * (1.0 - self._cut_fraction() / 2.0),
                    float(self.mss),
                )
                self.ssthresh = self.cwnd
                self._cwr_gate = snd_nxt
                reduce = True
        self._window_end = snd_nxt
        self._acked_bytes = 0
        self._marked_bytes = 0
        return reduce

    def on_rto(self, flight_bytes: int) -> None:
        super().on_rto(flight_bytes)
        if self.rto_window_reset:
            self.reset_observation_window()

    def on_ecn_signal(self, flight_bytes: int) -> None:
        """Classic once-per-RTT gate is disabled for DCTCP.

        The α machinery in :meth:`on_ack_info` handles every ECE; the
        sender's legacy gate must be a no-op to avoid double reductions.
        """
