"""DCTCP congestion control (Alizadeh et al., SIGCOMM 2010).

The sender keeps a running estimate α of the *fraction of bytes that were
CE-marked*, updated once per window of data::

    F = marked_bytes / acked_bytes            (over the last window)
    α = (1 - g) α + g F

and on windows containing at least one mark reduces::

    cwnd = cwnd × (1 - α / 2)

so a lightly-marked window costs a small decrease and a fully-marked
window behaves like classic halving. Growth (slow start / congestion
avoidance) is unchanged from NewReno. Loss and RTO reactions are also the
standard ones — DCTCP only changes the reaction to ECN marks.

The per-window bookkeeping is keyed on sequence numbers supplied by the
sender with each cumulative ACK (``on_ack_info``): a window ends when
``snd_una`` passes the ``snd_nxt`` recorded at the start of the window.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.tcp.cc import CongestionControl

__all__ = ["DctcpControl"]


class DctcpControl(CongestionControl):
    """DCTCP α-based proportional window reduction."""

    name = "dctcp"

    def __init__(
        self,
        mss: int,
        init_cwnd_segments: int = 10,
        g: float = 1.0 / 16.0,
        init_alpha: float = 1.0,
    ):
        super().__init__(mss, init_cwnd_segments)
        if not (0.0 < g <= 1.0):
            raise ConfigError(f"DCTCP gain g must be in (0, 1], got {g}")
        if not (0.0 <= init_alpha <= 1.0):
            raise ConfigError(f"alpha must be in [0, 1], got {init_alpha}")
        self.g = g
        self.alpha = init_alpha
        self._window_end: int | None = None  # snd_nxt at window start
        self._acked_bytes = 0
        self._marked_bytes = 0

    def on_ack_info(self, acked_bytes: int, ece: bool, snd_una: int, snd_nxt: int) -> bool:
        """Accumulate mark statistics; cut the window at each boundary.

        Returns True when a reduction was applied (sender should set CWR).
        """
        if self._window_end is None:
            self._window_end = snd_nxt
        self._acked_bytes += acked_bytes
        if ece:
            self._marked_bytes += acked_bytes
        if snd_una < self._window_end:
            return False

        # One observation window completed.
        reduce = False
        if self._acked_bytes > 0:
            frac = self._marked_bytes / self._acked_bytes
            self.alpha = (1.0 - self.g) * self.alpha + self.g * frac
            if self._marked_bytes > 0:
                self.cwnd = max(
                    self.cwnd * (1.0 - self.alpha / 2.0), float(self.mss)
                )
                self.ssthresh = self.cwnd
                reduce = True
        self._window_end = snd_nxt
        self._acked_bytes = 0
        self._marked_bytes = 0
        return reduce

    def on_ecn_signal(self, flight_bytes: int) -> None:
        """Classic once-per-RTT gate is disabled for DCTCP.

        The α machinery in :meth:`on_ack_info` handles every ECE; the
        sender's legacy gate must be a no-op to avoid double reductions.
        """
