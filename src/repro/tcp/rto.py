"""RTT estimation and retransmission timeout per RFC 6298.

``SRTT`` and ``RTTVAR`` follow the classic exponential averages
(alpha = 1/8, beta = 1/4); the RTO is ``SRTT + 4*RTTVAR`` clamped to
``[min_rto, max_rto]`` and doubled on each backoff (Karn's algorithm is
enforced by the caller: retransmitted segments are never sampled).
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["RttEstimator"]


class RttEstimator:
    """RFC 6298 RTT estimator with exponential backoff.

    Parameters
    ----------
    init_rto:
        RTO used before the first RTT sample (RFC 6298 says 1 s; data
        center stacks tune this down, and so do we by default).
    min_rto, max_rto:
        Clamp bounds for the computed RTO.
    """

    __slots__ = ("srtt", "rttvar", "_rto", "min_rto", "max_rto", "_backoff", "samples")

    ALPHA = 0.125
    BETA = 0.25

    def __init__(self, init_rto: float = 0.05, min_rto: float = 0.01, max_rto: float = 4.0):
        if not (0 < min_rto <= init_rto <= max_rto):
            raise ConfigError(
                f"need 0 < min_rto <= init_rto <= max_rto, got "
                f"{min_rto}/{init_rto}/{max_rto}"
            )
        self.srtt: float | None = None
        self.rttvar = 0.0
        self._rto = init_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self._backoff = 1
        self.samples = 0

    @property
    def rto(self) -> float:
        """Current retransmission timeout, including backoff."""
        return min(self._rto * self._backoff, self.max_rto)

    def sample(self, rtt: float) -> None:
        """Feed one RTT measurement (never from a retransmitted segment)."""
        if rtt < 0:
            raise ConfigError(f"negative RTT sample: {rtt}")
        self.samples += 1
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(self.srtt - rtt)
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        self._rto = max(self.min_rto, min(self.srtt + 4.0 * self.rttvar, self.max_rto))
        self._backoff = 1  # fresh sample resets backoff (RFC 6298 §5.7)

    def backoff(self) -> None:
        """Double the RTO after a retransmission timeout.

        The doubling saturates once ``_rto * _backoff`` reaches
        ``max_rto``: past that point the effective RTO cannot grow, so a
        long blackout (dozens of consecutive timeouts) must not keep
        inflating the counter — an unbounded multiplier both risks float
        overflow and means the first post-blackout RTT sample is the only
        thing standing between the flow and a nonsense timeout if any
        code path reads ``_rto * _backoff`` unclamped.
        """
        if self._rto * self._backoff < self.max_rto:
            self._backoff *= 2

    def reset_backoff(self) -> None:
        """Clear exponential backoff (new data acknowledged)."""
        self._backoff = 1
