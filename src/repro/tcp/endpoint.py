"""TCP endpoints: connection setup, sliding window, loss recovery, ECN.

Two classes model a unidirectional bulk transfer, mirroring NS-2's
``Agent/TCP`` + ``Agent/TCPSink`` pair the paper used:

* :class:`TcpSender` — the connection initiator and data source. It
  performs the SYN handshake (with ECN negotiation), runs the sliding
  window with NewReno fast retransmit / fast recovery, RFC 6298 RTO with
  exponential backoff and Karn's rule, the classic once-per-RTT ECE
  reaction (TCP-ECN) or DCTCP's α machinery, and go-back-N after an RTO.
* :class:`TcpListener` — bound to a well-known port on the destination
  host, it spawns per-flow receiver state: cumulative ACKs with an
  out-of-order interval buffer, delayed ACKs, and the two ECN echo
  disciplines (classic latch-until-CWR, or DCTCP's precise per-segment
  echo with immediate ACK on CE-state change).

Packet ECN rules follow RFC 3168 and are the crux of the paper:

====================  ==========================  =====================
packet                IP ECN field                TCP flags
====================  ==========================  =====================
SYN (ECN setup)       Non-ECT                     SYN + ECE + CWR
SYN-ACK (ECN setup)   Non-ECT                     SYN + ACK + ECE
data segment          ECT(0) if negotiated        ACK (+CWR after cut)
pure ACK              **Non-ECT, always**         ACK (+ECE when echoing)
====================  ==========================  =====================

Because pure ACKs can never be ECT, an ECN-enabled AQM will early-drop
them in exactly the situations where it merely marks the data packets —
the asymmetry the paper characterises.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import TcpError
from repro.net.host import Host
from repro.net.packet import (
    ECN_ECT0,
    ECN_NOT_ECT,
    FLAG_ACK,
    FLAG_CWR,
    FLAG_ECE,
    FLAG_SYN,
    Packet,
)
from repro.net.addresses import FlowKey
from repro.sim.engine import EventHandle, Simulator
from repro.tcp.cc import CongestionControl, make_cc
# Importing the concrete CC modules populates the registry; the classes
# themselves are only reached through their string keys.
from repro.tcp.cubic import CubicControl  # noqa: F401  (registers "cubic")
from repro.tcp.d2tcp import D2tcpControl  # noqa: F401  (registers "d2tcp")
from repro.tcp.dctcp import DctcpControl  # noqa: F401  (registers "dctcp")
from repro.tcp.newreno import NewRenoControl  # noqa: F401  (registers "newreno")
from repro.tcp.rto import RttEstimator

__all__ = [
    "TcpVariant",
    "TcpConfig",
    "TcpSender",
    "TcpListener",
    "FLAW_PROFILES",
]


class TcpVariant(enum.Enum):
    """Transport flavours evaluated in the paper."""

    RENO = "newreno"  #: plain NewReno, ECN not negotiated
    ECN = "tcp-ecn"   #: NewReno + classic ECN (RFC 3168)
    DCTCP = "dctcp"   #: DCTCP marking reaction + precise echo

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class TcpConfig:
    """Knobs shared by all flows of one experiment.

    The RTO defaults are datacenter-tuned (as DCTCP deployments are):
    10 ms minimum RTO, 50 ms initial RTO for SYNs. ``delack_segments=2``
    yields the standard one-ACK-per-two-segments cadence that puts the
    paper's ACK volume on the wire.
    """

    variant: TcpVariant = TcpVariant.ECN
    mss: int = 1460
    init_cwnd_segments: int = 10
    rwnd_bytes: int = 1 << 20
    min_rto: float = 0.010
    init_rto: float = 0.050
    max_rto: float = 2.0
    max_retries: int = 30
    delack_segments: int = 2
    delack_timeout: float = 500e-6
    dctcp_g: float = 1.0 / 16.0
    #: ECN+ (Kuzmanovic): send SYN / SYN-ACK as ECT(0) so AQMs mark rather
    #: than drop them. Off by default — stock RFC 3168 sends Non-ECT SYNs,
    #: which is exactly what the paper's problem statement relies on. The
    #: ablation benches compare this host-side fix against the paper's
    #: switch-side protection.
    ect_syn: bool = False
    #: RFC 3042 limited transmit: send one new segment on each of the
    #: first two duplicate ACKs, improving loss recovery for the small
    #: windows the shuffle's short flows run at.
    limited_transmit: bool = False
    #: Congestion-control registry key (see :mod:`repro.tcp.cc`). ``None``
    #: selects the variant's historical default: ``dctcp`` for the DCTCP
    #: variant, ``newreno`` otherwise. The key is orthogonal to
    #: ``variant``, which keeps selecting the *receiver echo discipline*
    #: and ECN negotiation — e.g. ``variant=DCTCP, cc="cubic"`` runs CUBIC
    #: against a precise per-segment echo receiver.
    cc: Optional[str] = None
    #: Byte-precise CE echo (the Misund delayed-ACK coalescing fix): the
    #: receiver stamps each ACK with the number of newly-acked bytes that
    #: arrived CE-marked, and DCTCP accumulates those instead of
    #: attributing every byte of an ECE-flagged delayed ACK to the mark.
    #: False reproduces the flawed flag-only accounting.
    precise_ece_accounting: bool = True
    #: RFC 3168 §6.1.5 requires retransmitted segments to go out Non-ECT.
    #: True reproduces the flawed legacy behavior (retransmits sent
    #: ECT(0), so AQMs mark them and the marks feed α during recovery).
    mark_retransmits: bool = False
    #: Reset DCTCP's α observation window on RTO so a stale
    #: ``_window_end``/mark pair from before the stall cannot govern the
    #: first post-RTO window. False reproduces the α-freeze flaw.
    dctcp_rto_window_reset: bool = True

    @property
    def ecn_enabled(self) -> bool:
        """True when the variant negotiates ECN on the handshake."""
        return self.variant is not TcpVariant.RENO

    def cc_key(self) -> str:
        """Resolved congestion-control registry key."""
        if self.cc is not None:
            return self.cc
        return "dctcp" if self.variant is TcpVariant.DCTCP else "newreno"

    def make_cc(self) -> CongestionControl:
        """Build the congestion-control policy for one flow."""
        return make_cc(self.cc_key(), self)

    def with_flaw_profile(self, profile: Optional[str]) -> "TcpConfig":
        """Return a copy with one of :data:`FLAW_PROFILES` applied."""
        if profile is None:
            return self
        try:
            overrides = FLAW_PROFILES[profile]
        except KeyError:
            known = ", ".join(sorted(FLAW_PROFILES)) or "<none>"
            raise TcpError(
                f"unknown flaw profile {profile!r}; known: {known}"
            ) from None
        return dataclasses.replace(self, **overrides)


#: Named bundles of endpoint-fidelity toggles reproducing the Linux DCTCP
#: pathologies from Misund (arXiv:2211.07581). ``linux-dctcp`` is the full
#: flawed stack; the other three isolate one pathology each.
FLAW_PROFILES: Dict[str, Dict[str, bool]] = {
    "linux-dctcp": {
        "precise_ece_accounting": False,
        "mark_retransmits": True,
        "dctcp_rto_window_reset": False,
    },
    "coalesce": {"precise_ece_accounting": False},
    "retx-mark": {"mark_retransmits": True},
    "alpha-freeze": {"dctcp_rto_window_reset": False},
}


@dataclass(slots=True)
class SenderStats:
    """Per-flow sender-side counters."""

    data_packets_sent: int = 0
    retransmits: int = 0
    fast_retransmits: int = 0
    rtos: int = 0
    syn_retries: int = 0
    ece_acks: int = 0
    cwnd_cuts: int = 0


class TcpSender:
    """Connection initiator and unidirectional data source.

    Parameters
    ----------
    sim, host:
        Kernel and local host.
    dst, dport:
        Destination host id and listener port.
    nbytes:
        Payload bytes to transfer.
    config:
        Shared :class:`TcpConfig`.
    on_complete:
        Called as ``on_complete(sender)`` when the last byte is
        cumulatively acknowledged.
    on_fail:
        Called as ``on_fail(sender)`` if retries are exhausted.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst: int,
        dport: int,
        nbytes: int,
        config: TcpConfig,
        on_complete: Optional[Callable[["TcpSender"], None]] = None,
        on_fail: Optional[Callable[["TcpSender"], None]] = None,
        sport: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ):
        if nbytes <= 0:
            raise TcpError(f"flow size must be positive, got {nbytes}")
        self.sim = sim
        self.host = host
        self.dst = dst
        self.dport = dport
        self.nbytes = int(nbytes)
        self.config = config
        self.on_complete = on_complete
        self.on_fail = on_fail
        self.sport = sport if sport is not None else host.allocate_port()
        #: Soft completion deadline relative to flow start (deadline-aware
        #: policies like D2TCP read it through :meth:`bind_flow`).
        self.deadline_s = deadline_s

        self.cc = config.make_cc()
        self.cc.bind_flow(self)
        self.rtt = RttEstimator(config.init_rto, config.min_rto, config.max_rto)
        self.stats = SenderStats()
        # Hot-path hoists: TcpConfig is frozen, so the per-segment and
        # per-ACK paths read plain instance attributes.
        self._mss = config.mss
        self._rwnd = config.rwnd_bytes
        self._precise_ece = config.precise_ece_accounting
        self._mark_retransmits = config.mark_retransmits
        self._cc_ecn_per_ack = self.cc.ecn_per_ack

        self.state = "closed"  # closed -> syn_sent -> established -> done/failed
        self.snd_una = 0
        self.snd_nxt = 0
        self.dup_acks = 0
        self.in_recovery = False
        self._recover = 0            # highest snd_nxt at recovery entry
        self._tx_time: Dict[int, float] = {}  # seq_end -> send time (RTT samples)
        self._no_sample_below = 0    # Karn: suppress samples at/below this seq_end
        self._rto_handle: Optional[EventHandle] = None
        self._retries = 0
        self._ecn_negotiated = False
        self._need_cwr = False
        self._ece_gate = 0           # classic ECN: no new cut until una passes this

        self.start_time: Optional[float] = None
        self.established_time: Optional[float] = None
        self.end_time: Optional[float] = None

        # Per-flow timeline events ride the network's trace bus; when no
        # bus is attached (or nobody subscribed) the emit sites reduce to
        # one attribute load + None test.
        self._tracer = getattr(host, "tracer", None)
        self._flow_label = f"{host.name}:{self.sport}->h{dst}:{dport}"

        # Hybrid fidelity (repro.sim.fluid). In packet mode the manager
        # is None and every hook below is a single attribute test;
        # _fluid_wait gates _try_send while the manager drains or
        # analytically advances this flow.
        self._fluid_wait = False
        self._fluid_mgr = getattr(sim, "fluid", None)
        if self._fluid_mgr is not None:
            self._fluid_mgr.adopt(self)

        host.bind(self.sport, self._on_packet)

    # -- public API ----------------------------------------------------------

    @property
    def flow(self) -> FlowKey:
        """Forward-direction flow key."""
        return FlowKey(self.host.node_id, self.sport, self.dst, self.dport)

    @property
    def flight_bytes(self) -> int:
        """Unacknowledged bytes in the network."""
        return self.snd_nxt - self.snd_una

    @property
    def done(self) -> bool:
        """True once every payload byte is cumulatively acknowledged."""
        return self.state == "done"

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time (start of SYN to last ACK), if done."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    # -- telemetry -----------------------------------------------------------

    def _trace_cwnd(self, event: str) -> None:
        """Emit one ``tcp.cwnd`` timeline sample (call sites guard on tracer)."""
        tr = self._tracer
        if tr is None or not tr.wants("tcp.cwnd"):
            return
        tr.emit(self.sim.now, "tcp.cwnd", self._flow_label, {
            "event": event,
            "cwnd": self.cc.cwnd,
            "ssthresh": min(self.cc.ssthresh, 1e15),
            "flight": self.flight_bytes,
            "rto": self.rtt.rto,
            "state": self.state,
            "in_recovery": self.in_recovery,
            # Sequence-space fields consumed by repro.validate's TCP
            # checker (ack monotonicity, flight accounting, Karn window).
            "snd_una": self.snd_una,
            "snd_nxt": self.snd_nxt,
            "no_sample_below": self._no_sample_below,
            "nbytes": self.nbytes,
        })

    def register_metrics(self, registry) -> None:
        """Bind this flow's :class:`SenderStats` into a telemetry registry.

        Per-flow label cardinality is the caller's problem — register the
        handful of flows under study, not a whole shuffle's worth.
        """
        st = self.stats
        for attr in ("data_packets_sent", "retransmits", "fast_retransmits",
                     "rtos", "syn_retries", "ece_acks", "cwnd_cuts"):
            registry.gauge(
                f"tcp.{attr}",
                fn=lambda s=st, a=attr: getattr(s, a),
                flow=self._flow_label,
            )

    def start(self) -> None:
        """Begin the handshake."""
        if self.state != "closed":
            raise TcpError(f"flow {self.flow}: start() in state {self.state}")
        self.state = "syn_sent"
        self.start_time = self.sim.now
        self._send_syn()

    # -- handshake -----------------------------------------------------------

    def _send_syn(self) -> None:
        flags = FLAG_SYN
        ecn = ECN_NOT_ECT
        if self.config.ecn_enabled:
            flags |= FLAG_ECE | FLAG_CWR  # RFC 3168 ECN-setup SYN
            if self.config.ect_syn:
                ecn = ECN_ECT0  # ECN+: let AQMs mark the SYN, not drop it
        self._emit(Packet(
            src=self.host.node_id, sport=self.sport,
            dst=self.dst, dport=self.dport,
            seq=0, ack=0, payload=0, flags=flags,
            ecn=ecn, created_at=self.sim.now,
            pkt_id=next(self.sim.pkt_ids),
        ))
        self._arm_rto()

    # -- transmit path ---------------------------------------------------------

    def _emit(self, pkt: Packet) -> None:
        self.host.send(pkt)

    def _usable_window(self) -> int:
        return int(min(self.cc.cwnd, self._rwnd)) - self.flight_bytes

    def _send_segment(self, seq: int, retransmit: bool) -> int:
        """Send one data segment starting at ``seq``; returns its length."""
        seglen = min(self._mss, self.nbytes - seq)
        if seglen <= 0:
            return 0
        flags = FLAG_ACK
        if self._need_cwr:
            flags |= FLAG_CWR
            self._need_cwr = False
        now = self.sim.now
        pkt = Packet(
            src=self.host.node_id, sport=self.sport,
            dst=self.dst, dport=self.dport,
            seq=seq, ack=0, payload=seglen, flags=flags,
            # RFC 3168 §6.1.5: retransmissions MUST NOT be ECT. The
            # mark_retransmits toggle reproduces the legacy flaw where
            # retransmits go out ECT(0) and their marks feed DCTCP's α.
            ecn=ECN_ECT0
            if self._ecn_negotiated and (not retransmit or self._mark_retransmits)
            else ECN_NOT_ECT,
            created_at=now,
            pkt_id=next(self.sim.pkt_ids),
        )
        end = seq + seglen
        if retransmit:
            self.stats.retransmits += 1
            self._tx_time.pop(end, None)  # Karn: never sample a retransmit
            tr = self._tracer
            if tr is not None and tr.wants("tcp.retx"):
                tr.emit(now, "tcp.retx", self._flow_label, {
                    "seq": seq, "len": seglen,
                    "in_recovery": self.in_recovery,
                })
        elif end > self._no_sample_below:
            self._tx_time[end] = now
        self.stats.data_packets_sent += 1
        self.host.send(pkt)  # one frame less than _emit on the data path
        return seglen

    def _try_send(self) -> None:
        if self.state != "established" or self._fluid_wait:
            return
        sent_any = False
        # Loop invariants: _send_segment never touches cwnd, snd_una or
        # _no_sample_below, so the window bound and rollback frontier are
        # hoisted out of the clocking loop.
        nbytes = self.nbytes
        mss = self._mss
        wnd = int(min(self.cc.cwnd, self._rwnd))
        snd_una = self.snd_una
        no_sample = self._no_sample_below
        while True:
            snd_nxt = self.snd_nxt
            remaining = nbytes - snd_nxt
            if remaining <= 0:
                break
            if wnd - (snd_nxt - snd_una) < (mss if mss < remaining else remaining):
                break
            # After an RTO rollback, bytes below the old frontier are
            # retransmits even though the loop treats them as new sends.
            n = self._send_segment(snd_nxt, retransmit=snd_nxt < no_sample)
            if n == 0:
                break
            self.snd_nxt = snd_nxt + n
            sent_any = True
        if sent_any:
            self._arm_rto()

    # -- receive path -------------------------------------------------------------

    def _on_packet(self, pkt: Packet) -> None:
        if self.state in ("done", "failed", "closed"):
            return
        if self.state == "syn_sent":
            if pkt.is_syn and (pkt.flags & FLAG_ACK):
                self._on_syn_ack(pkt)
            return
        if pkt.flags & FLAG_ACK:
            self._on_ack(pkt)

    def _on_syn_ack(self, pkt: Packet) -> None:
        self._cancel_rto()
        self._retries = 0
        self._ecn_negotiated = self.config.ecn_enabled and pkt.has_ece
        self.state = "established"
        self.established_time = self.sim.now
        if self.start_time is not None:
            self.rtt.sample(self.sim.now - self.start_time)
        # Handshake-completing pure ACK (non-ECT, like every pure ACK).
        self._emit(Packet(
            src=self.host.node_id, sport=self.sport,
            dst=self.dst, dport=self.dport,
            seq=0, ack=0, payload=0, flags=FLAG_ACK,
            ecn=ECN_NOT_ECT, created_at=self.sim.now,
            pkt_id=next(self.sim.pkt_ids),
        ))
        self._try_send()

    def _on_ack(self, pkt: Packet) -> None:
        ack = pkt.ack
        ece = pkt.has_ece
        if ece:
            self.stats.ece_acks += 1
            tr = self._tracer
            if tr is not None and tr.wants("tcp.ece"):
                tr.emit(self.sim.now, "tcp.ece", self._flow_label,
                        {"ack": ack, "cwnd": self.cc.cwnd})

        if ack > self.snd_una:
            self._on_ack_advance(ack, ece, pkt.marked_bytes)
        elif ack == self.snd_una and self.flight_bytes > 0:
            self._on_dup_ack(ece)
        # ACKs below snd_una are stale; ignore.

        if self._fluid_mgr is not None and self.state == "established":
            self._fluid_mgr.on_ack(self)
        if self.state == "established":
            self._try_send()

    def _classic_ecn_gate(self, ece: bool) -> None:
        """Classic ECN: cut at most once per window of data (RFC 3168)."""
        if not ece or not self._ecn_negotiated or self._cc_ecn_per_ack:
            # Policies that consume every ECE themselves (DCTCP family)
            # disable the gate; without negotiation ECE never arrives.
            return
        if self.snd_una >= self._ece_gate:
            self.cc.on_ecn_signal(self.flight_bytes)
            self.stats.cwnd_cuts += 1
            self._ece_gate = self.snd_nxt
            self._need_cwr = True

    def _on_ack_advance(self, ack: int, ece: bool, marked_bytes: int = 0) -> None:
        acked = ack - self.snd_una

        # RTT sampling keyed by segment end; purge everything acked.
        t = self._tx_time.pop(ack, None)
        if t is not None:
            self.rtt.sample(self.sim.now - t)
        if self._tx_time:
            for end in [e for e in self._tx_time if e <= ack]:
                del self._tx_time[end]

        self.snd_una = ack
        # An RTO collapses snd_nxt back to snd_una + mss (go-back-N), but
        # ACKs for segments already in flight before the collapse can
        # still arrive and overtake it. The send point must never trail
        # the cumulative ACK: snd_nxt < snd_una means negative flight and
        # retransmission of bytes the peer has acknowledged.
        if self.snd_nxt < ack:
            self.snd_nxt = ack
        self.dup_acks = 0
        self.rtt.reset_backoff()
        self._retries = 0

        # ECN reactions (order matters: DCTCP bookkeeping sees every ACK).
        if self.cc.on_ack_info(
            acked, ece, self.snd_una, self.snd_nxt,
            marked_bytes=marked_bytes if self._precise_ece else None,
            in_recovery=self.in_recovery,
        ):
            self.stats.cwnd_cuts += 1
            self._need_cwr = True
        if ece:  # gate is a no-op without ECE; skip the frame on most ACKs
            self._classic_ecn_gate(ece)

        if self.in_recovery:
            if ack >= self._recover:
                # Full ACK: leave fast recovery, deflate to ssthresh.
                self.in_recovery = False
                self.cc.cwnd = self.cc.ssthresh
            else:
                # Partial ACK (NewReno): retransmit the next hole, stay in
                # recovery, deflate by the amount acked.
                self._send_segment(self.snd_una, retransmit=True)
                self.cc.cwnd = max(
                    self.cc.cwnd - acked + self.config.mss, float(self.config.mss)
                )
        else:
            self.cc.on_ack_progress(acked)

        if self._tracer is not None:
            self._trace_cwnd("ack")

        if self.snd_una >= self.nbytes:
            self._complete()
        else:
            self._arm_rto()

    def _on_dup_ack(self, ece: bool) -> None:
        self.dup_acks += 1
        if ece:  # gate is a no-op without ECE; skip the frame on most ACKs
            self._classic_ecn_gate(ece)
        if (
            self.config.limited_transmit
            and not self.in_recovery
            and self.dup_acks in (1, 2)
            and self.snd_nxt < self.nbytes
            and self.flight_bytes
            <= min(self.cc.cwnd, self.config.rwnd_bytes) + 2 * self.config.mss
        ):
            # RFC 3042: each of the first two dup ACKs may clock out one
            # new segment without touching cwnd.
            n = self._send_segment(self.snd_nxt, retransmit=False)
            if n > 0:
                self.snd_nxt += n
                self._arm_rto()
        if not self.in_recovery and self.dup_acks == 3:
            # Fast retransmit + fast recovery.
            self.in_recovery = True
            self._recover = self.snd_nxt
            self.cc.on_loss_event(self.flight_bytes)
            self.stats.cwnd_cuts += 1
            self.stats.fast_retransmits += 1
            self._send_segment(self.snd_una, retransmit=True)
            self.cc.cwnd = self.cc.ssthresh + 3.0 * self.config.mss
            if self._tracer is not None:
                self._trace_cwnd("fast_retransmit")
            self._arm_rto()
        elif self.in_recovery:
            self.cc.cwnd += self.config.mss  # window inflation

    # -- timers -----------------------------------------------------------------

    def _arm_rto(self) -> None:
        # Inlined _cancel_rto (keep in sync) — re-arming happens per ACK.
        h = self._rto_handle
        if h is not None:
            h.cancel()
        self._rto_handle = self.sim.schedule(self.rtt.rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None

    def _on_rto(self) -> None:
        self._rto_handle = None
        if self.state in ("done", "failed"):
            return
        self._retries += 1
        if self._retries > self.config.max_retries:
            self._fail()
            return
        self.rtt.backoff()

        if self.state == "syn_sent":
            self.stats.syn_retries += 1
            self._send_syn()
            return

        # Data RTO: collapse to one segment and go-back-N from snd_una.
        self.stats.rtos += 1
        if self._fluid_mgr is not None:
            self._fluid_mgr.on_congestion(self)
        tr = self._tracer
        if tr is not None and tr.wants("tcp.rto"):
            tr.emit(self.sim.now, "tcp.rto", self._flow_label, {
                "retries": self._retries, "rto": self.rtt.rto,
                "snd_una": self.snd_una, "snd_nxt": self.snd_nxt,
            })
        self.cc.on_rto(self.flight_bytes)
        self.stats.cwnd_cuts += 1
        self.in_recovery = False
        self.dup_acks = 0
        self._tx_time.clear()
        self._no_sample_below = max(self._no_sample_below, self.snd_nxt)
        self.snd_nxt = self.snd_una
        self._send_segment(self.snd_una, retransmit=True)
        self.snd_nxt = min(self.snd_una + self.config.mss, self.nbytes)
        if self._tracer is not None:
            self._trace_cwnd("rto")
        self._arm_rto()

    # -- terminal states ------------------------------------------------------------

    def _complete(self) -> None:
        self._cancel_rto()
        self.state = "done"
        self.end_time = self.sim.now
        self.host.unbind(self.sport)
        if self._fluid_mgr is not None:
            self._fluid_mgr.on_flow_done(self)
        if self.on_complete is not None:
            self.on_complete(self)

    def _fail(self) -> None:
        self._cancel_rto()
        self.state = "failed"
        self.end_time = self.sim.now
        self.host.unbind(self.sport)
        if self._fluid_mgr is not None:
            self._fluid_mgr.on_flow_done(self)
        if self.on_fail is not None:
            self.on_fail(self)
        else:
            raise TcpError(f"flow {self.flow} exhausted retries")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TcpSender {self.flow} {self.state} una={self.snd_una} "
            f"nxt={self.snd_nxt}/{self.nbytes} cwnd={self.cc.cwnd:.0f}>"
        )


# ---------------------------------------------------------------------------
# Receiver side
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class _ReceiverState:
    """Per-flow receive state inside a listener."""

    peer: int
    peer_port: int
    ecn_ok: bool
    rcv_nxt: int = 0
    ooo: List[Tuple[int, int]] = field(default_factory=list)  # merged intervals
    bytes_received: int = 0          # cumulative in-order bytes delivered
    segs_since_ack: int = 0
    delack_handle: Optional[EventHandle] = None
    # classic ECN echo: latch ECE until a CWR data segment arrives
    ece_latch: bool = False
    # DCTCP precise echo state
    ce_state: bool = False
    ce_packets: int = 0
    data_packets: int = 0
    # Byte-precise CE echo: payload bytes that arrived CE but whose
    # cumulative ACK has not gone out yet, and the rcv_nxt covered by the
    # last ACK sent (to attribute marked bytes to exactly one ACK).
    ce_bytes_pending: int = 0
    last_acked: int = 0
    # Coalesced (flawed) DCTCP echo: any CE since the last ACK latches the
    # next ACK's ECE, so one mark claims the whole delayed-ACK window.
    ce_seen: bool = False
    #: Full flow key, built once at SYN time (the per-packet demux keys on
    #: the cheaper ``(src, sport)`` tuple instead).
    key: Optional[FlowKey] = None
    #: Per-flow delayed-ACK closure, built once at SYN time so re-arming
    #: the timer never allocates a new one.
    delack_cb: Optional[Callable[[], None]] = None


class TcpListener:
    """Accepts connections on (host, port) and runs per-flow receivers.

    Parameters
    ----------
    sim, host, port:
        Where to listen.
    config:
        Shared :class:`TcpConfig`; the ``variant`` selects the ECN echo
        discipline (classic latch vs DCTCP precise echo).
    on_progress:
        Optional ``on_progress(flow_key, state)`` callback fired whenever
        in-order data advances (the shuffle layer tracks fetch progress
        through this).
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        port: int,
        config: TcpConfig,
        on_progress: Optional[Callable[[FlowKey, _ReceiverState], None]] = None,
    ):
        self.sim = sim
        self.host = host
        self.port = port
        self.config = config
        self.on_progress = on_progress
        # Demux by (src, sport): the local (host, port) half of the flow
        # key is constant for a listener, so the per-packet lookup key is
        # a plain 2-tuple; the full FlowKey lives in _ReceiverState.key.
        self.flows: Dict[tuple, _ReceiverState] = {}
        # Hot-path hoists (TcpConfig is frozen).
        self._variant = config.variant
        self._delack_segments = config.delack_segments
        self._delack_timeout = config.delack_timeout
        self._precise_echo = config.precise_ece_accounting
        host.bind(port, self._on_packet)

    def close(self) -> None:
        """Stop listening and drop all flow state."""
        self.host.unbind(self.port)
        for st in self.flows.values():
            if st.delack_handle is not None:
                st.delack_handle.cancel()
        self.flows.clear()

    # -- packet handling -------------------------------------------------------

    def _on_packet(self, pkt: Packet) -> None:
        st = self.flows.get((pkt.src, pkt.sport))
        if pkt.is_syn:
            self._on_syn(pkt, st)
            return
        if st is None:
            return  # data for an unknown flow (e.g. SYN state dropped); ignore
        if pkt.payload > 0:
            self._on_data(st, pkt)
        # Pure ACKs from the sender (handshake third step) need no action.

    def _on_syn(self, pkt: Packet, st: Optional[_ReceiverState]) -> None:
        if st is None:
            ecn_ok = self.config.ecn_enabled and pkt.has_ece and pkt.has_cwr
            st = _ReceiverState(peer=pkt.src, peer_port=pkt.sport, ecn_ok=ecn_ok)
            st.key = FlowKey(pkt.src, pkt.sport, self.host.node_id, self.port)
            st.delack_cb = lambda st=st: self._delack_fire(st)
            self.flows[(pkt.src, pkt.sport)] = st
        # Reply (or re-reply on retransmitted SYN) with a SYN-ACK; ECN-setup
        # SYN-ACK carries ECE in the TCP header (RFC 3168).
        flags = FLAG_SYN | FLAG_ACK
        ecn = ECN_NOT_ECT
        if st.ecn_ok:
            flags |= FLAG_ECE
            if self.config.ect_syn:
                ecn = ECN_ECT0  # ECN+ applies to the SYN-ACK as well
        self.host.send(Packet(
            src=self.host.node_id, sport=self.port,
            dst=st.peer, dport=st.peer_port,
            seq=0, ack=0, payload=0, flags=flags,
            ecn=ecn, created_at=self.sim.now,
            pkt_id=next(self.sim.pkt_ids),
        ))

    # -- data path ------------------------------------------------------------------

    def _on_data(self, st: _ReceiverState, pkt: Packet) -> None:
        st.data_packets += 1
        seg_ce = pkt.is_ce
        if seg_ce:
            st.ce_packets += 1

        # ECN echo discipline.
        immediate_echo = False
        variant = self._variant
        if variant is TcpVariant.DCTCP:
            if not self._precise_echo:
                # Flawed (coalesced) echo: no state-change ACK; any CE in
                # the delayed-ACK window latches ECE on the next ACK, so
                # one mark claims every byte that ACK covers (the Misund
                # delayed-ACK mark-coalescing pathology).
                st.ce_state = seg_ce
                if seg_ce:
                    st.ce_seen = True
            elif seg_ce != st.ce_state:
                # DCTCP: CE state change -> ACK everything so far with the
                # *old* state immediately, then flip.
                self._send_ack(st, ece=st.ce_state)
                st.ce_state = seg_ce
                immediate_echo = True
        elif variant is TcpVariant.ECN:
            if seg_ce:
                st.ece_latch = True
            if pkt.has_cwr:
                st.ece_latch = seg_ce  # CWR clears the latch (re-set if CE too)

        start, end = pkt.seq, pkt.seq + pkt.payload
        if seg_ce and end > st.rcv_nxt:
            # Byte-precise echo bookkeeping: remember how many *new*
            # payload bytes arrived CE-marked. Runs after the echo
            # discipline so a state-change ACK (which covers only older
            # bytes) cannot claim this segment's marks. Old duplicates are
            # excluded — their bytes were already attributed.
            new_bytes = end - st.rcv_nxt
            st.ce_bytes_pending += (
                pkt.payload if pkt.payload < new_bytes else new_bytes
            )
        if end <= st.rcv_nxt:
            # Old duplicate: ACK immediately so the sender resynchronises.
            self._send_ack(st)
            return
        if start > st.rcv_nxt:
            # Out of order: buffer and emit an immediate dup ACK.
            self._insert_ooo(st, start, end)
            self._send_ack(st)
            return

        # In-order (possibly overlapping) segment: advance rcv_nxt.
        st.rcv_nxt = max(st.rcv_nxt, end)
        if st.ooo:
            self._drain_ooo(st)
        st.bytes_received = st.rcv_nxt

        if self.on_progress is not None:
            self.on_progress(st.key, st)

        if immediate_echo:
            # The state-change ACK already went out; still count this
            # segment toward the delayed-ACK cadence for the next one.
            st.segs_since_ack = 1
            self._arm_delack(st)
            return

        st.segs_since_ack += 1
        if st.segs_since_ack >= self._delack_segments:
            self._send_ack(st)
        else:
            self._arm_delack(st)

    @staticmethod
    def _insert_ooo(st: _ReceiverState, start: int, end: int) -> None:
        """Insert [start, end) into the merged out-of-order interval list."""
        intervals = st.ooo
        intervals.append((start, end))
        intervals.sort()
        merged: List[Tuple[int, int]] = []
        for s, e in intervals:
            if merged and s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e))
            else:
                merged.append((s, e))
        st.ooo = merged

    @staticmethod
    def _drain_ooo(st: _ReceiverState) -> None:
        """Advance rcv_nxt through any now-contiguous buffered intervals."""
        while st.ooo and st.ooo[0][0] <= st.rcv_nxt:
            s, e = st.ooo.pop(0)
            st.rcv_nxt = max(st.rcv_nxt, e)

    # -- ACK generation -----------------------------------------------------------

    def _echo_flag(self, st: _ReceiverState) -> bool:
        if not st.ecn_ok:
            return False
        if self._variant is TcpVariant.DCTCP:
            return st.ce_state if self._precise_echo else st.ce_seen
        return st.ece_latch

    def _send_ack(self, st: _ReceiverState, ece: Optional[bool] = None) -> None:
        h = st.delack_handle
        if h is not None:
            h.cancel()
            st.delack_handle = None
        st.segs_since_ack = 0
        # Byte-precise CE echo: attribute pending marked bytes to the
        # first ACK whose cumulative number covers them (dup ACKs carry 0
        # and leave the pending count for the eventual cumulative ACK).
        marked = 0
        newly = st.rcv_nxt - st.last_acked
        if newly > 0:
            st.last_acked = st.rcv_nxt
            pending = st.ce_bytes_pending
            if pending > 0:
                marked = pending if pending < newly else newly
                st.ce_bytes_pending = pending - marked
        flags = FLAG_ACK
        if (self._echo_flag(st) if ece is None else (ece and st.ecn_ok)):
            flags |= FLAG_ECE
        st.ce_seen = False  # the coalesced latch is consumed by this ACK
        sim = self.sim
        self.host.send(Packet(
            src=self.host.node_id, sport=self.port,
            dst=st.peer, dport=st.peer_port,
            seq=0, ack=st.rcv_nxt, payload=0, flags=flags,
            ecn=ECN_NOT_ECT,  # pure ACKs are never ECT — the paper's crux
            created_at=sim.now,
            pkt_id=next(sim.pkt_ids),
            marked_bytes=marked,
        ))

    def _arm_delack(self, st: _ReceiverState) -> None:
        if st.delack_handle is None:
            st.delack_handle = self.sim.schedule(
                self._delack_timeout, st.delack_cb
            )

    def _delack_fire(self, st: _ReceiverState) -> None:
        st.delack_handle = None
        if st.segs_since_ack > 0:
            self._send_ack(st)
