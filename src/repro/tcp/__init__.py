"""TCP stack: NewReno with ECN (RFC 3168 semantics) and DCTCP.

The stack is a faithful-in-shape reimplementation of the NS-2 agents the
paper used: cumulative ACKs, fast retransmit/fast recovery, RTO with
exponential backoff (RFC 6298), ECN negotiation on SYN/SYN-ACK, classic
ECE/CWR reaction for TCP-ECN, and the DCTCP fraction-based window
reduction with its precise CE-echo receiver.
"""

from repro.tcp.cc import CongestionControl, cc_names, make_cc, register_cc
from repro.tcp.cubic import CubicControl
from repro.tcp.d2tcp import D2tcpControl
from repro.tcp.dctcp import DctcpControl
from repro.tcp.endpoint import (
    FLAW_PROFILES,
    TcpConfig,
    TcpListener,
    TcpSender,
    TcpVariant,
)
from repro.tcp.flow import BulkFlow, FlowResult, start_bulk_flow
from repro.tcp.newreno import NewRenoControl
from repro.tcp.rto import RttEstimator
from repro.tcp.trace import CwndTracer

__all__ = [
    "TcpConfig",
    "TcpVariant",
    "TcpSender",
    "TcpListener",
    "CongestionControl",
    "NewRenoControl",
    "DctcpControl",
    "CubicControl",
    "D2tcpControl",
    "register_cc",
    "cc_names",
    "make_cc",
    "FLAW_PROFILES",
    "RttEstimator",
    "CwndTracer",
    "BulkFlow",
    "FlowResult",
    "start_bulk_flow",
]
