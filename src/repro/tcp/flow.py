"""Bulk-flow convenience wrapper.

A :class:`BulkFlow` bundles a :class:`~repro.tcp.endpoint.TcpSender` with
the destination listener port and exposes the completion callback and a
:class:`FlowResult` record. This is the unit the workload generators and
the MapReduce shuffle compose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.host import Host
from repro.sim.engine import Simulator
from repro.tcp.endpoint import TcpConfig, TcpListener, TcpSender

__all__ = ["FlowResult", "BulkFlow", "start_bulk_flow"]


@dataclass(frozen=True)
class FlowResult:
    """Outcome of one completed bulk transfer."""

    src: int
    dst: int
    nbytes: int
    start_time: float
    established_time: Optional[float]
    end_time: float
    retransmits: int
    rtos: int
    syn_retries: int
    failed: bool = False

    @property
    def fct(self) -> float:
        """Flow completion time in seconds."""
        return self.end_time - self.start_time

    @property
    def goodput_bps(self) -> float:
        """Application goodput over the flow's lifetime (bits/second)."""
        dur = self.fct
        return (self.nbytes * 8.0 / dur) if dur > 0 else 0.0


class BulkFlow:
    """One unidirectional transfer of ``nbytes`` from ``src`` to ``dst``."""

    def __init__(
        self,
        sim: Simulator,
        src: Host,
        dst: Host,
        dport: int,
        nbytes: int,
        config: TcpConfig,
        on_done: Optional[Callable[[FlowResult], None]] = None,
        deadline_s: Optional[float] = None,
    ):
        self.sim = sim
        self.on_done = on_done
        self.result: Optional[FlowResult] = None
        self.sender = TcpSender(
            sim, src, dst.node_id, dport, nbytes, config,
            on_complete=self._finish_ok, on_fail=self._finish_fail,
            deadline_s=deadline_s,
        )

    def start(self) -> None:
        """Kick off the handshake."""
        self.sender.start()

    def _make_result(self, failed: bool) -> FlowResult:
        s = self.sender
        return FlowResult(
            src=s.host.node_id,
            dst=s.dst,
            nbytes=s.nbytes,
            start_time=s.start_time or 0.0,
            established_time=s.established_time,
            end_time=s.end_time or self.sim.now,
            retransmits=s.stats.retransmits,
            rtos=s.stats.rtos,
            syn_retries=s.stats.syn_retries,
            failed=failed,
        )

    def _finish_ok(self, _sender: TcpSender) -> None:
        self.result = self._make_result(failed=False)
        if self.on_done is not None:
            self.on_done(self.result)

    def _finish_fail(self, _sender: TcpSender) -> None:
        self.result = self._make_result(failed=True)
        if self.on_done is not None:
            self.on_done(self.result)


def start_bulk_flow(
    sim: Simulator,
    src: Host,
    dst: Host,
    dport: int,
    nbytes: int,
    config: TcpConfig,
    on_done: Optional[Callable[[FlowResult], None]] = None,
    delay: float = 0.0,
    deadline_s: Optional[float] = None,
) -> BulkFlow:
    """Create a flow and schedule its start ``delay`` seconds from now.

    The destination must already have a :class:`TcpListener` bound on
    ``dport`` (one listener serves any number of flows). ``deadline_s``
    is a soft deadline handed to deadline-aware congestion control.
    """
    flow = BulkFlow(sim, src, dst, dport, nbytes, config, on_done,
                    deadline_s=deadline_s)
    if delay > 0:
        sim.schedule(delay, flow.start)
    else:
        flow.start()
    return flow
