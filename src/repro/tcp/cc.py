"""Congestion-control interface.

The sender's loss-recovery machinery (dup-ACK counting, fast retransmit,
RTO) lives in :class:`~repro.tcp.endpoint.TcpSender`; a
:class:`CongestionControl` object only owns the *window policy*: how cwnd
grows on ACKs and how it shrinks on loss, timeout, or ECN signals. Two
implementations exist: :class:`~repro.tcp.newreno.NewRenoControl`
(classic AIMD, ECE halves once per RTT) and
:class:`~repro.tcp.dctcp.DctcpControl` (fraction-of-marked-bytes α).
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["CongestionControl"]


class CongestionControl:
    """Window policy state machine. All quantities in bytes.

    Parameters
    ----------
    mss:
        Maximum segment size (bytes).
    init_cwnd_segments:
        Initial congestion window in segments (RFC 6928 default of 10).
    """

    def __init__(self, mss: int, init_cwnd_segments: int = 10):
        if mss <= 0:
            raise ConfigError(f"mss must be positive, got {mss}")
        if init_cwnd_segments < 1:
            raise ConfigError(f"init cwnd must be >= 1 segment")
        self.mss = mss
        self.cwnd = float(mss * init_cwnd_segments)
        self.ssthresh = float(1 << 30)  # effectively infinite until first loss

    # -- growth -------------------------------------------------------------

    @property
    def in_slow_start(self) -> bool:
        """True while cwnd is below ssthresh."""
        return self.cwnd < self.ssthresh

    def on_ack_progress(self, acked_bytes: int) -> None:
        """New data acknowledged: grow the window.

        Slow start adds the acked bytes (doubling per RTT); congestion
        avoidance adds ~one MSS per RTT via the standard
        ``mss*mss/cwnd`` per-ACK increment.

        Runs once per cumulative ACK — compares cwnd/ssthresh directly
        rather than through the :attr:`in_slow_start` property.
        """
        cwnd = self.cwnd
        ssthresh = self.ssthresh
        if cwnd < ssthresh:
            cwnd += acked_bytes
            if cwnd > ssthresh:
                cwnd = ssthresh  # don't overshoot into CA
            self.cwnd = cwnd
        else:
            self.cwnd = cwnd + self.mss * self.mss / cwnd

    # -- shrink events -------------------------------------------------------

    def on_loss_event(self, flight_bytes: int) -> float:
        """Fast-retransmit loss: multiplicative decrease.

        Returns the new ssthresh; the sender applies its recovery
        inflation on top.
        """
        self.ssthresh = max(flight_bytes / 2.0, 2.0 * self.mss)
        self.cwnd = self.ssthresh
        return self.ssthresh

    def on_rto(self, flight_bytes: int) -> None:
        """Retransmission timeout: collapse to one segment (RFC 5681)."""
        self.ssthresh = max(flight_bytes / 2.0, 2.0 * self.mss)
        self.cwnd = float(self.mss)

    def on_ecn_signal(self, flight_bytes: int) -> None:
        """ECE received (classic ECN): treat like a loss, without retransmit."""
        self.on_loss_event(flight_bytes)

    # -- per-ACK ECN bookkeeping (DCTCP overrides) ----------------------------

    def on_ack_info(self, acked_bytes: int, ece: bool, snd_una: int, snd_nxt: int) -> bool:
        """Observe one cumulative ACK's ECN echo.

        Returns True if the policy wants the sender to emit CWR on its
        next data segment (i.e. a window reduction was just applied).
        The base class does nothing here — classic ECN reductions are
        driven by the sender's once-per-RTT gate calling
        :meth:`on_ecn_signal`.
        """
        return False
