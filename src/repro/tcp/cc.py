"""Congestion-control interface and the string-keyed CC registry.

The sender's loss-recovery machinery (dup-ACK counting, fast retransmit,
RTO) lives in :class:`~repro.tcp.endpoint.TcpSender`; a
:class:`CongestionControl` object only owns the *window policy*: how cwnd
grows on ACKs and how it shrinks on loss, timeout, or ECN signals.

Implementations register themselves under ``cls.name`` with
:func:`register_cc`, and :func:`make_cc` builds one from its string key
plus a :class:`~repro.tcp.endpoint.TcpConfig` (duck-typed — only
``mss``/``init_cwnd_segments`` and a few optional fields are read), so
adding a variant is one module plus one decorator. The stock zoo:
``newreno`` (classic AIMD, ECE halves once per RTT), ``dctcp``
(fraction-of-marked-bytes α), ``cubic`` (RFC 8312), and ``d2tcp``
(deadline-aware α cut).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Type

from repro.errors import ConfigError

__all__ = [
    "CongestionControl",
    "CC_REGISTRY",
    "register_cc",
    "cc_names",
    "make_cc",
]


class CongestionControl:
    """Window policy state machine. All quantities in bytes.

    Parameters
    ----------
    mss:
        Maximum segment size (bytes).
    init_cwnd_segments:
        Initial congestion window in segments (RFC 6928 default of 10).
    """

    #: Registry key; subclasses must override to register.
    name = "base"

    #: Which fluid-tier window law approximates this policy: ``"reno"``
    #: (AIMD growth), ``"dctcp"`` (AIMD growth + α decay), or ``None``
    #: (no analytic law — flows with this CC never promote to fluid).
    fluid_model: Optional[str] = "reno"

    #: True when the policy consumes every ECE itself via
    #: :meth:`on_ack_info` (DCTCP-style); the sender then disables its
    #: classic once-per-RTT ECE gate.
    ecn_per_ack = False

    def __init__(self, mss: int, init_cwnd_segments: int = 10):
        if mss <= 0:
            raise ConfigError(f"mss must be positive, got {mss}")
        if init_cwnd_segments < 1:
            raise ConfigError(f"init cwnd must be >= 1 segment")
        self.mss = mss
        self.cwnd = float(mss * init_cwnd_segments)
        self.ssthresh = float(1 << 30)  # effectively infinite until first loss

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_config(cls, config) -> "CongestionControl":
        """Build from a TcpConfig-shaped object (duck-typed).

        Subclasses needing extra knobs (DCTCP's g, …) override this.
        """
        return cls(config.mss, config.init_cwnd_segments)

    def bind_flow(self, sender) -> None:
        """Attach the owning sender (for policies that need a clock,
        RTT samples, or flow deadline). Base class keeps no reference."""

    # -- growth -------------------------------------------------------------

    @property
    def in_slow_start(self) -> bool:
        """True while cwnd is below ssthresh."""
        return self.cwnd < self.ssthresh

    def on_ack_progress(self, acked_bytes: int) -> None:
        """New data acknowledged: grow the window.

        Slow start adds the acked bytes (doubling per RTT); congestion
        avoidance adds ~one MSS per RTT via the standard
        ``mss*mss/cwnd`` per-ACK increment.

        Runs once per cumulative ACK — compares cwnd/ssthresh directly
        rather than through the :attr:`in_slow_start` property.
        """
        cwnd = self.cwnd
        ssthresh = self.ssthresh
        if cwnd < ssthresh:
            cwnd += acked_bytes
            if cwnd > ssthresh:
                cwnd = ssthresh  # don't overshoot into CA
            self.cwnd = cwnd
        else:
            self.cwnd = cwnd + self.mss * self.mss / cwnd

    # -- shrink events -------------------------------------------------------

    def on_loss_event(self, flight_bytes: int) -> float:
        """Fast-retransmit loss: multiplicative decrease.

        Returns the new ssthresh; the sender applies its recovery
        inflation on top.
        """
        self.ssthresh = max(flight_bytes / 2.0, 2.0 * self.mss)
        self.cwnd = self.ssthresh
        return self.ssthresh

    def on_rto(self, flight_bytes: int) -> None:
        """Retransmission timeout: collapse to one segment (RFC 5681)."""
        self.ssthresh = max(flight_bytes / 2.0, 2.0 * self.mss)
        self.cwnd = float(self.mss)

    def on_ecn_signal(self, flight_bytes: int) -> None:
        """ECE received (classic ECN): treat like a loss, without retransmit."""
        self.on_loss_event(flight_bytes)

    # -- per-ACK ECN bookkeeping (DCTCP overrides) ----------------------------

    def on_ack_info(
        self,
        acked_bytes: int,
        ece: bool,
        snd_una: int,
        snd_nxt: int,
        marked_bytes: Optional[int] = None,
        in_recovery: bool = False,
    ) -> bool:
        """Observe one cumulative ACK's ECN echo.

        ``marked_bytes`` carries the receiver's byte-precise CE count for
        this ACK when the endpoint runs with ``precise_ece_accounting``
        (None means only the ECE flag is available). ``in_recovery`` is
        True while the sender is in fast recovery.

        Returns True if the policy wants the sender to emit CWR on its
        next data segment (i.e. a window reduction was just applied).
        The base class does nothing here — classic ECN reductions are
        driven by the sender's once-per-RTT gate calling
        :meth:`on_ecn_signal`.
        """
        return False


# -- registry ----------------------------------------------------------------

CC_REGISTRY: Dict[str, Type[CongestionControl]] = {}


def register_cc(cls: Type[CongestionControl]) -> Type[CongestionControl]:
    """Class decorator: register a CongestionControl under ``cls.name``."""
    key = cls.name
    if not key or key == "base":
        raise ConfigError(f"{cls.__name__} must define a non-default 'name'")
    existing = CC_REGISTRY.get(key)
    if existing is not None and existing is not cls:
        raise ConfigError(f"cc key {key!r} already registered to {existing.__name__}")
    CC_REGISTRY[key] = cls
    return cls


def cc_names() -> Tuple[str, ...]:
    """Registered congestion-control keys, sorted."""
    return tuple(sorted(CC_REGISTRY))


def make_cc(key: str, config) -> CongestionControl:
    """Instantiate the CC registered under ``key`` from a TcpConfig."""
    try:
        cls = CC_REGISTRY[key]
    except KeyError:
        known = ", ".join(cc_names()) or "<none>"
        raise ConfigError(f"unknown cc {key!r}; known: {known}") from None
    return cls.from_config(config)
