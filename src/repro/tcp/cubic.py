"""CUBIC congestion control (RFC 8312), the intra-cluster Linux default.

cwnd follows the cubic W(t) = C·(t − K)³ + W_max in *segments*, where t is
the time since the last congestion event and K = ∛(W_max·(1 − β)/C) is
where the curve regains W_max. Below W_max growth is concave (fast
approach, flat plateau near the old operating point); beyond it growth is
convex (max probing). A parallel AIMD estimate ``w_est`` keeps CUBIC at
least as aggressive as Reno in the TCP-friendly region.

The policy needs a clock and RTT samples, so :meth:`bind_flow` keeps a
reference to the owning :class:`~repro.tcp.endpoint.TcpSender`; unbound
(unit-test) instances fall back to t = 0. Flows running CUBIC never
promote to the fluid tier (``fluid_model = None``) — the analytic round
laws there model only AIMD/DCTCP growth.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.tcp.cc import CongestionControl, register_cc

__all__ = ["CubicControl"]


@register_cc
class CubicControl(CongestionControl):
    """RFC 8312 cubic window growth with fast convergence."""

    name = "cubic"
    fluid_model = None

    def __init__(
        self,
        mss: int,
        init_cwnd_segments: int = 10,
        beta: float = 0.7,
        c: float = 0.4,
    ):
        super().__init__(mss, init_cwnd_segments)
        if not (0.0 < beta < 1.0):
            raise ConfigError(f"CUBIC beta must be in (0, 1), got {beta}")
        if c <= 0.0:
            raise ConfigError(f"CUBIC C must be positive, got {c}")
        self.beta = beta
        self.c = c
        self._sender = None
        self._w_max = 0.0  # segments; last cwnd before a reduction
        self._epoch_start: float | None = None  # time of last congestion event
        self._k = 0.0
        self._w_est = 0.0  # Reno-equivalent window (segments)

    def bind_flow(self, sender) -> None:
        self._sender = sender

    # -- clock / RTT (0.0 when unbound) ---------------------------------------

    def _now(self) -> float:
        s = self._sender
        return s.sim.now if s is not None else 0.0

    def _srtt(self) -> float:
        s = self._sender
        if s is None:
            return 0.0
        srtt = s.rtt.srtt
        return srtt if srtt is not None else 0.0

    # -- growth ---------------------------------------------------------------

    def on_ack_progress(self, acked_bytes: int) -> None:
        if self.cwnd < self.ssthresh:
            super().on_ack_progress(acked_bytes)
            return
        mss = self.mss
        seg_cwnd = self.cwnd / mss
        if self._epoch_start is None:
            # Start of a congestion-avoidance epoch.
            self._epoch_start = self._now()
            if self._w_max < seg_cwnd:
                self._w_max = seg_cwnd
                self._k = 0.0
            else:
                self._k = ((self._w_max - seg_cwnd) / self.c) ** (1.0 / 3.0)
            self._w_est = seg_cwnd
        # Cubic target one RTT ahead of now.
        t = self._now() - self._epoch_start + self._srtt()
        target = self._w_max + self.c * (t - self._k) ** 3
        # TCP-friendly region: standard AIMD estimate grown per ACK.
        b = self.beta
        self._w_est += (3.0 * (1.0 - b) / (1.0 + b)) * (acked_bytes / self.cwnd)
        if self._w_est > target:
            target = self._w_est
        if target > seg_cwnd:
            # Clamp the per-RTT step to 1.5x (RFC 8312 §4.1 spacing),
            # then spread the approach over one window of ACKs.
            if target > 1.5 * seg_cwnd:
                target = 1.5 * seg_cwnd
            self.cwnd += acked_bytes * (target - seg_cwnd) / seg_cwnd
        else:
            # Plateau: minimal probing (~1% of a segment per window).
            self.cwnd += acked_bytes * 0.01 / seg_cwnd

    # -- shrink ---------------------------------------------------------------

    def _register_loss(self) -> None:
        seg_cwnd = self.cwnd / self.mss
        if seg_cwnd < self._w_max:
            # Fast convergence: release bandwidth faster when the
            # bottleneck shrank since the last event.
            self._w_max = seg_cwnd * (1.0 + self.beta) / 2.0
        else:
            self._w_max = seg_cwnd
        self._epoch_start = None

    def on_loss_event(self, flight_bytes: int) -> float:
        self._register_loss()
        self.ssthresh = max(self.cwnd * self.beta, 2.0 * self.mss)
        self.cwnd = self.ssthresh
        return self.ssthresh

    def on_rto(self, flight_bytes: int) -> None:
        self._register_loss()
        self.ssthresh = max(self.cwnd * self.beta, 2.0 * self.mss)
        self.cwnd = float(self.mss)
