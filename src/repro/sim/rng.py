"""Named, seeded random-number streams.

Reproducibility rule for the whole repository: *every* source of randomness
is a named stream derived from a single experiment seed. Two runs with the
same configuration and seed produce byte-identical traces; changing how one
subsystem consumes randomness (e.g. adding a jitter draw in the scheduler)
does not perturb any other subsystem, because each stream is independent.

Streams are ``numpy.random.Generator`` instances seeded with
``SeedSequence(root_seed).spawn()`` children keyed by stream name, so the
mapping name→stream is stable across runs and insertion orders.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


def _stable_hash(name: str) -> int:
    """Deterministic 63-bit hash of a stream name (Python's ``hash`` is
    salted per process, so it cannot be used for reproducible seeding)."""
    h = 1469598103934665603  # FNV-1a offset basis
    for ch in name.encode("utf-8"):
        h ^= ch
        h = (h * 1099511628211) & 0x7FFFFFFFFFFFFFFF
    return h


class RngRegistry:
    """Factory and cache of named RNG streams for one experiment run."""

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed for the run."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the stream for ``name``, creating it deterministically."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence([self._seed, _stable_hash(name)])
            gen = np.random.Generator(np.random.PCG64(ss))
            self._streams[name] = gen
        return gen

    def uniform(self, name: str) -> float:
        """One U(0,1) draw from stream ``name`` (hot-path convenience)."""
        return float(self.stream(name).random())

    def uniform_fn(self, name: str):
        """Zero-argument U(0,1) sampler bound to stream ``name``.

        Draws the same value sequence as repeated :meth:`uniform` calls,
        but resolves the stream once instead of per draw — hand this to
        per-arrival consumers like RED.
        """
        rand = self.stream(name).random
        return lambda: float(rand())

    def names(self):
        """Names of streams created so far (diagnostic)."""
        return sorted(self._streams)
