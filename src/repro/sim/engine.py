"""The discrete-event engine.

A :class:`Simulator` owns the virtual clock and an event heap. Events are
``(time, sequence, EventHandle)`` tuples; the sequence number breaks ties so
that events scheduled at the same instant fire in FIFO order, which makes
runs fully deterministic (a property every test in this repo leans on).

Design notes
------------
* ``heapq`` over a list — O(log n) push/pop, no allocation churn beyond the
  tuples themselves. A packet-level simulation of a Hadoop shuffle pushes a
  few events per packet, so this is *the* hot path of the repository; the
  implementation deliberately avoids any abstraction on top of the heap.
* Cancellation is lazy: ``EventHandle.cancel()`` flips a flag and the main
  loop discards cancelled entries when they surface. Retransmission timers
  get rescheduled constantly, and lazy deletion is much cheaper than a
  sift-based removal.
* Callbacks run with no arguments. Closures capture whatever they need;
  this keeps the heap entries small and the dispatch loop branch-free.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Callable, List, Optional, Tuple

from repro.errors import SchedulingError, SimulationError

__all__ = ["EventHandle", "Simulator"]


class EventHandle:
    """A cancellable reference to one scheduled event.

    Attributes
    ----------
    time:
        Absolute simulation time at which the callback fires.
    callback:
        Zero-argument callable invoked when the event fires.
    """

    __slots__ = ("time", "callback", "_cancelled", "_fired")

    def __init__(self, time: float, callback: Callable[[], None]):
        self.time = time
        self.callback = callback
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent; safe after firing."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the callback has been invoked."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting in the heap."""
        return not (self._cancelled or self._fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"<EventHandle t={self.time:.9f} {state}>"


class Simulator:
    """Event heap + virtual clock.

    Parameters
    ----------
    start_time:
        Initial clock value (seconds). Defaults to 0.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    __slots__ = ("_now", "_heap", "_seq", "_running", "_stopped",
                 "_events_processed", "_heap_high_water", "profiler")

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._heap_high_water = 0
        #: Optional :class:`~repro.telemetry.profiler.LoopProfiler`. The
        #: dispatch loop takes one branch per event when this is None.
        self.profiler = None

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks dispatched so far (diagnostic)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Heap size, including lazily-cancelled entries (diagnostic)."""
        return len(self._heap)

    @property
    def heap_high_water(self) -> int:
        """Deepest the event heap has ever been (diagnostic)."""
        return self._heap_high_water

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay fires after all events
        already scheduled for the current instant (FIFO tie-break).
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        handle = EventHandle(time, callback)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, handle))
        if len(self._heap) > self._heap_high_water:
            self._heap_high_water = len(self._heap)
        return handle

    # -- run loop -----------------------------------------------------------

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    def _dispatch(self, handle: EventHandle) -> None:
        """Fire one event: the single dispatch body shared by
        :meth:`step` and :meth:`run`, so stepped tests see the same
        profiler accounting and bookkeeping as full runs."""
        handle._fired = True
        self._events_processed += 1
        prof = self.profiler
        if prof is None:
            handle.callback()
        else:
            t0 = perf_counter()
            handle.callback()
            prof.record(handle.callback, perf_counter() - t0)

    def step(self) -> bool:
        """Fire the next non-cancelled event.

        Returns False if the heap is empty or :meth:`stop` was requested
        (mirroring ``run()``'s exit conditions; the next ``run()`` or an
        explicit ``resume_stepping()`` clears the stop request).
        """
        if self._stopped:
            return False
        while self._heap:
            time, _seq, handle = heapq.heappop(self._heap)
            if handle._cancelled:
                continue
            if time < self._now:  # pragma: no cover - defensive invariant
                raise SimulationError("event heap yielded an event in the past")
            self._now = time
            self._dispatch(handle)
            return True
        return False

    def resume_stepping(self) -> None:
        """Clear a pending :meth:`stop` request so :meth:`step` works again."""
        self._stopped = False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or ``stop()``.

        Parameters
        ----------
        until:
            Optional horizon (absolute time). Events strictly after it stay
            in the heap; the clock is advanced to ``until`` on exit so a
            subsequent ``run`` resumes cleanly.
        max_events:
            Optional safety valve for tests: abort after N callbacks.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        dispatch = self._dispatch  # bound once; keeps the loop tight
        try:
            while self._heap and not self._stopped:
                time, _seq, handle = self._heap[0]
                if handle._cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and time > until:
                    break
                heapq.heappop(self._heap)
                self._now = time
                dispatch(handle)
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"max_events={max_events} exceeded at t={self._now}"
                    )
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False
