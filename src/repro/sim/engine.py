"""The discrete-event engine.

A :class:`Simulator` owns the virtual clock and an event heap. Heap
entries are the :class:`EventHandle` objects themselves: a handle *is*
its ``(time, seq)`` ordering key (a tuple subclass), so pushing an event
allocates exactly one object (no wrapper tuple) and every heap
comparison is a single C-level tuple comparison. The sequence
number breaks ties so that events scheduled at the same instant fire in
FIFO order, which makes runs fully deterministic (a property every test
in this repo leans on).

Design notes
------------
* ``heapq`` over a list of handles — O(log n) push/pop and one allocation
  per event. A packet-level simulation of a Hadoop shuffle pushes a few
  events per packet, so this is *the* hot path of the repository; the
  implementation deliberately avoids any abstraction on top of the heap.
* Cancellation is lazy: ``EventHandle.cancel()`` flips a flag and the main
  loop discards cancelled entries when they surface. Retransmission timers
  get rescheduled constantly, and lazy deletion is much cheaper than a
  sift-based removal. The simulator counts still-pending cancelled
  entries and **compacts** the heap in place when they exceed half of it
  (and the heap is non-trivial), so timer churn cannot grow the heap
  without bound. Compaction only removes dead entries — the (time, seq)
  total order of live events is untouched, so event order is bit-identical
  with or without it. ``pending_events`` may *shrink* across a compaction
  (it counts heap entries, and purged cancelled entries leave the heap);
  ``heap_high_water`` is a running maximum and is never lowered.
* Callbacks run with no arguments. Closures or bound methods capture
  whatever they need; this keeps the heap entries small and the dispatch
  loop branch-free.
* ``pkt_ids`` is the per-run packet-id counter: packet constructors draw
  from it so that consecutive runs in one process produce identical
  packet ids (a process-global counter would make traces depend on what
  ran before).
"""

from __future__ import annotations

import heapq
from itertools import count
from time import perf_counter
from typing import Callable, List, Optional

from repro.errors import SchedulingError, SimulationError

__all__ = ["EventHandle", "Simulator"]

#: Compaction triggers only above this heap size — tiny heaps are cheap to
#: scan lazily and compacting them would just add noise.
_COMPACT_MIN_HEAP = 64


class EventHandle(tuple):
    """A cancellable reference to one scheduled event.

    Handles are the heap entries themselves: a handle *is* its ``(time,
    seq)`` ordering key — a 2-tuple — so every comparison ``heapq``
    performs is a single C-level tuple comparison with no Python frame.
    That comparison is the most-executed operation in the repository
    (~log n per pop), which is why the handle subclasses :class:`tuple`
    instead of defining ``__lt__``: a Python-level ``__lt__`` costs a
    call per comparison and dominated the dispatch loop when measured.

    ``seq`` values are unique per simulator, so the order is total and
    the comparison never falls through to a third element.

    The mutable state (``callback``, cancel/fire flags) lives in the
    instance ``__dict__`` — tuple subclasses cannot carry nonempty
    ``__slots__``.

    Attributes
    ----------
    time:
        Absolute simulation time at which the callback fires (``self[0]``).
    seq:
        FIFO tie-breaker among events at the same instant (``self[1]``).
    callback:
        Zero-argument callable invoked when the event fires.
    """

    def __new__(cls, time: float, seq: int, callback: Callable[[], None],
                sim: "Optional[Simulator]" = None):
        self = tuple.__new__(cls, (time, seq))
        self.callback = callback
        self._sim = sim
        self._cancelled = False
        self._fired = False
        return self

    @property
    def time(self) -> float:
        """Absolute simulation time at which the callback fires."""
        return self[0]

    @property
    def seq(self) -> int:
        """FIFO tie-breaker among events at the same instant."""
        return self[1]

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent; safe after firing.

        Retransmission timers cancel on nearly every ACK, so the
        simulator-side bookkeeping (:meth:`Simulator._note_cancelled`) is
        inlined here — keep the two in sync.
        """
        if self._cancelled:
            return
        self._cancelled = True
        if not self._fired:
            sim = self._sim
            if sim is not None:
                n = sim._cancelled_pending + 1
                sim._cancelled_pending = n
                size = len(sim._heap)
                if size > _COMPACT_MIN_HEAP and 2 * n > size:
                    sim._compact()

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the callback has been invoked."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting in the heap."""
        return not (self._cancelled or self._fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"<EventHandle t={self.time:.9f} {state}>"


class Simulator:
    """Event heap + virtual clock.

    Parameters
    ----------
    start_time:
        Initial clock value (seconds). Defaults to 0.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    __slots__ = ("now", "_heap", "_seq", "_running", "_stopped",
                 "_events_processed", "_heap_high_water",
                 "_cancelled_pending", "pkt_ids", "profiler",
                 "workload_ports", "fluid")

    #: Optional class-level birth hook: ``Simulator.on_create(sim)`` is
    #: invoked at the end of ``__init__`` for every new simulator. The
    #: sweep-farm worker uses it to arm a periodic preemption checkpoint
    #: on kernels it never constructs itself (``run_cell`` and the
    #: per-family cell runners each build their own). Constructor-only —
    #: the dispatch loop is untouched. Installers must save/restore the
    #: previous value.
    on_create: "Optional[Callable[[Simulator], None]]" = None

    def __init__(self, start_time: float = 0.0):
        #: Current simulation time in seconds. A plain attribute, not a
        #: property: it is read on every hop of every packet, and the
        #: descriptor call was measurable. Treat it as read-only — only
        #: the dispatch loop advances it.
        self.now = float(start_time)
        self._heap: List[EventHandle] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._heap_high_water = 0
        #: Lazily-cancelled entries still sitting in the heap; drives the
        #: compaction heuristic.
        self._cancelled_pending = 0
        #: Per-run packet-id counter (see :class:`~repro.net.packet.Packet`):
        #: every packet of a run draws ``next(sim.pkt_ids)`` so ids — and
        #: therefore traces — are identical across back-to-back runs.
        self.pkt_ids = count()
        #: Optional :class:`~repro.telemetry.profiler.LoopProfiler`. The
        #: dispatch loop takes one branch per event when this is None.
        self.profiler = None
        #: Per-run workload port allocator, lazily populated by
        #: :func:`repro.workloads.ports.port_allocator`. Lives on the
        #: kernel because port numbers — like packet ids — are per-run
        #: state that must reset with the run for traces to be identical
        #: across back-to-back runs.
        self.workload_ports = None
        #: Optional :class:`~repro.sim.fluid.FluidManager` for hybrid
        #: fidelity runs. None in packet mode — every fluid hook in the
        #: TCP endpoint reduces to this one attribute test, which keeps
        #: packet-mode runs bit-identical to pre-fluid builds.
        self.fluid = None
        hook = Simulator.on_create
        if hook is not None:
            hook(self)

    # -- clock --------------------------------------------------------------

    @property
    def events_processed(self) -> int:
        """Number of callbacks dispatched so far (diagnostic)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Heap size, including lazily-cancelled entries (diagnostic).

        A heap compaction purges cancelled entries, so this value may
        *decrease* without any event firing; treat it as "entries the heap
        currently holds", not "events that will fire".
        """
        return len(self._heap)

    @property
    def heap_high_water(self) -> int:
        """Deepest the event heap has ever been (diagnostic).

        A running maximum: compaction never lowers it.
        """
        return self._heap_high_water

    @property
    def cancelled_pending(self) -> int:
        """Lazily-cancelled entries currently in the heap (diagnostic)."""
        return self._cancelled_pending

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay fires after all events
        already scheduled for the current instant (FIFO tie-break).
        """
        if delay == 0.0:
            return self.schedule_now(callback)
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay})")
        self._seq = seq = self._seq + 1
        # Inlined EventHandle construction (keep in sync with __new__):
        # this is called a few times per packet, and skipping the
        # constructor frame is worth the duplication.
        handle = tuple.__new__(EventHandle, (self.now + delay, seq))
        handle.callback = callback
        handle._sim = self
        handle._cancelled = False
        handle._fired = False
        heap = self._heap
        heapq.heappush(heap, handle)
        n = len(heap)
        if n > self._heap_high_water:
            self._heap_high_water = n
        return handle

    def schedule_now(self, callback: Callable[[], None]) -> EventHandle:
        """Zero-delay fast path: fire ``callback`` at the current instant,
        after everything already scheduled for it (FIFO tie-break).

        Skips the delay validation and clock arithmetic of
        :meth:`schedule`; self-scheduling callbacks that re-arm at the
        current time hit this path.
        """
        self._seq = seq = self._seq + 1
        handle = EventHandle(self.now, seq, callback, self)
        heap = self._heap
        heapq.heappush(heap, handle)
        n = len(heap)
        if n > self._heap_high_water:
            self._heap_high_water = n
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        self._seq = seq = self._seq + 1
        handle = EventHandle(time, seq, callback, self)
        heap = self._heap
        heapq.heappush(heap, handle)
        n = len(heap)
        if n > self._heap_high_water:
            self._heap_high_water = n
        return handle

    # -- lazy-cancel bookkeeping ---------------------------------------------

    def _note_cancelled(self) -> None:
        """One pending handle was cancelled; compact if the dead fraction
        crossed ~50% of a non-trivial heap."""
        n = self._cancelled_pending + 1
        self._cancelled_pending = n
        size = len(self._heap)
        if size > _COMPACT_MIN_HEAP and 2 * n > size:
            self._compact()

    def _compact(self) -> None:
        """Purge lazily-cancelled entries from the heap, in place.

        In-place (slice assignment) so that a ``run()`` loop holding a
        local reference to the heap list keeps seeing the live heap.
        Removing dead entries and re-heapifying cannot reorder live
        events: the (time, seq) comparison is a total order.
        """
        heap = self._heap
        live = [h for h in heap if not h._cancelled]
        heap[:] = live
        heapq.heapify(heap)
        self._cancelled_pending = 0

    # -- run loop -----------------------------------------------------------

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    def _dispatch(self, handle: EventHandle) -> None:
        """Fire one event: the single dispatch body shared by
        :meth:`step` and :meth:`run`, so stepped tests see the same
        profiler accounting and bookkeeping as full runs. (``run()``
        inlines this body — keep them in sync.)"""
        handle._fired = True
        self._events_processed += 1
        prof = self.profiler
        if prof is None:
            handle.callback()
        else:
            t0 = perf_counter()
            handle.callback()
            prof.record(handle.callback, perf_counter() - t0)

    def step(self) -> bool:
        """Fire the next non-cancelled event.

        Returns False if the heap is empty or :meth:`stop` was requested
        (mirroring ``run()``'s exit conditions; the next ``run()`` or an
        explicit ``resume_stepping()`` clears the stop request).
        """
        if self._stopped:
            return False
        heap = self._heap
        while heap:
            handle = heapq.heappop(heap)
            if handle._cancelled:
                self._cancelled_pending -= 1
                continue
            time = handle[0]
            if time < self.now:  # pragma: no cover - defensive invariant
                raise SimulationError("event heap yielded an event in the past")
            self.now = time
            self._dispatch(handle)
            return True
        return False

    def resume_stepping(self) -> None:
        """Clear a pending :meth:`stop` request so :meth:`step` works again."""
        self._stopped = False

    # -- self-diagnosis -------------------------------------------------------

    def check_invariants(self) -> List[str]:
        """Audit the kernel's internal bookkeeping; return violation strings.

        Exhaustive (O(heap)) ground-truth checks of everything the hot
        path maintains incrementally — the :mod:`repro.validate` engine
        checker and the edge-case tests call this between events, never
        from inside a callback:

        * the heap property itself holds over the entry list;
        * no pending entry is scheduled before ``now`` (events in the
          past can never fire);
        * no fired entry is still sitting in the heap;
        * ``cancelled_pending`` equals the true count of lazily-cancelled
          entries (compaction and the pop paths both adjust it);
        * ``heap_high_water`` is a running maximum, so it can never be
          below the current heap size.
        """
        violations: List[str] = []
        heap = self._heap
        n = len(heap)
        for i in range(1, n):
            if heap[i] < heap[(i - 1) >> 1]:
                violations.append(
                    f"heap property violated at index {i}: "
                    f"{heap[i]!r} < parent {heap[(i - 1) >> 1]!r}"
                )
                break
        cancelled = 0
        for h in heap:
            if h._cancelled:
                cancelled += 1
            elif h[0] < self.now:
                violations.append(
                    f"pending event at t={h[0]} is in the past (now={self.now})"
                )
            if h._fired:
                violations.append(f"fired event still in heap: {h!r}")
        if cancelled != self._cancelled_pending:
            violations.append(
                f"cancelled_pending={self._cancelled_pending} but the heap "
                f"holds {cancelled} cancelled entries"
            )
        if self._heap_high_water < n:
            violations.append(
                f"heap_high_water={self._heap_high_water} below current "
                f"heap size {n}"
            )
        return violations

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or ``stop()``.

        Parameters
        ----------
        until:
            Optional horizon (absolute time). Events strictly after it stay
            in the heap; the clock is advanced to ``until`` on exit so a
            subsequent ``run`` resumes cleanly.
        max_events:
            Optional safety valve for tests: abort after N callbacks.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        # Locals for the dispatch loop. The heap list is bound once —
        # compaction mutates it in place, so the binding stays valid. The
        # profiler is sampled once per run: attach it before calling run().
        heap = self._heap
        heappop = heapq.heappop
        timer = perf_counter
        prof = self.profiler
        try:
            while heap and not self._stopped:
                handle = heap[0]
                if handle._cancelled:
                    heappop(heap)
                    self._cancelled_pending -= 1
                    continue
                time = handle[0]
                if until is not None and time > until:
                    break
                heappop(heap)
                self.now = time
                # Inlined _dispatch body (see _dispatch): one callback, no
                # extra frame on the hottest loop in the repository.
                handle._fired = True
                self._events_processed += 1
                if prof is None:
                    handle.callback()
                else:
                    t0 = timer()
                    handle.callback()
                    prof.record(handle.callback, timer() - t0)
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"max_events={max_events} exceeded at t={self.now}"
                    )
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False
