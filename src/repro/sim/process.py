"""Small process-like helpers on top of the raw event heap.

The kernel itself only knows about one-shot callbacks. Two recurring
patterns in the network and MapReduce layers deserve names:

* :class:`PeriodicTimer` — a self-rescheduling timer (queue monitors,
  DCTCP observation windows, scheduler heartbeats).
* :func:`delay_chain` — run a sequence of (delay, callback) stages one
  after another (task lifecycle: read → compute → write).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.sim.engine import EventHandle, Simulator

__all__ = ["PeriodicTimer", "delay_chain"]


class PeriodicTimer:
    """Fire ``callback`` every ``interval`` seconds until stopped.

    The first firing happens ``interval`` seconds after :meth:`start`
    (or after ``first_delay`` if given). The callback receives no
    arguments; capture state via closure.
    """

    __slots__ = ("_sim", "_interval", "_callback", "_handle", "_running", "fire_count")

    def __init__(self, sim: Simulator, interval: float, callback: Callable[[], None]):
        if interval <= 0:
            raise SchedulingError(f"timer interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._handle: Optional[EventHandle] = None
        self._running = False
        self.fire_count = 0

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._running

    @property
    def interval(self) -> float:
        """Seconds between firings."""
        return self._interval

    def start(self, first_delay: Optional[float] = None) -> None:
        """Arm the timer. No-op if already running."""
        if self._running:
            return
        self._running = True
        delay = self._interval if first_delay is None else first_delay
        self._handle = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer. Idempotent."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if not self._running:
            return
        self.fire_count += 1
        self._callback()
        if self._running:  # the callback may have called stop()
            self._handle = self._sim.schedule(self._interval, self._fire)


def delay_chain(
    sim: Simulator,
    stages: Sequence[Tuple[float, Callable[[], None]]],
    on_done: Optional[Callable[[], None]] = None,
) -> None:
    """Run ``stages`` sequentially: wait ``delay``, call ``fn``, next stage.

    Used by the MapReduce engine to model a task as read/compute/write
    stages without a coroutine framework. ``on_done`` fires immediately
    after the last stage's callback.
    """
    stages = list(stages)

    def run_from(i: int) -> None:
        if i >= len(stages):
            if on_done is not None:
                on_done()
            return
        delay, fn = stages[i]

        def fire() -> None:
            fn()
            run_from(i + 1)

        sim.schedule(delay, fire)

    run_from(0)
