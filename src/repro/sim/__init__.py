"""Discrete-event simulation kernel.

The kernel is the NS-2 substitute at the very bottom of the stack: a binary
heap of timestamped events, a monotonically advancing clock, and cancellable
timer handles. Everything above it (links, queues, TCP, MapReduce) is built
from ``Simulator.schedule`` calls.
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.process import PeriodicTimer, delay_chain
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Simulator",
    "EventHandle",
    "PeriodicTimer",
    "delay_chain",
    "RngRegistry",
    "Tracer",
    "TraceRecord",
]
