"""Structured event tracing.

A :class:`Tracer` is a cheap pub/sub bus keyed by event kind (``"enqueue"``,
``"drop"``, ``"mark"``, ``"deliver"``…). Producers emit
:class:`TraceRecord` tuples; consumers (stats collectors, tests, debugging
dumps) subscribe to the kinds they care about. When nobody subscribes to a
kind, emitting costs one dict lookup — cheap enough to leave the emit calls
in the hot path unconditionally.

For per-packet emit sites (ports, qdiscs) even that dict lookup adds up,
so the tracer also maintains :attr:`Tracer.active`: a plain bool that is
True only while *some* subscriber exists (or ``record_all`` is set). Hot
paths guard with ``if tr is not None and tr.active and tr.wants(kind)`` —
an idle tracer then costs exactly one attribute read per emit site.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, NamedTuple, Optional

__all__ = ["TraceRecord", "Tracer"]


class TraceRecord(NamedTuple):
    """One traced event.

    Attributes
    ----------
    time: simulation time of the event.
    kind: event category string.
    where: name of the component emitting (e.g. ``"switch0.port3"``).
    data: event-specific payload (packet, sizes, verdicts…).
    """

    time: float
    kind: str
    where: str
    data: Any


class Tracer:
    """Dispatch trace records to per-kind subscriber lists."""

    __slots__ = ("_subs", "_record_all", "records", "active")

    def __init__(self, record_all: bool = False):
        self._subs: Dict[str, List[Callable[[TraceRecord], None]]] = {}
        self._record_all = record_all
        #: retained records when ``record_all`` is set (tests/debugging only;
        #: unbounded, do not enable for long runs).
        self.records: List[TraceRecord] = []
        #: Hot-path fast gate: True while any subscriber exists (or
        #: ``record_all`` retains everything). Maintained by
        #: subscribe/unsubscribe — do not write it from outside.
        self.active = record_all

    def subscribe(self, kind: str, fn: Callable[[TraceRecord], None]) -> None:
        """Call ``fn(record)`` for every record of ``kind``."""
        self._subs.setdefault(kind, []).append(fn)
        self.active = True

    def unsubscribe(self, kind: str, fn: Callable[[TraceRecord], None]) -> None:
        """Remove a subscription.

        Raises :class:`ValueError` naming the kind/fn when either the kind
        has no subscribers or ``fn`` is not among them (a bare ``KeyError``
        from the subscription dict was too easy to misread as a tracer bug).
        """
        subs = self._subs.get(kind)
        if subs is None:
            raise ValueError(f"no subscribers for kind {kind!r}")
        try:
            subs.remove(fn)
        except ValueError:
            raise ValueError(
                f"{fn!r} is not subscribed to kind {kind!r}"
            ) from None
        if not subs:
            del self._subs[kind]  # keep wants()/emit() fast-path accurate
        self.active = self._record_all or bool(self._subs)

    def wants(self, kind: str) -> bool:
        """True if emitting ``kind`` would reach any consumer."""
        return self._record_all or kind in self._subs

    def emit(self, time: float, kind: str, where: str, data: Any = None) -> None:
        """Publish one record. Cheap no-op when nobody listens."""
        subs = self._subs.get(kind)
        if subs is None and not self._record_all:
            return
        rec = TraceRecord(time, kind, where, data)
        if self._record_all:
            self.records.append(rec)
        if subs:
            for fn in subs:
                fn(rec)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """Retained records of one kind.

        Requires ``record_all=True``: without it nothing is retained, and
        silently returning ``[]`` let tests assert vacuously against an
        empty record list, so that case raises instead.
        """
        if not self._record_all:
            raise ValueError(
                "Tracer.of_kind() requires record_all=True; this tracer "
                "retains no records, so the result would always be empty"
            )
        return [r for r in self.records if r.kind == kind]
