"""Hybrid fluid/packet fidelity tier — analytic advancement of bulk flows.

The paper's phenomena (ECN marking, incast loss, protection-mode
asymmetries) happen *near congestion events*; between them a long-lived
TCP flow on a quiescent path is analytically predictable. This module
exploits that: in ``fidelity="hybrid"`` mode, an established bulk flow
whose path is exclusively its own and whose bottleneck queue sits well
below the marking/drop threshold is *promoted* to fluid fidelity — its
cwnd growth, delivered bytes and queue contribution are computed in
closed form one RTT-round at a time, with **no packets simulated at
all** — and *demoted* back to packet fidelity the moment the model
predicts the standing queue would cross a guard band below the
threshold, a new flow shows up anywhere in the simulation, a congestion
event (RTO / fast retransmit / ECE cut) fires, or any real packet
arrives on one of its queues.

Correctness contract (enforced by ``repro fluid --smoke`` and the armed
invariant checkers):

* **ledger consistency** — the fluid path creates and absorbs no
  packets, so the packet-conservation checker's ledger is untouched;
  queue counters are credited with *equal* arrivals and departures (and
  bytes), which keeps every counter equation of the queue-accounting
  checker valid, and the occupancy integrals receive the closed-form
  standing-queue contribution;
* **sequence-space consistency** — the sender is advanced with
  ``snd_una == snd_nxt`` (zero flight) and emits a ``tcp.cwnd`` trace
  sample per round, so the TCP checker's monotonicity and flight
  equations hold;
* **determinism** — promotion, per-round recurrence and demotion are
  pure functions of simulator state, so repeated hybrid runs are
  bit-identical;
* **packet-mode isolation** — with ``fidelity="packet"`` no manager is
  constructed and every hook reduces to a single attribute test, so
  packet-mode results are bit-identical to pre-fluid builds.

Promotion protocol (drain-then-promote): an eligible flow first enters a
*hold* — new transmissions stop while in-flight data drains normally
(the pipe keeps delivering, so the hold costs well under one RTT of
goodput). Once every byte is cumulatively acknowledged the flow carries
**zero** packets anywhere in the network, the receiver has no
out-of-order state and no delayed-ACK pending, and the fluid recurrence
starts from a clean slate. Demotion is the reverse: a *paced refill*
re-injects one segment per bottleneck serialization time until a full
window is out (never a window-sized burst, which would instantly
overflow the very queue whose quiescence we were modeling), then normal
ACK clocking resumes.

Per-round recurrence (all quantities derived from the sender's live
state; mirrors :mod:`repro.tcp.cc` exactly):

* ``w = min(cwnd, rwnd, remaining)``; ``segs = ceil(w / mss)``;
  ``acks = ceil(segs / delack_segments)``
* standing queue ``q = max(0, segs - BDP_pkts)`` at the bottleneck;
  round duration ``rtt = base_rtt + q * seg_wire * 8 / C``
* slow start: ``cwnd += w`` capped at ``ssthresh``; congestion
  avoidance: ``cwnd += mss^2 / cwnd`` per cumulative ACK
* DCTCP: ``alpha *= (1 - g)`` per round (a round is one window), with
  the per-window accumulators reset so demotion restarts them cleanly.

The model demotes *before* a round whose predicted transient occupancy
(standing queue, plus the full window's worth of burst in slow start)
would reach ``guard_band × threshold`` of the bottleneck queue — i.e.
the flow is back at packet fidelity strictly before the AQM would have
acted on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.net.packet import IP_TCP_HEADER_BYTES, PURE_ACK_BYTES, Packet

__all__ = ["FluidParams", "FluidManager"]


@dataclass(frozen=True)
class FluidParams:
    """Policy knobs for the hybrid fidelity tier.

    Attributes
    ----------
    guard_band:
        Fraction of the bottleneck queue's marking/drop threshold the
        modeled occupancy may reach before the flow is demoted back to
        packet fidelity. Lower = more conservative (more packet time).
    min_flow_bytes:
        Flows with fewer remaining bytes than this never promote —
        short/RPC flows stay packet-level, as the paper's phenomena
        live there.
    cooldown_s:
        Quarantine after any congestion signal (ECE cut, fast
        retransmit, RTO) or demotion before the flow may promote again.
    eval_backoff_s:
        Minimum spacing between eligibility evaluations per flow (the
        full check walks paths and scans for competing flows).
    max_hops:
        Path-walk safety bound.
    """

    guard_band: float = 0.5
    min_flow_bytes: int = 128 * 1460
    cooldown_s: float = 0.010
    eval_backoff_s: float = 0.002
    max_hops: int = 16

    def validate(self) -> "FluidParams":
        """Raise :class:`ConfigError` on nonsensical values; return self."""
        if not (0.0 < self.guard_band <= 1.0):
            raise ConfigError(f"guard_band must be in (0, 1] ({self})")
        if self.min_flow_bytes <= 0:
            raise ConfigError(f"min_flow_bytes must be positive ({self})")
        if self.cooldown_s < 0 or self.eval_backoff_s < 0:
            raise ConfigError(f"times must be >= 0 ({self})")
        return self


class _Path:
    """Resolved static path of one flow (forward data + reverse ACKs)."""

    __slots__ = (
        "fwd_ports", "rev_ports", "queues", "port_ids",
        "bottleneck_rate", "bottleneck_queue", "seg_wire",
        "base_rtt", "data_oneway_s", "ack_oneway_s",
        "bdp_pkts", "guard_pkts", "refill_tick_s",
        "listener", "rstate",
    )


class _FlowState:
    """Per-sender fluid bookkeeping (mode machine)."""

    __slots__ = ("mode", "path", "next_eval", "cooldown_until",
                 "last_cuts", "round_handle", "refill_handle",
                 "refill_sent", "round_plan")

    def __init__(self) -> None:
        self.mode = "idle"  # idle -> hold -> fluid -> refill -> idle
        self.path: Optional[_Path] = None
        self.next_eval = 0.0
        self.cooldown_until = 0.0
        self.last_cuts = 0
        self.round_handle = None
        self.refill_handle = None
        self.refill_sent = 0
        self.round_plan = None


class FluidManager:
    """Owns promotion/demotion and the per-round fluid recurrence.

    Construct one per hybrid run *before any traffic* — senders created
    afterwards self-register through ``sim.fluid``. Packet-mode runs
    never construct one, so every endpoint hook is a no-op.

    Parameters
    ----------
    sim:
        The simulator; ``sim.fluid`` is set to this manager.
    network:
        The built :class:`~repro.net.network.Network` (for host lookup).
    params:
        Optional :class:`FluidParams` override.
    latency_credit:
        Optional ``credit(latency_s, n, data=...)`` callable (see
        :meth:`~repro.stats.collect.LatencyCollector.credit`) that
        receives the closed-form per-packet latencies of fluid rounds so
        the run's latency metrics stay comparable with packet mode.
    """

    def __init__(self, sim, network, params: Optional[FluidParams] = None,
                 latency_credit=None):
        self.sim = sim
        self.network = network
        self.params = (params if params is not None else FluidParams()).validate()
        self._latency_credit = latency_credit
        self._hosts = {h.node_id: h for h in network.hosts}
        self._states: Dict[object, _FlowState] = {}
        self._pressure_owner: Dict[int, object] = {}
        # Observability counters (land under manifest["fluid"]).
        self._adopted = 0
        self._promotions = 0
        self._demotions: Dict[str, int] = {}
        self._rounds = 0
        self._fluid_bytes = 0
        self._fluid_packets = 0
        self._fluid_completions = 0
        sim.fluid = self

    # -- registration --------------------------------------------------------

    def adopt(self, sender) -> None:
        """Register a new sender; any new flow demotes every fluid flow.

        Called from ``TcpSender.__init__`` *before* the SYN can be
        emitted, so the fluid flows are back at packet fidelity before
        the newcomer's first packet touches any queue.
        """
        for s, st in list(self._states.items()):
            if st.mode == "fluid":
                self._demote(s, st, "new_flow")
            elif st.mode == "hold":
                self._release(s, st)
        self._states[sender] = _FlowState()
        self._adopted += 1

    def on_flow_done(self, sender) -> None:
        """Sender completed or failed; drop all fluid state for it."""
        st = self._states.pop(sender, None)
        if st is None:
            return
        if st.round_handle is not None:
            st.round_handle.cancel()
            st.round_handle = None
        if st.refill_handle is not None:
            st.refill_handle.cancel()
            st.refill_handle = None
        self._clear_pressure(st)
        sender._fluid_wait = False

    # -- endpoint hooks ------------------------------------------------------

    def on_ack(self, sender) -> None:
        """Per-cumulative-ACK hook: drives the hold/promote machine."""
        st = self._states.get(sender)
        if st is None:
            return
        cuts = sender.stats.cwnd_cuts
        now = self.sim.now
        mode = st.mode
        if mode == "hold":
            if (cuts != st.last_cuts or sender.in_recovery
                    or sender.dup_acks):
                st.last_cuts = cuts
                st.cooldown_until = now + self.params.cooldown_s
                self._release(sender, st)
            elif sender.snd_una >= sender.snd_nxt:
                self._promote(sender, st)
            return
        if mode == "refill":
            if cuts != st.last_cuts or sender.in_recovery or sender.dup_acks:
                st.last_cuts = cuts
                st.cooldown_until = now + self.params.cooldown_s
                if st.refill_handle is not None:
                    st.refill_handle.cancel()
                    st.refill_handle = None
                self._release(sender, st)
            return
        if mode != "idle":
            return
        if cuts != st.last_cuts:
            # A congestion episode happened since we last looked.
            st.last_cuts = cuts
            st.cooldown_until = now + self.params.cooldown_s
            return
        if now < st.cooldown_until or now < st.next_eval:
            return
        if self._eligible(sender, st):
            st.mode = "hold"
            sender._fluid_wait = True
        else:
            st.next_eval = now + self.params.eval_backoff_s

    def on_congestion(self, sender) -> None:
        """RTO fired: abandon any hold/refill so recovery runs normally."""
        st = self._states.get(sender)
        if st is None:
            return
        st.last_cuts = sender.stats.cwnd_cuts
        st.cooldown_until = self.sim.now + self.params.cooldown_s
        mode = st.mode
        if mode == "refill" and st.refill_handle is not None:
            st.refill_handle.cancel()
            st.refill_handle = None
        if mode == "fluid":
            # Unreachable in normal operation (a fluid flow has no
            # packets, hence no timers), but stay safe.
            if st.round_handle is not None:
                st.round_handle.cancel()
                st.round_handle = None
            self._clear_pressure(st)
        if mode != "idle":
            self._release(sender, st)

    # -- eligibility ---------------------------------------------------------

    def _resolve_path(self, sender) -> Optional[_Path]:
        """Walk routing for both directions; None if not modelable."""
        from repro.tcp.endpoint import TcpListener

        dst_host = self._hosts.get(sender.dst)
        if dst_host is None:
            return None
        src_id = sender.host.node_id
        fwd = self._walk(sender.host, dst_host, Packet(
            src=src_id, sport=sender.sport,
            dst=sender.dst, dport=sender.dport))
        if fwd is None:
            return None
        rev = self._walk(dst_host, sender.host, Packet(
            src=sender.dst, sport=sender.dport,
            dst=src_id, dport=sender.sport))
        if rev is None:
            return None
        receiver = dst_host._receivers.get(sender.dport)
        listener = getattr(receiver, "__self__", None)
        if not isinstance(listener, TcpListener):
            return None
        rstate = listener.flows.get((src_id, sender.sport))
        if rstate is None:
            return None

        p = _Path()
        p.fwd_ports = tuple(fwd)
        p.rev_ports = tuple(rev)
        p.queues = tuple(port.qdisc for port in fwd + rev)
        p.port_ids = frozenset(id(port) for port in fwd + rev)
        p.seg_wire = sender._mss + IP_TCP_HEADER_BYTES
        rate = min(port.rate_bps for port in fwd)
        p.bottleneck_rate = rate
        for port in fwd:  # first min-rate hop: where bursts pile up
            if port.rate_bps == rate:
                p.bottleneck_queue = port.qdisc
                break
        p.data_oneway_s = sum(
            p.seg_wire * 8.0 / port.rate_bps + port.delay_s for port in fwd)
        p.ack_oneway_s = sum(
            PURE_ACK_BYTES * 8.0 / port.rate_bps + port.delay_s
            for port in rev)
        p.base_rtt = p.data_oneway_s + p.ack_oneway_s
        p.bdp_pkts = rate * p.base_rtt / 8.0 / p.seg_wire
        th = p.bottleneck_queue.fluid_threshold_packets(rate)
        p.guard_pkts = self.params.guard_band * th
        p.refill_tick_s = p.seg_wire * 8.0 / rate
        p.listener = listener
        p.rstate = rstate
        return p

    def _walk(self, from_host, to_host, probe):
        """Follow routing from ``from_host`` to ``to_host``; list of ports."""
        from repro.net.switch import Switch

        ports = []
        port = from_host.uplink
        for _ in range(self.params.max_hops):
            ports.append(port)
            peer = port.peer
            if peer is to_host:
                return ports
            if not isinstance(peer, Switch):
                return None
            if peer.ecmp_per_packet:
                # route_for would consume round-robin state; per-packet
                # spraying is un-modelable anyway (no static path).
                return None
            port = peer.route_for(probe)
            if port is None:
                return None
        return None

    def _eligible(self, sender, st: _FlowState) -> bool:
        p = self.params
        if (sender.state != "established" or sender.in_recovery
                or sender.dup_acks):
            return False
        if sender.cc.fluid_model is None:
            return False  # no analytic round law for this policy (CUBIC, …)
        if sender.nbytes - sender.snd_una < p.min_flow_bytes:
            return False
        path = st.path
        if path is None:
            path = self._resolve_path(sender)
            if path is None:
                return False
            st.path = path
        if path.guard_pkts < 2.0:
            return False  # threshold too shallow to ever model safely
        # Exclusive path: no other live flow may share any port, in
        # either direction (its data or ACKs would see our virtual
        # queue as empty).
        for other, ost in self._states.items():
            if other is sender or other.state in ("done", "failed"):
                continue
            opath = ost.path
            if opath is None:
                opath = self._resolve_path(other)
                if opath is None:
                    return False  # unknown competitor: stay conservative
                ost.path = opath
            if not path.port_ids.isdisjoint(opath.port_ids):
                return False
        rs = path.rstate
        if rs.ooo or rs.ece_latch or rs.ce_state:
            return False
        return True

    # -- promotion -----------------------------------------------------------

    def _promote(self, sender, st: _FlowState) -> None:
        """Hold drained (zero flight) — enter fluid fidelity."""
        path = st.path
        rs = path.rstate
        clean = (not rs.ooo and not rs.ece_latch and not rs.ce_state
                 and rs.rcv_nxt == sender.snd_una)
        if clean:
            for q in path.queues:
                if len(q):
                    clean = False
                    break
        if not clean:
            st.cooldown_until = self.sim.now + self.params.cooldown_s
            self._release(sender, st)
            return
        if rs.delack_handle is not None:
            rs.delack_handle.cancel()
            rs.delack_handle = None
        rs.segs_since_ack = 0
        sender._cancel_rto()
        st.mode = "fluid"
        self._promotions += 1
        for q in path.queues:
            # Any real packet arriving on the exclusive path is a
            # demotion trigger (qlen >= 1 right after its append).
            q._pressure_th = 1
            q._pressure_cb = self._on_pressure
            self._pressure_owner[id(q)] = sender
        self._schedule_round(sender, st)

    def _on_pressure(self, qdisc, now: float) -> None:
        owner = self._pressure_owner.get(id(qdisc))
        if owner is None:
            return
        st = self._states.get(owner)
        if st is not None and st.mode == "fluid":
            self._demote(owner, st, "pressure")

    def _clear_pressure(self, st: _FlowState) -> None:
        path = st.path
        if path is None:
            return
        for q in path.queues:
            if id(q) in self._pressure_owner:
                del self._pressure_owner[id(q)]
                q._pressure_th = float("inf")
                q._pressure_cb = None

    def _release(self, sender, st: _FlowState) -> None:
        """Back to packet fidelity bookkeeping (caller resumes sending)."""
        st.mode = "idle"
        st.next_eval = self.sim.now + self.params.eval_backoff_s
        sender._fluid_wait = False

    # -- the fluid recurrence ------------------------------------------------

    def _schedule_round(self, sender, st: _FlowState) -> None:
        """Plan one RTT round from live state, or demote if unsafe."""
        path = st.path
        cc = sender.cc
        mss = sender._mss
        remaining = sender.nbytes - sender.snd_una
        wnd = int(min(cc.cwnd, sender._rwnd))
        w = wnd if wnd < remaining else remaining
        if w <= 0:
            self._demote(sender, st, "window")
            return
        segs = -(-w // mss)
        q_pkts = segs - path.bdp_pkts
        if q_pkts < 0.0:
            q_pkts = 0.0
        slow_start = cc.cwnd < cc.ssthresh
        # Transient occupancy estimate: the standing queue, plus (in slow
        # start) the window's worth of burst the unpaced doubling injects
        # above the drain rate within the round.
        transient = q_pkts + (segs if slow_start else 1.0)
        if transient >= path.guard_pkts:
            self._demote(sender, st, "guard_band")
            return
        q_delay = q_pkts * path.seg_wire * 8.0 / path.bottleneck_rate
        rtt = path.base_rtt + q_delay
        delack = sender.config.delack_segments
        acks = -(-segs // delack) if delack > 1 else segs
        st.round_plan = (w, segs, acks, q_pkts, q_delay, slow_start, rtt)
        st.round_handle = self.sim.schedule(
            rtt, lambda: self._apply_round(sender))

    def _apply_round(self, sender) -> None:
        """Commit one planned round: sender, receiver, queues, latency."""
        st = self._states.get(sender)
        if st is None or st.mode != "fluid":
            return
        st.round_handle = None
        w, segs, acks, q_pkts, q_delay, slow_start, rtt = st.round_plan
        st.round_plan = None
        now = self.sim.now
        path = st.path
        cc = sender.cc
        mss = sender._mss

        # Sender sequence space: the whole window was sent and acked.
        una = sender.snd_una + w
        sender.snd_una = una
        sender.snd_nxt = una
        sender.stats.data_packets_sent += segs

        # Congestion-window law, mirroring repro.tcp.cc exactly.
        if slow_start:
            cc.cwnd += w
            if cc.cwnd > cc.ssthresh:
                cc.cwnd = cc.ssthresh
        else:
            mss_sq = float(mss * mss)
            for _ in range(acks):
                cc.cwnd += mss_sq / cc.cwnd
        if cc.fluid_model == "dctcp":
            # DCTCP: one round == one window with zero marked bytes.
            cc.alpha *= 1.0 - cc.g
            cc.reset_observation_window()

        # Receiver state advances in lockstep (in-order, no marks).
        rs = path.rstate
        rs.rcv_nxt = una
        rs.bytes_received = una
        rs.last_acked = una
        rs.data_packets += segs
        listener = path.listener
        if listener.on_progress is not None:
            listener.on_progress(rs.key, rs)

        # Queue counter credits: equal arrivals and departures keep every
        # counter equation valid; the bottleneck also gets the standing
        # queue's occupancy integral and sojourn-time contribution.
        wire_bytes = w + segs * IP_TCP_HEADER_BYTES
        ect = sender._ecn_negotiated
        bq = path.bottleneck_queue
        seg_wire = path.seg_wire
        for q in path.fwd_ports:
            qd = q.qdisc
            if qd is bq:
                qd.credit_fluid(segs, wire_bytes, delay_s=q_delay * segs,
                                occupancy_pkt_s=q_pkts * rtt,
                                occupancy_byte_s=q_pkts * seg_wire * rtt,
                                ect=ect)
            else:
                qd.credit_fluid(segs, wire_bytes, ect=ect)
        ack_bytes = acks * PURE_ACK_BYTES
        for q in path.rev_ports:
            q.qdisc.credit_fluid(acks, ack_bytes, ack=True)

        # Closed-form per-packet latencies for the run's latency metrics.
        lc = self._latency_credit
        if lc is not None:
            lc(path.data_oneway_s + q_delay, segs)
            lc(path.ack_oneway_s, acks, data=False)

        self._rounds += 1
        self._fluid_bytes += w
        self._fluid_packets += segs
        if sender._tracer is not None:
            sender._trace_cwnd("fluid")

        if una >= sender.nbytes:
            self._fluid_completions += 1
            self._clear_pressure(st)
            st.mode = "idle"
            sender._fluid_wait = False
            sender._complete()  # pops our state via on_flow_done
        else:
            self._schedule_round(sender, st)

    # -- demotion ------------------------------------------------------------

    def _demote(self, sender, st: _FlowState, reason: str) -> None:
        """Leave fluid fidelity and start the paced window refill."""
        if st.round_handle is not None:
            st.round_handle.cancel()
            st.round_handle = None
        st.round_plan = None
        self._clear_pressure(st)
        self._demotions[reason] = self._demotions.get(reason, 0) + 1
        st.cooldown_until = self.sim.now + self.params.cooldown_s
        st.last_cuts = sender.stats.cwnd_cuts
        st.mode = "refill"
        st.refill_sent = 0
        sender._arm_rto()
        self._refill_tick(sender)

    def _refill_tick(self, sender) -> None:
        """Send one segment per bottleneck serialization time.

        Refilling at (roughly) the drain rate rebuilds the flight
        without the window-sized burst a plain ``_try_send`` would
        inject into a queue whose whole limit may be smaller than cwnd.
        """
        st = self._states.get(sender)
        if st is None or st.mode != "refill":
            return
        st.refill_handle = None
        if sender.state != "established":
            self._release(sender, st)
            return
        wnd = int(min(sender.cc.cwnd, sender._rwnd))
        snd_nxt = sender.snd_nxt
        if (st.refill_sent >= wnd or snd_nxt >= sender.nbytes
                or snd_nxt - sender.snd_una >= wnd):
            self._release(sender, st)
            sender._try_send()
            return
        n = sender._send_segment(
            snd_nxt, retransmit=snd_nxt < sender._no_sample_below)
        if n <= 0:
            self._release(sender, st)
            sender._try_send()
            return
        sender.snd_nxt = snd_nxt + n
        st.refill_sent += n
        st.refill_handle = self.sim.schedule(
            st.path.refill_tick_s, lambda: self._refill_tick(sender))

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """JSON-serialisable block for ``manifest["fluid"]``."""
        return {
            "flows_adopted": self._adopted,
            "promotions": self._promotions,
            "demotions": dict(sorted(self._demotions.items())),
            "rounds": self._rounds,
            "fluid_bytes": self._fluid_bytes,
            "fluid_packets": self._fluid_packets,
            "fluid_completions": self._fluid_completions,
        }
