"""repro — reproduction of "High Throughput and Low Latency on Hadoop
Clusters using Explicit Congestion Notification: The Untold Truth"
(Fischer e Silva & Carpenter, IEEE CLUSTER 2017).

The package layers, bottom to top:

* :mod:`repro.sim` — discrete-event kernel (the NS-2 substitute's core);
* :mod:`repro.net` — packet-level network: packets with IP-ECN/TCP-flag
  headers, rate+delay links, output-queued switches, topology builders;
* :mod:`repro.core` — **the paper's contribution**: DropTail, RED with
  ECN, the ECE-bit / ACK+SYN early-drop protection patch, and the true
  simple marking scheme;
* :mod:`repro.tcp` — NewReno with RFC 3168 ECN, and DCTCP;
* :mod:`repro.mapreduce` — MRPerf-style Hadoop model whose shuffle runs
  over the simulated TCP network (Terasort workload);
* :mod:`repro.workloads` — synthetic bulk/incast/probe traffic;
* :mod:`repro.stats` — metric collection and the paper's normalization;
* :mod:`repro.experiments` — the evaluation grid, Figures 1-4, Tables
  I-II, and claim checks.

Quickstart::

    from repro.experiments import run_cell, ExperimentConfig, QueueSetup
    from repro.units import us

    cell = run_cell(ExperimentConfig(
        queue=QueueSetup(kind="marking", target_delay_s=us(500)),
    ).scaled(0.25))
    print(cell.metrics.runtime, cell.metrics.mean_latency)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
