"""String-keyed queue-discipline registry ("the zoo", AQM side).

Every queue kind an experiment grid can name lives here as a
:class:`QdiscEntry`: a builder closure plus a label function, keyed by the
string that appears in ``QueueSetup.kind``, the CLI ``--queue`` choices
and the fuzzer's qdisc axis. Adding an AQM is one module plus one
:func:`register_qdisc` call — the experiment configs, CLI and fuzzer pick
it up through :func:`qdisc_names` without further changes.

Builders are duck-typed over the ``setup`` object
(:class:`~repro.experiments.config.QueueSetup` or anything exposing
``buffer_packets`` / ``target_delay_s`` / ``protection`` /
``dctcp_style_red``) so this module depends only on :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.core.codel import CodelParams, CodelQueue
from repro.core.curvyred import CurvyRedParams, CurvyRedQueue
from repro.core.droptail import DropTail
from repro.core.marking import SimpleMarkingQueue
from repro.core.protection import ProtectionMode
from repro.core.qdisc import QueueDisc
from repro.core.red import RedQueue
from repro.core.target_delay import red_params_for_target_delay, threshold_packets
from repro.errors import ConfigError

__all__ = [
    "TINY_BUFFER_PACKETS",
    "QdiscEntry",
    "QDISC_REGISTRY",
    "register_qdisc",
    "qdisc_names",
    "qdisc_entry",
]

#: Physical depth cap of the "tinybuffer" regime: a switch whose per-port
#: buffer is a couple of BDP-fractions, as in the shallow-threshold /
#: tiny-buffer literature the DCTCP papers argue against provisioning for.
TINY_BUFFER_PACKETS = 16


@dataclass(frozen=True)
class QdiscEntry:
    """One registered queue kind.

    Attributes
    ----------
    key:
        Registry key (``QueueSetup.kind`` value).
    builder:
        ``builder(setup, name, link_rate_bps, rng) -> QueueDisc``.
    label:
        ``label(setup) -> str`` series label for legends/cache keys.
    needs_target_delay:
        True when the kind derives its thresholds from
        ``setup.target_delay_s`` (validation enforces presence).
    """

    key: str
    builder: Callable
    label: Callable
    needs_target_delay: bool = True


QDISC_REGISTRY: Dict[str, QdiscEntry] = {}


def register_qdisc(entry: QdiscEntry) -> QdiscEntry:
    """Register a queue kind; refuses duplicate keys."""
    if not entry.key:
        raise ConfigError("qdisc entry needs a non-empty key")
    existing = QDISC_REGISTRY.get(entry.key)
    if existing is not None and existing is not entry:
        raise ConfigError(f"qdisc key {entry.key!r} already registered")
    QDISC_REGISTRY[entry.key] = entry
    return entry


def qdisc_names() -> Tuple[str, ...]:
    """Registered queue kinds, sorted."""
    return tuple(sorted(QDISC_REGISTRY))


def qdisc_entry(key: str) -> QdiscEntry:
    """Look up a queue kind by key."""
    try:
        return QDISC_REGISTRY[key]
    except KeyError:
        known = ", ".join(qdisc_names()) or "<none>"
        raise ConfigError(f"unknown queue kind {key!r}; known: {known}") from None


# -- stock entries -----------------------------------------------------------


def _build_droptail(setup, name: str, link_rate_bps: float, rng) -> QueueDisc:
    return DropTail(setup.buffer_packets, name=name)


def _label_droptail(setup) -> str:
    depth = "deep" if setup.is_deep else "shallow"
    return f"droptail-{depth}"


def _build_marking(setup, name: str, link_rate_bps: float, rng) -> QueueDisc:
    k = threshold_packets(setup.target_delay_s, link_rate_bps)
    return SimpleMarkingQueue(setup.buffer_packets, k, name=name)


def _build_codel(setup, name: str, link_rate_bps: float, rng) -> QueueDisc:
    params = CodelParams(
        target_s=setup.target_delay_s,
        interval_s=10.0 * setup.target_delay_s,
        ecn=True,
        protection=setup.protection,
    )
    return CodelQueue(setup.buffer_packets, params, name=name)


def _build_red(setup, name: str, link_rate_bps: float, rng) -> QueueDisc:
    params = red_params_for_target_delay(
        setup.target_delay_s,
        link_rate_bps,
        protection=setup.protection,
        dctcp_style=setup.dctcp_style_red,
    )
    return RedQueue(
        setup.buffer_packets, params,
        rand=rng.uniform_fn(f"red.{name}"), name=name,
    )


def _build_curvyred(setup, name: str, link_rate_bps: float, rng) -> QueueDisc:
    # The ramp saturates at twice the target-delay threshold, so the mark
    # probability at the Fixed-K operating point K is 0.5 (u_mark=1).
    k = threshold_packets(setup.target_delay_s, link_rate_bps)
    params = CurvyRedParams(
        range_packets=2.0 * k,
        protection=setup.protection,
    )
    return CurvyRedQueue(
        setup.buffer_packets, params,
        rand=rng.uniform_fn(f"curvyred.{name}"), name=name,
    )


def _label_curvyred(setup) -> str:
    return {
        ProtectionMode.DEFAULT: "curvyred-default",
        ProtectionMode.ECE: "curvyred-ece",
        ProtectionMode.ACK_SYN: "curvyred-ack+syn",
    }[setup.protection]


def _build_tinybuffer(setup, name: str, link_rate_bps: float, rng) -> QueueDisc:
    # Shallow-threshold step marking inside a tiny physical buffer: the
    # buffer caps at TINY_BUFFER_PACKETS and the marking threshold at half
    # of it, so marks and tail drops interleave — the regime where the
    # echo-path fidelity flaws become visible.
    buf = min(setup.buffer_packets, TINY_BUFFER_PACKETS)
    k = min(threshold_packets(setup.target_delay_s, link_rate_bps),
            max(1, buf // 2))
    return SimpleMarkingQueue(buf, k, name=name)


_PROTECTED_LABELS = {
    "codel": {
        ProtectionMode.DEFAULT: "codel-default",
        ProtectionMode.ECE: "codel-ece",
        ProtectionMode.ACK_SYN: "codel-ack+syn",
    },
    "red": {
        ProtectionMode.DEFAULT: "red-default",
        ProtectionMode.ECE: "red-ece",
        ProtectionMode.ACK_SYN: "red-ack+syn",
    },
}

register_qdisc(QdiscEntry(
    key="droptail", builder=_build_droptail, label=_label_droptail,
    needs_target_delay=False,
))
register_qdisc(QdiscEntry(
    key="marking", builder=_build_marking, label=lambda setup: "marking",
))
register_qdisc(QdiscEntry(
    key="codel", builder=_build_codel,
    label=lambda setup: _PROTECTED_LABELS["codel"][setup.protection],
))
register_qdisc(QdiscEntry(
    key="red", builder=_build_red,
    label=lambda setup: _PROTECTED_LABELS["red"][setup.protection],
))
register_qdisc(QdiscEntry(
    key="curvyred", builder=_build_curvyred, label=_label_curvyred,
))
register_qdisc(QdiscEntry(
    key="tinybuffer", builder=_build_tinybuffer,
    label=lambda setup: "tinybuffer",
))
