"""Queue-discipline contract shared by DropTail, RED and SimpleMarking.

A :class:`QueueDisc` sits on one egress :class:`~repro.net.port.Port`. The
port calls :meth:`QueueDisc.enqueue` for every arriving packet (the qdisc
may drop it, mark it, or queue it) and :meth:`QueueDisc.dequeue` whenever
the transmitter goes idle.

Every qdisc maintains a :class:`QueueStats` block with per-class arrival,
drop and mark counters. The per-class split (ECT data vs non-ECT pure ACKs
vs SYN) is exactly the bookkeeping the paper's Section II argument rests
on, so it lives here rather than in an optional monitor.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.errors import QueueError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids core<->net cycle
    from repro.net.packet import Packet

__all__ = ["QueueStats", "QueueDisc", "VERDICT_ENQUEUED", "VERDICT_DROPPED"]

#: Return values of :meth:`QueueDisc.enqueue`.
VERDICT_ENQUEUED = True
VERDICT_DROPPED = False


@dataclass(slots=True)
class QueueStats:
    """Counters for one queue. All counts are packets unless noted.

    ``slots=True``: counter bumps happen ~ten times per packet per hop,
    and slot access is measurably cheaper than instance-dict access.
    """

    arrivals: int = 0
    arrival_bytes: int = 0
    departures: int = 0
    departure_bytes: int = 0
    drops_tail: int = 0          #: drops because the physical buffer was full
    drops_early: int = 0         #: AQM early drops (the paper's villain)
    marks: int = 0               #: CE marks applied to ECT packets
    protected: int = 0           #: early drops avoided by a protection mode

    # per-class arrivals / drops — the disproportionality evidence
    ect_arrivals: int = 0
    ect_drops: int = 0
    ack_arrivals: int = 0        #: pure ACKs (non-ECT by RFC 3168)
    ack_drops: int = 0
    syn_arrivals: int = 0
    syn_drops: int = 0

    queue_delay_sum: float = 0.0  #: summed per-packet residence time (s)
    queue_delay_count: int = 0

    # analytically-advanced traffic (hybrid fidelity runs; always 0 in
    # packet mode). These transits are *also* included in arrivals /
    # departures (credited equally, so every counter equation holds);
    # the dedicated counters exist so reports can tell the fidelity mix.
    fluid_packets: int = 0
    fluid_bytes: int = 0

    # occupancy integral for time-averaged queue length
    _occ_integral_pkts: float = field(default=0.0, repr=False)
    _occ_integral_bytes: float = field(default=0.0, repr=False)
    _occ_last_t: float = field(default=0.0, repr=False)

    @property
    def drops(self) -> int:
        """Total drops of any kind."""
        return self.drops_tail + self.drops_early

    @property
    def mean_queue_delay(self) -> float:
        """Average residence time of departed packets (seconds)."""
        if self.queue_delay_count == 0:
            return 0.0
        return self.queue_delay_sum / self.queue_delay_count

    def ack_drop_rate(self) -> float:
        """Fraction of arriving pure ACKs that were dropped."""
        return self.ack_drops / self.ack_arrivals if self.ack_arrivals else 0.0

    def ect_drop_rate(self) -> float:
        """Fraction of arriving ECT packets that were dropped."""
        return self.ect_drops / self.ect_arrivals if self.ect_arrivals else 0.0

    def mean_queue_packets(self, now: float) -> float:
        """Time-averaged queue length in packets up to ``now``."""
        if now <= 0:
            return 0.0
        return self._occ_integral_pkts / now


class QueueDisc:
    """Base FIFO queue with physical capacity and per-class accounting.

    Subclasses override :meth:`_admit` to implement AQM behaviour; the base
    class implements the FIFO store, the physical (tail-drop) limit and all
    statistics so that subclasses only contain policy.

    Parameters
    ----------
    limit_packets:
        Physical buffer size in packets. The paper's "shallow" switches
        have ~100 packets per port; "deep" ~10x more.
    name:
        Identifier used in traces (set by the owning port).
    """

    def __init__(self, limit_packets: int, name: str = "q"):
        if limit_packets <= 0:
            raise QueueError(f"queue limit must be positive, got {limit_packets}")
        self.limit_packets = int(limit_packets)
        self.name = name
        self._q: Deque[Packet] = deque()
        self._bytes = 0
        self.stats = QueueStats()
        #: Optional trace bus, set by the owning port. AQM subclasses emit
        #: ``"mark"`` events through :meth:`_trace`; the base class emits
        #: ``"enqueue"`` when someone subscribed to it.
        self.tracer = None
        #: Fluid-fidelity pressure hook (see repro.sim.fluid). While a
        #: fluid flow owns this queue the threshold is lowered so that
        #: any real enqueue fires the callback and demotes the flow;
        #: otherwise the check is one compare against +inf per enqueue.
        self._pressure_th = float("inf")
        self._pressure_cb = None

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._q)

    @property
    def qlen_packets(self) -> int:
        """Instantaneous queue length in packets."""
        return len(self._q)

    @property
    def qlen_bytes(self) -> int:
        """Instantaneous queue length in bytes."""
        return self._bytes

    @property
    def is_full(self) -> bool:
        """True when the physical buffer has no space for one more packet."""
        return len(self._q) >= self.limit_packets

    def packets(self):
        """Iterate over queued packets head-first (monitor/snapshot use)."""
        return iter(self._q)

    # -- the port-facing API -------------------------------------------------

    def enqueue(self, pkt: "Packet", now: float) -> bool:
        """Offer ``pkt`` to the queue at time ``now``.

        Returns ``VERDICT_ENQUEUED`` (True) if the packet was queued,
        ``VERDICT_DROPPED`` (False) if it was dropped. Marking mutates the
        packet in place (CE codepoint).

        This runs once per packet per hop — the occupancy-integral advance
        is inlined (see :meth:`_advance_occupancy`) and the per-class
        counters read the packet's precomputed classification attributes.
        """
        st = self.stats
        # Inlined _advance_occupancy (keep in sync).
        dt = now - st._occ_last_t
        if dt > 0:
            st._occ_integral_pkts += dt * len(self._q)
            st._occ_integral_bytes += dt * self._bytes
            st._occ_last_t = now
        size = pkt.size
        st.arrivals += 1
        st.arrival_bytes += size
        is_ect = pkt.is_ect
        is_ack = pkt.is_pure_ack
        is_syn = pkt.is_syn
        if is_ect:
            st.ect_arrivals += 1
        if is_ack:
            st.ack_arrivals += 1
        if is_syn:
            st.syn_arrivals += 1

        verdict = self._admit(pkt, now)
        if verdict:
            pkt.enqueued_at = now
            self._q.append(pkt)
            self._bytes += size
            if len(self._q) >= self._pressure_th:
                self._pressure_cb(self, now)
            tr = self.tracer
            if tr is not None and tr.active and tr.wants("enqueue"):
                tr.emit(now, "enqueue", self.name, pkt)
        else:
            if is_ect:
                st.ect_drops += 1
            if is_ack:
                st.ack_drops += 1
            if is_syn:
                st.syn_drops += 1
        return verdict

    def dequeue(self, now: float) -> Optional[Packet]:
        """Pop the head packet, or None if empty."""
        q = self._q
        if not q:
            return None
        st = self.stats
        # Inlined _advance_occupancy (keep in sync).
        dt = now - st._occ_last_t
        if dt > 0:
            st._occ_integral_pkts += dt * len(q)
            st._occ_integral_bytes += dt * self._bytes
            st._occ_last_t = now
        pkt = q.popleft()
        size = pkt.size
        self._bytes -= size
        st.departures += 1
        st.departure_bytes += size
        st.queue_delay_sum += now - pkt.enqueued_at
        st.queue_delay_count += 1
        self._on_dequeue(pkt, now)
        return pkt

    # -- fluid fidelity ---------------------------------------------------------

    def fluid_threshold_packets(self, rate_bps: float) -> float:
        """Occupancy (packets) at which this queue starts acting on traffic.

        The hybrid fidelity tier demotes a fluid flow strictly before its
        modeled occupancy reaches ``guard_band`` × this value. AQM
        subclasses override it with their marking/drop onset (RED's
        min_th, SimpleMarking's K, CoDel's target delay in packets); the
        base FIFO acts only at the physical limit.
        """
        return float(self.limit_packets)

    def credit_fluid(self, packets: int, bytes_: int, delay_s: float = 0.0,
                     occupancy_pkt_s: float = 0.0,
                     occupancy_byte_s: float = 0.0,
                     ect: bool = False, ack: bool = False) -> None:
        """Account for analytically-advanced traffic that transited this queue.

        Arrivals and departures (and their byte counters) are credited
        *equally* — fluid traffic never occupies the physical queue, so
        every counter equation the queue-accounting checker audits
        (occupancy = arrivals − drops − departures, byte conservation,
        per-class bounds) remains valid. ``delay_s`` is the summed
        closed-form residence time of the credited packets;
        ``occupancy_*_s`` are the standing queue's contributions to the
        occupancy integrals (added directly — the wall-clock bracket
        ``_occ_last_t`` is untouched, so real-packet accounting around a
        fluid interval stays exact).
        """
        st = self.stats
        st.arrivals += packets
        st.arrival_bytes += bytes_
        st.departures += packets
        st.departure_bytes += bytes_
        st.queue_delay_sum += delay_s
        st.queue_delay_count += packets
        st.fluid_packets += packets
        st.fluid_bytes += bytes_
        if ect:
            st.ect_arrivals += packets
        if ack:
            st.ack_arrivals += packets
        st._occ_integral_pkts += occupancy_pkt_s
        st._occ_integral_bytes += occupancy_byte_s

    # -- policy hooks ----------------------------------------------------------

    def _admit(self, pkt: "Packet", now: float) -> bool:
        """Decide the packet's fate. Base class: pure tail drop."""
        if self.is_full:
            self.stats.drops_tail += 1
            return VERDICT_DROPPED
        return VERDICT_ENQUEUED

    def _on_dequeue(self, pkt: "Packet", now: float) -> None:
        """Subclass hook fired after each departure (e.g. RED idle timing)."""

    # -- telemetry --------------------------------------------------------------

    def _trace(self, kind: str, pkt: "Packet", now: float) -> None:
        """Emit one trace event for this queue (no-op without a tracer).

        ``Tracer.active`` gates the emit so an attached-but-idle tracer
        costs two attribute reads, not a record construction.
        """
        tr = self.tracer
        if tr is not None and tr.active:
            tr.emit(now, kind, self.name, pkt)

    def register_metrics(self, registry) -> None:
        """Bind this queue's counters into a telemetry registry.

        The :class:`QueueStats` block stays the single source of truth on
        the hot path; the registry sees it through pull gauges labeled with
        the queue name.
        """
        st = self.stats
        for attr in (
            "arrivals", "departures", "drops_tail", "drops_early", "marks",
            "protected", "ect_arrivals", "ect_drops", "ack_arrivals",
            "ack_drops", "syn_arrivals", "syn_drops",
        ):
            registry.gauge(
                f"queue.{attr}",
                fn=lambda s=st, a=attr: getattr(s, a),
                queue=self.name,
            )
        registry.gauge(
            "queue.qlen_packets", fn=lambda: self.qlen_packets, queue=self.name)
        registry.gauge(
            "queue.mean_delay_s", fn=lambda s=st: s.mean_queue_delay,
            queue=self.name)

    # -- internals ---------------------------------------------------------------

    def _advance_occupancy(self, now: float) -> None:
        st = self.stats
        dt = now - st._occ_last_t
        if dt > 0:
            st._occ_integral_pkts += dt * len(self._q)
            st._occ_integral_bytes += dt * self._bytes
            st._occ_last_t = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name} {len(self._q)}/{self.limit_packets}p "
            f"{self._bytes}B>"
        )
