"""DropTail — the paper's baseline queue.

Pure FIFO with tail drop: packets are dropped only when the physical
buffer is full, never marked. All runtime/throughput/latency results in
the paper are normalized against DropTail (shallow or deep buffers).
"""

from __future__ import annotations

from repro.core.qdisc import QueueDisc

__all__ = ["DropTail"]


class DropTail(QueueDisc):
    """FIFO queue with tail drop only (no AQM, no ECN)."""

    # The base class _admit already implements exactly tail-drop; DropTail
    # exists as a named type so configurations and reports read like the paper.
