"""RED (Random Early Detection) with ECN and the paper's protection patch.

The implementation follows Floyd & Jacobson (1993) and the NS-2 RED queue
the paper used:

* an EWMA of the queue length (``avg``) is updated on every arrival, with
  the standard idle-period decay when the queue has drained;
* below ``min_th`` packets are admitted; between ``min_th`` and ``max_th``
  packets face a probabilistic *early action* whose probability ramps from
  0 to ``max_p`` (with the uniform-spacing ``count`` correction); above
  ``max_th`` the action is forced (or, in *gentle* mode, ramps from
  ``max_p`` to 1 between ``max_th`` and ``2*max_th``);
* thresholds are interpreted **per packet**, as the paper notes real
  switches typically do — a 150 B pure ACK occupies one threshold slot
  just like a 1500 B data packet (byte-mode is available for ablation);
* when ECN is enabled, the early action on an **ECT-capable** packet is a
  CE *mark* (NS-2 ``setbit_`` semantics: ECT packets are never
  early-dropped); on a non-ECT packet it is a *drop* — this asymmetry is
  exactly the behaviour the paper identifies as the source of
  disproportionate ACK loss;
* the paper's patch: packets satisfying the configured
  :class:`~repro.core.protection.ProtectionMode` predicate are admitted
  instead of early-dropped (physical tail drops still apply to everyone).

Setting ``min_th == max_th`` reproduces the DCTCP-style single-threshold
configuration (the original DCTCP paper's recommendation of 65 packets at
10 Gbps), and ``use_instantaneous=True`` uses the current queue length
instead of the EWMA (the Wu et al. CoNEXT'12 recommendation).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.core.protection import ProtectionMode, is_protected
from repro.core.qdisc import QueueDisc, VERDICT_DROPPED, VERDICT_ENQUEUED
from repro.errors import ConfigError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids core<->net cycle
    from repro.net.packet import Packet

__all__ = ["RedParams", "RedQueue"]


@dataclass(frozen=True)
class RedParams:
    """Configuration block for :class:`RedQueue`.

    Attributes
    ----------
    min_th, max_th:
        Lower / upper thresholds. Units: packets (or mean-packet
        equivalents in byte mode). ``min_th == max_th == K`` gives the
        Fixed-K single-threshold configuration (the DCTCP-style step
        marker). **Fixed-K semantics:** with ``gentle=False`` the step is
        *pure* — below ``K`` every packet is admitted, at or above ``K``
        the early action is forced on every packet. With ``gentle=True``
        the step is *gentle*, matching NS-2: the early-action probability
        ramps from ``max_p`` at ``K`` to 1 at ``2*K`` (with the
        uniform-spacing count correction), and only above ``2*K`` is the
        action forced. The gentle ramp applies between ``max_th`` and
        ``2*max_th`` regardless of the band width — a zero-width
        probabilistic band (``min_th == max_th``) does not disable it.
    max_p:
        Early-action probability at ``max_th``.
    wq:
        EWMA weight for the average queue size (ignored when
        ``use_instantaneous``).
    gentle:
        If True, probability ramps from ``max_p`` to 1 between ``max_th``
        and ``2*max_th`` instead of jumping to a forced action.
    ecn:
        Enable CE-marking of ECT packets (otherwise RED drops everyone).
    use_instantaneous:
        Use the current queue length instead of the EWMA (Wu et al.).
    byte_mode:
        Interpret thresholds in mean-packet-size units of *bytes*, and
        scale the early-action probability by packet size. Default off:
        per-packet thresholds, as the paper says real switches implement.
    mean_pktsize:
        Mean packet size in bytes for byte mode and idle decay.
    protection:
        Which packets to shield from early drops (the paper's patch).
    """

    min_th: float = 5.0
    max_th: float = 15.0
    max_p: float = 0.1
    wq: float = 0.002
    gentle: bool = True
    ecn: bool = True
    use_instantaneous: bool = False
    byte_mode: bool = False
    mean_pktsize: int = 1500
    protection: ProtectionMode = ProtectionMode.DEFAULT

    def validate(self) -> "RedParams":
        """Raise :class:`ConfigError` on nonsensical values; return self."""
        if self.min_th <= 0 or self.max_th <= 0:
            raise ConfigError(f"RED thresholds must be positive ({self})")
        if self.max_th < self.min_th:
            raise ConfigError(f"max_th < min_th ({self})")
        if not (0.0 < self.max_p <= 1.0):
            raise ConfigError(f"max_p must be in (0, 1] ({self})")
        if not (0.0 < self.wq <= 1.0):
            raise ConfigError(f"wq must be in (0, 1] ({self})")
        if self.mean_pktsize <= 0:
            raise ConfigError(f"mean_pktsize must be positive ({self})")
        return self

    def with_protection(self, mode: ProtectionMode) -> "RedParams":
        """Copy of these params under a different protection mode."""
        return replace(self, protection=mode)


class RedQueue(QueueDisc):
    """RED/ECN queue with optional early-drop protection.

    Parameters
    ----------
    limit_packets:
        Physical buffer size (packets).
    params:
        :class:`RedParams` policy block.
    rand:
        Zero-argument callable returning U(0,1) draws. Inject a seeded
        stream (see :class:`~repro.sim.rng.RngRegistry`) for reproducible
        runs; defaults to a fixed-seed generator.
    """

    def __init__(
        self,
        limit_packets: int,
        params: RedParams,
        rand: Optional[Callable[[], float]] = None,
        name: str = "red",
    ):
        super().__init__(limit_packets, name=name)
        self.params = params.validate()
        if rand is None:
            import numpy as np

            gen = np.random.Generator(np.random.PCG64(12345))
            rand = gen.random
        self._rand = rand
        self.avg = 0.0
        self._count = -1  # packets since last early action, -1 = below min_th
        self._idle_since: Optional[float] = 0.0  # queue starts empty
        self._idle_pkt_time: Optional[float] = None
        # Hot-path hoists: RedParams is frozen, so every per-arrival read
        # of a policy knob can be a plain instance attribute instead of a
        # dataclass-field lookup chain. _admit() reads only these.
        p = self.params
        self._min_th = p.min_th
        self._max_th = p.max_th
        self._max_p = p.max_p
        self._wq = p.wq
        self._gentle = p.gentle
        self._ecn = p.ecn
        self._use_inst = p.use_instantaneous
        self._byte_mode = p.byte_mode
        self._mean_pktsize = float(p.mean_pktsize)
        self._protection = p.protection
        self._band = p.max_th - p.min_th  # > 0 iff a probabilistic band exists

    # -- wiring ---------------------------------------------------------------

    def set_link_rate(self, rate_bps: float) -> None:
        """Tell the queue its drain rate so idle-period decay works.

        Called by the owning port at attach time, mirroring how NS-2's RED
        learns the link bandwidth.
        """
        if rate_bps > 0:
            self._idle_pkt_time = self.params.mean_pktsize * 8.0 / rate_bps

    # -- policy -----------------------------------------------------------------

    def _queue_measure(self) -> float:
        """Queue size in threshold units (packets, or mean-packets in byte mode)."""
        if self._byte_mode:
            return self._bytes / self._mean_pktsize
        return float(len(self._q))

    def _update_avg(self, now: float) -> None:
        q = self._bytes / self._mean_pktsize if self._byte_mode else float(len(self._q))
        if self._use_inst:
            self.avg = q
            return
        if not self._q and self._idle_since is not None:
            # Decay the average over the idle period as if empty-queue
            # samples had arrived once per typical transmission time.
            if self._idle_pkt_time:
                m = (now - self._idle_since) / self._idle_pkt_time
                if m > 0:
                    self.avg *= (1.0 - self._wq) ** m
            self._idle_since = None
        self.avg += self._wq * (q - self.avg)

    def _early_action(self, pkt: "Packet", now: float) -> bool:
        """Apply the AQM's early action to ``pkt``.

        Returns the enqueue verdict. ECT packets get CE-marked and
        admitted; protected packets get admitted unmarked; everything else
        is early-dropped.
        """
        st = self.stats
        if self._ecn and pkt.is_ect:
            pkt.mark_ce()
            st.marks += 1
            self._trace("mark", pkt, now)
            return VERDICT_ENQUEUED
        if is_protected(pkt, self._protection):
            st.protected += 1
            return VERDICT_ENQUEUED
        st.drops_early += 1
        return VERDICT_DROPPED

    def _admit(self, pkt: "Packet", now: float) -> bool:
        # NS-2 updates the average on *every* arrival, including ones that
        # tail-drop: the EWMA tracks offered load, not just admitted load.
        # Updating only on admission makes the average lag reality exactly
        # during the full-buffer bursts the drop statistics measure.
        # Inlined _update_avg (keep in sync) — this runs once per arrival.
        q = self._bytes / self._mean_pktsize if self._byte_mode else float(len(self._q))
        if self._use_inst:
            self.avg = q
        else:
            if not self._q and self._idle_since is not None:
                if self._idle_pkt_time:
                    m = (now - self._idle_since) / self._idle_pkt_time
                    if m > 0:
                        self.avg *= (1.0 - self._wq) ** m
                self._idle_since = None
            self.avg += self._wq * (q - self.avg)
        if len(self._q) >= self.limit_packets:
            self.stats.drops_tail += 1
            return VERDICT_DROPPED

        avg = self.avg
        min_th = self._min_th

        if avg < min_th:
            self._count = -1
            return VERDICT_ENQUEUED

        # Forced region: above max_th (or Fixed-K min==max step). NS-2's
        # gentle ramp lives between max_th and 2*max_th regardless of the
        # probabilistic band's width, so it must NOT be gated on band > 0
        # — that would silently turn a gentle Fixed-K step into a pure one.
        max_th = self._max_th
        band = self._band
        if not (band > 0.0 and avg < max_th):
            if self._gentle and avg < 2.0 * max_th:
                max_p = self._max_p
                pb = max_p + (1.0 - max_p) * (avg - max_th) / max_th
                self._count += 1
                # Same uniform-spacing correction as the min_th..max_th band
                # (Floyd & Jacobson eq. 3): without it, gentle-mode early
                # actions cluster geometrically instead of being uniformly
                # spaced in packet counts.
                denom = 1.0 - self._count * pb
                pa = pb / denom if denom > 0 else 1.0
                if self._rand() < pa:
                    self._count = 0
                    return self._early_action(pkt, now)
                return VERDICT_ENQUEUED
            # Hard forced action.
            self._count = 0
            return self._early_action(pkt, now)

        # Probabilistic band between min_th and max_th.
        self._count += 1
        pb = self._max_p * (avg - min_th) / band
        if self._byte_mode:
            pb *= pkt.size / self._mean_pktsize
        denom = 1.0 - self._count * pb
        pa = pb / denom if denom > 0 else 1.0
        if self._rand() < pa:
            self._count = 0
            return self._early_action(pkt, now)
        return VERDICT_ENQUEUED

    def _on_dequeue(self, pkt: "Packet", now: float) -> None:
        if not self._q:
            self._idle_since = now

    def fluid_threshold_packets(self, rate_bps: float) -> float:
        """RED starts early actions once the average crosses min_th."""
        return float(self._min_th)

    # -- fused hot path --------------------------------------------------------
    #
    # RED queues sit on every contended port, so the per-arrival and
    # per-departure paths each collapse the base-class frame and the policy
    # hook into a single frame. Decision-for-decision identical to
    # QueueDisc.enqueue→_admit and QueueDisc.dequeue→_on_dequeue — any
    # change to those must be mirrored here (and vice versa).

    def enqueue(self, pkt: "Packet", now: float) -> bool:
        """Fused :meth:`QueueDisc.enqueue` + :meth:`_admit` (keep in sync)."""
        st = self.stats
        q = self._q
        # Inlined _advance_occupancy (keep in sync).
        dt = now - st._occ_last_t
        if dt > 0:
            st._occ_integral_pkts += dt * len(q)
            st._occ_integral_bytes += dt * self._bytes
            st._occ_last_t = now
        size = pkt.size
        st.arrivals += 1
        st.arrival_bytes += size
        is_ect = pkt.is_ect
        is_ack = pkt.is_pure_ack
        is_syn = pkt.is_syn
        if is_ect:
            st.ect_arrivals += 1
        if is_ack:
            st.ack_arrivals += 1
        if is_syn:
            st.syn_arrivals += 1

        # Inlined _admit body, including _update_avg (keep in sync).
        qm = self._bytes / self._mean_pktsize if self._byte_mode else float(len(q))
        if self._use_inst:
            self.avg = qm
        else:
            if not q and self._idle_since is not None:
                if self._idle_pkt_time:
                    m = (now - self._idle_since) / self._idle_pkt_time
                    if m > 0:
                        self.avg *= (1.0 - self._wq) ** m
                self._idle_since = None
            self.avg += self._wq * (qm - self.avg)
        if len(q) >= self.limit_packets:
            st.drops_tail += 1
            verdict = VERDICT_DROPPED
        else:
            avg = self.avg
            min_th = self._min_th
            if avg < min_th:
                self._count = -1
                verdict = VERDICT_ENQUEUED
            else:
                max_th = self._max_th
                band = self._band
                if not (band > 0.0 and avg < max_th):
                    if self._gentle and avg < 2.0 * max_th:
                        max_p = self._max_p
                        pb = max_p + (1.0 - max_p) * (avg - max_th) / max_th
                        self._count += 1
                        denom = 1.0 - self._count * pb
                        pa = pb / denom if denom > 0 else 1.0
                        if self._rand() < pa:
                            self._count = 0
                            verdict = self._early_action(pkt, now)
                        else:
                            verdict = VERDICT_ENQUEUED
                    else:
                        self._count = 0
                        verdict = self._early_action(pkt, now)
                else:
                    self._count += 1
                    pb = self._max_p * (avg - min_th) / band
                    if self._byte_mode:
                        pb *= size / self._mean_pktsize
                    denom = 1.0 - self._count * pb
                    pa = pb / denom if denom > 0 else 1.0
                    if self._rand() < pa:
                        self._count = 0
                        verdict = self._early_action(pkt, now)
                    else:
                        verdict = VERDICT_ENQUEUED

        if verdict:
            pkt.enqueued_at = now
            q.append(pkt)
            self._bytes += size
            if len(q) >= self._pressure_th:
                self._pressure_cb(self, now)
            tr = self.tracer
            if tr is not None and tr.active and tr.wants("enqueue"):
                tr.emit(now, "enqueue", self.name, pkt)
        else:
            if is_ect:
                st.ect_drops += 1
            if is_ack:
                st.ack_drops += 1
            if is_syn:
                st.syn_drops += 1
        return verdict

    def dequeue(self, now: float) -> "Optional[Packet]":
        """Fused :meth:`QueueDisc.dequeue` + idle-timing hook (keep in sync)."""
        q = self._q
        if not q:
            return None
        st = self.stats
        # Inlined _advance_occupancy (keep in sync).
        dt = now - st._occ_last_t
        if dt > 0:
            st._occ_integral_pkts += dt * len(q)
            st._occ_integral_bytes += dt * self._bytes
            st._occ_last_t = now
        pkt = q.popleft()
        size = pkt.size
        self._bytes -= size
        st.departures += 1
        st.departure_bytes += size
        st.queue_delay_sum += now - pkt.enqueued_at
        st.queue_delay_count += 1
        if not q:  # inlined _on_dequeue
            self._idle_since = now
        return pkt
