"""The paper's contribution: queue disciplines and marking schemes.

This package contains the baseline :class:`~repro.core.droptail.DropTail`
queue, the full :class:`~repro.core.red.RedQueue` (RED with ECN), the two
AQM patches the paper proposes (ECE-bit and ACK+SYN protection, see
:mod:`repro.core.protection`), and the "true simple marking scheme"
(:class:`~repro.core.marking.SimpleMarkingQueue`).
"""

from repro.core.codel import CodelParams, CodelQueue
from repro.core.curvyred import CurvyRedParams, CurvyRedQueue
from repro.core.codepoints import (
    ECN_TCP_CODEPOINTS,
    ECN_IP_CODEPOINTS,
    render_table1,
    render_table2,
)
from repro.core.droptail import DropTail
from repro.core.marking import SimpleMarkingQueue
from repro.core.monitor import QueueMonitor, QueueSnapshot
from repro.core.protection import ProtectionMode, is_protected
from repro.core.qdisc import QueueDisc, QueueStats
from repro.core.red import RedParams, RedQueue
from repro.core.registry import (
    QdiscEntry,
    qdisc_entry,
    qdisc_names,
    register_qdisc,
)
from repro.core.target_delay import red_params_for_target_delay, threshold_packets

__all__ = [
    "QueueDisc",
    "QueueStats",
    "DropTail",
    "RedQueue",
    "RedParams",
    "SimpleMarkingQueue",
    "CodelQueue",
    "CodelParams",
    "CurvyRedQueue",
    "CurvyRedParams",
    "QdiscEntry",
    "register_qdisc",
    "qdisc_names",
    "qdisc_entry",
    "ProtectionMode",
    "is_protected",
    "QueueMonitor",
    "QueueSnapshot",
    "red_params_for_target_delay",
    "threshold_packets",
    "ECN_TCP_CODEPOINTS",
    "ECN_IP_CODEPOINTS",
    "render_table1",
    "render_table2",
]
