"""Queue monitoring and Figure-1 snapshots.

The paper's Figure 1 is a snapshot of a switch egress queue during the
Hadoop shuffle: the buffer persistently full of ECT-capable data packets
held at the marking threshold, leaving almost no room for the non-ECT
packets (pure ACKs, SYNs) that arrive in bursts and get dropped.

:class:`QueueMonitor` periodically samples a queue and records
:class:`QueueSnapshot` rows with the class composition of the queued
packets, so the experiment harness can regenerate that picture and tests
can assert the characterization quantitatively.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, TextIO

from repro.core.qdisc import QueueDisc
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTimer
from repro.sim.trace import Tracer

__all__ = ["QueueSnapshot", "QueueMonitor"]


@dataclass(frozen=True)
class QueueSnapshot:
    """Composition of one queue at one instant."""

    time: float
    qlen_packets: int
    qlen_bytes: int
    limit_packets: int
    ect_data: int       #: queued ECT-capable data segments
    nonect_data: int    #: queued non-ECT data segments (non-ECN flows)
    pure_acks: int      #: queued pure ACKs
    syns: int           #: queued SYN / SYN-ACK packets
    ce_marked: int      #: queued packets already carrying CE
    #: Name of the sampled queue. Lets downstream consumers (the
    #: stability analysis, exporters) split a merged snapshot list back
    #: into per-queue series; "" for snapshots taken outside a monitor.
    queue: str = ""

    @property
    def occupancy(self) -> float:
        """Fill fraction of the physical buffer."""
        return self.qlen_packets / self.limit_packets if self.limit_packets else 0.0

    @property
    def ect_fraction(self) -> float:
        """Fraction of queued packets that are ECT-capable."""
        if self.qlen_packets == 0:
            return 0.0
        return (self.ect_data + self.ce_marked) / self.qlen_packets


def take_snapshot(q: QueueDisc, now: float, queue: str = "") -> QueueSnapshot:
    """Classify every packet currently queued in ``q``."""
    ect_data = nonect_data = pure_acks = syns = ce = 0
    for pkt in q.packets():
        if pkt.is_ce:
            ce += 1
        elif pkt.is_syn:
            syns += 1
        elif pkt.is_pure_ack:
            pure_acks += 1
        elif pkt.is_ect:
            ect_data += 1
        else:
            nonect_data += 1
    return QueueSnapshot(
        time=now,
        qlen_packets=q.qlen_packets,
        qlen_bytes=q.qlen_bytes,
        limit_packets=q.limit_packets,
        ect_data=ect_data,
        nonect_data=nonect_data,
        pure_acks=pure_acks,
        syns=syns,
        ce_marked=ce,
        queue=queue,
    )


class QueueMonitor:
    """Sample a queue every ``interval`` seconds into a snapshot buffer.

    Parameters
    ----------
    sim, queue, interval:
        Kernel, the queue to photograph, and the sampling period.
    max_samples:
        When set, keep only the most recent N snapshots (ring buffer);
        the default retains everything, matching the Figure-1 harness.
    tracer:
        When set, every sample is also emitted on the bus as a
        ``"queue.sample"`` record, so the telemetry JSONL writer sees the
        same rows this monitor retains — one snapshot path, two sinks.
    """

    def __init__(self, sim: Simulator, queue: QueueDisc, interval: float,
                 max_samples: Optional[int] = None,
                 tracer: Optional[Tracer] = None):
        self._sim = sim
        self._queue = queue
        self._tracer = tracer
        self.snapshots: "deque[QueueSnapshot]" = deque(maxlen=max_samples)
        #: Samples evicted because the buffer wrapped (``max_samples``
        #: reached). Non-zero means :attr:`snapshots` is a suffix of the
        #: run, not the whole of it — surfaced in run manifests so a
        #: truncated series cannot masquerade as a complete one.
        self.dropped = 0
        self._timer = PeriodicTimer(sim, interval, self._sample)

    def start(self, first_delay: Optional[float] = None) -> None:
        """Begin sampling."""
        self._timer.start(first_delay)

    def stop(self) -> None:
        """Stop sampling."""
        self._timer.stop()

    def _sample(self) -> None:
        snap = take_snapshot(self._queue, self._sim.now, queue=self._queue.name)
        if len(self.snapshots) == self.snapshots.maxlen:
            self.dropped += 1
        self.snapshots.append(snap)
        if self._tracer is not None:
            self._tracer.emit(snap.time, "queue.sample", self._queue.name, snap)

    # -- aggregates over the collected snapshots -----------------------------

    def mean_occupancy(self) -> float:
        """Mean buffer fill fraction across snapshots."""
        if not self.snapshots:
            return 0.0
        return sum(s.occupancy for s in self.snapshots) / len(self.snapshots)

    def mean_qlen(self) -> float:
        """Mean queue length (packets) across snapshots."""
        if not self.snapshots:
            return 0.0
        return sum(s.qlen_packets for s in self.snapshots) / len(self.snapshots)

    def peak_qlen(self) -> int:
        """Maximum sampled queue length (packets)."""
        return max((s.qlen_packets for s in self.snapshots), default=0)

    def busiest(self) -> Optional[QueueSnapshot]:
        """The snapshot with the highest occupancy (Figure-1 candidate)."""
        return max(self.snapshots, default=None, key=lambda s: s.qlen_packets)

    # -- telemetry integration -----------------------------------------------

    def rows(self) -> List[Dict[str, Any]]:
        """Retained snapshots as flat dicts labeled with the queue name."""
        from repro.telemetry.export import snapshot_to_row

        out = []
        for snap in self.snapshots:
            row = snapshot_to_row(snap)
            row["queue"] = self._queue.name
            out.append(row)
        return out

    def export_jsonl(self, out: TextIO) -> int:
        """Write retained snapshots through the shared JSONL writer."""
        from repro.telemetry.export import write_jsonl

        return write_jsonl(self.rows(), out)

    def register_metrics(self, registry) -> None:
        """Expose this monitor's aggregates as pull gauges in ``registry``."""
        registry.gauge("monitor.mean_occupancy",
                       fn=self.mean_occupancy, queue=self._queue.name)
        registry.gauge("monitor.mean_qlen",
                       fn=self.mean_qlen, queue=self._queue.name)
        registry.gauge("monitor.peak_qlen",
                       fn=lambda: float(self.peak_qlen()), queue=self._queue.name)
        registry.gauge("monitor.samples",
                       fn=lambda: float(len(self.snapshots)),
                       queue=self._queue.name)
        registry.gauge("monitor.dropped",
                       fn=lambda: float(self.dropped),
                       queue=self._queue.name)
