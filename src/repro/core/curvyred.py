"""Curvy RED (Briscoe, "Insights from Curvy RED", arXiv:1904.07339).

Curvy RED replaces RED's piecewise-linear drop/mark band with a single
power-law ramp and — crucially — uses *different* signals and exponents
for the two congestion responses:

* **ECT packets** are CE-marked from the **instantaneous** queue, with
  probability ``(q / range) ** u_mark`` — L4S-style immediate signalling
  needs no smoothing because the DCTCP-family sender does its own EWMA
  (α);
* **non-ECT packets** are dropped from the **EWMA-smoothed** queue, with
  probability ``(avg / range) ** (2 * u_mark)`` — Briscoe's *square rule*:
  squaring the curviness makes a drop-based Reno flow and a mark-based
  DCTCP flow take comparable throughput shares at one queue operating
  point.

``range_packets`` is the queue depth at which both probabilities saturate
at 1. The paper's ACK-protection patch applies to the drop ramp exactly
as in :class:`~repro.core.red.RedQueue`: protected packets are admitted
instead of early-dropped (physical tail drops still hit everyone).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.protection import ProtectionMode, is_protected
from repro.core.qdisc import QueueDisc, VERDICT_DROPPED, VERDICT_ENQUEUED
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids core<->net cycle
    from repro.net.packet import Packet

__all__ = ["CurvyRedParams", "CurvyRedQueue"]


@dataclass(frozen=True)
class CurvyRedParams:
    """Configuration block for :class:`CurvyRedQueue`.

    Attributes
    ----------
    range_packets:
        Queue depth (packets) where the mark/drop probabilities reach 1.
    u_mark:
        Curviness exponent of the ECT marking ramp; the drop ramp uses
        ``2 * u_mark`` (the square rule).
    wq:
        EWMA weight for the smoothed queue driving the drop ramp.
    ecn:
        CE-mark ECT packets (otherwise everything faces the drop ramp).
    mean_pktsize:
        Mean packet size in bytes for idle decay of the EWMA.
    protection:
        Which packets to shield from early drops (the paper's patch).
    """

    range_packets: float = 20.0
    u_mark: float = 1.0
    wq: float = 0.002
    ecn: bool = True
    mean_pktsize: int = 1500
    protection: ProtectionMode = ProtectionMode.DEFAULT

    def validate(self) -> "CurvyRedParams":
        """Raise :class:`ConfigError` on nonsensical values; return self."""
        if self.range_packets <= 0:
            raise ConfigError(f"range_packets must be positive ({self})")
        if self.u_mark <= 0:
            raise ConfigError(f"u_mark must be positive ({self})")
        if not (0.0 < self.wq <= 1.0):
            raise ConfigError(f"wq must be in (0, 1] ({self})")
        if self.mean_pktsize <= 0:
            raise ConfigError(f"mean_pktsize must be positive ({self})")
        return self

    def with_protection(self, mode: ProtectionMode) -> "CurvyRedParams":
        """Copy of these params under a different protection mode."""
        return replace(self, protection=mode)


class CurvyRedQueue(QueueDisc):
    """Power-law mark/drop AQM with the square rule.

    Parameters
    ----------
    limit_packets:
        Physical buffer size (packets).
    params:
        :class:`CurvyRedParams` policy block.
    rand:
        Zero-argument callable returning U(0,1) draws. Inject a seeded
        stream (see :class:`~repro.sim.rng.RngRegistry`) for reproducible
        runs; defaults to a fixed-seed generator.
    """

    def __init__(
        self,
        limit_packets: int,
        params: CurvyRedParams,
        rand: Optional[Callable[[], float]] = None,
        name: str = "curvyred",
    ):
        super().__init__(limit_packets, name=name)
        self.params = params.validate()
        if rand is None:
            import numpy as np

            gen = np.random.Generator(np.random.PCG64(12345))
            rand = gen.random
        self._rand = rand
        self.avg = 0.0
        self._idle_since: Optional[float] = 0.0  # queue starts empty
        self._idle_pkt_time: Optional[float] = None
        # Hot-path hoists (CurvyRedParams is frozen; _admit reads these).
        p = self.params
        self._range = p.range_packets
        self._u_mark = p.u_mark
        self._u_drop = 2.0 * p.u_mark  # the square rule
        self._wq = p.wq
        self._ecn = p.ecn
        self._mean_pktsize = float(p.mean_pktsize)
        self._protection = p.protection

    # -- wiring ---------------------------------------------------------------

    def set_link_rate(self, rate_bps: float) -> None:
        """Tell the queue its drain rate so idle-period decay works."""
        if rate_bps > 0:
            self._idle_pkt_time = self.params.mean_pktsize * 8.0 / rate_bps

    # -- policy ---------------------------------------------------------------

    def _admit(self, pkt: "Packet", now: float) -> bool:
        # EWMA update on every arrival (offered load, like RED), with the
        # standard idle-period decay when the queue drained in between.
        q = float(len(self._q))
        if not self._q and self._idle_since is not None:
            if self._idle_pkt_time:
                m = (now - self._idle_since) / self._idle_pkt_time
                if m > 0:
                    self.avg *= (1.0 - self._wq) ** m
            self._idle_since = None
        self.avg += self._wq * (q - self.avg)

        st = self.stats
        if q >= self.limit_packets:
            st.drops_tail += 1
            return VERDICT_DROPPED

        if self._ecn and pkt.is_ect:
            # Immediate signal from the instantaneous queue.
            x = q / self._range
            p_mark = 1.0 if x >= 1.0 else x ** self._u_mark
            if p_mark > 0.0 and self._rand() < p_mark:
                pkt.mark_ce()
                st.marks += 1
                self._trace("mark", pkt, now)
            return VERDICT_ENQUEUED

        # Classic traffic: smoothed signal, squared curviness.
        x = self.avg / self._range
        p_drop = 1.0 if x >= 1.0 else x ** self._u_drop
        if p_drop > 0.0 and self._rand() < p_drop:
            if is_protected(pkt, self._protection):
                st.protected += 1
                return VERDICT_ENQUEUED
            st.drops_early += 1
            return VERDICT_DROPPED
        return VERDICT_ENQUEUED

    def _on_dequeue(self, pkt: "Packet", now: float) -> None:
        if not self._q:
            self._idle_since = now

    def fluid_threshold_packets(self, rate_bps: float) -> float:
        """Marking starts at any standing queue: keep fluid flows at ~0."""
        return 1.0
