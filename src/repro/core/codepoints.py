"""ECN codepoints — the paper's Table I and Table II as data.

Table I lists the two ECN flags in the **TCP header** (ECE, CWR); Table II
lists the four ECN codepoints in the **IP header** (Non-ECT, ECT(0),
ECT(1), CE). The renderers reproduce the tables verbatim for the
benchmark harness and documentation.
"""

from __future__ import annotations

from typing import List, NamedTuple

__all__ = [
    "Codepoint",
    "ECN_TCP_CODEPOINTS",
    "ECN_IP_CODEPOINTS",
    "render_table1",
    "render_table2",
]


class Codepoint(NamedTuple):
    """One table row: bit pattern, short name, description."""

    codepoint: str
    name: str
    description: str


#: Table I — ECN codepoints on the TCP header.
ECN_TCP_CODEPOINTS: List[Codepoint] = [
    Codepoint("01", "ECE", "ECN-Echo flag"),
    Codepoint("10", "CWR", "Congestion Window Reduced"),
]

#: Table II — ECN codepoints on the IP header.
ECN_IP_CODEPOINTS: List[Codepoint] = [
    Codepoint("00", "Non-ECT", "Non ECN-Capable Transport"),
    Codepoint("10", "ECT(0)", "ECN Capable Transport"),
    Codepoint("01", "ECT(1)", "ECN Capable Transport"),
    Codepoint("11", "CE", "Congestion Encountered"),
]


def _render(title: str, rows: List[Codepoint]) -> str:
    header = ("Codepoint", "Name", "Description")
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(3)
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_table1() -> str:
    """Render Table I (ECN codepoints on TCP header) as ASCII."""
    return _render("TABLE I: ECN CODEPOINTS ON TCP HEADER", ECN_TCP_CODEPOINTS)


def render_table2() -> str:
    """Render Table II (ECN codepoints on IP header) as ASCII."""
    return _render("TABLE II: ECN CODEPOINTS ON IP HEADER", ECN_IP_CODEPOINTS)
