"""The "true simple marking scheme" — the paper's second proposal.

A marking scheme, as opposed to an AQM that *mimics* one: a single
instantaneous queue-length threshold ``K``. On every enqueue:

* if the physical buffer is full → tail drop (anyone);
* otherwise the packet is admitted; if the instantaneous queue length
  already exceeds ``K`` and the packet is ECT-capable → CE mark;
* **no packet is ever early-dropped** — non-ECT ACKs, SYNs and anything
  else ride in the buffer space above ``K`` that a RED-style AQM would
  have policed away.

This is what the original DCTCP paper actually assumed of the switch, and
what the paper argues switches should implement natively instead of
pressing RED into service. It maximises throughput (paper: ~+10% over
DropTail) at slightly higher latency than ECE-bit protection, and works
on shallow-buffer commodity switches.
"""

from __future__ import annotations

from repro.core.qdisc import QueueDisc, VERDICT_DROPPED, VERDICT_ENQUEUED
from repro.errors import ConfigError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids core<->net cycle
    from repro.net.packet import Packet

__all__ = ["SimpleMarkingQueue"]


class SimpleMarkingQueue(QueueDisc):
    """Single-threshold instantaneous marker; drops only on buffer overflow.

    Parameters
    ----------
    limit_packets:
        Physical buffer size in packets.
    mark_threshold:
        ``K`` — instantaneous queue length (packets) above which arriving
        ECT packets are CE-marked.
    """

    def __init__(self, limit_packets: int, mark_threshold: float, name: str = "mark"):
        super().__init__(limit_packets, name=name)
        if mark_threshold < 0:
            raise ConfigError(f"mark threshold must be >= 0, got {mark_threshold}")
        self.mark_threshold = float(mark_threshold)

    def fluid_threshold_packets(self, rate_bps: float) -> float:
        """Marking onset is the instantaneous K threshold."""
        return self.mark_threshold

    def _admit(self, pkt: "Packet", now: float) -> bool:
        qlen = len(self._q)
        if qlen >= self.limit_packets:
            self.stats.drops_tail += 1
            return VERDICT_DROPPED
        if pkt.is_ect and qlen >= self.mark_threshold:
            pkt.mark_ce()
            self.stats.marks += 1
            self._trace("mark", pkt, now)
        return VERDICT_ENQUEUED
