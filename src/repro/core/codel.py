"""CoDel (Controlled Delay) AQM, with ECN and the paper's protection patch.

CoDel (Nichols & Jacobson, 2012) is the AQM designed specifically against
Bufferbloat — the phenomenon the paper's introduction cites. Instead of
queue *length*, CoDel controls queue *sojourn time*: when every packet
dequeued over a full ``interval`` has waited longer than ``target``,
CoDel enters a dropping state and drops (or, with ECN, marks) one packet
per control-law interval ``interval / sqrt(count)``.

It is included as an extension beyond the paper's RED-centric evaluation
for two reasons:

* the paper argues its findings apply to "RED and any other AQM queue
  that supports ECN" — CoDel with ECN early-drops non-ECT packets in the
  dropping state exactly the same way, so the ACK-drop pathology and the
  protection patch are reproducible on it (see the ablation benches);
* it gives downstream users of this library a second, delay-based AQM to
  compare against the threshold-based ones.

Implementation follows the pseudo-code of RFC 8289, with the standard
head-drop behaviour translated to this library's admit-at-enqueue /
drop-at-dequeue structure: sojourn decisions happen at dequeue, and
drops consume queued packets (recorded as early drops).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.core.protection import ProtectionMode, is_protected
from repro.core.qdisc import QueueDisc, VERDICT_DROPPED, VERDICT_ENQUEUED
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids core<->net cycle
    from repro.net.packet import Packet

__all__ = ["CodelParams", "CodelQueue"]


@dataclass(frozen=True)
class CodelParams:
    """CoDel configuration.

    Attributes
    ----------
    target_s:
        Acceptable standing sojourn time (RFC 8289 default 5 ms; data
    center deployments use ~1 ms or less).
    interval_s:
        Sliding window over which the sojourn must stay above target
        before the dropping state engages (default 100 ms; data centers
        use ~10 ms).
    ecn:
        Mark ECT packets instead of dropping them.
    protection:
        The paper's patch, applied to CoDel's early drops.
    """

    target_s: float = 0.001
    interval_s: float = 0.010
    ecn: bool = True
    protection: ProtectionMode = ProtectionMode.DEFAULT

    def validate(self) -> "CodelParams":
        """Raise :class:`ConfigError` on nonsensical values; return self."""
        if self.target_s <= 0 or self.interval_s <= 0:
            raise ConfigError(f"CoDel times must be positive ({self})")
        if self.target_s >= self.interval_s:
            raise ConfigError(f"target must be < interval ({self})")
        return self


class CodelQueue(QueueDisc):
    """Sojourn-time AQM per RFC 8289, adapted to head-of-queue actions."""

    def __init__(
        self,
        limit_packets: int,
        params: CodelParams,
        name: str = "codel",
    ):
        super().__init__(limit_packets, name=name)
        self.params = params.validate()
        self._first_above_time: Optional[float] = None
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0
        self._last_drop_count = 0
        # Hot-path hoists: CodelParams is frozen, so the dequeue-side
        # control law reads plain instance attributes.
        self._target_s = self.params.target_s
        self._interval_s = self.params.interval_s
        self._ecn = self.params.ecn
        self._protection = self.params.protection

    # -- enqueue side: only the physical limit applies ------------------------

    def _admit(self, pkt: "Packet", now: float) -> bool:
        if len(self._q) >= self.limit_packets:
            self.stats.drops_tail += 1
            return VERDICT_DROPPED
        return VERDICT_ENQUEUED

    def fluid_threshold_packets(self, rate_bps: float) -> float:
        """CoDel acts when sojourn exceeds target: target × drain rate."""
        pkts = self._target_s * rate_bps / 8.0 / 1500.0
        if pkts < 1.0:
            pkts = 1.0
        return pkts

    # -- dequeue side: the CoDel control law ----------------------------------

    def _control_interval(self) -> float:
        return self._interval_s / math.sqrt(max(self._drop_count, 1))

    def _should_act(self, sojourn: float, now: float) -> bool:
        """RFC 8289 ok_to_drop: sojourn above target for a full interval."""
        if sojourn < self._target_s or len(self._q) <= 1:
            self._first_above_time = None
            return False
        if self._first_above_time is None:
            self._first_above_time = now + self._interval_s
            return False
        return now >= self._first_above_time

    def _apply_action(self, pkt: "Packet", now: float) -> bool:
        """Mark/protect/decide-drop the head packet. True if it must drop."""
        st = self.stats
        if self._ecn and pkt.is_ect:
            pkt.mark_ce()
            st.marks += 1
            self._trace("mark", pkt, now)
            return False
        if is_protected(pkt, self._protection):
            st.protected += 1
            return False
        return True

    def _drop_head(self, now: float) -> None:
        """Remove the head packet as a CoDel early drop.

        The packet was already counted as an arrival at enqueue time, so
        only the drop-side counters move here — departures must NOT be
        credited (the packet never leaves on the wire).
        """
        # Advance the occupancy integral BEFORE the pop (same order as the
        # base-class dequeue): the elapsed interval was spent at the
        # pre-drop occupancy, so advancing afterwards under-credits the
        # time-averaged queue length by one packet per drop interval.
        self._advance_occupancy(now)
        pkt = self._q.popleft()
        self._bytes -= pkt.size
        st = self.stats
        st.drops_early += 1
        if pkt.is_pure_ack:
            st.ack_drops += 1
        if pkt.is_syn:
            st.syn_drops += 1
        if pkt.is_ect:
            st.ect_drops += 1
        # Head drops must be visible on the trace bus like every other
        # drop — otherwise conservation ledgers and `repro trace` exports
        # see the packet enter the queue and silently vanish.
        self._trace("drop", pkt, now)

    def dequeue(self, now: float):
        """Pop the next packet, applying the CoDel state machine."""
        while True:
            if not self._q:
                self._dropping = False
                return None
            head = self._q[0]
            sojourn = now - head.enqueued_at
            if not self._dropping:
                if self._should_act(sojourn, now):
                    self._dropping = True
                    # Control-law restart, remembering recent drop pressure.
                    delta = self._drop_count - self._last_drop_count
                    self._drop_count = (
                        delta if delta > 1 and now - self._drop_next
                        < 16 * self._interval_s else 1
                    )
                    self._drop_next = now + self._control_interval()
                    if self._apply_action(head, now):
                        self._last_drop_count = self._drop_count
                        self._drop_head(now)
                        continue
                return super().dequeue(now)
            # Dropping state.
            if sojourn < self._target_s:
                self._dropping = False
                self._first_above_time = None
                return super().dequeue(now)
            if now >= self._drop_next:
                self._drop_count += 1
                self._drop_next = now + self._control_interval()
                if self._apply_action(head, now):
                    self._last_drop_count = self._drop_count
                    self._drop_head(now)
                    continue
            return super().dequeue(now)
