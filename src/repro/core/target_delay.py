"""Target-delay parameterisation of queue thresholds.

The paper's evaluation sweeps the AQM configuration by **target delay**:
the queueing delay a packet experiences when the queue sits at the
threshold. For a drain rate ``R`` (bits/s), target delay ``d`` (s) and
mean packet size ``S`` (bytes), the threshold in packets is::

    K = max(1, round(d * R / (8 * S)))

Aggressive settings (tens to hundreds of microseconds) give small K,
loose settings (milliseconds) give large K. The same conversion drives
both the RED band configuration and the simple marking scheme so the
x-axes of Figures 2-4 line up across queue types.
"""

from __future__ import annotations

from repro.core.protection import ProtectionMode
from repro.core.red import RedParams
from repro.errors import ConfigError

__all__ = ["threshold_packets", "red_params_for_target_delay"]


def threshold_packets(
    target_delay_s: float, link_rate_bps: float, mean_pktsize: int = 1500
) -> int:
    """Convert a target queueing delay to a queue-length threshold in packets."""
    if target_delay_s <= 0:
        raise ConfigError(f"target delay must be positive, got {target_delay_s}")
    if link_rate_bps <= 0:
        raise ConfigError(f"link rate must be positive, got {link_rate_bps}")
    pkts = target_delay_s * link_rate_bps / (8.0 * mean_pktsize)
    return max(1, int(round(pkts)))


def red_params_for_target_delay(
    target_delay_s: float,
    link_rate_bps: float,
    mean_pktsize: int = 1500,
    protection: ProtectionMode = ProtectionMode.DEFAULT,
    dctcp_style: bool = False,
    use_instantaneous: bool = False,
    max_p: float = 0.1,
    wq: float = 0.002,
) -> RedParams:
    """Build :class:`RedParams` from a target delay.

    Two shapes are supported:

    * **band** (default): ``min_th = K``, ``max_th = 3K`` with gentle mode,
      the classic RED configuration guideline, which the paper's prior
      work used when tuning RED by target delay;
    * **dctcp_style**: ``min_th = max_th = K`` — both thresholds collapsed
      to one value, the original DCTCP recommendation for mimicking a
      marking scheme with RED.
    """
    k = threshold_packets(target_delay_s, link_rate_bps, mean_pktsize)
    if dctcp_style:
        min_th = max_th = float(k)
    else:
        min_th = float(k)
        max_th = float(3 * k)
    return RedParams(
        min_th=min_th,
        max_th=max_th,
        max_p=max_p,
        wq=wq,
        gentle=not dctcp_style,
        ecn=True,
        use_instantaneous=use_instantaneous or dctcp_style,
        mean_pktsize=mean_pktsize,
        protection=protection,
    ).validate()
