"""The paper's proposed AQM patch: early-drop protection classes.

Current ECN-enabled AQMs look only at the IP header's ECT bits when
deciding between *marking* and *early-dropping* a packet (paper, Section
II-B). The paper proposes protecting additional classes of non-ECT packets
from early drops, and evaluates three operational modes:

* ``DEFAULT`` — stock behaviour: only ECT-capable packets escape the early
  drop (they are CE-marked instead). Pure ACKs, SYN and SYN-ACK can be
  early-dropped.
* ``ECE`` — additionally protect any packet whose **TCP header carries the
  ECE bit**. Because ECN-setup SYN packets carry ECE and SYN-ACKs carry
  ECE|CWR, this mode protects connection establishment plus the fraction
  of ACKs echoing congestion.
* ``ACK_SYN`` — additionally protect **all pure ACKs** and all SYN /
  SYN-ACK packets, whether or not ECE is set.

Protection applies to *early* (AQM) drops only: when the physical buffer
is full, every packet is tail-dropped regardless of class, exactly as a
real switch would behave.
"""

from __future__ import annotations

import enum

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids core<->net cycle
    from repro.net.packet import Packet

__all__ = ["ProtectionMode", "is_protected"]


class ProtectionMode(enum.Enum):
    """Which non-ECT packets an AQM shields from early drops."""

    DEFAULT = "default"
    ECE = "ece"
    ACK_SYN = "ack+syn"

    def __str__(self) -> str:
        return self.value


def is_protected(pkt: "Packet", mode: ProtectionMode) -> bool:
    """True if ``pkt`` must not be early-dropped under ``mode``.

    Note this predicate is only consulted for packets that would otherwise
    be early-dropped — i.e. non-ECT packets, or ECT packets in a forced
    drop region.
    """
    if mode is ProtectionMode.DEFAULT:
        return False
    if mode is ProtectionMode.ECE:
        # SYN (ECE) and SYN-ACK (ECE|CWR) of an ECN-setup handshake carry
        # ECE in the TCP header, so they are covered by this check too.
        return pkt.has_ece
    if mode is ProtectionMode.ACK_SYN:
        return pkt.has_ece or pkt.is_pure_ack or pkt.is_syn
    raise ValueError(f"unknown protection mode: {mode!r}")
