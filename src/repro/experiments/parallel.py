"""Parallel, cache-aware, resumable execution of experiment cells.

The paper's evaluation grid is dozens of independent cells — (transport
variant × queue setup × buffer depth × target delay) — and each cell is a
pure function of its :class:`~repro.experiments.config.ExperimentConfig`:
:func:`~repro.experiments.runner.run_cell` builds its own kernel, RNG
registry, topology and engine from the config alone, and every random
stream is seeded from ``config.seed``. That purity is what makes the fan-
out trivial *and* bit-identical: a cell computes the same
:class:`~repro.stats.collect.RunMetrics` whether it runs in this process,
in a worker, or came out of the on-disk cache
(:mod:`repro.experiments.cache`).

:func:`run_cells` is the one sweep executor. ``jobs=1`` is the in-process
serial path (no executor, no pickling); ``jobs>1`` fans cells out over a
``ProcessPoolExecutor``. With a :class:`~repro.experiments.cache.ResultCache`
attached, completed cells are skipped up front (resume-after-interrupt is
just re-running the same command) and fresh results are persisted as they
complete, so an interrupt loses at most the cells in flight.

Progress callbacks fire in the parent as cells finish — completions from
all workers aggregate into one ``(done, total, label)`` stream, so a
:class:`~repro.telemetry.profiler.ProgressReporter` works unchanged;
cache hits are reported with a ``[cached]`` suffix.
"""

from __future__ import annotations

import time as _time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.cache import ResultCache, config_cache_key
from repro.experiments.config import CellResult, ExperimentConfig
from repro.experiments.runner import run_cell
from repro.telemetry.profiler import ProgressReporter

__all__ = ["SweepReport", "run_cells"]

#: ``(label, config)`` pairs, as produced by the grid builders.
Cells = Sequence[Tuple[str, ExperimentConfig]]

Progress = Callable[[int, int, str], None]


@dataclass
class SweepReport:
    """Outcome of one :func:`run_cells` invocation.

    ``results`` preserves the submission order of the cells;
    ``executed`` / ``cached`` / ``aliases`` partition the labels by
    whether the cell actually ran, was served from the cache, or was
    deduplicated onto an identical config elsewhere in the same
    submission (``aliases`` maps each such label to the label whose
    execution it shares — the result objects are the same).
    """

    results: Dict[str, CellResult] = field(default_factory=dict)
    executed: List[str] = field(default_factory=list)
    cached: List[str] = field(default_factory=list)
    aliases: Dict[str, str] = field(default_factory=dict)
    jobs: int = 1
    wall_s: float = 0.0


def _run_one(item: Tuple[str, ExperimentConfig]) -> Tuple[str, CellResult]:
    """Worker entry point: one cell, picklable in and out."""
    label, config = item
    return label, run_cell(config)


def run_cells(
    cells: Cells,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    resume: bool = True,
    progress: Optional[Progress] = None,
) -> SweepReport:
    """Execute ``cells``, optionally in parallel and against a cache.

    Parameters
    ----------
    cells:
        ``(label, config)`` pairs; labels must be unique.
    jobs:
        Worker processes. 1 (the default) runs everything in-process;
        parallel results are bit-identical to the serial path because a
        cell is a pure function of its config.
    cache:
        Optional :class:`ResultCache`. Fresh results are always written
        to it; completed cells are *read* from it only when ``resume``.
    resume:
        Serve cells already present in ``cache`` without re-running them.
    progress:
        Optional ``(done, total, label)`` callback, invoked in the
        calling process as each cell completes (cache hits included,
        labelled ``[cached]``).
    """
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    seen = set()
    for label, _cfg in cells:
        if label in seen:
            raise ExperimentError(f"duplicate cell label {label!r}")
        seen.add(label)

    t0 = _time.perf_counter()
    report = SweepReport(jobs=jobs)
    total = len(cells)
    done = 0

    def tick(label: str, suffix: str = "") -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total, label + suffix)

    # Dedup identical configs *within* this submission: the same cache
    # key under two labels executes once, and the aliases share the one
    # result object (a cell is a pure function of its config, and labels
    # are presentation-only — they appear nowhere in the result).
    pending: List[Tuple[str, ExperimentConfig]] = []
    results: Dict[str, CellResult] = {}
    primary_by_key: Dict[str, str] = {}
    aliases_of: Dict[str, List[str]] = {}
    for label, cfg in cells:
        hit = cache.get(cfg) if (cache is not None and resume) else None
        if hit is not None:
            results[label] = hit
            report.cached.append(label)
            tick(label, ProgressReporter.CACHED_SUFFIX)
            continue
        key = config_cache_key(cfg)
        primary = primary_by_key.get(key)
        if primary is not None:
            report.aliases[label] = primary
            aliases_of.setdefault(primary, []).append(label)
        else:
            primary_by_key[key] = label
            pending.append((label, cfg))

    def record(label: str, result: CellResult) -> None:
        results[label] = result
        report.executed.append(label)
        if cache is not None:
            cache.put(result)
        tick(label)
        for alias in aliases_of.get(label, ()):
            results[alias] = result
            tick(alias, ProgressReporter.DEDUP_SUFFIX)

    if jobs == 1 or len(pending) <= 1:
        for label, cfg in pending:
            record(label, run_cell(cfg))
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {pool.submit(_run_one, item): item[0]
                       for item in pending}
            not_done = set(futures)
            while not_done:
                finished, not_done = wait(not_done,
                                          return_when=FIRST_COMPLETED)
                for fut in finished:
                    # A worker exception (ExperimentError, ConfigError, …)
                    # re-raises here; completed cells are already in the
                    # cache, so the sweep is resumable past the failure.
                    label, result = fut.result()
                    record(label, result)

    # Hand results back in submission order regardless of completion order.
    report.results = {label: results[label] for label, _cfg in cells}
    report.wall_s = _time.perf_counter() - t0
    return report
