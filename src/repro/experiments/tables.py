"""Table I and Table II reproduction.

The paper's two tables are definitional (ECN codepoint encodings); the
reproduction checks our packet model agrees with them bit-for-bit and
renders them for the report.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.codepoints import (
    ECN_IP_CODEPOINTS,
    ECN_TCP_CODEPOINTS,
    render_table1,
    render_table2,
)
from repro.net.packet import (
    ECN_CE,
    ECN_ECT0,
    ECN_ECT1,
    ECN_NOT_ECT,
    FLAG_CWR,
    FLAG_ECE,
)

__all__ = [
    "verify_table1",
    "verify_table2",
    "render_table1",
    "render_table2",
]


def verify_table1() -> List[Tuple[str, bool]]:
    """Check the packet model's TCP flag bits against Table I.

    Table I gives the two TCP-header ECN flags. Our flag constants place
    ECE and CWR in the standard RFC 3168 positions (bits 6 and 7 of the
    flags byte); the table's 2-bit codepoint column orders them
    (ECE, CWR) = (01, 10) within the two-flag field.
    """
    checks = []
    rows = {r.name: r for r in ECN_TCP_CODEPOINTS}
    checks.append(("ECE row present", "ECE" in rows))
    checks.append(("CWR row present", "CWR" in rows))
    checks.append(("ECE codepoint 01", rows["ECE"].codepoint == "01"))
    checks.append(("CWR codepoint 10", rows["CWR"].codepoint == "10"))
    checks.append(("ECE flag is a distinct bit", FLAG_ECE == 0x40))
    checks.append(("CWR flag is a distinct bit", FLAG_CWR == 0x80))
    return checks


def verify_table2() -> List[Tuple[str, bool]]:
    """Check the packet model's IP ECN field against Table II."""
    rows = {r.name: r for r in ECN_IP_CODEPOINTS}
    return [
        ("Non-ECT is 00", int(rows["Non-ECT"].codepoint, 2) == ECN_NOT_ECT),
        ("ECT(0) is 10", int(rows["ECT(0)"].codepoint, 2) == ECN_ECT0),
        ("ECT(1) is 01", int(rows["ECT(1)"].codepoint, 2) == ECN_ECT1),
        ("CE is 11", int(rows["CE"].codepoint, 2) == ECN_CE),
        ("four codepoints", len(ECN_IP_CODEPOINTS) == 4),
    ]
