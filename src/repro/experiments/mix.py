"""Mixed-cluster coexistence cells: shuffle + RPC + background traffic.

The paper's core scenario is a *mixed-use* Hadoop cluster: a batch
shuffle sharing the fabric with latency-sensitive services. The main
grid (:mod:`repro.experiments.grids`) measures the shuffle alone; a
:class:`MixConfig` cell runs the shuffle **concurrently** with a
partition-aggregate RPC service (with per-query deadlines) and an
open-loop background flow mix drawn from an empirical CDF, then reports
per-workload results side by side: job runtime, RPC deadline-miss rate
and query-completion tail, and background FCT slowdown percentiles.

:func:`run_mix_cell` mirrors :func:`~repro.experiments.runner.run_cell`
(same rack builder, telemetry, validation and manifest plumbing — and
:func:`run_cell` dispatches here for a :class:`MixConfig`, so the
parallel sweep runner, result cache and bench harness all work on mix
cells unchanged); the per-workload buckets land under
``manifest["workloads"]``.

:func:`mix_grid` is the coexistence comparison: {DropTail, RED-default,
RED-ECE, RED-ACK+SYN, simple-marking} × {TCP-ECN, DCTCP}, the paper's
schemes ranked by how well the latency-sensitive co-tenants survive the
shuffle. :func:`render_mix_table` prints it.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.core.monitor import QueueMonitor
from repro.core.protection import ProtectionMode
from repro.errors import ConfigError, ExperimentError, MapReduceError
from repro.experiments.config import (
    SHALLOW_BUFFER_PACKETS,
    CellResult,
    QueueSetup,
)
from repro.mapreduce.cluster import ClusterSpec, NodeSpec
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.terasort import terasort_job
from repro.net.topology import build_single_rack
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.stats.collect import LatencyCollector, RunMetrics
from repro.tcp.endpoint import TcpConfig, TcpVariant
from repro.units import gbps, mb, us
from repro.workloads.cdf import named_cdf
from repro.workloads.metrics import flow_bucket
from repro.workloads.mix import WorkloadMix

__all__ = ["MixConfig", "run_mix_cell", "mix_grid", "render_mix_table"]


@dataclass(frozen=True)
class MixConfig:
    """One coexistence cell: shuffle + RPC + background on one rack.

    The shuffle fields mirror :class:`ExperimentConfig`; the ``rpc_*``
    and ``bg_*`` fields describe the two latency-sensitive co-tenants.
    ``bg_sizes`` is a CDF spec string (``"web-search"``,
    ``"data-mining"``, ``"fixed:N"``, ``"uniform:LO:HI"`` — see
    :func:`repro.workloads.cdf.named_cdf`), truncated at
    ``bg_max_bytes`` so one elephant draw cannot dominate a smoke run.
    """

    queue: QueueSetup
    variant: TcpVariant = TcpVariant.ECN
    n_hosts: int = 16
    link_rate_bps: float = gbps(1)
    link_delay_s: float = us(20)
    # batch co-tenant: the Terasort shuffle
    data_bytes: int = mb(64)
    block_bytes: int = mb(8)
    n_reducers: int = 16
    shuffle_parallelism: int = 5
    replication: int = 3
    # latency-sensitive co-tenant 1: partition-aggregate RPC
    rpc_rate_qps: float = 100.0
    rpc_fanout: int = 8
    rpc_response_bytes: int = 20_000
    rpc_deadline_s: Optional[float] = 0.02
    # latency-sensitive co-tenant 2: open-loop background flows
    bg_rate_fps: float = 25.0
    bg_sizes: str = "web-search"
    bg_max_bytes: Optional[int] = mb(1)
    seed: int = 42
    sim_horizon_s: float = 600.0
    #: After the shuffle finishes the workloads stop and the run drains
    #: for this long, so in-flight queries/flows can complete. Fixed (not
    #: load-dependent), keeping same-seed runs bit-identical.
    drain_s: float = 0.25
    monitor_interval_s: Optional[float] = None
    allow_timeout: bool = False
    #: Congestion-control registry key (:mod:`repro.tcp.cc`); ``None``
    #: keeps the variant's historical default (newreno / dctcp).
    cc: Optional[str] = None
    #: Endpoint-fidelity flaw profile (``repro.tcp.endpoint.FLAW_PROFILES``);
    #: ``None`` runs the corrected stack.
    flaw_profile: Optional[str] = None

    def validate(self) -> "MixConfig":
        """Raise :class:`ConfigError` on nonsensical values; return self."""
        self.queue.validate()
        from repro.tcp.cc import cc_names
        from repro.tcp.endpoint import FLAW_PROFILES

        if self.cc is not None and self.cc not in cc_names():
            raise ConfigError(
                f"unknown cc {self.cc!r}; known: {', '.join(cc_names())}")
        if self.flaw_profile is not None and self.flaw_profile not in FLAW_PROFILES:
            raise ConfigError(
                f"unknown flaw profile {self.flaw_profile!r}; "
                f"known: {', '.join(sorted(FLAW_PROFILES))}")
        if self.n_hosts < 2:
            raise ConfigError("need at least 2 hosts")
        if self.data_bytes <= 0 or self.block_bytes <= 0:
            raise ConfigError("sizes must be positive")
        if self.rpc_rate_qps <= 0 or self.bg_rate_fps <= 0:
            raise ConfigError("workload rates must be positive")
        if not (1 <= self.rpc_fanout <= self.n_hosts - 1):
            raise ConfigError(
                f"rpc fanout {self.rpc_fanout} needs 1..{self.n_hosts - 1}")
        if self.drain_s < 0:
            raise ConfigError("drain must be non-negative")
        named_cdf(self.bg_sizes)  # raises ConfigError on a bad spec
        return self

    def scaled(self, factor: float) -> "MixConfig":
        """Copy with the shuffle dataset scaled by ``factor``."""
        if factor <= 0:
            raise ConfigError(f"scale factor must be positive, got {factor}")
        return replace(self, data_bytes=max(1, int(self.data_bytes * factor)))

    def tcp_config(self) -> TcpConfig:
        """Transport configuration for this cell (shared by all tenants)."""
        cfg = TcpConfig(variant=self.variant, cc=self.cc)
        return cfg.with_flaw_profile(self.flaw_profile)

    def bg_cdf(self):
        """The background flow-size CDF, truncated at ``bg_max_bytes``."""
        cdf = named_cdf(self.bg_sizes)
        if self.bg_max_bytes is not None:
            cdf = cdf.truncated(self.bg_max_bytes)
        return cdf

    def label(self) -> str:
        """Human-readable cell id, ``mix/``-prefixed."""
        depth = "deep" if self.queue.is_deep else "shallow"
        td = (
            f"@{self.queue.target_delay_s * 1e6:.0f}us"
            if self.queue.target_delay_s is not None
            else ""
        )
        suffix = f"+{self.cc}" if self.cc is not None else ""
        if self.flaw_profile is not None:
            suffix += f"!{self.flaw_profile}"
        return f"mix/{self.variant}/{self.queue.label()}{td}/{depth}{suffix}"


def run_mix_cell(
    config: MixConfig,
    telemetry: Optional["Telemetry"] = None,  # noqa: F821 - forward ref
    checks: Optional["ValidationSuite"] = None,  # noqa: F821 - forward ref
) -> CellResult:
    """Execute one coexistence cell and return its measurements.

    The RPC and background workloads start at t=0 and run until the
    shuffle completes; then everything stops and the run drains for
    ``config.drain_s``. The returned :class:`CellResult` carries the
    shuffle-centric :class:`RunMetrics` (so mix cells flow through the
    cache/sweep/bench machinery unchanged) and a
    ``manifest["workloads"]`` dict with one bucket per workload —
    ``shuffle``, ``rpc`` and ``background``.
    """
    wall_start = _time.perf_counter()
    config.validate()
    sim = Simulator()
    rng = RngRegistry(seed=config.seed)
    tracer = telemetry.tracer if telemetry is not None else None
    if checks is not None and tracer is None:
        from repro.sim.trace import Tracer

        tracer = Tracer()

    def qdisc_factory(name: str):
        return config.queue.build(name, config.link_rate_bps, rng)

    spec = build_single_rack(
        sim,
        config.n_hosts,
        switch_qdisc=qdisc_factory,
        host_qdisc=qdisc_factory,
        link_rate_bps=config.link_rate_bps,
        link_delay_s=config.link_delay_s,
        tracer=tracer,
    )
    if checks is not None:
        checks.attach(sim, spec.network, tracer)
    latency = LatencyCollector().attach(spec.network)

    monitors: List[QueueMonitor] = []
    if config.monitor_interval_s is not None:
        for port in spec.hot_ports:
            mon = QueueMonitor(sim, port.qdisc, config.monitor_interval_s)
            mon.start()
            monitors.append(mon)

    tcp_cfg = config.tcp_config()
    mix = WorkloadMix(sim, spec.hosts, config.link_rate_bps)
    mix.add_rpc(
        "rpc", tcp_cfg, rng.stream("workload.rpc"),
        rate_qps=config.rpc_rate_qps, fanout=config.rpc_fanout,
        response_bytes=config.rpc_response_bytes,
        deadline_s=config.rpc_deadline_s,
    )
    mix.add_open_loop(
        "background", tcp_cfg, rng.stream("workload.bg"),
        rate_fps=config.bg_rate_fps, sizes=config.bg_cdf(),
    )

    def job_done(_result) -> None:
        # Shuffle over: stop offering load, drain in-flight work, halt.
        mix.stop_all()
        sim.schedule(config.drain_s, sim.stop)

    cluster = ClusterSpec(config.n_hosts, NodeSpec())
    job = terasort_job(
        config.data_bytes,
        block_size=config.block_bytes,
        n_reducers=config.n_reducers,
    )
    engine = MapReduceEngine(
        sim,
        spec,
        cluster,
        job,
        tcp_cfg,
        rng.stream("hdfs"),
        shuffle_parallelism=config.shuffle_parallelism,
        replication=config.replication,
        on_job_done=job_done,
    )
    if telemetry is not None:
        telemetry.attach(sim, spec, engine)
    engine.submit()
    mix.start()
    try:
        sim.run(until=config.sim_horizon_s)
    except MapReduceError:
        if not config.allow_timeout:
            raise

    timed_out = engine.result is None
    if timed_out and not config.allow_timeout:
        raise ExperimentError(
            f"cell {config.label()} did not finish within "
            f"{config.sim_horizon_s}s of simulated time"
        )
    if timed_out:
        mix.stop_all()
        runtime = config.sim_horizon_s
        bytes_shuffled = sum(r.fetched_bytes for r in engine.reduces)
    else:
        runtime = engine.result.runtime
        bytes_shuffled = engine.result.bytes_shuffled

    shuffle_flows = engine.shuffle_flow_results()
    rpc = mix["rpc"]
    bg = mix["background"]
    all_flows = shuffle_flows + rpc.flow_results + bg.results
    metrics = RunMetrics(
        runtime=runtime,
        bytes_transferred=bytes_shuffled,
        n_nodes=config.n_hosts,
        mean_latency=latency.mean,
        p99_latency=latency.percentile(99),
        packets_delivered=latency.count,
        queue=spec.network.aggregate_switch_stats(),
        flows_completed=sum(1 for f in all_flows if not f.failed),
        flows_failed=sum(1 for f in all_flows if f.failed),
        retransmits=sum(f.retransmits for f in all_flows),
        rtos=sum(f.rtos for f in all_flows),
        syn_retries=sum(f.syn_retries for f in all_flows),
        extra={
            "timed_out": 1.0 if timed_out else 0.0,
            "fetch_failures": float(engine.fetch_failures()),
            "rpc_deadline_miss_rate": rpc.deadline_miss_rate(),
            "rpc_queries_completed": float(len(rpc.results)),
            "bg_flows_completed": float(
                sum(1 for f in bg.results if not f.failed)),
        },
    )
    profile = telemetry.finish(sim) if telemetry is not None else None

    snapshots = [s for mon in monitors for s in mon.snapshots]
    if telemetry is not None and telemetry.queue_recorder is not None:
        snapshots.extend(telemetry.queue_recorder.snapshots())

    from repro.telemetry.manifest import build_manifest

    manifest = build_manifest(
        config,
        metrics,
        wall_s=_time.perf_counter() - wall_start,
        events=sim.events_processed,
        telemetry_snapshot=(telemetry.snapshot() if telemetry is not None
                            else None),
        profile=profile,
        kind="mix-cell",
    )
    workloads = mix.summary()
    shuffle_bucket = flow_bucket(shuffle_flows, config.link_rate_bps)
    shuffle_bucket["kind"] = "shuffle"
    shuffle_bucket["runtime_s"] = runtime
    shuffle_bucket["bytes_shuffled"] = int(bytes_shuffled)
    workloads["shuffle"] = shuffle_bucket
    manifest["workloads"] = workloads
    if checks is not None:
        checks.finish()
        manifest["validation"] = checks.as_dict()
    return CellResult(config=config, metrics=metrics, snapshots=snapshots,
                      manifest=manifest)


#: Queue schemes compared in the coexistence table, in rank order of the
#: paper's story: the broken default, the two fixes, the clean-slate
#: marking scheme, and the DropTail baseline.
MIX_SCHEMES: Tuple[Tuple[str, str, ProtectionMode], ...] = (
    ("droptail-shallow", "droptail", ProtectionMode.DEFAULT),
    ("red-default", "red", ProtectionMode.DEFAULT),
    ("red-ece", "red", ProtectionMode.ECE),
    ("red-ack+syn", "red", ProtectionMode.ACK_SYN),
    ("marking", "marking", ProtectionMode.DEFAULT),
)

#: RED/marking threshold for the coexistence cells (mid-sweep value).
MIX_TARGET_DELAY_S = us(200)


def mix_grid(scale: float = 1.0, seed: int = 42) -> List[Tuple[str, MixConfig]]:
    """The coexistence work list: 5 queue schemes × 2 ECN transports.

    Compatible with :func:`~repro.experiments.parallel.run_cells` (and
    therefore the result cache and resume logic).
    """
    cells: List[Tuple[str, MixConfig]] = []
    for variant in (TcpVariant.ECN, TcpVariant.DCTCP):
        for _name, kind, mode in MIX_SCHEMES:
            queue = QueueSetup(
                kind=kind,
                buffer_packets=SHALLOW_BUFFER_PACKETS,
                target_delay_s=(None if kind == "droptail"
                                else MIX_TARGET_DELAY_S),
                protection=mode,
            )
            cfg = MixConfig(queue=queue, variant=variant, seed=seed,
                            allow_timeout=True).scaled(scale)
            cells.append((cfg.label(), cfg))
    return cells


def _fmt(value, spec: str = ".3g") -> str:
    if value is None:
        return "-"
    return format(value, spec)


def render_mix_table(results: Dict[str, CellResult]) -> str:
    """ASCII coexistence table: one row per cell, tenants side by side.

    Columns: shuffle runtime, RPC deadline-miss rate and p99 query
    completion time, and background short-flow p99 FCT slowdown — the
    numbers the paper's mixed-cluster argument turns on.
    """
    header = (f"{'cell':<34} {'runtime_s':>9} {'rpc_miss':>8} "
              f"{'rpc_p99_ms':>10} {'bg_p99_slow':>11} {'pkt_p99_ms':>10}")
    lines = [header, "-" * len(header)]
    for label in sorted(results):
        cell = results[label]
        wl = (cell.manifest or {}).get("workloads", {})
        rpc = wl.get("rpc", {})
        bg = wl.get("background", {})
        qct_p99 = (rpc.get("qct_s") or {}).get("p99")
        bg_p99 = (((bg.get("size_bins") or {}).get("short") or {})
                  .get("slowdown") or {}).get("p99")
        lines.append(
            f"{label:<34} {_fmt(cell.metrics.runtime):>9} "
            f"{_fmt(rpc.get('deadline_miss_rate')):>8} "
            f"{_fmt(None if qct_p99 is None else qct_p99 * 1e3):>10} "
            f"{_fmt(bg_p99):>11} "
            f"{_fmt(cell.metrics.p99_latency * 1e3):>10}"
        )
    return "\n".join(lines)
