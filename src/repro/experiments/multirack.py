"""Multi-rack (leaf–spine) experiment extension.

The paper evaluates a single rack; its conclusions section expects the
findings to generalise. This module runs the same scaled Terasort on a
two-tier leaf–spine fabric with configurable oversubscription, so the
ACK-drop pathology and the fixes can be examined where cross-rack
shuffle flows share spine uplinks with returning ACKs.

Oversubscription is expressed the usual way: a factor F means each
leaf's aggregate uplink capacity is 1/F of its host-facing capacity
(implemented by scaling the per-uplink rate, keeping one uplink per
spine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.monitor import QueueMonitor
from repro.errors import ConfigError
from repro.experiments.config import CellResult, ExperimentConfig, QueueSetup
from repro.mapreduce.cluster import ClusterSpec, NodeSpec
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.terasort import terasort_job
from repro.net.topology import build_leaf_spine
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.stats.collect import LatencyCollector, RunMetrics

__all__ = ["MultiRackConfig", "run_multirack_cell"]


@dataclass(frozen=True)
class MultiRackConfig:
    """Leaf-spine variant of one experiment cell.

    ``base`` supplies the queue/transport/workload knobs; ``n_hosts``
    in base is ignored in favour of the rack dimensions here.
    """

    base: ExperimentConfig
    n_leaves: int = 4
    n_spines: int = 2
    hosts_per_leaf: int = 4
    oversubscription: float = 1.0

    def validate(self) -> "MultiRackConfig":
        """Raise :class:`ConfigError` on nonsensical values; return self."""
        self.base.validate()
        if self.n_leaves < 2:
            raise ConfigError("need >= 2 leaves for cross-rack traffic")
        if self.n_spines < 1 or self.hosts_per_leaf < 1:
            raise ConfigError("rack dimensions must be positive")
        if self.oversubscription < 1.0:
            raise ConfigError("oversubscription factor must be >= 1")
        return self

    @property
    def n_hosts(self) -> int:
        """Total host count across all leaves."""
        return self.n_leaves * self.hosts_per_leaf

    def uplink_rate_bps(self) -> float:
        """Per-spine uplink rate honouring the oversubscription factor."""
        aggregate_host = self.hosts_per_leaf * self.base.link_rate_bps
        return aggregate_host / (self.oversubscription * self.n_spines)


def run_multirack_cell(config: MultiRackConfig) -> CellResult:
    """Run one leaf-spine cell; metrics mirror :func:`run_cell`."""
    config.validate()
    base = config.base
    sim = Simulator()
    rng = RngRegistry(seed=base.seed)

    def qdisc_factory(name: str):
        return base.queue.build(name, base.link_rate_bps, rng)

    spec = build_leaf_spine(
        sim,
        config.n_leaves,
        config.n_spines,
        config.hosts_per_leaf,
        switch_qdisc=qdisc_factory,
        host_qdisc=qdisc_factory,
        link_rate_bps=base.link_rate_bps,
        link_delay_s=base.link_delay_s,
        uplink_rate_bps=config.uplink_rate_bps(),
    )
    latency = LatencyCollector().attach(spec.network)

    # Snapshot the congestible queues when the base config asks for
    # monitoring. ``hot_ports`` now folds in the leaf↔spine uplinks, so —
    # unlike the pre-fix behaviour, which watched only ToR downlinks —
    # the oversubscribed fabric bottleneck is actually observed.
    monitors: List[QueueMonitor] = []
    if base.monitor_interval_s is not None:
        for port in spec.hot_ports:
            mon = QueueMonitor(sim, port.qdisc, base.monitor_interval_s)
            mon.start()
            monitors.append(mon)

    cluster = ClusterSpec(config.n_hosts, NodeSpec())
    job = terasort_job(
        base.data_bytes,
        block_size=base.block_bytes,
        n_reducers=config.n_hosts,
    )
    engine = MapReduceEngine(
        sim, spec, cluster, job, base.tcp_config(), rng.stream("hdfs"),
        shuffle_parallelism=base.shuffle_parallelism,
        replication=base.replication,
        on_job_done=lambda _r: sim.stop(),
    )
    engine.submit()
    sim.run(until=base.sim_horizon_s)

    for mon in monitors:
        mon.stop()

    timed_out = engine.result is None
    if timed_out and not base.allow_timeout:
        from repro.errors import ExperimentError

        raise ExperimentError("multirack cell did not finish in the horizon")

    flows = engine.shuffle_flow_results()
    metrics = RunMetrics(
        runtime=base.sim_horizon_s if timed_out else engine.result.runtime,
        bytes_transferred=(
            sum(r.fetched_bytes for r in engine.reduces)
            if timed_out else engine.result.bytes_shuffled
        ),
        n_nodes=config.n_hosts,
        mean_latency=latency.mean,
        p99_latency=latency.percentile(99),
        packets_delivered=latency.count,
        queue=spec.network.aggregate_switch_stats(),
        flows_completed=sum(1 for f in flows if not f.failed),
        flows_failed=sum(1 for f in flows if f.failed),
        retransmits=sum(f.retransmits for f in flows),
        rtos=sum(f.rtos for f in flows),
        syn_retries=sum(f.syn_retries for f in flows),
        extra={"timed_out": 1.0 if timed_out else 0.0,
               "oversubscription": config.oversubscription},
    )
    snapshots = [s for mon in monitors for s in mon.snapshots]
    return CellResult(config=base, metrics=metrics, snapshots=snapshots)
