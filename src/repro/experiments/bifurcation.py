"""Bifurcation sweeps: walk one control-loop parameter across its
stability boundary and map the regimes.

The D2TCP-II analysis predicts that sweeping a TCP/AQM loop parameter —
the ECN marking threshold K (equivalently the target delay that sets
it), or the DCTCP EWMA gain g — moves the closed loop through a
bifurcation: on one side queues settle, on the other they fall into
sustained oscillation. :func:`run_bifurcation` measures exactly that
with :class:`~repro.experiments.probe.StabilityProbeConfig` cells: it
runs an initial coarse grid through the cached parallel sweep runner,
classifies every cell with the stability detector, and wherever two
adjacent grid points land in *different* regimes it inserts the
(geometric) midpoint and re-runs — recursively, so the stable↔oscillatory
boundary is bracketed ever tighter while the flat interior of the map
costs one cell per coarse point.

Everything rides the standard machinery: cells go through
:func:`~repro.experiments.parallel.run_cells` (parallel workers, result
cache, resume), the detector is stamped identically onto fresh runs and
cache hits (see :func:`~repro.experiments.runner.apply_analyses`), and
the resulting :class:`StabilityMap` renders to JSON, an ASCII regime
table, and the SVG regime map in :mod:`repro.plotting.charts`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stability import CLASS_STABLE, StabilityAnalysis
from repro.errors import ExperimentError
from repro.experiments.config import CellResult
from repro.experiments.parallel import run_cells
from repro.experiments.probe import StabilityProbeConfig
from repro.experiments.runner import apply_analyses
from repro.telemetry.manifest import config_to_dict

__all__ = [
    "STABILITY_MAP_SCHEMA",
    "AXES",
    "RegimePoint",
    "Transition",
    "StabilityMap",
    "run_bifurcation",
    "render_regime_table",
]

STABILITY_MAP_SCHEMA = "repro.stability_map/v1"

#: Sweepable axes: name -> (StabilityProbeConfig copier, unit label).
AXES = {
    "target-delay": (StabilityProbeConfig.with_target_delay, "s"),
    "dctcp-g": (StabilityProbeConfig.with_dctcp_g, ""),
}


@dataclass(frozen=True)
class RegimePoint:
    """One swept parameter value and its stability verdict."""

    value: float
    label: str
    classification: str
    confidence: float
    amplitude: float
    rel_amplitude: float
    period_s: Optional[float]
    refined: bool  #: inserted by refinement (not on the initial grid)

    @property
    def oscillatory(self) -> bool:
        """Binary regime: anything that is not ``stable``."""
        return self.classification != CLASS_STABLE

    def to_dict(self) -> Dict[str, object]:
        return {
            "value": self.value,
            "label": self.label,
            "classification": self.classification,
            "confidence": self.confidence,
            "amplitude": self.amplitude,
            "rel_amplitude": self.rel_amplitude,
            "period_s": self.period_s,
            "refined": self.refined,
        }


@dataclass(frozen=True)
class Transition:
    """A bracketed stable↔oscillatory boundary after refinement."""

    lo: float
    hi: float
    lo_class: str
    hi_class: str
    #: Midpoints the refiner inserted inside the original coarse interval
    #: enclosing this boundary (>= 1 means the bracket was tightened
    #: automatically).
    refinements: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "lo_class": self.lo_class,
            "hi_class": self.hi_class,
            "refinements": self.refinements,
        }


@dataclass
class StabilityMap:
    """Outcome of one bifurcation sweep: points, boundaries, sweep stats."""

    axis: str
    base_label: str
    points: List[RegimePoint]
    transitions: List[Transition]
    base_config: Dict[str, object] = field(default_factory=dict)
    executed: int = 0
    cached: int = 0
    rounds: int = 0
    wall_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """The JSON artifact (``repro.stability_map/v1``)."""
        return {
            "schema": STABILITY_MAP_SCHEMA,
            "axis": self.axis,
            "base_label": self.base_label,
            "base_config": self.base_config,
            "points": [p.to_dict() for p in self.points],
            "transitions": [t.to_dict() for t in self.transitions],
            "sweep": {
                "executed": self.executed,
                "cached": self.cached,
                "rounds": self.rounds,
                "wall_s": self.wall_s,
            },
        }


def _point_from_cell(value: float, cell: CellResult,
                     refined: bool) -> RegimePoint:
    block = cell.manifest["stability"]
    dominant = None
    for q in block["queues"]:
        if q["name"] == block["dominant_queue"]:
            dominant = q
            break
    return RegimePoint(
        value=value,
        label=cell.config.label(),
        classification=block["classification"],
        confidence=block["confidence"],
        amplitude=0.0 if dominant is None else dominant["amplitude"],
        rel_amplitude=0.0 if dominant is None else dominant["rel_amplitude"],
        period_s=None if dominant is None else dominant["period_s"],
        refined=refined,
    )


def run_bifurcation(
    base: StabilityProbeConfig,
    axis: str,
    values: Sequence[float],
    rounds: int = 3,
    min_ratio: float = 1.05,
    jobs: int = 1,
    cache=None,
    resume: bool = True,
    progress=None,
    analysis: Optional[StabilityAnalysis] = None,
) -> StabilityMap:
    """Sweep ``axis`` over ``values``, refining near regime boundaries.

    Parameters
    ----------
    base:
        The probe cell every swept cell is derived from.
    axis:
        One of :data:`AXES` (``"target-delay"`` sweeps the queue's target
        delay — i.e. the ECN threshold K — ``"dctcp-g"`` the DCTCP gain).
    values:
        Initial coarse grid (positive, at least 2 distinct values).
    rounds:
        Maximum refinement passes after the initial grid. Each pass
        inserts the geometric midpoint of every adjacent pair whose
        binary regimes (stable vs oscillatory) differ, then re-runs just
        those cells through the sweep runner.
    min_ratio:
        Stop refining a pair once ``hi / lo`` falls below this — the
        boundary is bracketed tightly enough.
    jobs, cache, resume, progress:
        Passed to :func:`~repro.experiments.parallel.run_cells`
        unchanged. A :class:`ProgressReporter` keeps a correct cumulative
        ETA across the refinement batches.
    """
    if axis not in AXES:
        raise ExperimentError(
            f"unknown bifurcation axis {axis!r}; have {sorted(AXES)}")
    copier, _unit = AXES[axis]
    grid = sorted(set(float(v) for v in values))
    if len(grid) < 2:
        raise ExperimentError("bifurcation needs at least 2 distinct values")
    if grid[0] <= 0:
        raise ExperimentError("bifurcation values must be positive")
    sa = analysis if analysis is not None else StabilityAnalysis()

    def cell_for(value: float) -> Tuple[str, StabilityProbeConfig]:
        cfg = copier(base, value)
        # The config label rounds (e.g. to whole µs); key the sweep by the
        # exact value so refined midpoints can't collide.
        return f"{axis}={value:.9g}|{cfg.label()}", cfg

    points: Dict[float, RegimePoint] = {}
    initial = set(grid)
    executed = cached = 0
    wall = 0.0
    todo = list(grid)
    rounds_run = 0
    for _round in range(rounds + 1):
        if not todo:
            break
        report = run_cells([cell_for(v) for v in todo], jobs=jobs,
                           cache=cache, resume=resume, progress=progress)
        executed += len(report.executed)
        cached += len(report.cached)
        wall += report.wall_s
        for v, (label, _cfg) in zip(todo, [cell_for(v) for v in todo]):
            cell = report.results[label]
            # Stamp the detector uniformly on fresh runs and cache hits:
            # the analysis is a pure function of the cached snapshots.
            apply_analyses(cell, [sa])
            points[v] = _point_from_cell(v, cell, refined=v not in initial)
        rounds_run += 1
        if _round == rounds:
            break
        todo = []
        ordered = sorted(points)
        for lo, hi in zip(ordered, ordered[1:]):
            if points[lo].oscillatory == points[hi].oscillatory:
                continue
            if hi / lo < min_ratio:
                continue
            mid = (lo * hi) ** 0.5
            if mid not in points:
                todo.append(mid)

    ordered = sorted(points)
    transitions: List[Transition] = []
    for lo, hi in zip(ordered, ordered[1:]):
        if points[lo].oscillatory == points[hi].oscillatory:
            continue
        # How many inserted midpoints landed inside the coarse interval
        # that originally enclosed this boundary?
        coarse_lo = max((g for g in grid if g <= lo), default=lo)
        coarse_hi = min((g for g in grid if g >= hi), default=hi)
        n_ref = sum(1 for v in ordered
                    if coarse_lo < v < coarse_hi and v not in initial)
        transitions.append(Transition(
            lo=lo, hi=hi,
            lo_class=points[lo].classification,
            hi_class=points[hi].classification,
            refinements=n_ref,
        ))

    return StabilityMap(
        axis=axis,
        base_label=base.label(),
        points=[points[v] for v in ordered],
        transitions=transitions,
        base_config=config_to_dict(base),
        executed=executed,
        cached=cached,
        rounds=rounds_run,
        wall_s=wall,
    )


def _fmt_value(axis: str, value: float) -> str:
    if axis == "target-delay":
        return f"{value * 1e6:.5g}us"
    return f"{value:.5g}"


def render_regime_table(m: StabilityMap) -> str:
    """ASCII regime map: one row per swept value, boundaries marked."""
    header = (f"{'value':>12} {'regime':<18} {'conf':>5} {'amp_pkts':>9} "
              f"{'rel_amp':>8} {'period':>10}  ")
    lines = [
        f"stability map: {m.base_label} over {m.axis} "
        f"({m.executed} run, {m.cached} cached, {m.rounds} rounds)",
        header,
        "-" * len(header),
    ]
    boundaries = {t.lo for t in m.transitions}
    for p in m.points:
        period = "-" if p.period_s is None else f"{p.period_s * 1e3:.3g}ms"
        mark = " *" if p.refined else ""
        lines.append(
            f"{_fmt_value(m.axis, p.value):>12} {p.classification:<18} "
            f"{p.confidence:>5.2f} {p.amplitude:>9.2f} "
            f"{p.rel_amplitude:>8.2f} {period:>10}{mark}"
        )
        if p.value in boundaries:
            lines.append(f"{'':>12} --- stable/oscillatory boundary ---")
    if m.transitions:
        lines.append("")
        for t in m.transitions:
            lines.append(
                f"transition: {t.lo_class} -> {t.hi_class} in "
                f"[{_fmt_value(m.axis, t.lo)}, {_fmt_value(m.axis, t.hi)}] "
                f"({t.refinements} refinement"
                f"{'s' if t.refinements != 1 else ''})"
            )
    else:
        lines.append("no regime transitions detected on this grid")
    lines.append("(* = grid point inserted by automatic refinement)")
    return "\n".join(lines)
