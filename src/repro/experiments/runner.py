"""Run one experiment cell end to end.

Builds the rack, attaches collectors, runs a scaled Terasort through the
MapReduce engine, and assembles :class:`~repro.stats.collect.RunMetrics`.
The same queue setup is applied to the switch egress ports *and* the host
NIC ports, matching the NS-2 duplex-link convention the paper's
methodology inherits (every queue on the path is the configured type).

Every cell also gets a **run manifest** — a JSON-serialisable record of
the config, seed, package version, git state, wall-clock timings, and the
final metrics (see :mod:`repro.telemetry.manifest`) — attached to the
returned :class:`CellResult`. Passing a
:class:`~repro.telemetry.Telemetry` session additionally wires the
metrics registry, time-series recorders, trace bus, and profiler through
the run; a run without one takes exactly the pre-telemetry code path.
"""

from __future__ import annotations

import time as _time
from typing import List, Optional

from repro.core.monitor import QueueMonitor
from repro.errors import ExperimentError, MapReduceError
from repro.experiments.config import CellResult, ExperimentConfig
from repro.mapreduce.cluster import ClusterSpec, NodeSpec
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.terasort import terasort_job
from repro.net.topology import build_single_rack
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.stats.collect import LatencyCollector, RunMetrics

__all__ = ["apply_analyses", "run_cell"]


def apply_analyses(cell: CellResult, analyses, telemetry=None) -> CellResult:
    """Stamp each analysis' block into ``cell.manifest`` (in place).

    An analysis is any object with a ``key`` attribute (the manifest key)
    and an ``analyze(cell, telemetry=None) -> dict`` method that is a
    pure function of the finished run's recorded data — e.g.
    :class:`~repro.analysis.stability.StabilityAnalysis`. Because the
    input (``cell.snapshots`` + metrics) round-trips through the result
    cache exactly, applying an analysis to a cache hit produces the same
    block as applying it to the fresh run, so sweep drivers can stamp
    hits and misses uniformly after :func:`run_cells`.
    """
    if cell.manifest is None:
        cell.manifest = {}
    for analysis in analyses:
        cell.manifest[analysis.key] = analysis.analyze(cell, telemetry)
    return cell


def run_cell(
    config: ExperimentConfig,
    telemetry: Optional["Telemetry"] = None,  # noqa: F821 - forward ref
    checks: Optional["ValidationSuite"] = None,  # noqa: F821 - forward ref
    analyses: Optional[list] = None,
) -> CellResult:
    """Execute one grid cell and return its measurements.

    Parameters
    ----------
    config:
        The cell configuration.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` session (registry,
        recorders, profiler).
    checks:
        Optional :class:`~repro.validate.ValidationSuite`. When given,
        its checkers are attached to the run's trace bus before any
        traffic and finished after the run; the result lands under
        ``manifest["validation"]``. Checkers only observe, so an armed
        run is bit-identical to an unarmed one. If no telemetry session
        is supplied, a private tracer is created for the checkers.
    analyses:
        Optional post-run analyses (see :func:`apply_analyses`). Each
        runs *after* the simulation finished, on the recorded data only,
        and lands under ``manifest[analysis.key]`` — so an analysed run
        is bit-identical to a plain one.
    """
    # Coexistence cells (MixConfig) and stability probes share this entry
    # point so the sweep runner, result cache and bench harness handle
    # them transparently.
    from repro.experiments.bulkcell import BulkConfig, run_bulk_cell
    from repro.experiments.fixedk import FixedKConfig, run_fixedk_cell
    from repro.experiments.mix import MixConfig, run_mix_cell
    from repro.experiments.probe import StabilityProbeConfig, run_probe_cell

    if isinstance(config, MixConfig):
        cell = run_mix_cell(config, telemetry=telemetry, checks=checks)
        return apply_analyses(cell, analyses or (), telemetry)
    if isinstance(config, StabilityProbeConfig):
        cell = run_probe_cell(config, telemetry=telemetry, checks=checks)
        return apply_analyses(cell, analyses or (), telemetry)
    if isinstance(config, FixedKConfig):
        cell = run_fixedk_cell(config, telemetry=telemetry, checks=checks)
        return apply_analyses(cell, analyses or (), telemetry)
    if isinstance(config, BulkConfig):
        cell = run_bulk_cell(config, telemetry=telemetry, checks=checks)
        return apply_analyses(cell, analyses or (), telemetry)

    wall_start = _time.perf_counter()
    config.validate()
    sim = Simulator()
    rng = RngRegistry(seed=config.seed)
    tracer = telemetry.tracer if telemetry is not None else None
    if checks is not None and tracer is None:
        from repro.sim.trace import Tracer

        tracer = Tracer()

    def qdisc_factory(name: str):
        return config.queue.build(name, config.link_rate_bps, rng)

    spec = build_single_rack(
        sim,
        config.n_hosts,
        switch_qdisc=qdisc_factory,
        host_qdisc=qdisc_factory,
        link_rate_bps=config.link_rate_bps,
        link_delay_s=config.link_delay_s,
        tracer=tracer,
    )
    if checks is not None:
        # Before any traffic: the conservation ledger must witness every
        # packet's first enqueue.
        checks.attach(sim, spec.network, tracer)
    latency = LatencyCollector().attach(spec.network)

    fluid = None
    if config.fidelity == "hybrid":
        from repro.sim.fluid import FluidManager

        # Before any traffic: senders self-register at construction.
        fluid = FluidManager(sim, spec.network, latency_credit=latency.credit)

    monitors: List[QueueMonitor] = []
    if config.monitor_interval_s is not None:
        for port in spec.hot_ports:
            mon = QueueMonitor(sim, port.qdisc, config.monitor_interval_s)
            mon.start()
            monitors.append(mon)

    cluster = ClusterSpec(config.n_hosts, NodeSpec())
    job = terasort_job(
        config.data_bytes,
        block_size=config.block_bytes,
        n_reducers=config.n_reducers,
    )
    engine = MapReduceEngine(
        sim,
        spec,
        cluster,
        job,
        config.tcp_config(),
        rng.stream("hdfs"),
        shuffle_parallelism=config.shuffle_parallelism,
        replication=config.replication,
        # Stop the kernel as soon as the job finishes; otherwise periodic
        # monitors would keep the event loop alive until the horizon.
        on_job_done=lambda _r: sim.stop(),
    )
    if telemetry is not None:
        telemetry.attach(sim, spec, engine)
    engine.submit()
    try:
        sim.run(until=config.sim_horizon_s)
    except MapReduceError:
        # A shuffle fetch was abandoned after its retry budget. Under
        # allow_timeout the cell reports as a (horizon-capped) failure;
        # otherwise the error is a genuine test failure.
        if not config.allow_timeout:
            raise

    timed_out = engine.result is None
    if timed_out and not config.allow_timeout:
        raise ExperimentError(
            f"cell {config.label()} did not finish within "
            f"{config.sim_horizon_s}s of simulated time"
        )

    if timed_out:
        runtime = config.sim_horizon_s
        bytes_shuffled = sum(r.fetched_bytes for r in engine.reduces)
        map_phase = 0.0
        locality = engine.hdfs.locality_fraction(
            [(m.block.block_id, m.node) for m in engine.maps if m.node is not None]
        )
        remote = 0.0
    else:
        runtime = engine.result.runtime
        bytes_shuffled = engine.result.bytes_shuffled
        map_phase = engine.result.map_phase_duration
        locality = engine.result.locality_fraction
        remote = float(engine.result.bytes_shuffled_remote)

    flows = engine.shuffle_flow_results()
    metrics = RunMetrics(
        runtime=runtime,
        bytes_transferred=bytes_shuffled,
        n_nodes=config.n_hosts,
        mean_latency=latency.mean,
        p99_latency=latency.percentile(99),
        packets_delivered=latency.count,
        queue=spec.network.aggregate_switch_stats(),
        flows_completed=sum(1 for f in flows if not f.failed),
        flows_failed=sum(1 for f in flows if f.failed),
        retransmits=sum(f.retransmits for f in flows),
        rtos=sum(f.rtos for f in flows),
        syn_retries=sum(f.syn_retries for f in flows),
        extra={
            "map_phase_s": map_phase,
            "locality": locality,
            "bytes_shuffled_remote": remote,
            "timed_out": 1.0 if timed_out else 0.0,
            "fetch_failures": float(engine.fetch_failures()),
        },
    )
    profile = telemetry.finish(sim) if telemetry is not None else None

    snapshots = [s for mon in monitors for s in mon.snapshots]
    if telemetry is not None and telemetry.queue_recorder is not None:
        snapshots.extend(telemetry.queue_recorder.snapshots())

    from repro.telemetry.manifest import build_manifest

    manifest = build_manifest(
        config,
        metrics,
        wall_s=_time.perf_counter() - wall_start,
        events=sim.events_processed,
        telemetry_snapshot=(telemetry.snapshot() if telemetry is not None
                            else None),
        profile=profile,
    )
    if fluid is not None:
        manifest["fluid"] = fluid.summary()
    if checks is not None:
        checks.finish()
        manifest["validation"] = checks.as_dict()
    cell = CellResult(config=config, metrics=metrics, snapshots=snapshots,
                      manifest=manifest)
    return apply_analyses(cell, analyses or (), telemetry)
