"""Content-addressed result cache for experiment cells.

A cell's cache key is the SHA-256 of its canonicalised
:class:`~repro.experiments.config.ExperimentConfig` (the same JSON-safe
rendering that goes into ``repro.run_manifest/v1`` manifests, serialised
with sorted keys), so any change to any config field — queue parameters,
seed, scale, transport — yields a different key. Entries are one JSON
file per cell under the cache directory, which makes resume-after-
interrupt a directory scan and lets concurrent sweeps share a cache.

Fidelity: entries round-trip :class:`~repro.stats.collect.RunMetrics`
(including the private occupancy-integral accumulators of
:class:`~repro.core.qdisc.QueueStats`) and every
:class:`~repro.core.monitor.QueueSnapshot` exactly — Python's JSON float
serialisation is ``repr``-based and round-trips bit-identically — so a
cache hit compares equal to a fresh run of the same config.

Caveat (documented in EXPERIMENTS.md): the key covers the *config*, not
the code. After editing simulator behaviour, point sweeps at a fresh
``--cache-dir`` (or delete the old one); a stale entry for an unchanged
config would otherwise be served as-is. Entries embed the package
version and ``git describe`` to make such audits possible.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, List, Optional

from repro.core.monitor import QueueSnapshot
from repro.core.qdisc import QueueStats
from repro.errors import ExperimentError
from repro.experiments.config import CellResult, ExperimentConfig
from repro.stats.collect import RunMetrics
from repro.telemetry.manifest import config_to_dict, git_describe

__all__ = ["CACHE_SCHEMA", "canonical_config_json", "config_cache_key",
           "ResultCache"]

CACHE_SCHEMA = "repro.cell_cache/v1"


def canonical_config_json(config: ExperimentConfig) -> str:
    """Canonical JSON rendering of a config (sorted keys, no whitespace)."""
    return json.dumps(config_to_dict(config), sort_keys=True,
                      separators=(",", ":"))


def config_cache_key(config: ExperimentConfig) -> str:
    """Content address of one cell: SHA-256 over the canonical config."""
    return hashlib.sha256(canonical_config_json(config).encode()).hexdigest()


def _metrics_to_entry(metrics: RunMetrics) -> Dict[str, Any]:
    """Exact (private-fields-included) dict rendering of RunMetrics."""
    return dataclasses.asdict(metrics)


def _metrics_from_entry(d: Dict[str, Any]) -> RunMetrics:
    d = dict(d)
    d["queue"] = QueueStats(**d["queue"])
    return RunMetrics(**d)


class ResultCache:
    """Directory of completed cells, one ``<sha256>.json`` file each.

    Parameters
    ----------
    root:
        Cache directory; created (with parents) if missing.

    Attributes
    ----------
    hits, misses, writes:
        Lookup/store counters for this instance (diagnostics and tests).
    """

    def __init__(self, root: str):
        if os.path.exists(root) and not os.path.isdir(root):
            raise ExperimentError(
                f"cache path {root!r} exists and is not a directory")
        os.makedirs(root, exist_ok=True)
        self.root = root
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- addressing ---------------------------------------------------------

    def path_for(self, config: ExperimentConfig) -> str:
        """Entry file for ``config`` (whether or not it exists yet)."""
        return os.path.join(self.root, config_cache_key(config) + ".json")

    def keys(self) -> List[str]:
        """Cache keys present on disk (the resume scan)."""
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.root)
            if name.endswith(".json")
        )

    def __len__(self) -> int:
        return len(self.keys())

    # -- lookup / store -----------------------------------------------------

    def get(self, config: ExperimentConfig) -> Optional[CellResult]:
        """Return the cached :class:`CellResult` for ``config``, or None.

        A corrupt or mismatched entry (hash collision, truncated write,
        schema drift) counts as a miss rather than an error: the cell is
        simply re-run and the entry overwritten.
        """
        path = self.path_for(config)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if (entry.get("schema") != CACHE_SCHEMA
                or entry.get("config") != config_to_dict(config)):
            self.misses += 1
            return None
        self.hits += 1
        return CellResult(
            config=config,
            metrics=_metrics_from_entry(entry["metrics"]),
            snapshots=[QueueSnapshot(**row) for row in entry["snapshots"]],
            manifest=entry.get("manifest"),
        )

    def put(self, result: CellResult) -> str:
        """Store one finished cell; returns the entry path.

        The write goes through a same-directory temp file + ``os.replace``
        so an interrupted sweep never leaves a truncated entry behind.
        """
        path = self.path_for(result.config)
        entry = {
            "schema": CACHE_SCHEMA,
            "key": config_cache_key(result.config),
            "label": result.config.label(),
            "config": config_to_dict(result.config),
            "version": _package_version(),
            "git": git_describe(),
            "metrics": _metrics_to_entry(result.metrics),
            "snapshots": [dataclasses.asdict(s) for s in result.snapshots],
            "manifest": result.manifest,
        }
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "w") as fh:
            json.dump(entry, fh, indent=2)
            fh.write("\n")
        os.replace(tmp, path)
        self.writes += 1
        return path


def _package_version() -> str:
    from repro import __version__

    return __version__
