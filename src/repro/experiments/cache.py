"""Content-addressed result cache for experiment cells.

A cell's cache key is the SHA-256 of its canonicalised
:class:`~repro.experiments.config.ExperimentConfig` (the same JSON-safe
rendering that goes into ``repro.run_manifest/v1`` manifests, serialised
with sorted keys), so any change to any config field — queue parameters,
seed, scale, transport — yields a different key. Entries are one JSON
file per cell under the cache directory, which makes resume-after-
interrupt a directory scan and lets concurrent sweeps share a cache.

Fidelity: entries round-trip :class:`~repro.stats.collect.RunMetrics`
(including the private occupancy-integral accumulators of
:class:`~repro.core.qdisc.QueueStats`) and every
:class:`~repro.core.monitor.QueueSnapshot` exactly — Python's JSON float
serialisation is ``repr``-based and round-trips bit-identically — so a
cache hit compares equal to a fresh run of the same config.

Caveat (documented in EXPERIMENTS.md): the key covers the *config*, not
the code. After editing simulator behaviour, point sweeps at a fresh
``--cache-dir`` (or delete the old one); a stale entry for an unchanged
config would otherwise be served as-is. Entries embed the package
version and ``git describe`` to make such audits possible.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time as _time
from itertools import count as _count
from typing import Any, Dict, List, Optional

from repro.core.monitor import QueueSnapshot
from repro.core.qdisc import QueueStats
from repro.errors import ExperimentError
from repro.experiments.config import CellResult, ExperimentConfig
from repro.stats.collect import RunMetrics
from repro.telemetry.manifest import config_to_dict, git_describe

__all__ = ["CACHE_SCHEMA", "canonical_config_json", "config_cache_key",
           "result_to_entry", "result_from_entry", "CacheEntryInfo",
           "ResultCache"]

CACHE_SCHEMA = "repro.cell_cache/v1"


def canonical_config_json(config: ExperimentConfig) -> str:
    """Canonical JSON rendering of a config (sorted keys, no whitespace)."""
    return json.dumps(config_to_dict(config), sort_keys=True,
                      separators=(",", ":"))


def config_cache_key(config: ExperimentConfig) -> str:
    """Content address of one cell: SHA-256 over the canonical config."""
    return hashlib.sha256(canonical_config_json(config).encode()).hexdigest()


def _metrics_to_entry(metrics: RunMetrics) -> Dict[str, Any]:
    """Exact (private-fields-included) dict rendering of RunMetrics."""
    return dataclasses.asdict(metrics)


def _metrics_from_entry(d: Dict[str, Any]) -> RunMetrics:
    d = dict(d)
    d["queue"] = QueueStats(**d["queue"])
    return RunMetrics(**d)


def result_to_entry(result: CellResult) -> Dict[str, Any]:
    """One finished cell as the JSON-safe cache-entry document.

    This is the on-disk cache format *and* the farm's wire format for
    shipping results between processes — both sides round-trip through
    the same codec, so a farm-served result compares equal to a
    cache-served one.
    """
    return {
        "schema": CACHE_SCHEMA,
        "key": config_cache_key(result.config),
        "label": result.config.label(),
        "config": config_to_dict(result.config),
        "version": _package_version(),
        "git": git_describe(),
        "metrics": _metrics_to_entry(result.metrics),
        "snapshots": [dataclasses.asdict(s) for s in result.snapshots],
        "manifest": result.manifest,
    }


def result_from_entry(entry: Dict[str, Any],
                      config: ExperimentConfig) -> CellResult:
    """Rebuild the :class:`CellResult` for ``config`` from an entry doc."""
    return CellResult(
        config=config,
        metrics=_metrics_from_entry(entry["metrics"]),
        snapshots=[QueueSnapshot(**row) for row in entry["snapshots"]],
        manifest=entry.get("manifest"),
    )


@dataclasses.dataclass
class CacheEntryInfo:
    """One on-disk entry as seen by ``repro cache`` (no metrics parsed)."""

    key: str
    label: Optional[str]  #: None when the entry is unreadable/corrupt
    bytes: int
    age_s: float
    path: str

    @property
    def ok(self) -> bool:
        """False for corrupt entries (unreadable JSON / wrong schema)."""
        return self.label is not None


class ResultCache:
    """Directory of completed cells, one ``<sha256>.json`` file each.

    Parameters
    ----------
    root:
        Cache directory; created (with parents) if missing.

    Attributes
    ----------
    hits, misses, writes:
        Lookup/store counters for this instance (diagnostics and tests).
    """

    def __init__(self, root: str):
        if os.path.exists(root) and not os.path.isdir(root):
            raise ExperimentError(
                f"cache path {root!r} exists and is not a directory")
        os.makedirs(root, exist_ok=True)
        self.root = root
        self.hits = 0
        self.misses = 0
        self.writes = 0
        # Per-instance temp-name counter: with the pid it makes every
        # in-flight write target a distinct file.
        self._tmp_ids = _count()

    # -- addressing ---------------------------------------------------------

    def path_for(self, config: ExperimentConfig) -> str:
        """Entry file for ``config`` (whether or not it exists yet)."""
        return os.path.join(self.root, config_cache_key(config) + ".json")

    def keys(self) -> List[str]:
        """Cache keys present on disk (the resume scan)."""
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.root)
            if name.endswith(".json")
        )

    def __len__(self) -> int:
        return len(self.keys())

    # -- lookup / store -----------------------------------------------------

    def get(self, config: ExperimentConfig) -> Optional[CellResult]:
        """Return the cached :class:`CellResult` for ``config``, or None.

        A corrupt or mismatched entry (hash collision, truncated write,
        schema drift) counts as a miss rather than an error: the cell is
        simply re-run and the entry overwritten.
        """
        path = self.path_for(config)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if (entry.get("schema") != CACHE_SCHEMA
                or entry.get("config") != config_to_dict(config)):
            self.misses += 1
            return None
        self.hits += 1
        return result_from_entry(entry, config)

    def put(self, result: CellResult) -> str:
        """Store one finished cell; returns the entry path.

        Atomic against any interruption a filesystem can survive: the
        entry is written to a same-directory temp file (named uniquely
        per process *and* per call, so two writers of the same key never
        stomp each other's partial file), fsynced, then ``os.replace``\\ d
        over the final name. A worker killed — even ``SIGKILL``\\ ed —
        mid-write leaves at worst a stale ``*.tmp`` file (collected by
        :meth:`prune`), never a truncated entry that would poison resume.
        """
        path = self.path_for(result.config)
        entry = result_to_entry(result)
        tmp = f"{path}.{os.getpid()}.{next(self._tmp_ids)}.tmp"
        with open(tmp, "w") as fh:
            json.dump(entry, fh, indent=2)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.writes += 1
        return path

    def put_entry(self, entry: Dict[str, Any]) -> str:
        """Store a pre-encoded entry document (farm scheduler path).

        The document must carry its own ``key`` (as produced by
        :func:`result_to_entry`); same atomic write discipline as
        :meth:`put`.
        """
        key = entry.get("key")
        if not key or entry.get("schema") != CACHE_SCHEMA:
            raise ExperimentError("not a cache entry document")
        path = os.path.join(self.root, key + ".json")
        tmp = f"{path}.{os.getpid()}.{next(self._tmp_ids)}.tmp"
        with open(tmp, "w") as fh:
            json.dump(entry, fh, indent=2)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.writes += 1
        return path

    # -- inspection / hygiene (the `repro cache` verb) -----------------------

    def entries(self) -> List[CacheEntryInfo]:
        """Scan the directory: one :class:`CacheEntryInfo` per entry.

        Corrupt entries (truncated JSON, wrong schema) appear with
        ``label=None`` rather than raising, so hygiene tooling can see —
        and prune — exactly what resume would skip.
        """
        now = _time.time()
        out: List[CacheEntryInfo] = []
        for key in self.keys():
            path = os.path.join(self.root, key + ".json")
            try:
                st = os.stat(path)
            except OSError:
                continue  # raced with a concurrent prune
            label: Optional[str] = None
            try:
                with open(path) as fh:
                    doc = json.load(fh)
                if doc.get("schema") == CACHE_SCHEMA:
                    label = doc.get("label") or "?"
            except (OSError, json.JSONDecodeError):
                pass
            out.append(CacheEntryInfo(
                key=key, label=label, bytes=st.st_size,
                age_s=max(0.0, now - st.st_mtime), path=path,
            ))
        return out

    def stale_tmp_files(self) -> List[str]:
        """Leftover ``*.tmp`` files from writers that died mid-put."""
        return sorted(
            os.path.join(self.root, name)
            for name in os.listdir(self.root)
            if name.endswith(".tmp")
        )

    def stats(self) -> Dict[str, Any]:
        """Summary for ``repro cache --stats`` (JSON-safe)."""
        infos = self.entries()
        ages = [e.age_s for e in infos]
        return {
            "root": self.root,
            "entries": len(infos),
            "corrupt": sum(1 for e in infos if not e.ok),
            "bytes": sum(e.bytes for e in infos),
            "oldest_age_s": max(ages) if ages else 0.0,
            "newest_age_s": min(ages) if ages else 0.0,
            "stale_tmp_files": len(self.stale_tmp_files()),
        }

    def prune(
        self,
        max_age_s: Optional[float] = None,
        keep_keys: Optional[set] = None,
        corrupt: bool = True,
        dry_run: bool = False,
    ) -> List[str]:
        """Delete entries by age and/or grid membership; returns pruned keys.

        Parameters
        ----------
        max_age_s:
            Remove entries older than this (mtime-based). None = no age
            criterion.
        keep_keys:
            When given, remove entries whose key is *not* in this set
            (grid-membership pruning: pass the keys of a current grid and
            everything orphaned by config changes goes away).
        corrupt:
            Also remove unreadable/wrong-schema entries (resume would
            re-run them anyway). Stale ``*.tmp`` files are always
            collected unless ``dry_run``.
        dry_run:
            Report what would be pruned without deleting anything.
        """
        doomed: List[str] = []
        for info in self.entries():
            if not info.ok:
                if corrupt:
                    doomed.append(info.key)
                continue
            if max_age_s is not None and info.age_s > max_age_s:
                doomed.append(info.key)
            elif keep_keys is not None and info.key not in keep_keys:
                doomed.append(info.key)
        if not dry_run:
            for key in doomed:
                try:
                    os.remove(os.path.join(self.root, key + ".json"))
                except OSError:
                    pass  # already gone
            for tmp in self.stale_tmp_files():
                try:
                    os.remove(tmp)
                except OSError:
                    pass
        return doomed


def _package_version() -> str:
    from repro import __version__

    return __version__
