"""Fixed-K ECN study on the leaf–spine fabric.

The related ``cloud-dcn-ecn`` experiment family (ROADMAP item 1): RED
collapsed to a single threshold (``min_th == max_th == K`` — the
"Fixed-K" configuration every DCTCP deployment actually runs) driving a
partition-aggregate incast across a two-tier Clos fabric, with K as the
primary control knob. The grid crosses:

* **K** — the marking threshold in packets (the Tiny-Buffer/Curvy-RED
  axis: too small starves throughput, too large defeats the latency
  goal and, per the paper, ACK drops explode first);
* **offered load** — query rate as a fraction of the fan-in capacity;
* **fan-in N** — responses converging on the aggregator;
* **protection mode** — the paper's patch ({default, ECE-bit, ACK+SYN});
* **TCP variant** — classic ECN (NewReno+ECN) vs DCTCP;
* **seeds**.

Every response crosses the fabric by construction: the aggregator is
pinned to the first host on leaf 0 and the workers are the hosts on the
*other* leaves, so the fan-in shares the spine→leaf0 uplinks — the
oversubscribed bottleneck :func:`~repro.net.topology.build_leaf_spine`
now exposes in ``uplink_ports``. Reported per cell: FCT slowdown
p50/p95/p99 and query-completion tails (``manifest["fixedk"]["rpc"]``),
the uplink ACK-loss rate (the paper's headline pathology), and the dense
queue-depth series of the bottleneck ports — which the PR-6 stability
layer classifies into the K-vs-load regime maps
(:func:`build_regime_maps`).

:func:`run_fixedk_cell` mirrors :func:`~repro.experiments.runner.run_cell`
(same tracer/validation/manifest plumbing, and ``run_cell`` dispatches
here for a :class:`FixedKConfig`), so fixedk cells flow through the
parallel sweep runner, the result cache, resume, and the armed-checker
bit-identity smoke unchanged.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.monitor import QueueMonitor
from repro.core.protection import ProtectionMode
from repro.core.red import RedParams, RedQueue
from repro.errors import ConfigError
from repro.experiments.config import SHALLOW_BUFFER_PACKETS, CellResult
from repro.net.topology import build_leaf_spine
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.stats.collect import LatencyCollector, RunMetrics
from repro.tcp.endpoint import TcpConfig, TcpVariant
from repro.units import gbps, us
from repro.workloads.rpc import PartitionAggregateWorkload

__all__ = [
    "FixedKConfig",
    "run_fixedk_cell",
    "fixedk_grid",
    "fixedk_smoke_cells",
    "render_fixedk_table",
    "FixedKRegimeMap",
    "build_regime_maps",
    "render_regime_grid",
]

FIXEDK_SCHEMA = "repro.fixedk/v1"

#: Default full-grid axes (kept modest: the CLI lets you widen them).
DEFAULT_K_VALUES = (4, 8, 16, 32, 64)
DEFAULT_LOADS = (0.4, 0.8)
DEFAULT_FANOUTS = (4, 8)
DEFAULT_PROTECTIONS = (
    ProtectionMode.DEFAULT, ProtectionMode.ECE, ProtectionMode.ACK_SYN)
DEFAULT_VARIANTS = (TcpVariant.ECN, TcpVariant.DCTCP)


@dataclass(frozen=True)
class FixedKConfig:
    """One Fixed-K cell: incast onto a pinned aggregator across the fabric.

    ``k_packets`` parameterises the switch RED queues directly (min_th ==
    max_th == K). ``gentle=False`` (default) is the *pure step*: every
    packet at or above K takes the early action. ``gentle=True`` is the
    NS-2 *gentle step* — probability ramps ``max_p``→1 between K and 2K
    (see the :class:`~repro.core.red.RedParams` docstring). ``use_avg``
    switches from the instantaneous queue (the DCTCP recommendation) to
    the classic EWMA.

    ``load`` is the offered fraction of the aggregator's fan-in capacity
    (the min of its edge link and the spine→leaf plane into its rack);
    the query rate derives from it via :meth:`rate_qps`.

    ``uplink_rates_bps`` (per spine) models asymmetric fabrics — the
    paper's 5 Gbps-bottleneck scenario pins one spine plane slower than
    the rest. When None, every uplink runs at
    ``hosts_per_leaf * link_rate / (oversubscription * n_spines)``.
    """

    k_packets: int = 16
    load: float = 0.6
    fanout: int = 4
    protection: ProtectionMode = ProtectionMode.DEFAULT
    variant: TcpVariant = TcpVariant.ECN
    # Fixed-K marking semantics
    gentle: bool = False
    use_avg: bool = False
    max_p: float = 1.0           #: gentle-step ramp start (unused when pure)
    buffer_packets: int = SHALLOW_BUFFER_PACKETS
    # fabric
    n_leaves: int = 4
    n_spines: int = 2
    hosts_per_leaf: int = 4
    link_rate_bps: float = gbps(1)
    link_delay_s: float = us(20)
    oversubscription: float = 2.0
    uplink_rates_bps: Optional[Tuple[float, ...]] = None
    per_packet_ecmp: bool = False
    # workload
    rpc_response_bytes: int = 20_000
    rpc_deadline_s: Optional[float] = 0.02
    duration_s: float = 0.4
    drain_s: float = 0.2
    monitor_interval_s: float = 0.001
    seed: int = 42
    #: "packet" | "hybrid" (see repro.sim.fluid). RPC responses are far
    #: below the fluid size floor, so hybrid mode exists here to prove
    #: the tier leaves short-flow cells untouched.
    fidelity: str = "packet"

    @property
    def n_hosts(self) -> int:
        """Total hosts in the fabric."""
        return self.n_leaves * self.hosts_per_leaf

    @property
    def max_fanout(self) -> int:
        """Workers available outside the aggregator's rack."""
        return (self.n_leaves - 1) * self.hosts_per_leaf

    def validate(self) -> "FixedKConfig":
        """Raise :class:`ConfigError` on nonsensical values; return self."""
        if self.k_packets < 1:
            raise ConfigError(f"K must be >= 1 packet, got {self.k_packets}")
        if self.k_packets > self.buffer_packets:
            raise ConfigError(
                f"K={self.k_packets} above the physical buffer "
                f"({self.buffer_packets} packets) never marks")
        if not (0.0 < self.load <= 2.0):
            raise ConfigError(f"load must be in (0, 2], got {self.load}")
        if self.n_leaves < 2:
            raise ConfigError("need >= 2 leaves for cross-rack incast")
        if self.n_spines < 1 or self.hosts_per_leaf < 1:
            raise ConfigError("fabric dimensions must be positive")
        if not (1 <= self.fanout <= self.max_fanout):
            raise ConfigError(
                f"fanout {self.fanout} needs 1..{self.max_fanout} remote "
                f"workers ({self.n_leaves} leaves x {self.hosts_per_leaf})")
        if self.oversubscription < 1.0:
            raise ConfigError("oversubscription factor must be >= 1")
        if (self.uplink_rates_bps is not None
                and len(self.uplink_rates_bps) != self.n_spines):
            raise ConfigError(
                f"uplink_rates_bps needs {self.n_spines} per-spine entries, "
                f"got {len(self.uplink_rates_bps)}")
        if self.rpc_response_bytes < 1:
            raise ConfigError("response size must be positive")
        if self.duration_s <= 0 or self.drain_s < 0:
            raise ConfigError("duration must be positive, drain >= 0")
        if not (0.0 < self.monitor_interval_s < self.duration_s):
            raise ConfigError("monitor interval must be in (0, duration)")
        if not (0.0 < self.max_p <= 1.0):
            raise ConfigError(f"max_p must be in (0, 1], got {self.max_p}")
        if self.fidelity not in ("packet", "hybrid"):
            raise ConfigError(f"unknown fidelity {self.fidelity!r}")
        return self

    # -- derived knobs --------------------------------------------------------

    def uplink_rates(self) -> Tuple[float, ...]:
        """Resolved per-spine uplink rates (bps)."""
        if self.uplink_rates_bps is not None:
            return tuple(float(r) for r in self.uplink_rates_bps)
        rate = (self.hosts_per_leaf * self.link_rate_bps
                / (self.oversubscription * self.n_spines))
        return (rate,) * self.n_spines

    def fanin_capacity_bps(self) -> float:
        """Structural capacity of the fan-in path into the aggregator.

        Responses traverse spine→leaf0 (one link per spine) and then the
        aggregator's edge downlink; the tighter of the two bounds the
        achievable aggregate response rate.
        """
        return min(self.link_rate_bps, sum(self.uplink_rates()))

    def rate_qps(self) -> float:
        """Query rate realising ``load`` on the fan-in bottleneck."""
        per_query_bits = self.fanout * self.rpc_response_bytes * 8.0
        return self.load * self.fanin_capacity_bps() / per_query_bits

    def red_params(self) -> RedParams:
        """The Fixed-K RED parameterisation for every switch port."""
        return RedParams(
            min_th=float(self.k_packets),
            max_th=float(self.k_packets),
            max_p=self.max_p,
            gentle=self.gentle,
            ecn=True,
            use_instantaneous=not self.use_avg,
            protection=self.protection,
        )

    def tcp_config(self) -> TcpConfig:
        """Transport configuration for the response flows."""
        return TcpConfig(variant=self.variant)

    def label(self) -> str:
        """Human-readable cell id, ``fixedk/``-prefixed (grid-unique)."""
        extras = ""
        if self.gentle:
            extras += "/gentle"
        if self.use_avg:
            extras += "/avg"
        if self.per_packet_ecmp:
            extras += "/spray"
        if self.fidelity == "hybrid":
            extras += "/hybrid"
        return (f"fixedk/{self.variant}/{self.protection}/K{self.k_packets}"
                f"/l{self.load:g}/n{self.fanout}/s{self.seed}{extras}")

    # -- sweep-axis helpers ---------------------------------------------------

    def with_k(self, k: int) -> "FixedKConfig":
        """Copy with the marking threshold replaced."""
        return replace(self, k_packets=k)

    def with_load(self, load: float) -> "FixedKConfig":
        """Copy with the offered load replaced."""
        return replace(self, load=load)


def run_fixedk_cell(
    config: FixedKConfig,
    telemetry: Optional["Telemetry"] = None,  # noqa: F821 - forward ref
    checks: Optional["ValidationSuite"] = None,  # noqa: F821 - forward ref
) -> CellResult:
    """Execute one Fixed-K cell and return its measurements.

    Queries are issued for ``duration_s`` simulated seconds, then the
    workload stops and the run drains (up to ``drain_s``) so in-flight
    queries complete. The bottleneck ports — every leaf↔spine uplink
    plus the aggregator's ToR downlink — are sampled every
    ``monitor_interval_s`` into ``CellResult.snapshots`` (the stability
    layer's input), and the per-query/per-flow tails plus uplink
    ACK-loss accounting land under ``manifest["fixedk"]``.
    """
    wall_start = _time.perf_counter()
    config.validate()
    sim = Simulator()
    rng = RngRegistry(seed=config.seed)
    tracer = telemetry.tracer if telemetry is not None else None
    if checks is not None and tracer is None:
        from repro.sim.trace import Tracer

        tracer = Tracer()

    params = config.red_params()

    def qdisc_factory(name: str):
        return RedQueue(config.buffer_packets, params,
                        rand=rng.uniform_fn(f"red.{name}"), name=name)

    spec = build_leaf_spine(
        sim,
        config.n_leaves,
        config.n_spines,
        config.hosts_per_leaf,
        switch_qdisc=qdisc_factory,
        host_qdisc=qdisc_factory,
        link_rate_bps=config.link_rate_bps,
        link_delay_s=config.link_delay_s,
        uplink_rate_bps=config.uplink_rates(),
        per_packet_ecmp=config.per_packet_ecmp,
        tracer=tracer,
    )
    if checks is not None:
        checks.attach(sim, spec.network, tracer)
    latency = LatencyCollector().attach(spec.network)

    fluid = None
    if config.fidelity == "hybrid":
        from repro.sim.fluid import FluidManager

        fluid = FluidManager(sim, spec.network, latency_credit=latency.credit)

    # Bottleneck instrumentation: the aggregator's ToR downlink (first
    # host-facing hot port) plus every fabric uplink.
    monitors: List[QueueMonitor] = []
    for port in [spec.hot_ports[0]] + spec.uplink_ports:
        mon = QueueMonitor(sim, port.qdisc, config.monitor_interval_s)
        mon.start()
        monitors.append(mon)

    if telemetry is not None:
        telemetry.attach(sim, spec, engine=None)

    # Aggregator pinned to leaf 0's first host; workers are every host on
    # the *other* leaves, so all responses cross the spine plane.
    aggregator = spec.hosts[0]
    remote = spec.hosts[config.hosts_per_leaf:]
    wl = PartitionAggregateWorkload(
        sim, [aggregator] + remote, config.tcp_config(),
        rng.stream("workload.fixedk"),
        rate_qps=config.rate_qps(), fanout=config.fanout,
        response_bytes=config.rpc_response_bytes,
        deadline_s=config.rpc_deadline_s,
        aggregator_index=0, name="fixedk-rpc",
    )
    wl.on_idle = sim.stop
    wl.start()
    sim.schedule(config.duration_s, wl.stop)
    sim.run(until=config.duration_s + config.drain_s)
    for mon in monitors:
        mon.stop()

    flows = wl.flow_results
    completed = [f for f in flows if not f.failed]
    metrics = RunMetrics(
        runtime=sim.now,
        bytes_transferred=sum(f.nbytes for f in completed),
        n_nodes=config.n_hosts,
        mean_latency=latency.mean,
        p99_latency=latency.percentile(99),
        packets_delivered=latency.count,
        queue=spec.network.aggregate_switch_stats(),
        flows_completed=len(completed),
        flows_failed=sum(1 for f in flows if f.failed),
        retransmits=sum(f.retransmits for f in flows),
        rtos=sum(f.rtos for f in flows),
        syn_retries=sum(f.syn_retries for f in flows),
        extra={
            "k_packets": float(config.k_packets),
            "load": config.load,
            "fanout": float(config.fanout),
            "rate_qps": config.rate_qps(),
            "queries_completed": float(len(wl.results)),
            "queries_open_at_end": float(wl.queries_open),
        },
    )
    profile = telemetry.finish(sim) if telemetry is not None else None

    snapshots = [s for mon in monitors for s in mon.snapshots]
    if telemetry is not None and telemetry.queue_recorder is not None:
        snapshots.extend(telemetry.queue_recorder.snapshots())

    from repro.telemetry.manifest import build_manifest
    from repro.workloads.metrics import rpc_bucket

    manifest = build_manifest(
        config,
        metrics,
        wall_s=_time.perf_counter() - wall_start,
        events=sim.events_processed,
        telemetry_snapshot=(telemetry.snapshot() if telemetry is not None
                            else None),
        profile=profile,
        kind="fixedk-cell",
    )
    manifest["fixedk"] = {
        "schema": FIXEDK_SCHEMA,
        "k_packets": config.k_packets,
        "load": config.load,
        "fanout": config.fanout,
        "protection": str(config.protection),
        "variant": str(config.variant),
        "gentle": config.gentle,
        "use_avg": config.use_avg,
        "per_packet_ecmp": config.per_packet_ecmp,
        "rate_qps": config.rate_qps(),
        "fanin_capacity_bps": config.fanin_capacity_bps(),
        "uplink_rates_bps": list(config.uplink_rates()),
        "rpc": rpc_bucket(wl, config.link_rate_bps),
        "uplinks": _uplink_bucket(spec.uplink_ports),
    }
    if fluid is not None:
        manifest["fluid"] = fluid.summary()
    if checks is not None:
        checks.finish()
        manifest["validation"] = checks.as_dict()
    return CellResult(config=config, metrics=metrics, snapshots=snapshots,
                      manifest=manifest)


def _uplink_bucket(uplink_ports) -> Dict[str, object]:
    """ACK-loss / marking accounting over the fabric uplinks only.

    The paper's pathology is disproportionate ACK loss; on a leaf–spine
    it concentrates on these ports, which aggregate switch stats dilute
    with the (mostly idle) ToR downlinks.
    """
    totals = {"arrivals": 0, "departures": 0, "marks": 0, "drops_tail": 0,
              "drops_early": 0, "protected": 0, "ect_arrivals": 0,
              "ect_drops": 0, "ack_arrivals": 0, "ack_drops": 0,
              "syn_arrivals": 0, "syn_drops": 0}
    per_port = []
    for port in uplink_ports:
        s = port.qdisc.stats
        row = {"name": port.name}
        for key in totals:
            val = getattr(s, key)
            totals[key] += val
            row[key] = val
        per_port.append(row)
    bucket: Dict[str, object] = dict(totals)
    bucket["ports"] = len(per_port)
    bucket["ack_loss_rate"] = (
        totals["ack_drops"] / totals["ack_arrivals"]
        if totals["ack_arrivals"] else 0.0)
    bucket["mark_rate"] = (
        totals["marks"] / totals["arrivals"] if totals["arrivals"] else 0.0)
    bucket["per_port"] = per_port
    return bucket


# -- grids ---------------------------------------------------------------------


def fixedk_grid(
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    loads: Sequence[float] = DEFAULT_LOADS,
    fanouts: Sequence[int] = DEFAULT_FANOUTS,
    protections: Sequence[ProtectionMode] = DEFAULT_PROTECTIONS,
    variants: Sequence[TcpVariant] = DEFAULT_VARIANTS,
    seeds: Sequence[int] = (42,),
    base: Optional[FixedKConfig] = None,
) -> List[Tuple[str, FixedKConfig]]:
    """The Fixed-K work list: K × load × fan-in × protection × variant × seed.

    Compatible with :func:`~repro.experiments.parallel.run_cells` (and
    therefore the result cache and resume logic). ``base`` supplies the
    fabric/workload knobs every cell shares.
    """
    base = base or FixedKConfig()
    cells: List[Tuple[str, FixedKConfig]] = []
    for variant in variants:
        for protection in protections:
            for load in loads:
                for fanout in fanouts:
                    for k in k_values:
                        for seed in seeds:
                            cfg = replace(
                                base, k_packets=int(k), load=float(load),
                                fanout=int(fanout), protection=protection,
                                variant=variant, seed=int(seed),
                            )
                            cells.append((cfg.label(), cfg))
    return cells


def fixedk_smoke_cells(seed: int = 42) -> List[Tuple[str, FixedKConfig]]:
    """The pinned mini-grid ``repro fixedk --smoke`` replays.

    2 K values × 2 fan-ins × 2 protection modes on a small 3-leaf /
    2-spine fabric with a short horizon — 8 cells, each cheap enough to
    run three times (twice plain, once armed) in CI.
    """
    base = FixedKConfig(
        n_leaves=3, n_spines=2, hosts_per_leaf=3,
        load=0.7, duration_s=0.1, drain_s=0.15,
        monitor_interval_s=0.0005, seed=seed,
    )
    return fixedk_grid(
        k_values=(8, 32), loads=(0.7,), fanouts=(3, 6),
        protections=(ProtectionMode.DEFAULT, ProtectionMode.ECE),
        variants=(TcpVariant.ECN,), seeds=(seed,), base=base,
    )


# -- reporting -----------------------------------------------------------------


def _fmt(value, spec: str = ".3g") -> str:
    if value is None:
        return "-"
    return format(value, spec)


def render_fixedk_table(results: Dict[str, CellResult]) -> str:
    """ASCII FCT-vs-K table: one row per cell, tails and ACK loss beside K.

    Columns: the grid coordinates, response FCT slowdown p50/p95/p99,
    query completion p99, the uplink ACK-loss rate and mark rate, and the
    stability regime when a stability block was stamped.
    """
    header = (f"{'cell':<44} {'slow_p50':>8} {'slow_p95':>8} {'slow_p99':>8} "
              f"{'qct_p99_ms':>10} {'ack_loss':>8} {'marks':>7} {'regime':>17}")
    lines = [header, "-" * len(header)]
    for label in sorted(results):
        cell = results[label]
        fx = (cell.manifest or {}).get("fixedk", {})
        slow = ((fx.get("rpc") or {}).get("responses") or {}).get("slowdown") or {}
        qct_p99 = ((fx.get("rpc") or {}).get("qct_s") or {}).get("p99")
        up = fx.get("uplinks") or {}
        regime = ((cell.manifest or {}).get("stability") or {}).get(
            "classification", "-")
        lines.append(
            f"{label:<44} {_fmt(slow.get('p50')):>8} {_fmt(slow.get('p95')):>8} "
            f"{_fmt(slow.get('p99')):>8} "
            f"{_fmt(None if qct_p99 is None else qct_p99 * 1e3):>10} "
            f"{_fmt(up.get('ack_loss_rate'), '.2%'):>8} "
            f"{_fmt(up.get('mark_rate'), '.2%'):>7} {regime:>17}"
        )
    return "\n".join(lines)


@dataclass
class FixedKRegimeMap:
    """A K-vs-load regime grid for one (variant, protection, fan-in) slice.

    ``cells`` maps ``(k_index, load_index)`` to the point's stability
    evidence (classification / confidence / rel_amplitude, plus the tail
    metrics) — the input of
    :func:`~repro.plotting.charts.grid_regime_map_to_svg` and
    :func:`render_regime_grid`.
    """

    variant: str
    protection: str
    fanout: int
    k_values: List[int] = field(default_factory=list)
    loads: List[float] = field(default_factory=list)
    cells: Dict[Tuple[int, int], Dict[str, object]] = field(default_factory=dict)

    @property
    def title(self) -> str:
        """Chart title for this slice."""
        return (f"Fixed-K regime map: {self.variant}/{self.protection} "
                f"N={self.fanout}")

    @property
    def slice_id(self) -> str:
        """Filesystem-safe slice identifier."""
        prot = self.protection.replace("+", "")
        return f"{self.variant}-{prot}-n{self.fanout}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dump (cells flattened into a point list)."""
        return {
            "schema": "repro.fixedk_regime_map/v1",
            "variant": self.variant,
            "protection": self.protection,
            "fanout": self.fanout,
            "k_values": list(self.k_values),
            "loads": list(self.loads),
            "points": [
                {"k": self.k_values[ki], "load": self.loads[li], **point}
                for (ki, li), point in sorted(self.cells.items())
            ],
        }


def build_regime_maps(results: Dict[str, CellResult]) -> List[FixedKRegimeMap]:
    """Slice fixedk results into K-vs-load regime maps.

    One map per (variant, protection, fan-in) combination present. Cells
    missing a ``manifest["stability"]`` block get one stamped via
    :class:`~repro.analysis.stability.StabilityAnalysis` (works on cache
    hits too — snapshots round-trip through the result cache exactly).
    Multi-seed grids keep the most severe regime per (K, load) point.
    """
    from repro.analysis.stability import StabilityAnalysis
    from repro.experiments.runner import apply_analyses

    severity = {"stable": 0, "chaotic-irregular": 1, "limit-cycle": 2}
    sa = StabilityAnalysis(keep_profiles=False)
    maps: Dict[Tuple[str, str, int], FixedKRegimeMap] = {}
    for _label, cell in sorted(results.items()):
        fx = (cell.manifest or {}).get("fixedk")
        if fx is None:
            continue
        if "stability" not in (cell.manifest or {}):
            apply_analyses(cell, [sa])
        stab = cell.manifest["stability"]
        key = (fx["variant"], fx["protection"], int(fx["fanout"]))
        m = maps.get(key)
        if m is None:
            m = maps[key] = FixedKRegimeMap(
                variant=key[0], protection=key[1], fanout=key[2])
        k, load = int(fx["k_packets"]), float(fx["load"])
        if k not in m.k_values:
            m.k_values.append(k)
        if load not in m.loads:
            m.loads.append(load)
        point = {
            "classification": stab["classification"],
            "confidence": stab["confidence"],
            "dominant_queue": stab["dominant_queue"],
            "rel_amplitude": max(
                [q["rel_amplitude"] for q in stab["queues"]] or [0.0]),
            "slowdown_p99": (((fx.get("rpc") or {}).get("responses") or {})
                             .get("slowdown") or {}).get("p99"),
            "ack_loss_rate": (fx.get("uplinks") or {}).get("ack_loss_rate"),
        }
        coord = (m.k_values.index(k), m.loads.index(load))
        prior = m.cells.get(coord)
        if (prior is None or severity[point["classification"]]
                >= severity[prior["classification"]]):
            m.cells[coord] = point
    out = []
    for key in sorted(maps):
        m = maps[key]
        # Re-index onto sorted axes so renderers can assume order.
        k_sorted = sorted(m.k_values)
        l_sorted = sorted(m.loads)
        remapped = {
            (k_sorted.index(m.k_values[ki]), l_sorted.index(m.loads[li])): pt
            for (ki, li), pt in m.cells.items()
        }
        m.k_values, m.loads, m.cells = k_sorted, l_sorted, remapped
        out.append(m)
    return out


#: One-letter regime codes for the ASCII grid.
_REGIME_CODES = {"stable": "S", "limit-cycle": "L", "chaotic-irregular": "C"}


def render_regime_grid(m: FixedKRegimeMap) -> str:
    """ASCII K-vs-load regime grid (S=stable, L=limit-cycle, C=irregular)."""
    lines = [m.title,
             "    S=stable  L=limit-cycle  C=chaotic-irregular  .=missing"]
    header = "load \\ K |" + "".join(f"{k:>7}" for k in m.k_values)
    lines.append(header)
    lines.append("-" * len(header))
    for li in range(len(m.loads) - 1, -1, -1):
        row = f"{m.loads[li]:>8.2f} |"
        for ki in range(len(m.k_values)):
            point = m.cells.get((ki, li))
            code = "." if point is None else _REGIME_CODES.get(
                str(point["classification"]), "?")
            row += f"{code:>7}"
        lines.append(row)
    return "\n".join(lines)
