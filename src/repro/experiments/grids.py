"""The paper's evaluation grid.

Figures 2-4 sweep the AQM target delay for {TCP-ECN, DCTCP} × {Default,
ECE-bit, ACK+SYN} on {shallow, deep} buffers, normalized to DropTail
baselines. We additionally sweep the true simple marking scheme (the
paper's second proposal) as its own series.

``run_grid`` executes every cell once and memoises results per
(scale, seed) so the three figures share one sweep. ``grid_cells`` is the
flat (label, config) work list; ``jobs``/``cache_dir`` fan the sweep out
over worker processes and/or an on-disk result cache (see
:mod:`repro.experiments.parallel`) — parallel results are bit-identical
to the serial path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.protection import ProtectionMode
from repro.experiments.config import (
    DEEP_BUFFER_PACKETS,
    SHALLOW_BUFFER_PACKETS,
    CellResult,
    ExperimentConfig,
    QueueSetup,
)
from repro.tcp.endpoint import TcpVariant
from repro.units import us

__all__ = [
    "SHALLOW_TARGET_DELAYS",
    "DEEP_TARGET_DELAYS",
    "PROTECTION_MODES",
    "VARIANTS",
    "baseline_configs",
    "figure_grid",
    "grid_cells",
    "run_grid",
]

#: Target-delay sweep for shallow (100-packet ≈ 1.2 ms) buffers:
#: aggressive 50 µs up to 1 ms. Beyond ~400 µs the RED band (min=K,
#: max=3K) exceeds the physical buffer and the AQM degenerates into
#: DropTail — the sweep deliberately includes that regime, as the paper's
#: "loose settings" do.
SHALLOW_TARGET_DELAYS: Tuple[float, ...] = (
    us(50), us(100), us(200), us(500), us(1000),
)

#: Target-delay sweep for deep (1000-packet ≈ 12 ms) buffers.
DEEP_TARGET_DELAYS: Tuple[float, ...] = (
    us(100), us(500), us(1000), us(2000), us(5000),
)

PROTECTION_MODES: Tuple[ProtectionMode, ...] = (
    ProtectionMode.DEFAULT,
    ProtectionMode.ECE,
    ProtectionMode.ACK_SYN,
)

#: The two ECN-capable transports the paper evaluates.
VARIANTS: Tuple[TcpVariant, ...] = (TcpVariant.ECN, TcpVariant.DCTCP)


def _buffer(deep: bool) -> int:
    return DEEP_BUFFER_PACKETS if deep else SHALLOW_BUFFER_PACKETS


def baseline_configs(scale: float = 1.0, seed: int = 42) -> Dict[str, ExperimentConfig]:
    """The two DropTail baselines everything is normalized against."""
    out = {}
    for name, deep in (("droptail-shallow", False), ("droptail-deep", True)):
        out[name] = ExperimentConfig(
            queue=QueueSetup(kind="droptail", buffer_packets=_buffer(deep)),
            variant=TcpVariant.RENO,
            seed=seed,
            allow_timeout=True,
        ).scaled(scale)
    return out


def figure_grid(
    deep: bool, scale: float = 1.0, seed: int = 42
) -> List[ExperimentConfig]:
    """All swept cells for one buffer depth (Figures 2-4 share them)."""
    delays = DEEP_TARGET_DELAYS if deep else SHALLOW_TARGET_DELAYS
    cells: List[ExperimentConfig] = []
    for variant in VARIANTS:
        for mode in PROTECTION_MODES:
            for d in delays:
                cells.append(
                    ExperimentConfig(
                        queue=QueueSetup(
                            kind="red",
                            buffer_packets=_buffer(deep),
                            target_delay_s=d,
                            protection=mode,
                        ),
                        variant=variant,
                        seed=seed,
                        allow_timeout=True,
                    ).scaled(scale)
                )
        # The paper's second proposal as its own series.
        for d in delays:
            cells.append(
                ExperimentConfig(
                    queue=QueueSetup(
                        kind="marking",
                        buffer_packets=_buffer(deep),
                        target_delay_s=d,
                    ),
                    variant=variant,
                    seed=seed,
                    allow_timeout=True,
                ).scaled(scale)
            )
    return cells


def grid_cells(
    deep: bool, scale: float = 1.0, seed: int = 42
) -> List[Tuple[str, ExperimentConfig]]:
    """The full (label, config) work list: swept cells + baselines."""
    cells = figure_grid(deep, scale, seed)
    baselines = baseline_configs(scale, seed)
    return [(cfg.label(), cfg) for cfg in cells] + list(baselines.items())


_GRID_CACHE: Dict[Tuple, Dict[str, CellResult]] = {}


def run_grid(
    deep: bool,
    scale: float = 1.0,
    seed: int = 42,
    use_cache: bool = True,
    progress=None,
    manifest_path: Optional[str] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    resume: bool = True,
) -> Dict[str, CellResult]:
    """Run baselines + swept cells for one buffer depth.

    Returns {cell label: CellResult}; baselines appear under their
    ``droptail-*`` labels. ``progress`` is an optional callable invoked
    with (done, total, label) after each cell
    (:class:`~repro.telemetry.profiler.ProgressReporter` fits). When
    ``manifest_path`` is set, a sweep manifest bundling every cell's run
    manifest is written there as JSON.

    ``jobs`` > 1 fans cells out over worker processes; ``cache_dir``
    persists per-cell results keyed by config content, and ``resume``
    (default on, when a cache is attached) skips cells already present.
    Neither changes the results: parallel and cached cells are
    bit-identical to the serial path.
    """
    from repro.experiments.cache import ResultCache
    from repro.experiments.parallel import run_cells

    key = (deep, scale, seed)
    results = _GRID_CACHE.get(key) if use_cache else None
    report = None
    if results is None:
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        report = run_cells(
            grid_cells(deep, scale, seed),
            jobs=jobs, cache=cache, resume=resume, progress=progress,
        )
        results = report.results
        if use_cache:
            _GRID_CACHE[key] = results

    if manifest_path is not None:
        from repro.telemetry.manifest import (
            build_sweep_manifest, write_manifest,
        )

        sweep = build_sweep_manifest(
            {label: res.manifest for label, res in results.items()},
            deep=deep, scale=scale, seed=seed, jobs=jobs,
            # report is None when the in-process memo served the grid:
            # nothing executed, every cell came from a cache.
            executed=(report.executed if report is not None else []),
            cached=(report.cached if report is not None
                    else list(results)),
            wall_s=(report.wall_s if report is not None else 0.0),
        )
        write_manifest(sweep, manifest_path)
    return results
