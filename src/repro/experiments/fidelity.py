"""Hybrid-vs-packet fidelity validation (powers ``repro fluid --smoke``).

Three claims make the hybrid tier trustworthy, each checked here:

1. **No-op where it must be.** On the fig2/fig3 smoke cells (Terasort
   shuffle: every flow shares ports) and the fixedk smoke cell (20 KB
   RPC responses: below the fluid size floor) the manager promotes
   nothing, and the hybrid run must be **bit-identical** to packet mode
   — same fingerprint, zero promotions.
2. **Accurate where it acts.** On the bulk pairs cell (see
   :mod:`repro.experiments.bulkcell`) most bytes flow through the fluid
   recurrence; RunMetrics must agree with the packet-mode run within
   the pinned per-field tolerances below, with byte/flow counts exact.
3. **Deterministic and observable.** Repeated hybrid runs are
   bit-identical (fingerprint + ``manifest["fluid"]``), and a run with
   every invariant checker armed keeps the same fingerprint with zero
   violations.

Tolerances are *pinned*, not adaptive: the bulk cell's hybrid runtime
currently lands within ~2% of packet mode and mean latency within ~1%;
the bounds below leave headroom for parameter drift but will catch a
broken recurrence (a wrong cwnd law or queue-delay term shifts runtime
and latency by far more than 5%).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

from repro.experiments.bulkcell import BulkConfig
from repro.experiments.config import CellResult
from repro.experiments.fixedk import FixedKConfig, run_fixedk_cell
from repro.experiments.runner import run_cell
from repro.validate.smoke import build_suite, fingerprint, smoke_cells

__all__ = [
    "FIDELITY_SCHEMA",
    "BULK_TOLERANCES",
    "EXACT_FIELDS",
    "compare_metrics",
    "fluid_smoke",
]

FIDELITY_SCHEMA = "repro.fidelity/v1"

#: Pinned relative tolerances for hybrid-vs-packet RunMetrics on cells
#: where the fluid tier actually engages. Keys are RunMetrics fields.
BULK_TOLERANCES: Dict[str, float] = {
    "runtime": 0.05,
    "mean_latency": 0.10,
    "p99_latency": 0.25,
    "packets_delivered": 0.05,
}

#: RunMetrics fields that must agree exactly regardless of fidelity:
#: the hybrid tier may re-time traffic but never change what was
#: delivered or whether flows succeeded.
EXACT_FIELDS: Tuple[str, ...] = (
    "bytes_transferred", "n_nodes", "flows_completed", "flows_failed",
)

#: Event-count fields where hybrid may legitimately differ a little
#: (the paced refill can avoid losses packet mode suffers, and vice
#: versa): absolute slack of 4 or 25% of the packet-mode count,
#: whichever is larger.
_SLACK_FIELDS: Tuple[str, ...] = ("retransmits", "rtos", "syn_retries")


def compare_metrics(packet: CellResult, hybrid: CellResult,
                    tolerances: Optional[Dict[str, float]] = None) -> Dict:
    """Field-by-field hybrid-vs-packet comparison block.

    Returns a JSON-safe dict: per-field packet/hybrid values, relative
    delta, the bound applied, and pass/fail; ``ok`` rolls them up.
    """
    tol = dict(BULK_TOLERANCES if tolerances is None else tolerances)
    fields = {}
    ok = True
    pm, hm = packet.metrics, hybrid.metrics
    for name in EXACT_FIELDS:
        p, h = getattr(pm, name), getattr(hm, name)
        good = p == h
        ok &= good
        fields[name] = {"packet": p, "hybrid": h, "bound": "exact", "ok": good}
    for name, bound in tol.items():
        p, h = float(getattr(pm, name)), float(getattr(hm, name))
        delta = abs(h - p) / p if p else abs(h - p)
        good = delta <= bound
        ok &= good
        fields[name] = {"packet": p, "hybrid": h, "delta": delta,
                        "bound": bound, "ok": good}
    for name in _SLACK_FIELDS:
        p, h = getattr(pm, name), getattr(hm, name)
        slack = max(4.0, 0.25 * p)
        good = abs(h - p) <= slack
        ok &= good
        fields[name] = {"packet": p, "hybrid": h, "bound": slack, "ok": good}
    return {"ok": ok, "fields": fields}


def _hybrid(config):
    return dataclasses.replace(config, fidelity="hybrid")


def fluid_smoke(progress: Optional[Callable[[str], None]] = None) -> Dict:
    """The ``repro fluid --smoke`` CI gate; returns the result payload.

    ``payload["ok"]`` is the gate verdict; the sub-blocks name every
    check so a red CI run says *which* property broke.
    """
    say = progress if progress is not None else (lambda _msg: None)
    payload: Dict = {"schema": FIDELITY_SCHEMA, "ok": True}

    # -- claim 1: bit-identical no-op on shared-path / short-flow cells --
    noop = []
    cells = dict(smoke_cells())
    for name in ("red-default", "marking"):
        cfg = cells[name]
        say(f"no-op gate: {name} (packet vs hybrid)")
        fp_p = fingerprint(run_cell(cfg))
        hy = run_cell(_hybrid(cfg))
        fl = hy.manifest["fluid"]
        entry = {
            "cell": name,
            "identical": fingerprint(hy) == fp_p,
            "promotions": fl["promotions"],
        }
        noop.append(entry)
        payload["ok"] &= entry["identical"] and fl["promotions"] == 0
    fx = FixedKConfig(duration_s=0.1, drain_s=0.1)
    say(f"no-op gate: {fx.label()} (packet vs hybrid)")
    fp_p = fingerprint(run_fixedk_cell(fx))
    hy = run_fixedk_cell(_hybrid(fx))
    fl = hy.manifest["fluid"]
    entry = {
        "cell": fx.label(),
        "identical": fingerprint(hy) == fp_p,
        "promotions": fl["promotions"],
    }
    noop.append(entry)
    payload["ok"] &= entry["identical"] and fl["promotions"] == 0
    payload["noop"] = noop

    # -- claim 2: pinned tolerances on the bulk pairs cell ---------------
    bulk = BulkConfig()
    say(f"tolerance gate: {bulk.label()} (packet vs hybrid)")
    packet_cell = run_cell(bulk)
    hybrid_cell = run_cell(_hybrid(bulk))
    fl = hybrid_cell.manifest["fluid"]
    comparison = compare_metrics(packet_cell, hybrid_cell)
    engaged = (fl["promotions"] > 0 and fl["fluid_bytes"]
               > 0.5 * hybrid_cell.metrics.bytes_transferred)
    payload["bulk"] = {
        "cell": bulk.label(),
        "fluid": fl,
        "engaged": engaged,
        "comparison": comparison,
    }
    payload["ok"] &= comparison["ok"] and engaged

    # -- claim 3: hybrid determinism + armed checkers --------------------
    say("determinism gate: repeated hybrid runs + armed checkers")
    hybrid_cfg = _hybrid(bulk)
    rerun = run_cell(hybrid_cfg)
    deterministic = (fingerprint(rerun) == fingerprint(hybrid_cell)
                     and rerun.manifest["fluid"] == fl)
    suite = build_suite(hybrid_cfg)
    armed = run_cell(hybrid_cfg, checks=suite)
    validation = armed.manifest["validation"]
    armed_identical = fingerprint(armed) == fingerprint(hybrid_cell)
    payload["determinism"] = {
        "repeat_identical": deterministic,
        "armed_identical": armed_identical,
        "validation_ok": validation["ok"],
        "violations": validation["violation_count"],
    }
    payload["ok"] &= deterministic and armed_identical and validation["ok"]
    return payload
