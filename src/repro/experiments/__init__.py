"""Experiment harness: the paper's evaluation grid and figure generators.

``run_cell`` executes one (transport × queue × buffer × target-delay)
configuration of the scaled Terasort; ``run_grid`` sweeps the full grid of
Figures 2-4 (optionally fanned out over worker processes against an
on-disk result cache — see :mod:`repro.experiments.parallel` and
:mod:`repro.experiments.cache`); the ``figures`` module projects grid
results into the same normalized series the paper plots; ``report``
writes the paper-vs-measured record.
"""

from repro.experiments.cache import ResultCache, config_cache_key
from repro.experiments.config import (
    DEEP_BUFFER_PACKETS,
    SHALLOW_BUFFER_PACKETS,
    CellResult,
    ExperimentConfig,
    QueueSetup,
)
from repro.experiments.figures import (
    fig1_queue_snapshot,
    fig2_runtime,
    fig3_throughput,
    fig4_latency,
    render_figure,
)
from repro.experiments.grids import (
    DEEP_TARGET_DELAYS,
    SHALLOW_TARGET_DELAYS,
    baseline_configs,
    figure_grid,
    grid_cells,
    run_grid,
)
from repro.experiments.fixedk import (
    FixedKConfig,
    build_regime_maps,
    fixedk_grid,
    fixedk_smoke_cells,
    render_fixedk_table,
    render_regime_grid,
    run_fixedk_cell,
)
from repro.experiments.mix import (
    MixConfig,
    mix_grid,
    render_mix_table,
    run_mix_cell,
)
from repro.experiments.bifurcation import (
    StabilityMap,
    render_regime_table,
    run_bifurcation,
)
from repro.experiments.parallel import SweepReport, run_cells
from repro.experiments.probe import StabilityProbeConfig, run_probe_cell
from repro.experiments.runner import apply_analyses, run_cell
from repro.experiments.report import check_claims, render_claims, write_experiments_md

__all__ = [
    "QueueSetup",
    "ExperimentConfig",
    "CellResult",
    "SHALLOW_BUFFER_PACKETS",
    "DEEP_BUFFER_PACKETS",
    "SHALLOW_TARGET_DELAYS",
    "DEEP_TARGET_DELAYS",
    "run_cell",
    "run_cells",
    "FixedKConfig",
    "run_fixedk_cell",
    "fixedk_grid",
    "fixedk_smoke_cells",
    "render_fixedk_table",
    "render_regime_grid",
    "build_regime_maps",
    "run_grid",
    "SweepReport",
    "ResultCache",
    "config_cache_key",
    "figure_grid",
    "grid_cells",
    "baseline_configs",
    "fig1_queue_snapshot",
    "fig2_runtime",
    "fig3_throughput",
    "fig4_latency",
    "render_figure",
    "check_claims",
    "render_claims",
    "write_experiments_md",
    "MixConfig",
    "run_mix_cell",
    "mix_grid",
    "render_mix_table",
    "StabilityProbeConfig",
    "run_probe_cell",
    "StabilityMap",
    "run_bifurcation",
    "render_regime_table",
    "apply_analyses",
]
