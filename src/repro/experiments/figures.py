"""Figure generators: the same series the paper plots, as data + ASCII.

* Figure 1 — a snapshot of a congested switch egress queue during the
  shuffle under default RED/ECN, plus the drop-asymmetry statistics that
  the snapshot illustrates.
* Figure 2 — Hadoop runtime vs target delay (RED), shallow/deep.
* Figure 3 — cluster throughput per node vs target delay, shallow/deep.
* Figure 4 — mean per-packet network latency vs target delay, shallow/deep.

Normalization follows the paper exactly (see
:mod:`repro.stats.normalize`): runtime and throughput against
DropTail-shallow always; latency against DropTail at the same buffer
depth. Reference (dashed) lines carry the other baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.monitor import QueueSnapshot
from repro.core.protection import ProtectionMode
from repro.errors import ExperimentError
from repro.experiments.config import (
    DEEP_BUFFER_PACKETS,
    SHALLOW_BUFFER_PACKETS,
    CellResult,
    ExperimentConfig,
    QueueSetup,
)
from repro.experiments.grids import (
    DEEP_TARGET_DELAYS,
    SHALLOW_TARGET_DELAYS,
    run_grid,
)
from repro.experiments.runner import run_cell
from repro.stats.normalize import normalize_to
from repro.tcp.endpoint import TcpVariant
from repro.units import us

__all__ = [
    "FigureData",
    "Fig1Data",
    "fig1_queue_snapshot",
    "fig2_runtime",
    "fig3_throughput",
    "fig4_latency",
    "render_figure",
    "render_fig1",
]

#: Queue labels swept in Figures 2-4, in legend order.
SERIES_QUEUES = ("red-default", "red-ece", "red-ack+syn", "marking")


@dataclass
class FigureData:
    """One sub-figure: x-axis delays, named series, reference lines."""

    name: str
    title: str
    deep: bool
    delays: Sequence[float]
    #: series label -> normalized value per delay
    series: Dict[str, List[float]] = field(default_factory=dict)
    #: dashed reference lines: label -> normalized value
    references: Dict[str, float] = field(default_factory=dict)
    normalized_against: str = ""

    def best(self, label: str) -> float:
        """Best (minimum) value of one series — used by shape assertions."""
        return min(self.series[label])


@dataclass
class Fig1Data:
    """Figure 1: queue composition snapshot + drop asymmetry evidence."""

    snapshot: QueueSnapshot
    mark_threshold_packets: int
    ack_arrival_share: float   #: pure ACKs as a fraction of all arrivals
    ack_drop_share: float      #: pure ACKs as a fraction of all drops
    ack_drop_rate: float       #: fraction of arriving ACKs dropped
    ect_drop_rate: float       #: fraction of arriving ECT packets dropped
    early_drops: int
    marks: int


def _grid_series(
    results: Dict[str, CellResult],
    deep: bool,
    metric,
) -> Dict[str, List[float]]:
    """Collect raw metric values for every (variant, queue) series."""
    delays = DEEP_TARGET_DELAYS if deep else SHALLOW_TARGET_DELAYS
    out: Dict[str, List[float]] = {}
    for variant in (TcpVariant.ECN, TcpVariant.DCTCP):
        for qlabel in SERIES_QUEUES:
            key = f"{variant}/{qlabel}"
            vals = []
            for d in delays:
                depth = "deep" if deep else "shallow"
                cell_label = f"{variant}/{qlabel}@{d * 1e6:.0f}us/{depth}"
                cell = results.get(cell_label)
                if cell is None:
                    raise ExperimentError(f"missing grid cell {cell_label}")
                vals.append(metric(cell))
            out[key] = vals
    return out


def fig2_runtime(deep: bool, scale: float = 1.0, seed: int = 42,
                 progress=None, jobs: int = 1) -> FigureData:
    """Figure 2(a/b): normalized Hadoop runtime vs target delay."""
    results = run_grid(deep, scale, seed, progress=progress, jobs=jobs)
    base = results["droptail-shallow"].runtime
    fig = FigureData(
        name="fig2b" if deep else "fig2a",
        title=f"Hadoop Runtime - RED ({'Deep' if deep else 'Shallow'} Buffers)",
        deep=deep,
        delays=DEEP_TARGET_DELAYS if deep else SHALLOW_TARGET_DELAYS,
        normalized_against="droptail-shallow runtime",
    )
    raw = _grid_series(results, deep, lambda c: c.runtime)
    fig.series = {k: [normalize_to(v, base) for v in vals] for k, vals in raw.items()}
    if deep:
        fig.references["droptail-deep"] = normalize_to(
            results["droptail-deep"].runtime, base
        )
    return fig


def fig3_throughput(deep: bool, scale: float = 1.0, seed: int = 42,
                    progress=None, jobs: int = 1) -> FigureData:
    """Figure 3(a/b): normalized per-node cluster throughput vs target delay."""
    results = run_grid(deep, scale, seed, progress=progress, jobs=jobs)
    base = results["droptail-shallow"].throughput_per_node
    fig = FigureData(
        name="fig3b" if deep else "fig3a",
        title=f"Cluster Throughput - RED ({'Deep' if deep else 'Shallow'} Buffers)",
        deep=deep,
        delays=DEEP_TARGET_DELAYS if deep else SHALLOW_TARGET_DELAYS,
        normalized_against="droptail-shallow throughput/node",
    )
    raw = _grid_series(results, deep, lambda c: c.throughput_per_node)
    fig.series = {k: [normalize_to(v, base) for v in vals] for k, vals in raw.items()}
    if deep:
        fig.references["droptail-deep"] = normalize_to(
            results["droptail-deep"].throughput_per_node, base
        )
    return fig


def fig4_latency(deep: bool, scale: float = 1.0, seed: int = 42,
                 progress=None, jobs: int = 1) -> FigureData:
    """Figure 4(a/b): normalized mean per-packet latency vs target delay.

    Latency is normalized to DropTail *with the same buffer depth*; the
    deep plot carries the (much lower) shallow-DropTail latency as a
    reference line, exactly as the paper draws it.
    """
    results = run_grid(deep, scale, seed, progress=progress, jobs=jobs)
    same_depth_base = results[
        "droptail-deep" if deep else "droptail-shallow"
    ].latency
    fig = FigureData(
        name="fig4b" if deep else "fig4a",
        title=f"Network Latency - RED ({'Deep' if deep else 'Shallow'} Buffers)",
        deep=deep,
        delays=DEEP_TARGET_DELAYS if deep else SHALLOW_TARGET_DELAYS,
        normalized_against=(
            "droptail-deep latency" if deep else "droptail-shallow latency"
        ),
    )
    raw = _grid_series(results, deep, lambda c: c.latency)
    fig.series = {
        k: [normalize_to(v, same_depth_base) for v in vals]
        for k, vals in raw.items()
    }
    if deep:
        fig.references["droptail-shallow"] = normalize_to(
            results["droptail-shallow"].latency, same_depth_base
        )
    return fig


def fig1_queue_snapshot(
    scale: float = 1.0,
    seed: int = 42,
    target_delay_s: float = us(50),
) -> Fig1Data:
    """Figure 1: run default RED/ECN and photograph the hottest queue."""
    from repro.core.target_delay import threshold_packets

    cfg = ExperimentConfig(
        queue=QueueSetup(
            kind="red",
            buffer_packets=SHALLOW_BUFFER_PACKETS,
            target_delay_s=target_delay_s,
            protection=ProtectionMode.DEFAULT,
        ),
        variant=TcpVariant.ECN,
        seed=seed,
        monitor_interval_s=0.002,
        allow_timeout=True,
    ).scaled(scale)
    cell = run_cell(cfg)
    if not cell.snapshots:
        raise ExperimentError("fig1 run produced no queue snapshots")
    busiest = max(cell.snapshots, key=lambda s: s.qlen_packets)
    q = cell.metrics.queue
    total_drops = q.drops
    return Fig1Data(
        snapshot=busiest,
        mark_threshold_packets=threshold_packets(
            target_delay_s, cfg.link_rate_bps
        ),
        ack_arrival_share=q.ack_arrivals / q.arrivals if q.arrivals else 0.0,
        ack_drop_share=q.ack_drops / total_drops if total_drops else 0.0,
        ack_drop_rate=q.ack_drop_rate(),
        ect_drop_rate=q.ect_drop_rate(),
        early_drops=q.drops_early,
        marks=q.marks,
    )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def render_figure(fig: FigureData) -> str:
    """ASCII table of one sub-figure, one row per series."""
    header = ["series"] + [f"{d * 1e6:.0f}us" for d in fig.delays]
    rows = [[label] + [f"{v:.3f}" for v in vals] for label, vals in fig.series.items()]
    for ref, v in fig.references.items():
        rows.append([f"[dashed] {ref}", *([f"{v:.3f}"] * len(fig.delays))])
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))
    ]
    lines = [fig.title, f"(normalized to {fig.normalized_against})"]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_fig1(data: Fig1Data) -> str:
    """ASCII rendering of the Figure-1 queue snapshot."""
    s = data.snapshot
    width = 50
    used = s.qlen_packets
    limit = s.limit_packets

    def bar(n: int) -> int:
        return int(round(width * n / limit)) if limit else 0

    ect = bar(s.ect_data + s.ce_marked)
    ack = bar(s.pure_acks)
    other = bar(s.nonect_data + s.syns)
    free = max(0, width - ect - ack - other)
    lines = [
        "Fig 1: Typical snapshot of a network switch queue in a Hadoop cluster",
        f"(t={s.time:.3f}s, occupancy {used}/{limit} packets, "
        f"mark threshold K={data.mark_threshold_packets})",
        "",
        "[" + "D" * ect + "A" * ack + "o" * other + "." * free + "]",
        "  D = ECT-capable data (marked, never early-dropped)",
        "  A = non-ECT pure ACKs   o = other   . = free",
        "",
        f"pure-ACK share of arrivals : {data.ack_arrival_share:6.2%}",
        f"pure-ACK share of drops    : {data.ack_drop_share:6.2%}   <-- disproportionate",
        f"ACK drop rate              : {data.ack_drop_rate:6.2%}",
        f"ECT drop rate              : {data.ect_drop_rate:6.2%}   (marked instead: {data.marks})",
        f"AQM early drops            : {data.early_drops}",
    ]
    return "\n".join(lines)
