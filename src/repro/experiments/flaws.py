"""The "Linux DCTCP flaws" pack: flawed vs corrected endpoint fidelity.

Misund & Teigen ("Two flaws of the Linux DCTCP implementation",
arXiv:2211.07581) showed that the widely-deployed Linux DCTCP deviates
from the SIGCOMM'10 algorithm in ways that *inflate* the congestion
estimate α: delayed-ACK mark coalescing (a single ECE flag attributes
every byte covered by the cumulative ACK to the mark), retransmissions
sent ECT whose marks feed back into α, and an observation window that
survives an RTO with stale mark counts. The simulator's corrected stack
(byte-precise CE echo accounting, Non-ECT retransmits per RFC 3168
§6.1.5, window reset on RTO) is the default; this pack re-runs one
pinned congestion cell with each flaw re-enabled so the α gap is a
measured number rather than a claim.

The pinned cell is deliberately hostile: an 8:1 incast into a
``tinybuffer`` port (16-packet physical buffer, shallow marking
threshold), where delayed ACKs routinely cover a mix of marked and
unmarked segments and drops force retransmissions — the exact regime
where the flaws diverge from the faithful algorithm.

Every run flows through :func:`~repro.experiments.probe.run_probe_cell`,
so results carry full manifests, land in the shared result cache, and
fingerprint bit-identically for the determinism gate
(``repro flaws --smoke``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.experiments.config import CellResult, QueueSetup
from repro.experiments.probe import StabilityProbeConfig, run_probe_cell
from repro.tcp.endpoint import FLAW_PROFILES, TcpVariant
from repro.units import us

__all__ = [
    "FLAWS_PROFILES",
    "flaws_cell",
    "flaws_grid",
    "run_flaws",
    "render_flaws_table",
]

#: Row order of the comparison table: the corrected stack first (profile
#: ``None``), then the all-flaws profile, then each flaw in isolation.
FLAWS_PROFILES: Tuple[Optional[str], ...] = (
    None,
    "linux-dctcp",
    "coalesce",
    "retx-mark",
    "alpha-freeze",
)


def flaws_cell(profile: Optional[str], seed: int = 42,
               duration_s: float = 1.0) -> StabilityProbeConfig:
    """The pinned flaws cell with ``profile`` applied.

    8 long-lived DCTCP flows incast into one tiny-buffer port held at a
    100 µs marking threshold for ``duration_s`` of simulated time.
    """
    return StabilityProbeConfig(
        queue=QueueSetup(kind="tinybuffer", buffer_packets=16,
                         target_delay_s=us(100)),
        variant=TcpVariant.DCTCP,
        n_senders=8,
        duration_s=duration_s,
        seed=seed,
        flaw_profile=profile,
    ).validate()


def flaws_grid(seed: int = 42,
               duration_s: float = 1.0) -> List[StabilityProbeConfig]:
    """All profiles of the pinned cell, corrected stack first."""
    return [flaws_cell(p, seed=seed, duration_s=duration_s)
            for p in FLAWS_PROFILES]


def _row(profile: Optional[str], cell: CellResult) -> Dict[str, object]:
    m = cell.metrics
    return {
        "profile": profile or "fixed",
        "label": cell.config.label(),
        "alpha_timeavg": m.extra.get("dctcp_alpha_timeavg", 0.0),
        "alpha_mean": m.extra.get("dctcp_alpha_mean", 0.0),
        "alpha_max": m.extra.get("dctcp_alpha_max", 0.0),
        "goodput_bps": m.extra.get("goodput_bps", 0.0),
        "retransmits": m.retransmits,
        "rtos": m.rtos,
        "marks": m.queue.marks,
        "drops": m.queue.drops_tail + m.queue.drops_early,
    }


def run_flaws(
    seed: int = 42,
    duration_s: float = 1.0,
    checks: Optional["ValidationSuite"] = None,  # noqa: F821 - forward ref
) -> Tuple[List[CellResult], List[Dict[str, object]]]:
    """Run the whole pack; returns (cell results, comparison rows).

    ``checks`` arms the validation suite on *every* run (the smoke gate
    does this once per profile to prove armed runs stay bit-identical).
    """
    cells: List[CellResult] = []
    rows: List[Dict[str, object]] = []
    for profile in FLAWS_PROFILES:
        cfg = flaws_cell(profile, seed=seed, duration_s=duration_s)
        cell = run_probe_cell(cfg, checks=checks)
        cells.append(cell)
        rows.append(_row(profile, cell))
    return cells, rows


def render_flaws_table(rows: List[Dict[str, object]]) -> str:
    """ASCII comparison table, one line per profile."""
    hdr = (f"{'profile':<14} {'alpha_avg':>9} {'alpha_end':>9} "
           f"{'goodput':>12} {'retx':>6} {'rtos':>5} {'marks':>7} "
           f"{'drops':>6}")
    lines = [hdr, "-" * len(hdr)]
    base = rows[0]["alpha_timeavg"] if rows else 0.0
    for r in rows:
        delta = ""
        if r["profile"] != "fixed" and base > 0:
            delta = f"  ({(r['alpha_timeavg'] - base) / base:+.0%} vs fixed)"
        lines.append(
            f"{r['profile']:<14} {r['alpha_timeavg']:>9.4f} "
            f"{r['alpha_mean']:>9.4f} {r['goodput_bps'] / 1e6:>10.1f}Mb "
            f"{r['retransmits']:>6d} {r['rtos']:>5d} {r['marks']:>7d} "
            f"{r['drops']:>6d}{delta}"
        )
    return "\n".join(lines)
