"""Bulk-transfer cell family — the hybrid fidelity tier's showcase.

A :class:`BulkConfig` runs ``n_hosts/2`` long TCP flows on a single rack
in a **pairs** pattern: host ``2i`` streams ``flow_bytes`` to host
``2i+1``. Every flow's forward path (src uplink → ToR → dst downlink)
and reverse ACK path use ports no other flow touches, so with
``fidelity="hybrid"`` each flow satisfies the exclusive-path condition
of :mod:`repro.sim.fluid` and — after the initial packet-level slow
start and first ECN cut — rides the fluid recurrence to completion.
(The circular permutation pattern would NOT qualify: flow *i*'s ACKs
share host *i+1*'s uplink with flow *i+1*'s data.)

Link delay is deliberately WAN-ish for a rack (default 500 µs): a large
bandwidth-delay product keeps congestion-avoidance windows below the
marking threshold for long stretches, which is exactly the regime the
fluid tier accelerates. The same config with ``fidelity="packet"`` is
the baseline for the hybrid-vs-packet tolerance checks and the
``repro bench`` speedup measurement.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, replace
from typing import List, Optional

from repro.core.marking import SimpleMarkingQueue
from repro.core.target_delay import threshold_packets
from repro.errors import ConfigError, ExperimentError
from repro.experiments.config import CellResult
from repro.net.topology import build_single_rack
from repro.sim.engine import Simulator
from repro.stats.collect import LatencyCollector, RunMetrics
from repro.tcp.endpoint import TcpConfig, TcpListener, TcpVariant
from repro.tcp.flow import FlowResult, start_bulk_flow
from repro.units import gbps, mb, us

__all__ = ["BULK_PORT", "BulkConfig", "run_bulk_cell"]

#: Destination port every bulk pair uses (one listener per receiving host).
BULK_PORT = 7000


@dataclass(frozen=True)
class BulkConfig:
    """One bulk cell: disjoint host pairs, marking queues, long flows."""

    n_hosts: int = 8
    link_rate_bps: float = gbps(1)
    link_delay_s: float = us(500)
    flow_bytes: int = mb(8)
    buffer_packets: int = 400
    target_delay_s: float = us(500)
    variant: TcpVariant = TcpVariant.ECN
    fidelity: str = "packet"
    seed: int = 42
    sim_horizon_s: float = 60.0

    @property
    def n_pairs(self) -> int:
        """Number of concurrent disjoint flows."""
        return self.n_hosts // 2

    def validate(self) -> "BulkConfig":
        """Raise :class:`ConfigError` on nonsensical values; return self."""
        if self.n_hosts < 2 or self.n_hosts % 2:
            raise ConfigError(
                f"bulk cells pair hosts: n_hosts must be even >= 2, "
                f"got {self.n_hosts}")
        if self.flow_bytes <= 0:
            raise ConfigError("flow_bytes must be positive")
        if self.buffer_packets <= 0:
            raise ConfigError("buffer must be positive")
        if self.target_delay_s <= 0:
            raise ConfigError("target delay must be positive")
        if self.fidelity not in ("packet", "hybrid"):
            raise ConfigError(f"unknown fidelity {self.fidelity!r}")
        return self

    def scaled(self, factor: float) -> "BulkConfig":
        """Copy with the per-flow volume scaled (for quick runs)."""
        if factor <= 0:
            raise ConfigError(f"scale factor must be positive, got {factor}")
        return replace(self, flow_bytes=max(1, int(self.flow_bytes * factor)))

    def tcp_config(self) -> TcpConfig:
        """Transport configuration for the bulk flows."""
        return TcpConfig(variant=self.variant)

    def mark_threshold(self) -> float:
        """The marking K (packets) every queue in the cell uses."""
        return threshold_packets(self.target_delay_s, self.link_rate_bps)

    def label(self) -> str:
        """Human-readable cell id, ``bulk/``-prefixed (grid-unique)."""
        suffix = "/hybrid" if self.fidelity == "hybrid" else ""
        return (f"bulk/{self.variant}/p{self.n_pairs}"
                f"x{self.flow_bytes}B/s{self.seed}{suffix}")


def run_bulk_cell(
    config: BulkConfig,
    telemetry: Optional["Telemetry"] = None,  # noqa: F821 - forward ref
    checks: Optional["ValidationSuite"] = None,  # noqa: F821 - forward ref
) -> CellResult:
    """Execute one bulk cell; mirrors :func:`run_cell`'s contract.

    In hybrid mode ``manifest["fluid"]`` records promotions, demotions
    (by reason) and the fluid byte/packet share.
    """
    wall_start = _time.perf_counter()
    config.validate()
    sim = Simulator()
    tracer = telemetry.tracer if telemetry is not None else None
    if checks is not None and tracer is None:
        from repro.sim.trace import Tracer

        tracer = Tracer()

    k = config.mark_threshold()

    def qdisc_factory(name: str):
        return SimpleMarkingQueue(config.buffer_packets, k, name=name)

    spec = build_single_rack(
        sim,
        config.n_hosts,
        switch_qdisc=qdisc_factory,
        host_qdisc=qdisc_factory,
        link_rate_bps=config.link_rate_bps,
        link_delay_s=config.link_delay_s,
        tracer=tracer,
    )
    if checks is not None:
        checks.attach(sim, spec.network, tracer)
    latency = LatencyCollector().attach(spec.network)

    fluid = None
    if config.fidelity == "hybrid":
        from repro.sim.fluid import FluidManager

        fluid = FluidManager(sim, spec.network, latency_credit=latency.credit)

    if telemetry is not None:
        telemetry.attach(sim, spec, engine=None)

    tcp = config.tcp_config()
    results: List[FlowResult] = []
    n_pairs = config.n_pairs

    def on_done(res: FlowResult) -> None:
        results.append(res)
        if len(results) >= n_pairs:
            sim.stop()

    for i in range(n_pairs):
        dst = spec.hosts[2 * i + 1]
        TcpListener(sim, dst, BULK_PORT, tcp)
    for i in range(n_pairs):
        start_bulk_flow(
            sim, spec.hosts[2 * i], spec.hosts[2 * i + 1], BULK_PORT,
            config.flow_bytes, tcp, on_done=on_done,
        )
    sim.run(until=config.sim_horizon_s)

    if len(results) < n_pairs:
        raise ExperimentError(
            f"cell {config.label()}: {n_pairs - len(results)} of "
            f"{n_pairs} flows unfinished at t={config.sim_horizon_s}s")

    completed = [r for r in results if not r.failed]
    metrics = RunMetrics(
        runtime=max(r.end_time for r in results),
        bytes_transferred=sum(r.nbytes for r in completed),
        n_nodes=config.n_hosts,
        mean_latency=latency.mean,
        p99_latency=latency.percentile(99),
        packets_delivered=latency.count,
        queue=spec.network.aggregate_switch_stats(),
        flows_completed=len(completed),
        flows_failed=sum(1 for r in results if r.failed),
        retransmits=sum(r.retransmits for r in results),
        rtos=sum(r.rtos for r in results),
        syn_retries=sum(r.syn_retries for r in results),
        extra={
            "mark_threshold_packets": k,
            "fct_max_s": max(r.fct for r in results),
        },
    )
    profile = telemetry.finish(sim) if telemetry is not None else None

    from repro.telemetry.manifest import build_manifest

    manifest = build_manifest(
        config,
        metrics,
        wall_s=_time.perf_counter() - wall_start,
        events=sim.events_processed,
        telemetry_snapshot=(telemetry.snapshot() if telemetry is not None
                            else None),
        profile=profile,
        kind="bulk-cell",
    )
    if fluid is not None:
        manifest["fluid"] = fluid.summary()
    if checks is not None:
        checks.finish()
        manifest["validation"] = checks.as_dict()
    return CellResult(config=config, metrics=metrics, snapshots=[],
                      manifest=manifest)
