"""Claim checking and the EXPERIMENTS.md writer.

The paper's quantitative statements are encoded as :class:`ClaimResult`
checks over the measured grid (see DESIGN.md §4 for the claim inventory,
C1-C6). ``write_experiments_md`` runs everything and writes the
paper-vs-measured record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.figures import (
    Fig1Data,
    FigureData,
    fig1_queue_snapshot,
    fig2_runtime,
    fig3_throughput,
    fig4_latency,
    render_fig1,
    render_figure,
)
from repro.experiments.tables import render_table1, render_table2
from repro.tcp.endpoint import TcpVariant

__all__ = ["ClaimResult", "check_claims", "render_claims", "write_experiments_md"]


@dataclass
class ClaimResult:
    """One paper claim with its measured counterpart."""

    claim_id: str
    paper: str
    measured: str
    passed: bool


def _series_min(fig: FigureData, qlabel: str) -> float:
    """Best (minimum) normalized value of one queue label across variants."""
    return min(
        min(vals)
        for key, vals in fig.series.items()
        if key.endswith("/" + qlabel)
    )


def _series_max(fig: FigureData, qlabel: str) -> float:
    """Worst (maximum) normalized value of one queue label across variants."""
    return max(
        max(vals)
        for key, vals in fig.series.items()
        if key.endswith("/" + qlabel)
    )


def check_claims(scale: float = 1.0, seed: int = 42, progress=None,
                 jobs: int = 1) -> List[ClaimResult]:
    """Run the evaluation and check claims C1-C6 from DESIGN.md."""
    f2a = fig2_runtime(False, scale, seed, progress=progress, jobs=jobs)
    f3a = fig3_throughput(False, scale, seed)
    f4a = fig4_latency(False, scale, seed)
    f2b = fig2_runtime(True, scale, seed, progress=progress, jobs=jobs)
    f3b = fig3_throughput(True, scale, seed)
    f4b = fig4_latency(True, scale, seed)
    f1 = fig1_queue_snapshot(scale, seed)

    claims: List[ClaimResult] = []

    # C1 — default AQM at aggressive settings degrades throughput.
    dctcp_default_aggr = f2a.series[f"{TcpVariant.DCTCP}/red-default"][0]
    ecn_default_aggr = f2a.series[f"{TcpVariant.ECN}/red-default"][0]
    worst = max(dctcp_default_aggr, ecn_default_aggr)
    claims.append(ClaimResult(
        "C1",
        "Relying on default AQM marking degrades cluster throughput "
        "(prior work reported ~20% loss)",
        f"normalized runtime at most aggressive target delay: "
        f"TCP-ECN {ecn_default_aggr:.2f}x, DCTCP {dctcp_default_aggr:.2f}x "
        f"DropTail-shallow",
        worst > 1.05,
    ))

    # C2 — ECE-bit protection achieves the lowest latency band.
    ece_lat = _series_min(f4a, "red-ece")
    default_lat = _series_min(f4a, "red-default")
    claims.append(ClaimResult(
        "C2",
        "ECE-bit protection achieves the lowest latency while alleviating "
        "the throughput loss",
        f"best normalized latency shallow: red-ece {ece_lat:.2f}, "
        f"red-default {default_lat:.2f}; best runtime red-ece "
        f"{_series_min(f2a, 'red-ece'):.2f} vs red-default "
        f"{_series_min(f2a, 'red-default'):.2f}",
        ece_lat <= 0.5 and _series_min(f2a, "red-ece") <= _series_min(f2a, "red-default") + 0.02,
    ))

    # C3 — ACK+SYN / true marking recover full throughput (~+10% vs DropTail).
    mark_tput = _series_max(f3a, "marking")
    acksyn_tput = _series_max(f3a, "red-ack+syn")
    claims.append(ClaimResult(
        "C3",
        "ACK+SYN protection and the true marking scheme avoid the loss and "
        "boost throughput ~10% over DropTail",
        f"best normalized throughput shallow: marking {mark_tput:.2f}x, "
        f"red-ack+syn {acksyn_tput:.2f}x DropTail-shallow",
        mark_tput >= 1.05,
    ))

    # C4 — latency reduced by ~85% relative to deep DropTail.
    best_deep_lat = min(_series_min(f4b, q) for q in
                        ("red-ece", "red-ack+syn", "marking"))
    claims.append(ClaimResult(
        "C4",
        "Latency reduced by about 85% (vs DropTail with deep buffers)",
        f"best normalized latency deep: {best_deep_lat:.3f} "
        f"(= {100 * (1 - best_deep_lat):.0f}% reduction)",
        best_deep_lat <= 0.25,
    ))

    # C5 — shallow switches reach deep-switch throughput with marking.
    mark_deep_tput = _series_max(f3b, "marking")
    claims.append(ClaimResult(
        "C5",
        "Commodity shallow-buffer switches reach the same throughput as "
        "deep-buffer switches under a true marking scheme",
        f"best marking throughput: shallow {mark_tput:.2f}x vs deep "
        f"{mark_deep_tput:.2f}x (both normalized to DropTail-shallow)",
        abs(mark_tput - mark_deep_tput) <= 0.10 * max(mark_tput, mark_deep_tput),
    ))

    # C6 — ACK drops are disproportionate to ACK traffic share.
    claims.append(ClaimResult(
        "C6",
        "Default ECN-enabled AQM drops a disproportionate number of ACKs "
        "(ECT data is marked instead of dropped)",
        f"pure ACKs are {f1.ack_arrival_share:.1%} of arrivals but "
        f"{f1.ack_drop_share:.1%} of drops; ECT drop rate "
        f"{f1.ect_drop_rate:.2%}, marks {f1.marks}",
        f1.ack_drop_share > 1.5 * f1.ack_arrival_share and f1.ect_drop_rate < 0.01,
    ))

    return claims


def render_claims(claims: List[ClaimResult]) -> str:
    """ASCII table of claim outcomes."""
    lines = ["Paper claims vs measured", "=" * 24]
    for c in claims:
        status = "PASS" if c.passed else "FAIL"
        lines.append(f"[{status}] {c.claim_id}: {c.paper}")
        lines.append(f"       measured: {c.measured}")
    return "\n".join(lines)


_PARALLEL_SWEEPS_SECTION = """\
## Parallel sweeps

The grid behind the figures can be fanned out over worker processes and
resumed from an on-disk result cache:

```bash
repro-hadoop-ecn sweep --jobs 8 --cache-dir .sweep-cache            # shallow grid
repro-hadoop-ecn sweep --jobs 8 --cache-dir .sweep-cache --resume   # pick up where an interrupt left off
repro-hadoop-ecn fig2 --jobs 8 --scale 0.5                          # figures accept --jobs too
```

Every cell is a pure function of its `ExperimentConfig` (own kernel, own
seeded RNG registry), so `--jobs N` is **bit-identical** to the serial
run and cache hits are bit-identical to fresh executions
(`tests/test_parallel.py` pins both). Cells are cached one JSON file
each under `--cache-dir`, keyed by the SHA-256 of the canonicalised
config; `--resume` skips any cell whose key is already present.

Cache-key caveat: the key covers the *config*, not the simulator code.
After changing simulation behaviour (queues, TCP, engine), use a fresh
`--cache-dir` — an old entry for an unchanged config would be served
as-is. Entries record the package version and `git describe` for
auditing. Editing any config field (scale, seed, delays, …) changes the
key, so stale-config collisions cannot happen.
"""

_BENCHMARKS_SECTION = """\
## Performance benchmarks

`repro-hadoop-ecn bench` measures the simulation core itself and writes
a machine-readable `BENCH_<stamp>.json` (schema `repro.bench/v1`):

```bash
repro-hadoop-ecn bench                      # full suite, writes BENCH_<stamp>.json
repro-hadoop-ecn bench --quick              # CI smoke: fig2-smoke cell only
repro-hadoop-ecn bench --baseline benchmarks/BENCH_baseline.json   # regression gate
```

Three layers, all deterministic in what they execute:

* **calibration** — a pure-stdlib heapq probe that measures the machine,
  so reports from different hardware compare through *normalized* times
  (`macro wall / calibration wall`) instead of raw seconds;
* **micro** — best-of-N rates for the hot primitives (event-heap
  schedule/cancel/fire churn, packet construction, RED enqueue/dequeue);
* **macro** — pinned-seed canonical cells (`fig2-smoke` = RED default @
  500 µs, shallow buffers, ECN, seed 42, 1/16-scale Terasort; the full
  suite adds droptail and CoDel cells), reporting wall time, events/s
  and delivered packets/s.

Reading a `BENCH_*.json`: `macro.<cell>.wall_s_best` is the best-of-N
wall time, `normalized` divides it by the calibration probe (compare
*this* across machines), `events_per_s`/`packets_per_s` are throughput
at the best repeat, and `deterministic` records that every repeat
reproduced identical simulated results — the bench doubles as a
determinism check and the CLI exits non-zero if any repeat diverges.
`compare_to_baseline` (and `--baseline`) flags any cell whose
normalized time regresses more than `--tolerance` (default 25%) vs a
committed report; CI runs exactly that against
`benchmarks/BENCH_baseline.json` on every push.

Determinism guarantees the harness leans on (and re-verifies): event
ties break FIFO via per-simulator sequence numbers, every random draw
comes from named seeded streams, packet ids are a per-run counter (two
back-to-back cells in one process yield identical traces), and lazy
cancellation + heap compaction never reorder live events
(`tests/test_perf_and_determinism.py` pins all four).

The committed `benchmarks/BENCH_pre_optimization.json` snapshots the
tree before the event-core overhaul; against it the overhaul measures
**1.5x on the fig2-smoke cell** (normalized best-of-7, same machine:
2.57 -> 1.70, i.e. ~101k -> ~165k events/s), with droptail and CoDel
cells at 1.4x.
"""


_VALIDATION_SECTION = """\
## Validation

Every number above can be re-derived with the simulation invariant
checkers armed (`repro.validate`): packet conservation (each packet
delivered, dropped, lost, or physically in flight exactly once at the
end of the run), queue counter equations, TCP sequence-space
monotonicity, and the event kernel's own self-audit. The checkers are
pure trace-bus observers, so an armed run is bit-identical to an
unarmed one — `repro-hadoop-ecn check` runs each representative cell
twice and fails unless the two run fingerprints match exactly.

```bash
repro-hadoop-ecn check            # figure cells + 50 randomized fuzz scenarios
repro-hadoop-ecn check --smoke    # the CI check-smoke job
```

The randomized scenario fuzzer behind the second half of `check`
sweeps topologies x {DropTail, RED, CoDel} x protection modes x TCP
variants x seeds (incast fan-in, link-flap blackouts, shallow buffers)
from one master seed and shrinks any failure to a minimal repro dict;
`tests/test_validate.py` pins a 50-scenario sweep at seed 42 with zero
violations.
"""


def write_experiments_md(path: str, scale: float = 1.0, seed: int = 42,
                         progress=None, jobs: int = 1) -> str:
    """Run the full evaluation and write EXPERIMENTS.md; returns the text."""
    figs = [
        fig2_runtime(False, scale, seed, progress=progress, jobs=jobs),
        fig2_runtime(True, scale, seed, progress=progress, jobs=jobs),
        fig3_throughput(False, scale, seed),
        fig3_throughput(True, scale, seed),
        fig4_latency(False, scale, seed),
        fig4_latency(True, scale, seed),
    ]
    f1 = fig1_queue_snapshot(scale, seed)
    claims = check_claims(scale, seed)

    parts: List[str] = []
    parts.append("# EXPERIMENTS — paper vs measured\n")
    parts.append(
        f"All simulations: 16-node single-rack cluster, 1 Gbps links, "
        f"scaled Terasort (scale={scale}, seed={seed}). Values are "
        f"normalized exactly as the paper normalizes them (runtime and "
        f"throughput to DropTail-shallow; latency to DropTail at the same "
        f"buffer depth). We reproduce shapes and orderings, not absolute "
        f"testbed numbers.\n"
    )
    parts.append("## Tables I & II\n")
    parts.append("```\n" + render_table1() + "\n\n" + render_table2() + "\n```\n")
    parts.append("## Figure 1\n")
    parts.append("```\n" + render_fig1(f1) + "\n```\n")
    for fig in figs:
        parts.append(f"## {fig.name}\n")
        parts.append("```\n" + render_figure(fig) + "\n```\n")
    parts.append("## Claim checks\n")
    parts.append("```\n" + render_claims(claims) + "\n```\n")
    n_pass = sum(c.passed for c in claims)
    parts.append(f"\n**{n_pass}/{len(claims)} claims reproduced.**\n")
    parts.append(_PARALLEL_SWEEPS_SECTION)
    parts.append(_BENCHMARKS_SECTION)
    parts.append(_VALIDATION_SECTION)

    text = "\n".join(parts)
    with open(path, "w") as fh:
        fh.write(text)
    return text
