"""Experiment configuration records.

A cell of the paper's evaluation grid is (transport variant × queue setup
× buffer depth × target delay). :class:`QueueSetup` describes the switch
queue; :class:`ExperimentConfig` adds the cluster/workload parameters;
:class:`CellResult` pairs a config with its measured metrics.

Default scale: 16 nodes, 1 Gbps links, 256 MB Terasort in 8 MB blocks —
chosen (see DESIGN.md §6) so the shuffle phase is network-bound, runs
complete in seconds of wall time, and all of the paper's ordering claims
are visible. ``ExperimentConfig.scaled`` shrinks the dataset for quick
tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.protection import ProtectionMode
from repro.core.qdisc import QueueDisc
from repro.core.registry import qdisc_entry, qdisc_names
from repro.errors import ConfigError
from repro.sim.rng import RngRegistry
from repro.stats.collect import RunMetrics
from repro.tcp.cc import cc_names
from repro.tcp.endpoint import FLAW_PROFILES, TcpConfig, TcpVariant
from repro.units import gbps, mb, us

__all__ = [
    "SHALLOW_BUFFER_PACKETS",
    "DEEP_BUFFER_PACKETS",
    "QueueSetup",
    "ExperimentConfig",
    "CellResult",
]

#: "Commodity switch with shallow buffers": ~100 full-size packets/port.
SHALLOW_BUFFER_PACKETS = 100

#: "Deep buffer switch": 10x the shallow density, per the paper's
#: observation that new products offer "a buffer density per port 10x bigger".
DEEP_BUFFER_PACKETS = 1000


@dataclass(frozen=True)
class QueueSetup:
    """Switch egress queue configuration.

    Attributes
    ----------
    kind:
        Any key in the queue-discipline registry
        (:mod:`repro.core.registry`): ``"droptail"``, ``"red"``,
        ``"marking"``, ``"codel"`` (target delay maps onto CoDel's target
        sojourn time with a 10x control interval), ``"curvyred"``
        (Briscoe's power-law mark/drop ramps) or ``"tinybuffer"``
        (shallow-threshold marking in a tiny physical buffer).
    buffer_packets:
        Physical per-port buffer.
    target_delay_s:
        Threshold parameterisation for red/marking (ignored by droptail).
    protection:
        Early-drop protection mode (red only).
    dctcp_style_red:
        Collapse RED to the single-threshold instantaneous configuration.
    """

    kind: str
    buffer_packets: int = SHALLOW_BUFFER_PACKETS
    target_delay_s: Optional[float] = None
    protection: ProtectionMode = ProtectionMode.DEFAULT
    dctcp_style_red: bool = False

    def validate(self) -> "QueueSetup":
        """Raise :class:`ConfigError` on nonsensical values; return self."""
        entry = qdisc_entry(self.kind)  # raises on unknown kinds
        if entry.needs_target_delay and self.target_delay_s is None:
            raise ConfigError(f"{self.kind} queues need a target delay")
        if self.buffer_packets <= 0:
            raise ConfigError("buffer must be positive")
        return self

    @property
    def is_deep(self) -> bool:
        """True for the deep-buffer variant."""
        return self.buffer_packets >= DEEP_BUFFER_PACKETS

    def build(self, name: str, link_rate_bps: float, rng: RngRegistry) -> QueueDisc:
        """Instantiate the queue for one port via the qdisc registry."""
        self.validate()
        return qdisc_entry(self.kind).builder(self, name, link_rate_bps, rng)

    def label(self) -> str:
        """Short series label as used in the paper's legends."""
        return qdisc_entry(self.kind).label(self)


@dataclass(frozen=True)
class ExperimentConfig:
    """One grid cell: cluster + workload + transport + queue."""

    queue: QueueSetup
    variant: TcpVariant = TcpVariant.ECN
    n_hosts: int = 16
    link_rate_bps: float = gbps(1)
    link_delay_s: float = us(20)
    data_bytes: int = mb(256)
    block_bytes: int = mb(8)
    n_reducers: int = 16
    seed: int = 42
    shuffle_parallelism: int = 5
    replication: int = 3
    sim_horizon_s: float = 600.0
    monitor_interval_s: Optional[float] = None  # enable queue snapshots
    #: If True, a job still running at the horizon yields metrics with
    #: ``runtime = sim_horizon_s`` and ``extra["timed_out"] = 1`` instead of
    #: raising — pathological grid cells (the paper's worst misconfigurations
    #: can effectively blackhole ACKs) then report "at least this bad".
    allow_timeout: bool = False
    #: ``"packet"`` simulates every packet; ``"hybrid"`` lets long bulk
    #: flows on quiescent exclusive paths advance analytically between
    #: congestion events (see :mod:`repro.sim.fluid`). Part of the cache
    #: key: hybrid and packet results are cached separately.
    fidelity: str = "packet"
    #: Congestion-control registry key (:mod:`repro.tcp.cc`); ``None``
    #: keeps the variant's historical default (newreno / dctcp).
    cc: Optional[str] = None
    #: Endpoint-fidelity flaw profile (``repro.tcp.endpoint.FLAW_PROFILES``);
    #: ``None`` runs the corrected stack.
    flaw_profile: Optional[str] = None

    def validate(self) -> "ExperimentConfig":
        """Raise :class:`ConfigError` on nonsensical values; return self."""
        self.queue.validate()
        if self.n_hosts < 2:
            raise ConfigError("need at least 2 hosts")
        if self.data_bytes <= 0 or self.block_bytes <= 0:
            raise ConfigError("sizes must be positive")
        if self.fidelity not in ("packet", "hybrid"):
            raise ConfigError(f"unknown fidelity {self.fidelity!r}")
        if self.cc is not None and self.cc not in cc_names():
            raise ConfigError(
                f"unknown cc {self.cc!r}; known: {', '.join(cc_names())}")
        if self.flaw_profile is not None and self.flaw_profile not in FLAW_PROFILES:
            raise ConfigError(
                f"unknown flaw profile {self.flaw_profile!r}; "
                f"known: {', '.join(sorted(FLAW_PROFILES))}")
        return self

    def scaled(self, factor: float) -> "ExperimentConfig":
        """Copy with the dataset scaled by ``factor`` (for quick runs)."""
        if factor <= 0:
            raise ConfigError(f"scale factor must be positive, got {factor}")
        return replace(self, data_bytes=max(1, int(self.data_bytes * factor)))

    def tcp_config(self) -> TcpConfig:
        """Transport configuration for this cell."""
        cfg = TcpConfig(variant=self.variant, cc=self.cc)
        return cfg.with_flaw_profile(self.flaw_profile)

    def label(self) -> str:
        """Human-readable cell id."""
        depth = "deep" if self.queue.is_deep else "shallow"
        td = (
            f"@{self.queue.target_delay_s * 1e6:.0f}us"
            if self.queue.target_delay_s is not None
            else ""
        )
        suffix = "+hybrid" if self.fidelity == "hybrid" else ""
        if self.cc is not None:
            suffix += f"+{self.cc}"
        if self.flaw_profile is not None:
            suffix += f"!{self.flaw_profile}"
        return f"{self.variant}/{self.queue.label()}{td}/{depth}{suffix}"


@dataclass
class CellResult:
    """A config plus everything measured when running it."""

    config: ExperimentConfig
    metrics: RunMetrics
    snapshots: list = field(default_factory=list)
    #: JSON-serialisable run manifest (config + seed + version + timings +
    #: metrics; see :mod:`repro.telemetry.manifest`). Populated by
    #: :func:`~repro.experiments.runner.run_cell`.
    manifest: Optional[dict] = None

    def write_manifest(self, path: str) -> str:
        """Write the manifest as JSON; returns the path."""
        from repro.telemetry.manifest import write_manifest

        if self.manifest is None:
            raise ConfigError("this CellResult carries no manifest")
        return write_manifest(self.manifest, path)

    @property
    def runtime(self) -> float:
        """Job runtime (seconds)."""
        return self.metrics.runtime

    @property
    def throughput_per_node(self) -> float:
        """Mean per-node goodput (bits/second)."""
        return self.metrics.throughput_per_node_bps

    @property
    def latency(self) -> float:
        """Mean end-to-end per-packet latency (seconds)."""
        return self.metrics.mean_latency
