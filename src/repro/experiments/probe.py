"""Steady-state stability probe cells: long-lived incast onto one port.

The Terasort cells measure what the paper measures — job runtime and
co-tenant latency — but their queues are bursty: the shuffle's fetches
start and stop, so a depth series from a fig2-style cell mixes the
control loop's dynamics with the workload's. To observe the TCP/AQM loop
itself (the D2TCP-II question: does it settle or cycle?), a
:class:`StabilityProbeConfig` cell holds the loop in steady state:
``n_senders`` long-lived bulk flows converge on one receiver for a fixed
simulated ``duration_s``, the congested ToR downlink is sampled every
``monitor_interval_s``, and the run ends at the horizon with the flows
still in flight — by construction, so every sample after the ramp-up
shows the closed loop at its operating point.

:func:`run_probe_cell` mirrors :func:`~repro.experiments.runner.run_cell`
(same rack builder, tracer/validation plumbing, manifest shape, and
:func:`run_cell` dispatches here for a :class:`StabilityProbeConfig`), so
probe cells flow through the parallel sweep runner, the result cache and
``repro.validate.smoke.fingerprint`` unchanged. The stability detector
(:class:`~repro.analysis.stability.StabilityAnalysis`) consumes the
snapshots either via ``run_cell(..., analyses=[...])`` or after the fact
on a cache hit.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.core.monitor import QueueMonitor
from repro.errors import ConfigError
from repro.experiments.config import CellResult, QueueSetup
from repro.net.topology import build_single_rack
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.stats.collect import LatencyCollector, RunMetrics
from repro.tcp.endpoint import TcpConfig, TcpVariant
from repro.units import gbps, us
from repro.workloads.bulk import incast

__all__ = ["StabilityProbeConfig", "run_probe_cell"]


@dataclass(frozen=True)
class StabilityProbeConfig:
    """One stability probe: an N:1 incast held for a fixed duration.

    ``duration_s`` and ``monitor_interval_s`` bound the depth series:
    ``duration_s / monitor_interval_s`` samples of the congested queue
    (default 2000 — comfortably inside the analysis' 2048-point resample
    cap). ``dctcp_g`` overrides the DCTCP EWMA gain when set, which is
    the knob the g-axis bifurcation sweep turns.
    """

    queue: QueueSetup
    variant: TcpVariant = TcpVariant.ECN
    n_senders: int = 4
    link_rate_bps: float = gbps(1)
    link_delay_s: float = us(20)
    duration_s: float = 2.0
    monitor_interval_s: float = 0.001
    dctcp_g: Optional[float] = None
    seed: int = 42
    #: Congestion-control registry key (:mod:`repro.tcp.cc`); ``None``
    #: keeps the variant's historical default (newreno / dctcp).
    cc: Optional[str] = None
    #: Endpoint-fidelity flaw profile (``repro.tcp.endpoint.FLAW_PROFILES``);
    #: ``None`` runs the corrected stack.
    flaw_profile: Optional[str] = None

    @property
    def n_hosts(self) -> int:
        """Receiver plus senders."""
        return self.n_senders + 1

    def validate(self) -> "StabilityProbeConfig":
        """Raise :class:`ConfigError` on nonsensical values; return self."""
        self.queue.validate()
        if self.n_senders < 1:
            raise ConfigError("need at least 1 sender")
        if self.duration_s <= 0:
            raise ConfigError("duration must be positive")
        if self.monitor_interval_s <= 0:
            raise ConfigError("monitor interval must be positive")
        if self.monitor_interval_s >= self.duration_s:
            raise ConfigError("monitor interval must be below the duration")
        if self.dctcp_g is not None and not (0.0 < self.dctcp_g <= 1.0):
            raise ConfigError(f"dctcp_g must be in (0, 1], got {self.dctcp_g}")
        from repro.tcp.cc import cc_names
        from repro.tcp.endpoint import FLAW_PROFILES

        if self.cc is not None and self.cc not in cc_names():
            raise ConfigError(
                f"unknown cc {self.cc!r}; known: {', '.join(cc_names())}")
        if self.flaw_profile is not None and self.flaw_profile not in FLAW_PROFILES:
            raise ConfigError(
                f"unknown flaw profile {self.flaw_profile!r}; "
                f"known: {', '.join(sorted(FLAW_PROFILES))}")
        return self

    def tcp_config(self) -> TcpConfig:
        """Transport configuration for the probe flows."""
        if self.dctcp_g is not None:
            cfg = TcpConfig(variant=self.variant, dctcp_g=self.dctcp_g,
                            cc=self.cc)
        else:
            cfg = TcpConfig(variant=self.variant, cc=self.cc)
        return cfg.with_flaw_profile(self.flaw_profile)

    def flow_bytes(self) -> int:
        """Per-flow size guaranteeing the flows outlive the horizon.

        The receiver link caps aggregate goodput at ``link_rate_bps``, so
        giving *each* sender a full link-duration of bytes (plus slack)
        means no flow can complete before ``duration_s``.
        """
        return int(self.link_rate_bps * self.duration_s / 8.0) + 1_000_000

    def label(self) -> str:
        """Human-readable cell id, ``probe/``-prefixed."""
        td = (
            f"@{self.queue.target_delay_s * 1e6:.0f}us"
            if self.queue.target_delay_s is not None
            else ""
        )
        g = f"/g{self.dctcp_g:g}" if self.dctcp_g is not None else ""
        suffix = f"+{self.cc}" if self.cc is not None else ""
        if self.flaw_profile is not None:
            suffix += f"!{self.flaw_profile}"
        return (f"probe/{self.variant}/{self.queue.label()}{td}"
                f"/n{self.n_senders}{g}{suffix}")

    # -- sweep-axis helpers ---------------------------------------------------

    def with_target_delay(self, target_delay_s: float) -> "StabilityProbeConfig":
        """Copy with the queue's target delay (≈ ECN threshold K) replaced."""
        return replace(self,
                       queue=replace(self.queue, target_delay_s=target_delay_s))

    def with_dctcp_g(self, g: float) -> "StabilityProbeConfig":
        """Copy with the DCTCP gain replaced."""
        return replace(self, dctcp_g=g)


def run_probe_cell(
    config: StabilityProbeConfig,
    telemetry: Optional["Telemetry"] = None,  # noqa: F821 - forward ref
    checks: Optional["ValidationSuite"] = None,  # noqa: F821 - forward ref
) -> CellResult:
    """Execute one stability probe and return its measurements.

    The returned :class:`CellResult` carries shuffle-shaped
    :class:`RunMetrics` (``runtime`` is the fixed horizon;
    ``bytes_transferred`` is the acked payload) so probe cells flow
    through the cache/sweep/fingerprint machinery unchanged, plus the
    dense snapshot series of every hot port — the stability detector's
    input.
    """
    wall_start = _time.perf_counter()
    config.validate()
    sim = Simulator()
    rng = RngRegistry(seed=config.seed)
    tracer = telemetry.tracer if telemetry is not None else None
    if checks is not None and tracer is None:
        from repro.sim.trace import Tracer

        tracer = Tracer()

    def qdisc_factory(name: str):
        return config.queue.build(name, config.link_rate_bps, rng)

    spec = build_single_rack(
        sim,
        config.n_hosts,
        switch_qdisc=qdisc_factory,
        host_qdisc=qdisc_factory,
        link_rate_bps=config.link_rate_bps,
        link_delay_s=config.link_delay_s,
        tracer=tracer,
    )
    if checks is not None:
        checks.attach(sim, spec.network, tracer)
    latency = LatencyCollector().attach(spec.network)

    monitors: List[QueueMonitor] = []
    for port in spec.hot_ports:
        mon = QueueMonitor(sim, port.qdisc, config.monitor_interval_s)
        mon.start()
        monitors.append(mon)

    if telemetry is not None:
        telemetry.attach(sim, spec, engine=None)

    flows = incast(
        sim, spec.hosts, receiver_index=0,
        nbytes=config.flow_bytes(), cfg=config.tcp_config(),
    )

    # Time-averaged DCTCP α across the senders, sampled at the monitor
    # cadence: the end-of-run snapshot alone is one point of a limit
    # cycle, far too noisy for flawed-vs-fixed comparisons (the flaws
    # pack gates on this average). Pure reads — the sampler never
    # perturbs the packet trajectory.
    alpha_acc = {"sum": 0.0, "n": 0}

    def _sample_alpha():
        vals = [f.sender.cc.alpha for f in flows
                if hasattr(f.sender.cc, "alpha")]
        if vals:
            alpha_acc["sum"] += sum(vals) / len(vals)
            alpha_acc["n"] += 1
            if sim.now < config.duration_s:
                sim.schedule(config.monitor_interval_s, _sample_alpha)

    sim.schedule(config.monitor_interval_s, _sample_alpha)
    sim.run(until=config.duration_s)
    for mon in monitors:
        mon.stop()

    # The flows are deliberately still in flight: read effort counters
    # and progress off the live senders.
    finished = [f for f in flows if f.result is not None]
    bytes_acked = sum(f.sender.snd_una for f in flows)
    metrics = RunMetrics(
        runtime=config.duration_s,
        bytes_transferred=bytes_acked,
        n_nodes=config.n_hosts,
        mean_latency=latency.mean,
        p99_latency=latency.percentile(99),
        packets_delivered=latency.count,
        queue=spec.network.aggregate_switch_stats(),
        flows_completed=sum(1 for f in finished if not f.result.failed),
        flows_failed=sum(1 for f in finished if f.result.failed),
        retransmits=sum(f.sender.stats.retransmits for f in flows),
        rtos=sum(f.sender.stats.rtos for f in flows),
        syn_retries=sum(f.sender.stats.syn_retries for f in flows),
        extra={
            "probe_senders": float(config.n_senders),
            "goodput_bps": bytes_acked * 8.0 / config.duration_s,
        },
    )
    # Live DCTCP α estimate across the senders (the flaws pack compares
    # this between flawed and corrected endpoint profiles).
    alphas = [f.sender.cc.alpha for f in flows if hasattr(f.sender.cc, "alpha")]
    if alphas:
        metrics.extra["dctcp_alpha_mean"] = sum(alphas) / len(alphas)
        metrics.extra["dctcp_alpha_max"] = max(alphas)
    if alpha_acc["n"]:
        metrics.extra["dctcp_alpha_timeavg"] = alpha_acc["sum"] / alpha_acc["n"]
    profile = telemetry.finish(sim) if telemetry is not None else None

    snapshots = [s for mon in monitors for s in mon.snapshots]
    if telemetry is not None and telemetry.queue_recorder is not None:
        snapshots.extend(telemetry.queue_recorder.snapshots())

    from repro.telemetry.manifest import build_manifest

    manifest = build_manifest(
        config,
        metrics,
        wall_s=_time.perf_counter() - wall_start,
        events=sim.events_processed,
        telemetry_snapshot=(telemetry.snapshot() if telemetry is not None
                            else None),
        profile=profile,
        kind="stability-probe",
    )
    if checks is not None:
        checks.finish()
        manifest["validation"] = checks.as_dict()
    return CellResult(config=config, metrics=metrics, snapshots=snapshots,
                      manifest=manifest)
