"""Slot-based FIFO task scheduler with map locality.

Mirrors the Hadoop 1.x JobTracker behaviour the MRPerf simulator models:
each node advertises map and reduce slots; pending map tasks are assigned
to free slots preferring nodes that hold a replica of the task's input
block (data-local first, then any node); reduce tasks launch once the
slowstart fraction of maps has finished, spread round-robin across nodes
with free reduce slots.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import MapReduceError
from repro.mapreduce.cluster import ClusterSpec
from repro.mapreduce.job import MapTask, ReduceTask, TaskState

__all__ = ["SlotScheduler"]


class SlotScheduler:
    """Tracks slot occupancy and picks task→node assignments."""

    def __init__(self, cluster: ClusterSpec):
        self.cluster = cluster
        self._free_map: Dict[int, int] = {
            n: cluster.node.map_slots for n in range(cluster.n_nodes)
        }
        self._free_reduce: Dict[int, int] = {
            n: cluster.node.reduce_slots for n in range(cluster.n_nodes)
        }
        self._rr_next = 0  # round-robin pointer for reduce placement

    # -- map side ---------------------------------------------------------------

    def assign_map(self, pending: List[MapTask]) -> Optional[MapTask]:
        """Assign one pending map task to a free slot, locality-first.

        Returns the task (with ``node`` and ``data_local`` filled in and
        the slot debited) or None if no assignment is possible.
        """
        free_nodes = [n for n, k in self._free_map.items() if k > 0]
        if not free_nodes:
            return None
        free_set = set(free_nodes)
        # Pass 1: a task whose block is local to some free node.
        for task in pending:
            if task.state is not TaskState.PENDING:
                continue
            local = [n for n in task.block.replicas if n in free_set]
            if local:
                return self._take_map(task, local[0], data_local=True)
        # Pass 2: first pending task anywhere.
        for task in pending:
            if task.state is TaskState.PENDING:
                return self._take_map(task, free_nodes[0], data_local=False)
        return None

    def _take_map(self, task: MapTask, node: int, data_local: bool) -> MapTask:
        self._free_map[node] -= 1
        task.node = node
        task.data_local = data_local
        task.state = TaskState.RUNNING
        return task

    def release_map(self, node: int) -> None:
        """Return a map slot on ``node``."""
        if self._free_map[node] >= self.cluster.node.map_slots:
            raise MapReduceError(f"map slot over-release on node {node}")
        self._free_map[node] += 1

    # -- reduce side ----------------------------------------------------------------

    def assign_reduce(self, pending: List[ReduceTask]) -> Optional[ReduceTask]:
        """Assign one pending reduce task round-robin over free slots."""
        task = next((t for t in pending if t.state is TaskState.PENDING), None)
        if task is None:
            return None
        n = self.cluster.n_nodes
        for off in range(n):
            node = (self._rr_next + off) % n
            if self._free_reduce[node] > 0:
                self._free_reduce[node] -= 1
                self._rr_next = (node + 1) % n
                task.node = node
                task.state = TaskState.RUNNING
                return task
        return None

    def release_reduce(self, node: int) -> None:
        """Return a reduce slot on ``node``."""
        if self._free_reduce[node] >= self.cluster.node.reduce_slots:
            raise MapReduceError(f"reduce slot over-release on node {node}")
        self._free_reduce[node] += 1

    # -- introspection ---------------------------------------------------------------

    def free_map_slots(self) -> int:
        """Cluster-wide free map slots."""
        return sum(self._free_map.values())

    def free_reduce_slots(self) -> int:
        """Cluster-wide free reduce slots."""
        return sum(self._free_reduce.values())
