"""HDFS block layout with replication.

Input files are split into fixed-size blocks; each block gets ``replication``
replicas on distinct nodes, chosen uniformly at random from a seeded
stream (the single-rack equivalent of HDFS's placement policy — with one
rack there is no off-rack second replica to model). The scheduler uses
the replica sets for map-task locality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, MapReduceError

__all__ = ["Block", "HdfsLayout"]


@dataclass(frozen=True)
class Block:
    """One HDFS block: id, byte size, and the nodes holding replicas."""

    block_id: int
    size: int
    replicas: Tuple[int, ...]

    def is_local_to(self, node: int) -> bool:
        """True if ``node`` holds a replica of this block."""
        return node in self.replicas


class HdfsLayout:
    """Block placement for one input file.

    Parameters
    ----------
    n_nodes:
        Number of datanodes (node ids 0..n-1 in cluster space).
    rng:
        Seeded ``numpy.random.Generator`` for placement decisions.
    replication:
        Replica count per block (Hadoop default 3, capped at n_nodes).
    """

    def __init__(self, n_nodes: int, rng: np.random.Generator, replication: int = 3):
        if n_nodes < 1:
            raise ConfigError(f"need at least one datanode, got {n_nodes}")
        if replication < 1:
            raise ConfigError(f"replication must be >= 1, got {replication}")
        self.n_nodes = n_nodes
        self.replication = min(replication, n_nodes)
        self._rng = rng
        self.blocks: List[Block] = []

    def place_file(self, file_bytes: int, block_size: int) -> List[Block]:
        """Split a file into blocks and place replicas; returns the blocks."""
        if file_bytes <= 0 or block_size <= 0:
            raise ConfigError(
                f"file and block sizes must be positive "
                f"({file_bytes}, {block_size})"
            )
        placed: List[Block] = []
        remaining = file_bytes
        while remaining > 0:
            size = min(block_size, remaining)
            remaining -= size
            replicas = tuple(
                int(x) for x in self._rng.choice(
                    self.n_nodes, size=self.replication, replace=False
                )
            )
            placed.append(Block(len(self.blocks) + len(placed), size, replicas))
        self.blocks.extend(placed)
        return placed

    def block(self, block_id: int) -> Block:
        """Look up a block by id."""
        for b in self.blocks:
            if b.block_id == block_id:
                return b
        raise MapReduceError(f"unknown block id {block_id}")

    def blocks_on(self, node: int) -> List[Block]:
        """All blocks with a replica on ``node``."""
        return [b for b in self.blocks if b.is_local_to(node)]

    def locality_fraction(self, assignments: Sequence[Tuple[int, int]]) -> float:
        """Fraction of (block_id, node) assignments that were data-local."""
        if not assignments:
            return 0.0
        by_id = {b.block_id: b for b in self.blocks}
        local = sum(1 for bid, node in assignments if by_id[bid].is_local_to(node))
        return local / len(assignments)
