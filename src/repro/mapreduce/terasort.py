"""Terasort workload definition.

Terasort is the paper's benchmark: it sorts fixed-size records, so both
map and reduce are identity-sized (selectivity 1.0) and *every* input
byte crosses the network in the shuffle — the most network-intensive
MapReduce job, which is why the paper uses it to stress the fabric.
"""

from __future__ import annotations

from repro.mapreduce.job import JobSpec
from repro.units import mb

__all__ = ["terasort_job"]


def terasort_job(
    input_bytes: int,
    block_size: int = mb(4),
    n_reducers: int = 0,
    reduce_slowstart: float = 0.05,
    name: str = "terasort",
) -> JobSpec:
    """Build a Terasort :class:`~repro.mapreduce.job.JobSpec`.

    Parameters
    ----------
    input_bytes:
        Dataset size. The experiments scale this down (MBs instead of the
        canonical 1 TB) so a run completes in seconds of wall time; the
        shuffle traffic pattern is unchanged.
    block_size:
        HDFS block size; determines the map task count.
    n_reducers:
        Reduce task count; 0 (default) means "decided by the caller"
        and must be overridden before validation.
    """
    if n_reducers <= 0:
        raise ValueError("terasort_job requires an explicit n_reducers")
    return JobSpec(
        name=name,
        input_bytes=input_bytes,
        block_size=block_size,
        n_reducers=n_reducers,
        map_selectivity=1.0,
        reduce_selectivity=1.0,
        reduce_slowstart=reduce_slowstart,
    ).validate()
