"""Job presets beyond Terasort.

The paper's conclusion claims its findings extend to "other type[s] of
workloads that present the characteristics described in our problem
characterization" — i.e. whose shuffle pressures the fabric. These
presets span the selectivity spectrum so that claim can be probed:

* **terasort** — selectivity 1.0 both sides: every input byte shuffles.
* **wordcount** — map output shrinks (combiners aggregate counts);
  moderate shuffle.
* **grep** — tiny map selectivity: almost nothing shuffles; network
  configuration should barely matter (a negative control).
* **join** — map output *expands* (records are tagged and replicated);
  shuffle-heavier than Terasort.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.mapreduce.job import JobSpec
from repro.units import mb

__all__ = ["JOB_PRESETS", "make_job"]


def _terasort(input_bytes: int, block_size: int, n_reducers: int) -> JobSpec:
    return JobSpec("terasort", input_bytes, block_size, n_reducers,
                   map_selectivity=1.0, reduce_selectivity=1.0)


def _wordcount(input_bytes: int, block_size: int, n_reducers: int) -> JobSpec:
    return JobSpec("wordcount", input_bytes, block_size, n_reducers,
                   map_selectivity=0.25, reduce_selectivity=0.1)


def _grep(input_bytes: int, block_size: int, n_reducers: int) -> JobSpec:
    return JobSpec("grep", input_bytes, block_size, n_reducers,
                   map_selectivity=0.01, reduce_selectivity=1.0)


def _join(input_bytes: int, block_size: int, n_reducers: int) -> JobSpec:
    return JobSpec("join", input_bytes, block_size, n_reducers,
                   map_selectivity=1.5, reduce_selectivity=0.8)


JOB_PRESETS: Dict[str, Callable[[int, int, int], JobSpec]] = {
    "terasort": _terasort,
    "wordcount": _wordcount,
    "grep": _grep,
    "join": _join,
}


def make_job(
    name: str,
    input_bytes: int,
    block_size: int = mb(4),
    n_reducers: int = 16,
) -> JobSpec:
    """Build a preset job by name (see :data:`JOB_PRESETS`)."""
    try:
        factory = JOB_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown job preset {name!r}; available: {sorted(JOB_PRESETS)}"
        ) from None
    return factory(input_bytes, block_size, n_reducers).validate()
