"""Job and task records.

A :class:`JobSpec` describes the workload (input size, block size, reducer
count, selectivities); :class:`MapTask` / :class:`ReduceTask` carry the
mutable per-attempt state the engine and scheduler update. Speculative
execution and task failure are out of scope (the paper's runs don't
exercise them); the records still track enough state to add them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.mapreduce.hdfs import Block

__all__ = ["TaskState", "JobSpec", "MapTask", "ReduceTask"]


class TaskState(enum.Enum):
    """Lifecycle of one task attempt."""

    PENDING = "pending"
    RUNNING = "running"
    SHUFFLING = "shuffling"  # reduce only: fetching map outputs
    DONE = "done"


@dataclass(frozen=True)
class JobSpec:
    """Workload description.

    Attributes
    ----------
    name:
        Label for reports.
    input_bytes:
        Total input file size.
    block_size:
        HDFS block size; one map task per block.
    n_reducers:
        Reduce task count.
    map_selectivity:
        Map output bytes per input byte (Terasort: 1.0).
    reduce_selectivity:
        Reduce output bytes per shuffled byte (Terasort: 1.0).
    reduce_slowstart:
        Fraction of maps that must complete before reducers launch
        (Hadoop's ``mapreduce.job.reduce.slowstart.completedmaps``).
    """

    name: str
    input_bytes: int
    block_size: int
    n_reducers: int
    map_selectivity: float = 1.0
    reduce_selectivity: float = 1.0
    reduce_slowstart: float = 0.05

    def validate(self) -> "JobSpec":
        """Raise :class:`ConfigError` on nonsensical values; return self."""
        if self.input_bytes <= 0 or self.block_size <= 0:
            raise ConfigError(f"sizes must be positive ({self})")
        if self.n_reducers < 1:
            raise ConfigError(f"need >= 1 reducer ({self})")
        if self.map_selectivity < 0 or self.reduce_selectivity < 0:
            raise ConfigError(f"selectivities must be >= 0 ({self})")
        if not (0.0 <= self.reduce_slowstart <= 1.0):
            raise ConfigError(f"slowstart must be in [0,1] ({self})")
        return self

    @property
    def n_maps(self) -> int:
        """Map task count (one per block, rounding the tail block up)."""
        return -(-self.input_bytes // self.block_size)


@dataclass
class MapTask:
    """One map task attempt."""

    task_id: int
    block: Block
    state: TaskState = TaskState.PENDING
    node: Optional[int] = None
    data_local: bool = False
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    output_bytes: int = 0

    @property
    def duration(self) -> Optional[float]:
        """Wall time of the attempt, if finished."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time


@dataclass
class ReduceTask:
    """One reduce task attempt."""

    task_id: int
    state: TaskState = TaskState.PENDING
    node: Optional[int] = None
    start_time: Optional[float] = None
    shuffle_done_time: Optional[float] = None
    end_time: Optional[float] = None
    #: map task id -> bytes this reducer must fetch from it
    pending_inputs: Dict[int, int] = field(default_factory=dict)
    fetched_bytes: int = 0

    @property
    def duration(self) -> Optional[float]:
        """Wall time of the attempt, if finished."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time
