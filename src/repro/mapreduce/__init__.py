"""MRPerf-style MapReduce simulator driving the packet-level network.

The engine models a Hadoop 1.x-style cluster: slot-based task scheduling
with map locality, an HDFS block layout with replication, map tasks as
read/compute/spill stages, an all-to-all shuffle whose fetches are real
simulated TCP flows, and reduce tasks as merge/compute/write stages. The
shuffle is the part the paper studies; the rest of the pipeline exists to
generate its traffic with realistic timing (map waves, fetch parallelism).
"""

from repro.mapreduce.cluster import ClusterSpec, NodeSpec
from repro.mapreduce.engine import JobResult, MapReduceEngine
from repro.mapreduce.hdfs import Block, HdfsLayout
from repro.mapreduce.job import JobSpec, MapTask, ReduceTask, TaskState
from repro.mapreduce.scheduler import SlotScheduler
from repro.mapreduce.presets import JOB_PRESETS, make_job
from repro.mapreduce.shuffle import Fetcher, ShuffleSegment
from repro.mapreduce.terasort import terasort_job

__all__ = [
    "NodeSpec",
    "ClusterSpec",
    "HdfsLayout",
    "Block",
    "JobSpec",
    "MapTask",
    "ReduceTask",
    "TaskState",
    "SlotScheduler",
    "Fetcher",
    "ShuffleSegment",
    "MapReduceEngine",
    "JobResult",
    "terasort_job",
    "JOB_PRESETS",
    "make_job",
]
