"""Reducer-side shuffle fetchers.

Each running reduce task owns a :class:`Fetcher` that pulls its map-output
segments with bounded parallelism (Hadoop's ``mapred.reduce.parallel.copies``,
default 5). Remote segments are fetched as real simulated TCP flows from
the mapper's host to the reducer's host — this is the many-to-many traffic
whose congestion behaviour the paper studies. Node-local segments bypass
the network and are read at disk rate, as MRPerf models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, List, Optional
from collections import deque

from repro.errors import MapReduceError
from repro.net.host import Host
from repro.sim.engine import Simulator
from repro.tcp.endpoint import TcpConfig
from repro.tcp.flow import FlowResult, start_bulk_flow

__all__ = ["ShuffleSegment", "Fetcher"]


@dataclass(frozen=True)
class ShuffleSegment:
    """One map-output partition destined for one reducer."""

    map_id: int
    src_node: int
    nbytes: int


class Fetcher:
    """Bounded-parallelism segment fetcher for one reduce task.

    Parameters
    ----------
    sim:
        Simulation kernel.
    node:
        Reducer's node id.
    hosts:
        Cluster hosts indexed by node id.
    shuffle_port:
        Listener port on the reducer's host (engine binds it).
    tcp_config:
        Transport configuration for fetch flows.
    disk_read_bps:
        Local-segment copy rate (bytes/second).
    parallelism:
        Maximum concurrent fetches.
    expected_segments:
        Total number of segments this reducer will ever fetch; the
        fetcher reports completion when that many have finished.
    on_done:
        Called once all expected segments are fetched.
    max_fetch_attempts:
        Transport-level fetch failures are retried (Hadoop's fetcher does
        the same with backoff before declaring the map output lost); the
        fetch is abandoned with :class:`MapReduceError` after this many
        attempts on one segment.
    """

    def __init__(
        self,
        sim: Simulator,
        node: int,
        hosts: List[Host],
        shuffle_port: int,
        tcp_config: TcpConfig,
        disk_read_bps: float,
        parallelism: int,
        expected_segments: int,
        on_done: Callable[[], None],
        max_fetch_attempts: int = 10,
    ):
        if parallelism < 1:
            raise MapReduceError(f"fetch parallelism must be >= 1, got {parallelism}")
        self.sim = sim
        self.node = node
        self.hosts = hosts
        self.shuffle_port = shuffle_port
        self.tcp_config = tcp_config
        self.disk_read_bps = disk_read_bps
        self.parallelism = parallelism
        self.expected_segments = expected_segments
        self.on_done = on_done
        self.max_fetch_attempts = max_fetch_attempts

        self._queue: Deque[ShuffleSegment] = deque()
        self._in_flight = 0
        self._attempts: dict = {}
        self.fetched_segments = 0
        self.fetched_bytes = 0
        self.fetch_failures = 0
        self.flow_results: List[FlowResult] = []
        self._finished = False

    # -- feeding ------------------------------------------------------------------

    def add_segment(self, seg: ShuffleSegment) -> None:
        """Make one map output available for fetching."""
        if self._finished:
            raise MapReduceError("fetcher already completed")
        if seg.nbytes <= 0:
            # Degenerate empty partition: counts as instantly fetched.
            self.fetched_segments += 1
            self._check_done()
            return
        self._queue.append(seg)
        self._pump()

    # -- internals ----------------------------------------------------------------

    def _pump(self) -> None:
        while self._in_flight < self.parallelism and self._queue:
            seg = self._queue.popleft()
            self._in_flight += 1
            if seg.src_node == self.node:
                # Local map output: copy at disk rate, no network.
                delay = seg.nbytes / self.disk_read_bps
                self.sim.schedule(delay, lambda s=seg: self._fetch_done(s, None))
            else:
                start_bulk_flow(
                    self.sim,
                    self.hosts[seg.src_node],
                    self.hosts[self.node],
                    self.shuffle_port,
                    seg.nbytes,
                    self.tcp_config,
                    on_done=lambda r, s=seg: self._fetch_done(s, r),
                )

    def _fetch_done(self, seg: ShuffleSegment, result: Optional[FlowResult]) -> None:
        self._in_flight -= 1
        if result is not None:
            self.flow_results.append(result)
            if result.failed:
                # Transport gave up: re-fetch, as Hadoop's fetcher would.
                self.fetch_failures += 1
                attempts = self._attempts.get(seg.map_id, 0) + 1
                self._attempts[seg.map_id] = attempts
                if attempts >= self.max_fetch_attempts:
                    raise MapReduceError(
                        f"shuffle fetch map{seg.map_id}->node{self.node} "
                        f"abandoned after {attempts} attempts"
                    )
                self._queue.append(seg)
                self._pump()
                return
        self.fetched_segments += 1
        self.fetched_bytes += seg.nbytes
        self._pump()
        self._check_done()

    def _check_done(self) -> None:
        if (
            not self._finished
            and self.fetched_segments >= self.expected_segments
            and self._in_flight == 0
            and not self._queue
        ):
            self._finished = True
            self.on_done()
