"""Cluster resource model: nodes, slots, disk and CPU rates.

Rates are calibrated so that, at the scaled-down data sizes the
experiments use, compute and I/O stages take the same order of time as
the network transfers — the regime in which the shuffle phase is
network-bound, as the paper (and the Cisco study it cites) describe for
real Hadoop clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["NodeSpec", "ClusterSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """Per-node resources of a worker.

    Attributes
    ----------
    map_slots, reduce_slots:
        Concurrent task capacity (Hadoop 1.x tasktracker slots).
    disk_read_bps, disk_write_bps:
        Sequential disk bandwidth in **bytes/second**.
    map_rate_bps:
        Map-function processing rate (input bytes/second of CPU work).
    reduce_rate_bps:
        Reduce-function processing rate (bytes/second).
    """

    map_slots: int = 2
    reduce_slots: int = 2
    disk_read_bps: float = 400e6
    disk_write_bps: float = 250e6
    map_rate_bps: float = 300e6
    reduce_rate_bps: float = 300e6

    def validate(self) -> "NodeSpec":
        """Raise :class:`ConfigError` on nonsensical values; return self."""
        if self.map_slots < 1 or self.reduce_slots < 1:
            raise ConfigError(f"slots must be >= 1 ({self})")
        for rate in (self.disk_read_bps, self.disk_write_bps,
                     self.map_rate_bps, self.reduce_rate_bps):
            if rate <= 0:
                raise ConfigError(f"rates must be positive ({self})")
        return self


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster: N workers of one :class:`NodeSpec`."""

    n_nodes: int
    node: NodeSpec = NodeSpec()

    def validate(self) -> "ClusterSpec":
        """Raise :class:`ConfigError` on nonsensical values; return self."""
        if self.n_nodes < 2:
            raise ConfigError(f"cluster needs >= 2 nodes, got {self.n_nodes}")
        self.node.validate()
        return self

    @property
    def total_map_slots(self) -> int:
        """Cluster-wide concurrent map capacity."""
        return self.n_nodes * self.node.map_slots

    @property
    def total_reduce_slots(self) -> int:
        """Cluster-wide concurrent reduce capacity."""
        return self.n_nodes * self.node.reduce_slots
