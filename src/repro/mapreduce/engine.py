"""The MapReduce engine: drives a job through the simulated cluster.

Pipeline per the MRPerf model:

* **map task** — read the input block (disk rate if data-local, else a
  real TCP fetch of the block from a replica node), apply the map
  function at CPU rate, spill the output at disk-write rate;
* **shuffle** — on each map completion, its output is partitioned equally
  across reducers; running reducers' :class:`~repro.mapreduce.shuffle.Fetcher`
  instances pull their segments over TCP with bounded parallelism;
* **reduce task** — launched after the slowstart fraction of maps is done;
  once its shuffle completes: merge-sort pass at disk rate, reduce
  function at CPU rate, output write at disk rate.

Job runtime (submission to last reducer finish) is the paper's primary
performance metric — "inversely proportional to the effective throughput
of the cluster".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import ConfigError, MapReduceError
from repro.mapreduce.cluster import ClusterSpec
from repro.mapreduce.hdfs import HdfsLayout
from repro.mapreduce.job import JobSpec, MapTask, ReduceTask, TaskState
from repro.mapreduce.scheduler import SlotScheduler
from repro.mapreduce.shuffle import Fetcher, ShuffleSegment
from repro.net.topology import TopologySpec
from repro.sim.engine import Simulator
from repro.tcp.endpoint import TcpConfig, TcpListener
from repro.tcp.flow import start_bulk_flow

__all__ = ["MapReduceEngine", "JobResult"]

#: Hadoop's shuffle (tasktracker HTTP) port.
SHUFFLE_PORT = 50060


@dataclass
class JobResult:
    """Outcome of one job run."""

    job: JobSpec
    submit_time: float
    map_phase_end: float
    end_time: float
    maps: List[MapTask] = field(default_factory=list)
    reduces: List[ReduceTask] = field(default_factory=list)
    bytes_shuffled: int = 0
    bytes_shuffled_remote: int = 0
    locality_fraction: float = 0.0

    @property
    def runtime(self) -> float:
        """Submission-to-completion wall time (the paper's runtime metric)."""
        return self.end_time - self.submit_time

    @property
    def map_phase_duration(self) -> float:
        """Time from submission until the last map finished."""
        return self.map_phase_end - self.submit_time


class MapReduceEngine:
    """Runs one job on one cluster over one network.

    Parameters
    ----------
    sim, topology:
        Kernel and built network; ``topology.hosts[i]`` is node i.
    cluster:
        Resource model; must match the topology's host count.
    job:
        The workload.
    tcp_config:
        Transport used for shuffle fetches and remote block reads.
    rng:
        Seeded generator for HDFS placement.
    shuffle_parallelism:
        Concurrent fetches per reducer (Hadoop default 5).
    replication:
        HDFS replication factor.
    on_job_done:
        Called with the :class:`JobResult` when the job completes.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: TopologySpec,
        cluster: ClusterSpec,
        job: JobSpec,
        tcp_config: TcpConfig,
        rng: np.random.Generator,
        shuffle_parallelism: int = 5,
        replication: int = 3,
        on_job_done: Optional[Callable[[JobResult], None]] = None,
    ):
        cluster.validate()
        job.validate()
        if cluster.n_nodes != topology.n_hosts:
            raise ConfigError(
                f"cluster has {cluster.n_nodes} nodes but topology has "
                f"{topology.n_hosts} hosts"
            )
        self.sim = sim
        self.topology = topology
        self.hosts = topology.hosts
        self.cluster = cluster
        self.job = job
        self.tcp_config = tcp_config
        self.shuffle_parallelism = shuffle_parallelism
        self.on_job_done = on_job_done

        self.hdfs = HdfsLayout(cluster.n_nodes, rng, replication)
        self.scheduler = SlotScheduler(cluster)
        self.listeners: List[TcpListener] = []

        self.maps: List[MapTask] = []
        self.reduces: List[ReduceTask] = []
        self._fetchers: Dict[int, Fetcher] = {}
        self._completed_maps: List[MapTask] = []
        self._reduces_done = 0
        self._reducers_launched = False
        self.result: Optional[JobResult] = None
        self._submit_time: Optional[float] = None
        self._map_phase_end: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------------

    def submit(self) -> None:
        """Place the input file, create tasks, bind listeners, start scheduling."""
        if self._submit_time is not None:
            raise MapReduceError("job already submitted")
        self._submit_time = self.sim.now

        blocks = self.hdfs.place_file(self.job.input_bytes, self.job.block_size)
        self.maps = [MapTask(i, blk) for i, blk in enumerate(blocks)]

        for r in range(self.job.n_reducers):
            task = ReduceTask(r)
            for m in self.maps:
                out = int(m.block.size * self.job.map_selectivity)
                task.pending_inputs[m.task_id] = out // self.job.n_reducers
            self.reduces.append(task)

        # One shuffle listener per host serves every reducer and every
        # remote block read targeting that host.
        for h in self.hosts:
            self.listeners.append(
                TcpListener(self.sim, h, SHUFFLE_PORT, self.tcp_config)
            )

        self._schedule()

    # -- scheduling loop ---------------------------------------------------------------

    def _schedule(self) -> None:
        # Launch reducers once the slowstart gate opens.
        done_maps = len(self._completed_maps)
        gate = self.job.reduce_slowstart * len(self.maps)
        if not self._reducers_launched and done_maps >= gate:
            self._reducers_launched = True
        while True:
            task = self.scheduler.assign_map(self.maps)
            if task is None:
                break
            self._start_map(task)
        if self._reducers_launched:
            while True:
                rtask = self.scheduler.assign_reduce(self.reduces)
                if rtask is None:
                    break
                self._start_reduce(rtask)

    # -- map side ----------------------------------------------------------------------

    def _start_map(self, task: MapTask) -> None:
        task.start_time = self.sim.now
        node = task.node
        spec = self.cluster.node
        if task.data_local:
            read_delay = task.block.size / spec.disk_read_bps
            self.sim.schedule(read_delay, lambda: self._map_compute(task))
        else:
            # Remote block read: a real TCP transfer from a replica holder.
            src = task.block.replicas[0]
            start_bulk_flow(
                self.sim,
                self.hosts[src],
                self.hosts[node],
                SHUFFLE_PORT,
                task.block.size,
                self.tcp_config,
                on_done=lambda _r: self._map_compute(task),
            )

    def _map_compute(self, task: MapTask) -> None:
        spec = self.cluster.node
        compute = task.block.size / spec.map_rate_bps
        task.output_bytes = int(task.block.size * self.job.map_selectivity)
        spill = task.output_bytes / spec.disk_write_bps
        self.sim.schedule(compute + spill, lambda: self._map_done(task))

    def _map_done(self, task: MapTask) -> None:
        task.state = TaskState.DONE
        task.end_time = self.sim.now
        self.scheduler.release_map(task.node)
        self._completed_maps.append(task)
        if len(self._completed_maps) == len(self.maps):
            self._map_phase_end = self.sim.now
        # Feed running fetchers with this map's partitions.
        for rtask in self.reduces:
            fetcher = self._fetchers.get(rtask.task_id)
            if fetcher is not None:
                nbytes = rtask.pending_inputs[task.task_id]
                fetcher.add_segment(
                    ShuffleSegment(task.task_id, task.node, nbytes)
                )
        self._schedule()

    # -- reduce side ----------------------------------------------------------------------

    def _start_reduce(self, task: ReduceTask) -> None:
        task.start_time = self.sim.now
        task.state = TaskState.SHUFFLING
        fetcher = Fetcher(
            self.sim,
            task.node,
            self.hosts,
            SHUFFLE_PORT,
            self.tcp_config,
            self.cluster.node.disk_read_bps,
            self.shuffle_parallelism,
            expected_segments=len(self.maps),
            on_done=lambda: self._shuffle_done(task),
        )
        self._fetchers[task.task_id] = fetcher
        # Segments of maps that finished before this reducer started.
        for m in self._completed_maps:
            fetcher.add_segment(
                ShuffleSegment(m.task_id, m.node, task.pending_inputs[m.task_id])
            )

    def _shuffle_done(self, task: ReduceTask) -> None:
        task.shuffle_done_time = self.sim.now
        fetcher = self._fetchers[task.task_id]
        task.fetched_bytes = fetcher.fetched_bytes
        spec = self.cluster.node
        merge = task.fetched_bytes / spec.disk_read_bps
        compute = task.fetched_bytes / spec.reduce_rate_bps
        out = int(task.fetched_bytes * self.job.reduce_selectivity)
        write = out / spec.disk_write_bps
        self.sim.schedule(merge + compute + write, lambda: self._reduce_done(task))

    def _reduce_done(self, task: ReduceTask) -> None:
        task.state = TaskState.DONE
        task.end_time = self.sim.now
        self.scheduler.release_reduce(task.node)
        self._reduces_done += 1
        if self._reduces_done == len(self.reduces):
            self._finish()
        else:
            self._schedule()

    # -- introspection -----------------------------------------------------------------------

    def register_metrics(self, registry) -> None:
        """Bind job-progress gauges into a telemetry registry.

        The engine's task lists stay the source of truth; the registry
        pulls from them at snapshot time (no hot-path bookkeeping).
        """
        registry.gauge("mapreduce.maps_total", fn=lambda: len(self.maps))
        registry.gauge("mapreduce.maps_done",
                       fn=lambda: len(self._completed_maps))
        registry.gauge("mapreduce.reduces_total", fn=lambda: len(self.reduces))
        registry.gauge("mapreduce.reduces_done", fn=lambda: self._reduces_done)
        registry.gauge("mapreduce.bytes_shuffled",
                       fn=lambda: sum(r.fetched_bytes for r in self.reduces))
        registry.gauge("mapreduce.fetch_failures", fn=self.fetch_failures)
        registry.gauge("mapreduce.active_fetchers",
                       fn=lambda: len(self._fetchers))

    def fetch_failures(self) -> int:
        """Total abandoned shuffle fetch attempts across all reducers."""
        return sum(f.fetch_failures for f in self._fetchers.values())

    def shuffle_flow_results(self):
        """FlowResults of every network shuffle fetch performed so far."""
        out = []
        for fetcher in self._fetchers.values():
            out.extend(fetcher.flow_results)
        return out

    # -- completion -------------------------------------------------------------------------

    def _finish(self) -> None:
        assignments = [(m.block.block_id, m.node) for m in self.maps]
        remote = sum(
            seg_bytes
            for r in self.reduces
            for mid, seg_bytes in r.pending_inputs.items()
            if self.maps[mid].node != r.node
        )
        self.result = JobResult(
            job=self.job,
            submit_time=self._submit_time,
            map_phase_end=self._map_phase_end or self.sim.now,
            end_time=self.sim.now,
            maps=self.maps,
            reduces=self.reduces,
            bytes_shuffled=sum(r.fetched_bytes for r in self.reduces),
            bytes_shuffled_remote=remote,
            locality_fraction=self.hdfs.locality_fraction(assignments),
        )
        for listener in self.listeners:
            listener.close()
        if self.on_job_done is not None:
            self.on_job_done(self.result)
