"""Tests for the analytical models, including cross-checks vs simulation."""

import pytest

from repro.analysis import (
    dctcp_queue_amplitude_packets,
    dctcp_recommended_threshold_packets,
    ideal_shuffle_time,
    red_stationary_drop_probability,
    tcp_throughput_mathis,
)
from repro.errors import ConfigError
from repro.units import gbps, mb, us


class TestDctcpModels:
    def test_threshold_guideline_order_of_magnitude(self):
        # 10 Gbps, 100 us RTT: BDP = 83 packets -> K > ~12.
        k = dctcp_recommended_threshold_packets(gbps(10), us(100))
        assert 10 < k < 15

    def test_amplitude_scales_with_sqrt_bdp(self):
        a1 = dctcp_queue_amplitude_packets(gbps(1), us(100))
        a4 = dctcp_queue_amplitude_packets(gbps(4), us(100))
        assert a4 == pytest.approx(2 * a1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            dctcp_recommended_threshold_packets(0, us(100))


class TestMathis:
    def test_throughput_decreases_with_loss(self):
        t_low = tcp_throughput_mathis(1460, 1e-3, 1e-4)
        t_high = tcp_throughput_mathis(1460, 1e-3, 1e-2)
        assert t_low == pytest.approx(10 * t_high)

    def test_rejects_certain_loss(self):
        with pytest.raises(ConfigError):
            tcp_throughput_mathis(1460, 1e-3, 1.0)


class TestIdealShuffle:
    def test_value(self):
        # 15 MB into each receiver at 1 Gbps = 120 ms.
        assert ideal_shuffle_time(mb(15), gbps(1)) == pytest.approx(0.12)

    def test_simulation_respects_lower_bound(self):
        """The simulated all-to-all can approach but never beat the bound."""
        from repro.core import SimpleMarkingQueue
        from repro.net import build_single_rack
        from repro.sim import Simulator
        from repro.tcp import TcpConfig, TcpVariant
        from repro.units import kb
        from repro.workloads import all_to_all

        sim = Simulator()
        n = 4
        per_pair = kb(500)
        spec = build_single_rack(
            sim, n, lambda nm: SimpleMarkingQueue(200, 8, name=nm),
            link_rate_bps=gbps(1), link_delay_s=us(20),
        )
        done = []
        all_to_all(sim, spec.hosts, per_pair,
                   TcpConfig(variant=TcpVariant.DCTCP),
                   on_done=lambda r: done.append(r))
        sim.run(until=60.0)
        finish = max(r.end_time for r in done)
        bound = ideal_shuffle_time(per_pair * (n - 1), gbps(1))
        assert finish >= bound
        assert finish <= 3 * bound  # and the marking fabric gets close


class TestRedProbability:
    def test_below_min_is_zero(self):
        assert red_stationary_drop_probability(3, 5, 15, 0.1) == 0.0

    def test_linear_ramp(self):
        assert red_stationary_drop_probability(10, 5, 15, 0.1) == pytest.approx(0.05)

    def test_at_or_above_max(self):
        assert red_stationary_drop_probability(15, 5, 15, 0.1) == 0.1
        assert red_stationary_drop_probability(50, 5, 15, 0.1) == 0.1

    def test_step_marker(self):
        assert red_stationary_drop_probability(65, 65, 65, 1.0) == 1.0

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ConfigError):
            red_stationary_drop_probability(10, 15, 5, 0.1)


class TestFairness:
    def test_jain_equal_is_one(self):
        from repro.stats import jain_index

        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_jain_single_hog(self):
        from repro.stats import jain_index

        assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_jain_empty(self):
        from repro.stats import jain_index

        assert jain_index([]) == 0.0

    def test_shuffle_fairness_high_under_marking(self):
        from repro.core import SimpleMarkingQueue
        from repro.net import build_single_rack
        from repro.sim import Simulator
        from repro.stats import goodput_fairness
        from repro.tcp import TcpConfig, TcpVariant
        from repro.units import kb
        from repro.workloads import all_to_all

        sim = Simulator()
        spec = build_single_rack(
            sim, 4, lambda nm: SimpleMarkingQueue(200, 8, name=nm),
            link_rate_bps=gbps(1), link_delay_s=us(20),
        )
        done = []
        all_to_all(sim, spec.hosts, kb(300),
                   TcpConfig(variant=TcpVariant.DCTCP),
                   on_done=lambda r: done.append(r))
        sim.run(until=60.0)
        assert goodput_fairness(done) > 0.8
