"""The stability observatory: classifier, aggregation, bifurcation sweeps.

Unit-level tests drive the detector with synthetic queue series (sines,
constants, seeded noise) so each regime's decision boundary is pinned
without running the simulator; the bifurcation refiner is tested against
a stubbed sweep runner with a known regime boundary; one small
integration test runs a real incast probe cell end to end and checks the
``manifest["stability"]`` block lands with the right schema.
"""

import json
import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis.stability import (
    CLASS_IRREGULAR,
    CLASS_LIMIT_CYCLE,
    CLASS_STABLE,
    STABILITY_SCHEMA,
    StabilityAnalysis,
    classify_series,
    snapshots_by_queue,
)
from repro.errors import ConfigError, ExperimentError
from repro.experiments import bifurcation
from repro.experiments.bifurcation import (
    STABILITY_MAP_SCHEMA,
    render_regime_table,
    run_bifurcation,
)
from repro.experiments.config import SHALLOW_BUFFER_PACKETS, QueueSetup
from repro.experiments.probe import StabilityProbeConfig
from repro.experiments.runner import run_cell
from repro.plotting import regime_map_to_svg
from repro.tcp.endpoint import TcpVariant
from repro.units import us


def sine_series(n=256, dt=1e-3, period_s=16e-3, mean=20.0, amp=10.0,
                phase=0.0):
    t = np.arange(n) * dt
    return t, mean + amp * np.sin(2.0 * math.pi * t / period_s + phase)


# ---------------------------------------------------------------------------
# classifier


class TestClassifySeries:
    def test_sawtoothlike_sine_is_limit_cycle(self):
        t, v = sine_series()
        ev = classify_series(t, v, name="q")
        assert ev.classification == CLASS_LIMIT_CYCLE
        assert ev.confidence >= 0.5
        assert ev.period_s == pytest.approx(16e-3, rel=0.1)
        assert ev.peak_ratio > 50.0
        assert ev.acf_at_period > 0.3

    def test_constant_queue_is_stable_full_confidence(self):
        t = np.arange(128) * 1e-3
        ev = classify_series(t, np.full(128, 7.0))
        assert ev.classification == CLASS_STABLE
        assert ev.confidence == 1.0
        assert ev.amplitude == 0.0

    def test_small_relative_ripple_is_stable(self):
        # DCTCP held at K: a couple of packets around a deep operating point
        t, v = sine_series(mean=100.0, amp=5.0)
        ev = classify_series(t, v)
        assert ev.classification == CLASS_STABLE
        assert ev.rel_amplitude < 0.15

    def test_large_aperiodic_fluctuation_is_irregular(self):
        rng = np.random.default_rng(11)
        t = np.arange(512) * 1e-3
        v = np.abs(rng.normal(20.0, 15.0, size=512))
        ev = classify_series(t, v)
        assert ev.classification == CLASS_IRREGULAR

    def test_short_series_low_confidence_stable(self):
        t, v = sine_series(n=10)
        ev = classify_series(t, v)
        assert ev.classification == CLASS_STABLE
        assert ev.confidence == 0.25

    def test_profile_kept_and_bounded(self):
        t, v = sine_series(n=500)
        ev = classify_series(t, v, keep_profile=True)
        assert 2 <= len(ev.profile) <= 64
        # the block must round-trip through JSON unchanged
        d = ev.to_dict()
        assert json.loads(json.dumps(d)) == d

    def test_transient_rampup_discarded(self):
        # slow-start ramp into a flat steady state: stable, not irregular
        t = np.arange(200) * 1e-3
        v = np.concatenate([np.linspace(0.0, 40.0, 40), np.full(160, 40.0)])
        ev = classify_series(t, v)
        assert ev.classification == CLASS_STABLE


# ---------------------------------------------------------------------------
# snapshot grouping


def snap(time, qlen, queue=""):
    return SimpleNamespace(time=time, qlen_packets=qlen, queue=queue)


class TestSnapshotsByQueue:
    def test_labeled_snapshots_group_by_queue(self):
        snaps = [snap(0.0, 1, "tor.p0"), snap(0.0, 9, "tor.p1"),
                 snap(1.0, 2, "tor.p0"), snap(1.0, 8, "tor.p1")]
        out = snapshots_by_queue(snaps)
        assert sorted(out) == ["tor.p0", "tor.p1"]
        assert out["tor.p0"] == ([0.0, 1.0], [1.0, 2.0])
        assert out["tor.p1"] == ([0.0, 1.0], [9.0, 8.0])

    def test_unlabeled_snapshots_segment_on_time_reset(self):
        # run_cell concatenates monitors' buffers back to back
        snaps = [snap(0.0, 1), snap(1.0, 2), snap(0.0, 5), snap(1.0, 6)]
        out = snapshots_by_queue(snaps)
        assert sorted(out) == ["queue0", "queue1"]
        assert out["queue0"] == ([0.0, 1.0], [1.0, 2.0])
        assert out["queue1"] == ([0.0, 1.0], [5.0, 6.0])

    def test_empty(self):
        assert snapshots_by_queue([]) == {}


# ---------------------------------------------------------------------------
# per-cell aggregation


def fake_cell(series_by_queue, config=None):
    """A CellResult stand-in: labeled snapshots + an empty manifest."""
    snaps = []
    for qname, (t, v) in series_by_queue.items():
        snaps.extend(snap(float(ti), float(vi), qname)
                     for ti, vi in zip(t, v))
    return SimpleNamespace(config=config, snapshots=snaps, manifest={})


class TestStabilityAnalysis:
    def test_dominant_queue_drives_cell_verdict(self):
        cell = fake_cell({
            "tor.p0": sine_series(amp=10.0),        # the big oscillator
            "tor.p1": sine_series(mean=5.0, amp=0.1),  # basically flat
        })
        report = StabilityAnalysis().report(cell)
        assert report.classification == CLASS_LIMIT_CYCLE
        assert report.dominant_queue == "tor.p0"
        assert report.counts[CLASS_LIMIT_CYCLE] == 1
        assert report.counts[CLASS_STABLE] == 1

    def test_phase_locked_queues_synchronized(self):
        cell = fake_cell({
            "tor.p0": sine_series(amp=10.0),
            "tor.p1": sine_series(amp=10.0),
        })
        report = StabilityAnalysis().report(cell)
        assert report.sync_score is not None
        assert report.sync_score > 0.9

    def test_no_snapshots_is_low_confidence_stable(self):
        report = StabilityAnalysis().report(fake_cell({}))
        assert report.classification == CLASS_STABLE
        assert report.confidence == 0.25
        assert report.dominant_queue is None
        assert report.queues == []

    def test_analyze_is_deterministic_and_schemad(self):
        cell = fake_cell({"tor.p0": sine_series()})
        sa = StabilityAnalysis()
        a = json.dumps(sa.analyze(cell), sort_keys=True)
        b = json.dumps(sa.analyze(cell), sort_keys=True)
        assert a == b
        assert json.loads(a)["schema"] == STABILITY_SCHEMA


# ---------------------------------------------------------------------------
# probe config


class TestStabilityProbeConfig:
    def _cfg(self, **kw):
        kw.setdefault("queue", QueueSetup(
            kind="marking", buffer_packets=SHALLOW_BUFFER_PACKETS,
            target_delay_s=us(200.0)))
        return StabilityProbeConfig(**kw)

    def test_validate_accepts_default(self):
        self._cfg().validate()

    def test_flow_outlives_horizon(self):
        cfg = self._cfg()
        # senders must keep the bottleneck busy for the whole horizon
        assert cfg.flow_bytes() * 8 > cfg.link_rate_bps * cfg.duration_s

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigError):
            self._cfg(n_senders=0).validate()
        with pytest.raises(ConfigError):
            self._cfg(monitor_interval_s=2.0, duration_s=1.0).validate()
        with pytest.raises(ConfigError):
            self._cfg(dctcp_g=1.5).validate()

    def test_copiers_change_one_knob(self):
        cfg = self._cfg()
        assert cfg.with_target_delay(us(50.0)).queue.target_delay_s == us(50.0)
        assert cfg.with_dctcp_g(0.25).dctcp_g == 0.25
        assert cfg.with_dctcp_g(0.25).queue == cfg.queue


# ---------------------------------------------------------------------------
# bifurcation refinement (stubbed sweep runner: boundary at 300 us)


BOUNDARY_S = 300e-6


def _stub_run_cells(items, jobs=1, cache=None, resume=True, progress=None):
    results = {}
    for label, cfg in items:
        osc = cfg.queue.target_delay_s < BOUNDARY_S
        if osc:
            t, v = sine_series(n=200)
        else:
            t, v = np.arange(200) * 1e-3, np.full(200, 5.0)
        results[label] = fake_cell({"tor.p0": (t, v)}, config=cfg)
    return SimpleNamespace(results=results, executed=list(results), cached=[],
                           wall_s=0.0)


class TestRunBifurcation:
    @pytest.fixture
    def base(self):
        return StabilityProbeConfig(queue=QueueSetup(
            kind="marking", buffer_packets=SHALLOW_BUFFER_PACKETS,
            target_delay_s=us(200.0)))

    def test_refines_until_boundary_bracketed(self, base, monkeypatch):
        monkeypatch.setattr(bifurcation, "run_cells", _stub_run_cells)
        m = run_bifurcation(base, "target-delay", [100e-6, 1000e-6], rounds=2)
        values = [p.value for p in m.points]
        assert values == sorted(values)
        assert len(values) == 4  # 2 coarse + 2 refined midpoints
        assert [p.refined for p in m.points] == [False, True, True, False]
        assert len(m.transitions) == 1
        t = m.transitions[0]
        assert t.lo < BOUNDARY_S <= t.hi
        assert t.refinements == 2
        assert t.lo_class == CLASS_LIMIT_CYCLE and t.hi_class == CLASS_STABLE
        # refinement tightened the bracket well inside the coarse interval
        assert t.hi / t.lo < (1000e-6 / 100e-6) ** 0.5

    def test_uniform_regime_needs_no_refinement(self, base, monkeypatch):
        monkeypatch.setattr(bifurcation, "run_cells", _stub_run_cells)
        m = run_bifurcation(base, "target-delay", [400e-6, 800e-6], rounds=3)
        assert len(m.points) == 2
        assert m.transitions == []
        assert all(p.classification == CLASS_STABLE for p in m.points)

    def test_map_artifact_round_trips(self, base, monkeypatch):
        monkeypatch.setattr(bifurcation, "run_cells", _stub_run_cells)
        m = run_bifurcation(base, "target-delay", [100e-6, 1000e-6], rounds=1)
        d = json.loads(json.dumps(m.to_dict()))
        assert d["schema"] == STABILITY_MAP_SCHEMA
        assert d["axis"] == "target-delay"
        assert d["base_config"]["queue"]["kind"] == "marking"
        assert len(d["points"]) == len(m.points)
        assert d["sweep"]["rounds"] == 2  # initial grid + 1 refinement pass

    def test_bad_inputs_rejected(self, base):
        with pytest.raises(ExperimentError, match="axis"):
            run_bifurcation(base, "buffer-depth", [1.0, 2.0])
        with pytest.raises(ExperimentError, match="2 distinct"):
            run_bifurcation(base, "target-delay", [100e-6, 100e-6])
        with pytest.raises(ExperimentError, match="positive"):
            run_bifurcation(base, "target-delay", [-1e-6, 100e-6])

    def test_rendering(self, base, monkeypatch):
        monkeypatch.setattr(bifurcation, "run_cells", _stub_run_cells)
        m = run_bifurcation(base, "target-delay", [100e-6, 1000e-6], rounds=2)
        table = render_regime_table(m)
        assert "stability map:" in table
        assert "transition: limit-cycle -> stable" in table
        assert "100us" in table and " *" in table
        svg = regime_map_to_svg(m)
        assert svg.startswith("<svg")
        assert "limit-cycle" in svg and "stable" in svg
        assert "refined" in svg


# ---------------------------------------------------------------------------
# integration: one real probe cell through run_cell(analyses=...)


class TestProbeIntegration:
    def test_probe_cell_lands_stability_block(self):
        cfg = StabilityProbeConfig(
            queue=QueueSetup(kind="marking",
                             buffer_packets=SHALLOW_BUFFER_PACKETS,
                             target_delay_s=us(100.0)),
            variant=TcpVariant.ECN, duration_s=0.25,
        )
        cell = run_cell(cfg, analyses=[StabilityAnalysis()])
        block = cell.manifest["stability"]
        assert block["schema"] == STABILITY_SCHEMA
        assert block["classification"] in (CLASS_STABLE, CLASS_LIMIT_CYCLE,
                                           CLASS_IRREGULAR)
        assert cell.manifest["kind"] == "stability-probe"
        assert cell.metrics.extra["goodput_bps"] > 0
        # the block is a pure function of the recorded samples
        again = StabilityAnalysis().analyze(cell)
        assert json.dumps(block, sort_keys=True) == json.dumps(
            again, sort_keys=True)
