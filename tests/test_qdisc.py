"""Tests for the base QueueDisc contract and DropTail."""

import pytest

from repro.core import DropTail
from repro.errors import QueueError
from repro.net.packet import ECN_ECT0, FLAG_ACK, FLAG_SYN, Packet


def data(seq=0, ecn=ECN_ECT0):
    return Packet(src=0, sport=1, dst=1, dport=2, seq=seq, payload=1460, ecn=ecn)


def ack():
    return Packet(src=1, sport=2, dst=0, dport=1, flags=FLAG_ACK)


def syn():
    return Packet(src=0, sport=1, dst=1, dport=2, flags=FLAG_SYN)


class TestFifoOrder:
    def test_fifo(self):
        q = DropTail(10)
        pkts = [data(seq=i) for i in range(5)]
        for p in pkts:
            assert q.enqueue(p, 0.0)
        out = [q.dequeue(1.0) for _ in range(5)]
        assert [p.seq for p in out] == [0, 1, 2, 3, 4]

    def test_dequeue_empty_returns_none(self):
        assert DropTail(10).dequeue(0.0) is None

    def test_len_tracks_occupancy(self):
        q = DropTail(10)
        q.enqueue(data(), 0.0)
        q.enqueue(data(), 0.0)
        assert len(q) == 2
        q.dequeue(0.0)
        assert len(q) == 1


class TestTailDrop:
    def test_accepts_until_full(self):
        q = DropTail(3)
        assert all(q.enqueue(data(), 0.0) for _ in range(3))
        assert q.is_full

    def test_drops_when_full(self):
        q = DropTail(2)
        q.enqueue(data(), 0.0)
        q.enqueue(data(), 0.0)
        assert not q.enqueue(data(), 0.0)
        assert q.stats.drops_tail == 1
        assert q.stats.drops_early == 0

    def test_never_marks(self):
        q = DropTail(2)
        p = data()
        q.enqueue(p, 0.0)
        assert not p.is_ce
        assert q.stats.marks == 0

    def test_space_reopens_after_dequeue(self):
        q = DropTail(1)
        q.enqueue(data(), 0.0)
        assert not q.enqueue(data(), 0.0)
        q.dequeue(0.0)
        assert q.enqueue(data(), 0.0)

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(QueueError):
            DropTail(0)


class TestStats:
    def test_arrival_and_departure_counters(self):
        q = DropTail(10)
        q.enqueue(data(), 0.0)
        q.enqueue(ack(), 0.0)
        q.dequeue(0.5)
        st = q.stats
        assert st.arrivals == 2
        assert st.departures == 1
        assert st.arrival_bytes == 1500 + 150
        assert st.departure_bytes == 1500

    def test_per_class_arrival_counters(self):
        q = DropTail(10)
        q.enqueue(data(), 0.0)        # ECT data
        q.enqueue(ack(), 0.0)         # pure ACK
        q.enqueue(syn(), 0.0)         # SYN
        st = q.stats
        assert st.ect_arrivals == 1
        assert st.ack_arrivals == 1
        assert st.syn_arrivals == 1

    def test_per_class_drop_counters(self):
        q = DropTail(1)
        q.enqueue(data(), 0.0)
        q.enqueue(ack(), 0.0)   # dropped
        q.enqueue(syn(), 0.0)   # dropped
        st = q.stats
        assert st.ack_drops == 1
        assert st.syn_drops == 1
        assert st.drops == 2

    def test_queue_delay_measurement(self):
        q = DropTail(10)
        q.enqueue(data(), 1.0)
        q.dequeue(1.25)
        assert q.stats.mean_queue_delay == pytest.approx(0.25)

    def test_ack_drop_rate(self):
        q = DropTail(1)
        q.enqueue(data(), 0.0)
        q.enqueue(ack(), 0.0)
        q.enqueue(ack(), 0.0)
        assert q.stats.ack_drop_rate() == pytest.approx(1.0)

    def test_rates_zero_when_no_arrivals(self):
        st = DropTail(1).stats
        assert st.ack_drop_rate() == 0.0
        assert st.ect_drop_rate() == 0.0

    def test_bytes_tracking(self):
        q = DropTail(10)
        q.enqueue(data(), 0.0)
        assert q.qlen_bytes == 1500
        q.enqueue(ack(), 0.0)
        assert q.qlen_bytes == 1650
        q.dequeue(0.0)
        assert q.qlen_bytes == 150

    def test_mean_queue_packets_time_average(self):
        q = DropTail(10)
        q.enqueue(data(), 0.0)   # 1 pkt from t=0
        q.enqueue(data(), 1.0)   # 2 pkts from t=1
        q.dequeue(2.0)           # 1 pkt from t=2
        q._advance_occupancy(4.0)
        # integral = 1*1 + 2*1 + 1*2 = 5 over 4s
        assert q.stats.mean_queue_packets(4.0) == pytest.approx(5 / 4)
