"""Tests for PeriodicTimer and delay_chain."""

import pytest

from repro.errors import SchedulingError
from repro.sim import PeriodicTimer, Simulator, delay_chain


class TestPeriodicTimer:
    def test_fires_at_interval(self):
        sim = Simulator()
        times = []
        t = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now))
        t.start()
        sim.run(until=3.5)
        assert times == [1.0, 2.0, 3.0]

    def test_first_delay_override(self):
        sim = Simulator()
        times = []
        t = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now))
        t.start(first_delay=0.25)
        sim.run(until=2.5)
        assert times == [0.25, 1.25, 2.25]

    def test_stop_halts_firing(self):
        sim = Simulator()
        times = []
        t = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now))
        t.start()
        sim.schedule(2.5, t.stop)
        sim.run(until=10.0)
        assert times == [1.0, 2.0]
        assert not t.running

    def test_stop_from_inside_callback(self):
        sim = Simulator()
        count = []

        def cb():
            count.append(1)
            if len(count) == 3:
                timer.stop()

        timer = PeriodicTimer(sim, 1.0, cb)
        timer.start()
        sim.run(until=100.0)
        assert len(count) == 3

    def test_start_is_idempotent(self):
        sim = Simulator()
        times = []
        t = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now))
        t.start()
        t.start()
        sim.run(until=1.5)
        assert times == [1.0]

    def test_fire_count(self):
        sim = Simulator()
        t = PeriodicTimer(sim, 0.5, lambda: None)
        t.start()
        sim.run(until=2.1)
        assert t.fire_count == 4

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(SchedulingError):
            PeriodicTimer(Simulator(), 0.0, lambda: None)


class TestDelayChain:
    def test_stages_run_sequentially(self):
        sim = Simulator()
        log = []
        delay_chain(
            sim,
            [
                (1.0, lambda: log.append(("a", sim.now))),
                (2.0, lambda: log.append(("b", sim.now))),
                (0.5, lambda: log.append(("c", sim.now))),
            ],
        )
        sim.run()
        assert log == [("a", 1.0), ("b", 3.0), ("c", 3.5)]

    def test_on_done_fires_after_last_stage(self):
        sim = Simulator()
        log = []
        delay_chain(
            sim,
            [(1.0, lambda: log.append("stage"))],
            on_done=lambda: log.append("done"),
        )
        sim.run()
        assert log == ["stage", "done"]

    def test_empty_chain_calls_on_done(self):
        sim = Simulator()
        log = []
        delay_chain(sim, [], on_done=lambda: log.append("done"))
        sim.run()
        assert log == ["done"]
