"""Tests for the SVG renderers (structure, not pixels)."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.monitor import QueueSnapshot
from repro.experiments.figures import FigureData
from repro.plotting import (
    SvgCanvas,
    figure_to_svg,
    queue_snapshot_to_svg,
    timeseries_to_svg,
)
from repro.stats import TimeSeries
from repro.units import us

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


def count(root, tag: str) -> int:
    return len(root.findall(f".//{SVG_NS}{tag}"))


class TestCanvas:
    def test_empty_canvas_is_valid_xml(self):
        root = parse(SvgCanvas(100, 50).to_svg())
        assert root.tag == f"{SVG_NS}svg"
        assert root.get("width") == "100"

    def test_primitives_emitted(self):
        c = SvgCanvas(100, 100)
        c.line(0, 0, 10, 10)
        c.polyline([(0, 0), (5, 5), (10, 0)])
        c.rect(1, 1, 5, 5)
        c.circle(3, 3, 1)
        c.text(0, 10, "hello")
        root = parse(c.to_svg())
        assert count(root, "line") == 1
        assert count(root, "polyline") == 1
        assert count(root, "rect") == 2  # background + explicit
        assert count(root, "circle") == 1
        assert count(root, "text") == 1

    def test_text_is_escaped(self):
        c = SvgCanvas(100, 100)
        c.text(0, 0, "a<b>&c")
        root = parse(c.to_svg())  # must not raise
        texts = root.findall(f".//{SVG_NS}text")
        assert texts[0].text == "a<b>&c"

    def test_dashed_stroke(self):
        c = SvgCanvas(10, 10)
        c.line(0, 0, 1, 1, dashed=True)
        assert "stroke-dasharray" in c.to_svg()

    def test_save(self, tmp_path):
        path = tmp_path / "x.svg"
        SvgCanvas(10, 10).save(str(path))
        assert path.read_text().startswith("<svg")


class TestFigureChart:
    def make_fig(self):
        fig = FigureData(
            name="figX", title="Test Figure", deep=True,
            delays=[us(100), us(500), us(1000)],
            normalized_against="droptail",
        )
        fig.series = {"tcp-ecn/marking": [0.8, 0.85, 0.9],
                      "dctcp/red-default": [1.2, 1.0, 0.95]}
        fig.references = {"droptail-deep": 0.7}
        return fig

    def test_renders_all_series(self):
        root = parse(figure_to_svg(self.make_fig()))
        # one polyline per series
        assert count(root, "polyline") == 2
        # one marker circle per data point
        assert count(root, "circle") == 6

    def test_legend_labels_present(self):
        svg = figure_to_svg(self.make_fig())
        assert "tcp-ecn/marking" in svg
        assert "droptail-deep (ref)" in svg

    def test_tick_labels(self):
        svg = figure_to_svg(self.make_fig())
        for label in ("100us", "500us", "1000us"):
            assert label in svg


class TestQueueSnapshotChart:
    def snap(self):
        return QueueSnapshot(time=0.1, qlen_packets=60, qlen_bytes=90000,
                             limit_packets=100, ect_data=50, nonect_data=2,
                             pure_acks=6, syns=2, ce_marked=0)

    def test_renders(self):
        root = parse(queue_snapshot_to_svg(self.snap(), mark_threshold=17))
        assert count(root, "rect") >= 5

    def test_threshold_marker(self):
        svg = queue_snapshot_to_svg(self.snap(), mark_threshold=17)
        assert "K=17" in svg

    def test_threshold_beyond_limit_skipped(self):
        svg = queue_snapshot_to_svg(self.snap(), mark_threshold=500)
        assert "K=500" not in svg


class TestTimeSeriesChart:
    def test_renders_multiple_series(self):
        a = TimeSeries("cwnd")
        b = TimeSeries("flight")
        for i in range(20):
            a.append(i * 0.01, 100 + i)
            b.append(i * 0.01, 50 + i)
        root = parse(timeseries_to_svg([a, b], title="t"))
        assert count(root, "polyline") == 2

    def test_empty_series_handled(self):
        svg = timeseries_to_svg([TimeSeries("x")])
        assert "no samples" in svg

    def test_series_names_in_legend(self):
        s = TimeSeries("my-series")
        s.append(0.0, 1.0)
        s.append(1.0, 2.0)
        assert "my-series" in timeseries_to_svg([s])
