"""Tests for the NS-2-style trace writer and analyzer."""

import pytest

from repro.core import RedParams, RedQueue
from repro.net import Packet, build_single_rack
from repro.net.packet import ECN_ECT0, FLAG_ACK
from repro.net.tracefmt import PacketTraceWriter, TraceAnalyzer, format_event
from repro.sim import Simulator, Tracer
from repro.tcp import TcpConfig, TcpListener, TcpVariant, start_bulk_flow
from repro.units import gbps, kb, us


class TestFormat:
    def test_format_event_fields(self):
        pkt = Packet(src=3, sport=1000, dst=7, dport=2000, seq=1460,
                     ack=42, payload=1460, flags=FLAG_ACK, ecn=ECN_ECT0)
        line = format_event("-", 0.001234, "tor->h7", pkt)
        parts = line.split()
        assert parts[0] == "-"
        assert float(parts[1]) == pytest.approx(0.001234)
        assert parts[2] == "tor->h7"
        assert parts[3] == "3:1000"
        assert parts[4] == "7:2000"
        assert parts[5] == "1500"
        assert "ACK" in parts[6]
        assert parts[7] == "ECT(0)"
        assert parts[8] == "seq=1460"
        assert parts[9] == "ack=42"

    def test_roundtrip_through_analyzer(self):
        pkt = Packet(src=1, sport=2, dst=3, dport=4, payload=100)
        text = format_event("d", 1.5, "sw", pkt)
        an = TraceAnalyzer(text)
        assert len(an.events) == 1
        e = an.events[0]
        assert e["code"] == "d"
        assert e["size"] == 140


class TestLiveCapture:
    def run_traced(self, qf=None, flow_bytes=kb(200)):
        sim = Simulator()
        tracer = Tracer()
        writer = PacketTraceWriter(tracer)
        spec = build_single_rack(
            sim, 3,
            qf or (lambda nm: RedQueue(20, RedParams(
                min_th=3, max_th=9, use_instantaneous=True), name=nm)),
            link_rate_bps=gbps(1), link_delay_s=us(20), tracer=tracer,
        )
        writer.attach_delivery(spec.network, tracer)
        cfg = TcpConfig(variant=TcpVariant.ECN)
        TcpListener(sim, spec.hosts[0], 5000, cfg)
        done = []
        for src in (1, 2):
            start_bulk_flow(sim, spec.hosts[src], spec.hosts[0], 5000,
                            flow_bytes, cfg, on_done=lambda r: done.append(r))
        sim.run(until=30.0)
        assert len(done) == 2
        return writer, spec

    def test_trace_captures_all_event_kinds(self):
        writer, _ = self.run_traced()
        an = TraceAnalyzer(writer.getvalue())
        counts = an.count_by_code()
        assert counts["-"] > 100   # transmissions
        assert counts["r"] > 100   # deliveries

    def test_ce_marks_visible_in_trace(self):
        writer, _ = self.run_traced()
        an = TraceAnalyzer(writer.getvalue())
        assert len(an.ce_marked_deliveries()) > 0

    def test_bytes_delivered_consistent(self):
        writer, spec = self.run_traced()
        an = TraceAnalyzer(writer.getvalue())
        # Trace-derived deliveries must match the hosts' own counters
        # within the wire/payload accounting (every delivered packet shows).
        delivered_events = an.count_by_code()["r"]
        assert delivered_events == sum(h.rx_packets for h in spec.hosts)

    def test_timespan_positive(self):
        writer, _ = self.run_traced()
        an = TraceAnalyzer(writer.getvalue())
        assert an.timespan() > 0

    def test_external_stream(self, tmp_path):
        sim = Simulator()
        tracer = Tracer()
        path = tmp_path / "trace.txt"
        with open(path, "w") as fh:
            writer = PacketTraceWriter(tracer, out=fh)
            pkt = Packet(src=0, sport=1, dst=1, dport=2, payload=10)
            tracer.emit(0.5, "tx", "p0", pkt)
        assert writer.lines_written == 1
        assert path.read_text().startswith("- 0.5")
        with pytest.raises(ValueError):
            writer.getvalue()

    def test_dropped_acks_detected(self):
        """Bidirectional traffic puts ACKs in a congested RED queue; the
        trace must expose the resulting early ACK drops."""
        sim = Simulator()
        tracer = Tracer()
        writer = PacketTraceWriter(tracer)
        spec = build_single_rack(
            sim, 3,
            lambda nm: RedQueue(12, RedParams(
                min_th=1, max_th=3, max_p=1.0, gentle=False,
                use_instantaneous=True, ecn=True), name=nm),
            link_rate_bps=gbps(1), link_delay_s=us(20), tracer=tracer,
        )
        cfg = TcpConfig(variant=TcpVariant.ECN)
        done = []
        # Data flows both ways between every pair: ACKs share every
        # congested ToR downlink with forward data.
        from repro.workloads import all_to_all

        all_to_all(sim, spec.hosts, kb(400), cfg,
                   on_done=lambda r: done.append(r))
        sim.run(until=60.0)
        assert len(done) == 6
        an = TraceAnalyzer(writer.getvalue())
        assert len(an.dropped_acks()) > 0
