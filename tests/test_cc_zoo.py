"""Tests for the congestion-control registry and the new zoo members.

Covers the string-keyed registry round-trips, the DCTCP fidelity fixes
(byte-precise marked-byte accounting, observation-window reset on RTO,
the once-per-window cut gate across fast recovery), α fixed-point
convergence, and the CUBIC / D2TCP policies.
"""

from types import SimpleNamespace

import pytest

from repro.errors import ConfigError
from repro.tcp import (
    CongestionControl,
    CubicControl,
    D2tcpControl,
    DctcpControl,
    NewRenoControl,
    TcpConfig,
    TcpVariant,
    cc_names,
    make_cc,
)

MSS = 1460


def fake_sender(deadline_s=None, srtt=100e-6, nbytes=10_000_000,
                snd_una=0, now=0.0, start_time=0.0):
    """The minimal sender surface bind_flow consumers read."""
    return SimpleNamespace(
        sim=SimpleNamespace(now=now),
        rtt=SimpleNamespace(srtt=srtt),
        nbytes=nbytes,
        snd_una=snd_una,
        start_time=start_time,
        deadline_s=deadline_s,
    )


class TestRegistry:
    def test_names_are_sorted_and_complete(self):
        assert cc_names() == ("cubic", "d2tcp", "dctcp", "newreno")

    def test_every_key_constructs_from_config(self):
        cfg = TcpConfig(variant=TcpVariant.DCTCP)
        for key in cc_names():
            cc = make_cc(key, cfg)
            assert isinstance(cc, CongestionControl)
            assert cc.name == key
            assert cc.cwnd == cfg.init_cwnd_segments * cfg.mss

    def test_unknown_key_raises_with_known_names(self):
        with pytest.raises(ConfigError, match="cubic"):
            make_cc("bbr", TcpConfig())

    def test_variant_defaults_preserved(self):
        assert TcpConfig(variant=TcpVariant.DCTCP).cc_key() == "dctcp"
        assert TcpConfig(variant=TcpVariant.ECN).cc_key() == "newreno"
        assert TcpConfig(variant=TcpVariant.RENO).cc_key() == "newreno"

    def test_cc_override_beats_variant_default(self):
        cfg = TcpConfig(variant=TcpVariant.DCTCP, cc="cubic")
        assert cfg.cc_key() == "cubic"
        assert isinstance(cfg.make_cc(), CubicControl)

    def test_dctcp_gain_threads_through_config(self):
        cc = make_cc("dctcp", TcpConfig(variant=TcpVariant.DCTCP,
                                        dctcp_g=0.25))
        assert cc.g == pytest.approx(0.25)

    def test_d2tcp_inherits_dctcp_config(self):
        cc = make_cc("d2tcp", TcpConfig(variant=TcpVariant.DCTCP,
                                        dctcp_g=0.5))
        assert isinstance(cc, D2tcpControl)
        assert cc.g == pytest.approx(0.5)

    def test_fluid_model_attributes(self):
        assert NewRenoControl(MSS).fluid_model == "reno"
        assert DctcpControl(MSS).fluid_model == "dctcp"
        assert CubicControl(MSS).fluid_model is None
        assert D2tcpControl(MSS).fluid_model is None

    def test_ecn_per_ack_attributes(self):
        # The classic once-per-RTT ECE gate must stay active exactly for
        # the CCs that do NOT consume every ECE themselves.
        assert DctcpControl(MSS).ecn_per_ack
        assert D2tcpControl(MSS).ecn_per_ack
        assert not NewRenoControl(MSS).ecn_per_ack
        assert not CubicControl(MSS).ecn_per_ack


def drive_window(cc, n_chunks, marked_of, start_una=0, precise=True,
                 in_recovery=False):
    """ACK one n_chunks*MSS window; the first marked_of chunks are CE.

    With ``precise`` each ACK carries exact marked bytes; otherwise only
    the ECE flag (the coalescing-flawed sender fallback).
    """
    snd_nxt = start_una + n_chunks * MSS
    una = start_una
    reduced = False
    for i in range(n_chunks):
        una += MSS
        marked = i < marked_of
        r = cc.on_ack_info(
            MSS, marked, una, snd_nxt,
            marked_bytes=(MSS if marked else 0) if precise else None,
            in_recovery=in_recovery)
        reduced = reduced or r
    return reduced


class TestAlphaFixedPoint:
    """α must converge to the marking fraction F for any gain."""

    @pytest.mark.parametrize("frac", [0.0, 0.25, 1.0])
    def test_alpha_converges_to_marking_fraction(self, frac):
        # One cumulative ACK per 8-segment window with a byte-precise
        # marked count: F is exactly ``frac`` every window.
        cc = DctcpControl(MSS, g=1.0 / 16.0, init_alpha=0.5)
        marked = int(8 * frac) * MSS
        una = 0
        for _ in range(300):
            una += 8 * MSS
            cc.on_ack_info(8 * MSS, marked > 0, una, una,
                           marked_bytes=marked)
        assert cc.alpha == pytest.approx(frac, abs=1e-6)

    def test_precise_accounting_no_overshoot_under_delayed_acks(self):
        """The Misund regression: 2-segment delayed ACKs, half marked.

        Byte-precise accounting must settle α at the true fraction 0.5;
        the flag-only fallback attributes both segments of every ECE ACK
        and overshoots all the way to 1.0.
        """
        def delayed_ack_windows(cc, precise):
            una = 0
            for _ in range(200):
                snd_nxt = una + 10 * MSS
                for _ in range(5):  # five 2-segment delayed ACKs
                    una += 2 * MSS
                    cc.on_ack_info(
                        2 * MSS, True, una, snd_nxt,
                        marked_bytes=MSS if precise else None)
            return cc.alpha

        fixed = DctcpControl(MSS, g=1.0 / 16.0, init_alpha=0.0)
        flawed = DctcpControl(MSS, g=1.0 / 16.0, init_alpha=0.0)
        assert delayed_ack_windows(fixed, True) == pytest.approx(0.5, abs=1e-6)
        assert delayed_ack_windows(flawed, False) == pytest.approx(1.0, abs=1e-6)

    def test_marked_bytes_capped_by_acked_bytes(self):
        # A corrupt echo can never claim more than the ACK covered.
        cc = DctcpControl(MSS, g=1.0, init_alpha=0.0)
        cc.on_ack_info(MSS, True, 10 * MSS, 10 * MSS, marked_bytes=5 * MSS)
        assert cc.alpha == pytest.approx(1.0)


class TestRtoWindowReset:
    def stale_marks_then_clean_window(self, cc):
        """Half an in-progress marked window, an RTO, then clean ACKs."""
        una = 0
        # Window [0, 10*MSS) open: 5 fully-marked chunks acked so far.
        for _ in range(5):
            una += MSS
            cc.on_ack_info(MSS, True, una, 10 * MSS, marked_bytes=MSS)
        cc.on_rto(5 * MSS)
        # The stall clears; the rest of the range completes unmarked.
        while una < 10 * MSS:
            una += MSS
            cc.on_ack_info(MSS, False, una, 10 * MSS, marked_bytes=0)
        return cc.alpha

    def test_reset_discards_stale_marks(self):
        cc = DctcpControl(MSS, g=1.0, init_alpha=0.0)
        alpha = self.stale_marks_then_clean_window(cc)
        assert alpha == pytest.approx(0.0)  # clean window, clean estimate

    def test_alpha_freeze_flaw_keeps_stale_marks(self):
        cc = DctcpControl(MSS, g=1.0, init_alpha=0.0,
                          rto_window_reset=False)
        alpha = self.stale_marks_then_clean_window(cc)
        # The pre-RTO marks leak into the first post-RTO window:
        # 5 marked of 10 total acked chunks -> alpha = 0.5 at g = 1.
        assert alpha == pytest.approx(0.5)

    def test_config_flag_threads_through(self):
        cfg = TcpConfig(variant=TcpVariant.DCTCP,
                        dctcp_rto_window_reset=False)
        assert cfg.make_cc().rto_window_reset is False
        assert TcpConfig(variant=TcpVariant.DCTCP).make_cc().rto_window_reset


class TestRecoveryCutGate:
    def test_no_alpha_cut_inside_fast_recovery(self):
        cc = DctcpControl(MSS, g=1.0, init_alpha=0.0)
        cc.cwnd = 100 * MSS
        reduced = drive_window(cc, 10, 10, in_recovery=True)
        assert not reduced
        assert cc.cwnd == pytest.approx(100 * MSS)  # loss cut owns recovery
        assert cc.alpha == pytest.approx(1.0)  # the estimate still updates

    def test_cwr_gate_blocks_second_cut_after_rollback(self):
        cc = DctcpControl(MSS, g=1.0, init_alpha=0.0)
        cc.cwnd = 100 * MSS
        # First marked window [0, 10*MSS): cut, gate armed at 10*MSS.
        assert drive_window(cc, 10, 10, start_una=0)
        # An RTO rolls the send frontier back below the gate; the first
        # retransmission window ends at 6*MSS < gate and must not cut
        # again, even though it is fully marked.
        cc.on_rto(8 * MSS)
        reduced = drive_window(cc, 4, 4, start_una=2 * MSS)
        assert not reduced
        assert cc.alpha == pytest.approx(1.0)  # estimate still tracked
        # Once the frontier clears the gate, marked windows cut again.
        assert drive_window(cc, 10, 10, start_una=6 * MSS)

    def test_consecutive_windows_both_cut(self):
        cc = DctcpControl(MSS, g=1.0, init_alpha=0.0)
        cc.cwnd = 100 * MSS
        assert drive_window(cc, 10, 10, start_una=0)
        # The gate equals the new window end: the next full window passes.
        assert drive_window(cc, 10, 10, start_una=10 * MSS)


class TestCubic:
    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            CubicControl(MSS, beta=1.0)
        with pytest.raises(ConfigError):
            CubicControl(MSS, c=0.0)

    def test_slow_start_unchanged(self):
        cc = CubicControl(MSS, init_cwnd_segments=2)
        cc.on_ack_progress(2 * MSS)
        assert cc.cwnd == pytest.approx(4 * MSS)

    def test_beta_cut_on_loss(self):
        cc = CubicControl(MSS)
        cc.cwnd = 100 * MSS
        cc.ssthresh = 50 * MSS
        cc.on_loss_event(100 * MSS)
        assert cc.cwnd == pytest.approx(70 * MSS)
        assert cc.ssthresh == pytest.approx(70 * MSS)

    def test_rto_collapses_to_one_mss(self):
        cc = CubicControl(MSS)
        cc.cwnd = 100 * MSS
        cc.ssthresh = 50 * MSS
        cc.on_rto(100 * MSS)
        assert cc.cwnd == pytest.approx(MSS)
        assert cc.ssthresh == pytest.approx(70 * MSS)

    def test_fast_convergence_lowers_w_max(self):
        cc = CubicControl(MSS)
        cc.cwnd = 100 * MSS
        cc.ssthresh = 50 * MSS
        cc.on_loss_event(0)   # w_max = 100
        cc.on_loss_event(0)   # seg 70 < 100: w_max = 70 * 0.85 = 59.5
        assert cc._w_max == pytest.approx(59.5)

    def test_concave_growth_decelerates_toward_w_max(self):
        # After the cut: w_max = 100 seg, cwnd = 70 seg, so
        # K = ((100 - 70) / 0.4)^(1/3) ~= 4.2 s. Stepping time in 0.25 s
        # slices up to ~K traces the concave branch of the cubic.
        sender = fake_sender(srtt=1e-6)
        cc = CubicControl(MSS)
        cc.bind_flow(sender)
        cc.cwnd = 100 * MSS
        cc.ssthresh = 50 * MSS
        cc.on_loss_event(0)
        gains = []
        for _ in range(16):
            before = cc.cwnd
            acked = 0
            while acked < before:     # one window of MSS ACKs
                cc.on_ack_progress(MSS)
                acked += MSS
            sender.sim.now += 0.25
            gains.append(cc.cwnd - before)
        assert 90.0 < cc.cwnd / MSS < 110.0   # settled near w_max
        # Steepest climb shortly after the cut, decelerating into the
        # plateau near w_max (the concave branch of the cubic).
        peak = max(gains)
        assert peak == max(gains[1:5])
        assert gains[-1] < 0.2 * peak
        assert all(a >= b for a, b in zip(gains[3:], gains[4:]))

    def test_unbound_instance_is_usable(self):
        cc = CubicControl(MSS)
        cc.cwnd = 20 * MSS
        cc.ssthresh = 10 * MSS
        for _ in range(50):
            cc.on_ack_progress(MSS)
        assert cc.cwnd >= 20 * MSS


class TestD2tcp:
    def test_without_deadline_behaves_like_dctcp(self):
        cc = D2tcpControl(MSS, g=1.0, init_alpha=0.0)
        assert cc._deadline_factor() == 1.0
        cc.alpha = 0.6
        assert cc._cut_fraction() == pytest.approx(0.6)

    def test_bound_flow_without_deadline_is_neutral(self):
        cc = D2tcpControl(MSS)
        cc.bind_flow(fake_sender(deadline_s=None))
        assert cc._deadline_factor() == 1.0

    def test_tight_deadline_cuts_less(self):
        # Tc = remaining * srtt / cwnd = 1e6 * 1e-3 / (10*1460) ≈ 68.5ms,
        # deadline 70ms away: d ≈ 0.98..; make it urgent: 35ms left -> d≈2.
        cc = D2tcpControl(MSS)
        cc.alpha = 0.5
        cc.bind_flow(fake_sender(deadline_s=0.035, srtt=1e-3,
                                 nbytes=1_000_000))
        d = cc._deadline_factor()
        assert d > 1.0
        assert cc._cut_fraction() < 0.5  # α^d < α backs off less

    def test_slack_deadline_cuts_more(self):
        cc = D2tcpControl(MSS)
        cc.alpha = 0.5
        cc.bind_flow(fake_sender(deadline_s=100.0, srtt=1e-3,
                                 nbytes=1_000_000))
        assert cc._deadline_factor() == pytest.approx(0.5)  # clamped
        assert cc._cut_fraction() > 0.5  # α^0.5 > α donates bandwidth

    def test_factor_clamped_to_two(self):
        cc = D2tcpControl(MSS)
        cc.bind_flow(fake_sender(deadline_s=1e-4, srtt=1e-2,
                                 nbytes=100_000_000))
        assert cc._deadline_factor() == pytest.approx(2.0)

    def test_missed_deadline_falls_back_to_dctcp(self):
        cc = D2tcpControl(MSS)
        cc.bind_flow(fake_sender(deadline_s=0.1, now=5.0))
        assert cc._deadline_factor() == 1.0

    def test_completed_flow_is_neutral(self):
        cc = D2tcpControl(MSS)
        cc.bind_flow(fake_sender(deadline_s=1.0, nbytes=1000, snd_una=1000))
        assert cc._deadline_factor() == 1.0
