"""Tests for the job presets and their end-to-end behaviour."""

import numpy as np
import pytest

from repro.core import DropTail
from repro.mapreduce import (
    JOB_PRESETS,
    ClusterSpec,
    MapReduceEngine,
    NodeSpec,
    make_job,
)
from repro.net import build_single_rack
from repro.sim import Simulator
from repro.tcp import TcpConfig
from repro.units import gbps, mb, us


class TestPresetDefinitions:
    def test_all_presets_build(self):
        for name in JOB_PRESETS:
            job = make_job(name, mb(16), n_reducers=4)
            assert job.name == name
            assert job.n_maps > 0

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            make_job("sort-of-terasort", mb(16))

    def test_selectivity_spectrum(self):
        grep = make_job("grep", mb(16), n_reducers=4)
        tera = make_job("terasort", mb(16), n_reducers=4)
        join = make_job("join", mb(16), n_reducers=4)
        assert grep.map_selectivity < tera.map_selectivity < join.map_selectivity


class TestPresetRuns:
    def run(self, name):
        sim = Simulator()
        n = 8
        spec = build_single_rack(sim, n, lambda nm: DropTail(200, name=nm),
                                 link_rate_bps=gbps(1), link_delay_s=us(20))
        eng = MapReduceEngine(
            sim, spec, ClusterSpec(n, NodeSpec()),
            make_job(name, mb(16), block_size=mb(2), n_reducers=n),
            TcpConfig(), np.random.default_rng(42),
        )
        eng.submit()
        sim.run(until=300.0)
        assert eng.result is not None, name
        return eng.result

    @pytest.mark.parametrize("name", sorted(JOB_PRESETS))
    def test_every_preset_completes(self, name):
        r = self.run(name)
        assert r.runtime > 0

    def test_shuffle_volume_follows_selectivity(self):
        grep = self.run("grep")
        tera = self.run("terasort")
        join = self.run("join")
        assert grep.bytes_shuffled < tera.bytes_shuffled < join.bytes_shuffled

    def test_grep_is_network_insensitive(self):
        """The negative control: with almost no shuffle, grep runtime is
        dominated by map compute, so it's much faster than terasort."""
        grep = self.run("grep")
        tera = self.run("terasort")
        assert grep.runtime < tera.runtime
