"""Tests for the hybrid fluid/packet fidelity tier.

The expensive runs (bulk cell in both fidelities, plus a hybrid repeat
and an armed-checker hybrid run) are shared module-wide through
fixtures; individual tests assert one property each.
"""

import dataclasses
from types import SimpleNamespace

import pytest

from repro.errors import ConfigError
from repro.experiments.bulkcell import BulkConfig, run_bulk_cell
from repro.experiments.config import ExperimentConfig, QueueSetup
from repro.experiments.fidelity import BULK_TOLERANCES, compare_metrics
from repro.experiments.runner import run_cell
from repro.validate.smoke import build_suite, fingerprint, smoke_cells


@pytest.fixture(scope="module")
def bulk_pair():
    """(packet CellResult, hybrid CellResult) for the default bulk cell."""
    cfg = BulkConfig()
    packet = run_cell(cfg)
    hybrid = run_cell(dataclasses.replace(cfg, fidelity="hybrid"))
    return packet, hybrid


class TestBulkConfig:
    def test_odd_hosts_rejected(self):
        with pytest.raises(ConfigError):
            BulkConfig(n_hosts=5).validate()

    def test_zero_hosts_rejected(self):
        with pytest.raises(ConfigError):
            BulkConfig(n_hosts=0).validate()

    def test_bad_fidelity_rejected(self):
        with pytest.raises(ConfigError):
            BulkConfig(fidelity="analytic").validate()

    def test_scaled_shrinks_flow_bytes(self):
        cfg = BulkConfig(flow_bytes=1000).scaled(0.25)
        assert cfg.flow_bytes == 250
        with pytest.raises(ConfigError):
            cfg.scaled(0.0)

    def test_label_marks_hybrid(self):
        cfg = BulkConfig()
        assert "hybrid" not in cfg.label()
        hy = dataclasses.replace(cfg, fidelity="hybrid")
        assert hy.label().endswith("/hybrid")


class TestExperimentConfigFidelity:
    @staticmethod
    def _cfg(**kw):
        return ExperimentConfig(queue=QueueSetup(kind="red"), **kw)

    def test_default_is_packet(self):
        assert self._cfg().fidelity == "packet"

    def test_bad_fidelity_rejected(self):
        with pytest.raises(ConfigError):
            self._cfg(fidelity="fluid").validate()

    def test_label_marks_hybrid(self):
        assert "+hybrid" in self._cfg(fidelity="hybrid").label()


class TestBulkHybrid:
    def test_fluid_tier_engages(self, bulk_pair):
        _, hybrid = bulk_pair
        fl = hybrid.manifest["fluid"]
        assert fl["flows_adopted"] == BulkConfig().n_pairs
        assert fl["promotions"] > 0
        assert fl["fluid_completions"] == BulkConfig().n_pairs
        assert fl["fluid_bytes"] > 0.5 * hybrid.metrics.bytes_transferred

    def test_event_reduction_at_least_3x(self, bulk_pair):
        packet, hybrid = bulk_pair
        ev_packet = packet.manifest["timings"]["events"]
        ev_hybrid = hybrid.manifest["timings"]["events"]
        assert ev_packet >= 3 * ev_hybrid

    def test_metrics_within_pinned_tolerances(self, bulk_pair):
        packet, hybrid = bulk_pair
        comparison = compare_metrics(packet, hybrid)
        bad = [n for n, f in comparison["fields"].items() if not f["ok"]]
        assert comparison["ok"], f"out of tolerance: {bad}"

    def test_delivery_exact(self, bulk_pair):
        packet, hybrid = bulk_pair
        assert hybrid.metrics.bytes_transferred == packet.metrics.bytes_transferred
        assert hybrid.metrics.flows_completed == packet.metrics.flows_completed
        assert hybrid.metrics.flows_failed == 0

    def test_hybrid_deterministic(self, bulk_pair):
        _, hybrid = bulk_pair
        again = run_cell(dataclasses.replace(BulkConfig(), fidelity="hybrid"))
        assert fingerprint(again) == fingerprint(hybrid)
        assert again.manifest["fluid"] == hybrid.manifest["fluid"]

    def test_armed_checkers_silent_and_identical(self, bulk_pair):
        _, hybrid = bulk_pair
        cfg = dataclasses.replace(BulkConfig(), fidelity="hybrid")
        armed = run_cell(cfg, checks=build_suite(cfg))
        validation = armed.manifest["validation"]
        assert validation["ok"]
        assert validation["violation_count"] == 0
        assert fingerprint(armed) == fingerprint(hybrid)

    def test_packet_mode_has_no_fluid_block(self, bulk_pair):
        packet, _ = bulk_pair
        assert "fluid" not in packet.manifest

    def test_unfinished_cell_raises(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_bulk_cell(BulkConfig(sim_horizon_s=0.001))


class TestHybridNoOp:
    def test_shuffle_cell_bit_identical(self):
        """Shared-path shuffle flows never qualify: hybrid is a no-op."""
        cfg = dict(smoke_cells())["red-default"]
        packet_fp = fingerprint(run_cell(cfg))
        hybrid = run_cell(dataclasses.replace(cfg, fidelity="hybrid"))
        assert fingerprint(hybrid) == packet_fp
        assert hybrid.manifest["fluid"]["promotions"] == 0


class TestCompareMetrics:
    def test_detects_runtime_drift(self, bulk_pair):
        packet, _ = bulk_pair
        worse = SimpleNamespace(metrics=dataclasses.replace(
            packet.metrics,
            runtime=packet.metrics.runtime
            * (1 + 2 * BULK_TOLERANCES["runtime"]),
        ))
        comparison = compare_metrics(packet, worse)
        assert not comparison["ok"]
        assert not comparison["fields"]["runtime"]["ok"]

    def test_detects_byte_mismatch(self, bulk_pair):
        packet, _ = bulk_pair
        worse = SimpleNamespace(metrics=dataclasses.replace(
            packet.metrics,
            bytes_transferred=packet.metrics.bytes_transferred - 1,
        ))
        comparison = compare_metrics(packet, worse)
        assert not comparison["ok"]
        assert not comparison["fields"]["bytes_transferred"]["ok"]

    def test_identical_metrics_pass(self, bulk_pair):
        packet, _ = bulk_pair
        assert compare_metrics(packet, packet)["ok"]
