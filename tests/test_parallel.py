"""Tests for the parallel sweep executor and the content-addressed cache.

The load-bearing property is *bit-identity*: a cell is a pure function of
its config, so serial, parallel and cached executions of the same grid
must produce equal :class:`~repro.stats.collect.RunMetrics` — the
dataclass ``==`` compares every field, including the private occupancy
integrals of :class:`~repro.core.qdisc.QueueStats`, with exact float
equality.
"""

import json
from dataclasses import replace

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentConfig, QueueSetup, run_cell
from repro.experiments.cache import (
    CACHE_SCHEMA,
    ResultCache,
    canonical_config_json,
    config_cache_key,
)
from repro.experiments.parallel import SweepReport, run_cells
from repro.tcp import TcpVariant
from repro.units import mb, us


def tiny(queue: QueueSetup, variant=TcpVariant.ECN, **kw) -> ExperimentConfig:
    """A very fast cell: 4 hosts, 2 MB Terasort in 1 MB blocks."""
    return replace(
        ExperimentConfig(queue=queue, variant=variant),
        n_hosts=4, data_bytes=mb(2), block_bytes=mb(1), n_reducers=4, **kw
    )


def small_grid():
    """A 3 (queue setups) x 2 (transports) grid of tiny cells."""
    setups = (
        QueueSetup(kind="droptail"),
        QueueSetup(kind="red", target_delay_s=us(100)),
        QueueSetup(kind="marking", target_delay_s=us(100)),
    )
    return [
        (f"{variant.value}/{qs.label()}", tiny(qs, variant=variant))
        for variant in (TcpVariant.ECN, TcpVariant.DCTCP)
        for qs in setups
    ]


@pytest.fixture(scope="module")
def one_cell():
    """One executed cell (with queue snapshots) shared across cache tests."""
    cfg = tiny(QueueSetup(kind="droptail"), monitor_interval_s=0.005)
    return run_cell(cfg)


class TestCacheKey:
    def test_key_is_deterministic(self):
        a = tiny(QueueSetup(kind="red", target_delay_s=us(100)))
        b = tiny(QueueSetup(kind="red", target_delay_s=us(100)))
        assert config_cache_key(a) == config_cache_key(b)
        assert len(config_cache_key(a)) == 64

    def test_any_field_changes_the_key(self):
        base = tiny(QueueSetup(kind="red", target_delay_s=us(100)))
        variants = [
            replace(base, seed=7),
            replace(base, data_bytes=base.data_bytes + 1),
            replace(base, queue=QueueSetup(kind="red", target_delay_s=us(200))),
            tiny(QueueSetup(kind="red", target_delay_s=us(100)),
                 variant=TcpVariant.DCTCP),
        ]
        keys = {config_cache_key(c) for c in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_canonical_json_is_sorted_and_stable(self):
        cfg = tiny(QueueSetup(kind="droptail"))
        doc = json.loads(canonical_config_json(cfg))
        assert list(doc) == sorted(doc)
        assert canonical_config_json(cfg) == canonical_config_json(cfg)


class TestResultCache:
    def test_round_trip_is_exact(self, tmp_path, one_cell):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(one_cell)
        got = cache.get(one_cell.config)
        assert got is not None
        assert got.metrics == one_cell.metrics
        assert got.snapshots == one_cell.snapshots
        assert got.manifest["label"] == one_cell.manifest["label"]
        assert cache.hits == 1 and cache.writes == 1

    def test_absent_entry_is_a_miss(self, tmp_path, one_cell):
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.get(one_cell.config) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path, one_cell):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(one_cell)
        with open(cache.path_for(one_cell.config), "w") as fh:
            fh.write("{not json")
        assert cache.get(one_cell.config) is None

    def test_schema_drift_is_a_miss(self, tmp_path, one_cell):
        cache = ResultCache(str(tmp_path / "cache"))
        path = cache.path_for(one_cell.config)
        with open(path, "w") as fh:
            json.dump({"schema": CACHE_SCHEMA + "-old"}, fh)
        assert cache.get(one_cell.config) is None

    def test_keys_scan(self, tmp_path, one_cell):
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.keys() == []
        cache.put(one_cell)
        assert cache.keys() == [config_cache_key(one_cell.config)]
        assert len(cache) == 1

    def test_cache_path_must_be_a_directory(self, tmp_path):
        f = tmp_path / "not-a-dir"
        f.write_text("x")
        with pytest.raises(ExperimentError):
            ResultCache(str(f))


class TestCacheHygiene:
    """The `repro cache` surface: entries/stats/prune + atomic writes."""

    def test_entries_report_label_size_age(self, tmp_path, one_cell):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(one_cell)
        (info,) = cache.entries()
        assert info.ok
        assert info.key == config_cache_key(one_cell.config)
        assert info.label == one_cell.config.label()
        assert info.bytes > 0 and info.age_s >= 0.0

    def test_corrupt_entry_is_visible_not_fatal(self, tmp_path, one_cell):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(one_cell)
        with open(cache.path_for(one_cell.config), "w") as fh:
            fh.write("{torn")
        (info,) = cache.entries()
        assert not info.ok and info.label is None
        assert cache.stats()["corrupt"] == 1

    def test_stats_shape(self, tmp_path, one_cell):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(one_cell)
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["corrupt"] == 0
        assert stats["bytes"] > 0 and stats["stale_tmp_files"] == 0

    def test_prune_by_age(self, tmp_path, one_cell):
        import os

        cache = ResultCache(str(tmp_path / "cache"))
        path = cache.put(one_cell)
        old = __import__("time").time() - 7200
        os.utime(path, (old, old))
        assert cache.prune(max_age_s=86400) == []
        pruned = cache.prune(max_age_s=3600)
        assert pruned == [config_cache_key(one_cell.config)]
        assert cache.entries() == []

    def test_prune_by_grid_membership(self, tmp_path, one_cell):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(one_cell)
        key = config_cache_key(one_cell.config)
        assert cache.prune(keep_keys={key}) == []
        assert cache.prune(keep_keys={"somebody-else"}, dry_run=True) == [key]
        assert len(cache) == 1  # dry run deleted nothing
        assert cache.prune(keep_keys=set()) == [key]
        assert len(cache) == 0

    def test_prune_collects_stale_tmp_files(self, tmp_path, one_cell):
        cache = ResultCache(str(tmp_path / "cache"))
        # What a SIGKILLed writer leaves behind: a partial temp file.
        tmp = tmp_path / "cache" / ("deadbeef" * 8 + ".json.123.0.tmp")
        tmp.write_text('{"partial":')
        assert cache.stats()["stale_tmp_files"] == 1
        cache.prune()
        assert cache.stale_tmp_files() == []

    def test_put_never_leaves_a_torn_entry(self, tmp_path, one_cell,
                                           monkeypatch):
        """A writer killed mid-put must not poison the final path."""
        import os

        cache = ResultCache(str(tmp_path / "cache"))
        real_replace = os.replace

        def boom(src, dst):
            raise KeyboardInterrupt  # die between write and rename

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(KeyboardInterrupt):
            cache.put(one_cell)
        monkeypatch.setattr(os, "replace", real_replace)
        # The final path never existed; only a stale tmp file remains.
        assert cache.get(one_cell.config) is None
        assert len(cache.stale_tmp_files()) == 1
        cache.put(one_cell)  # and a clean retry still lands
        assert cache.get(one_cell.config) is not None


class TestIntraSubmissionDedup:
    """Identical configs in one run_cells call execute exactly once."""

    def test_aliases_share_one_execution(self, tmp_path):
        cfg = tiny(QueueSetup(kind="droptail"))
        other = tiny(QueueSetup(kind="red", target_delay_s=us(100)))
        cells = [("first", cfg), ("other", other), ("twin", cfg)]
        cache = ResultCache(str(tmp_path / "cache"))
        seen = []
        report = run_cells(cells, cache=cache,
                           progress=lambda d, t, label: seen.append(label))
        assert report.aliases == {"twin": "first"}
        assert report.executed == ["first", "other"]
        # The alias shares the primary's result object outright.
        assert report.results["twin"] is report.results["first"]
        assert "twin [dedup]" in seen
        # One entry per distinct config, not per label.
        assert len(cache) == 2

    def test_alias_progress_counts_to_total(self):
        cfg = tiny(QueueSetup(kind="droptail"))
        seen = []
        run_cells([("a", cfg), ("b", cfg)],
                  progress=lambda d, t, label: seen.append((d, t)))
        assert seen == [(1, 2), (2, 2)]

    def test_cache_hit_beats_dedup(self, tmp_path):
        """Cached twins are both served as hits, no aliasing needed."""
        cfg = tiny(QueueSetup(kind="droptail"))
        cache = ResultCache(str(tmp_path / "cache"))
        run_cells([("warm", cfg)], cache=cache)
        report = run_cells([("a", cfg), ("b", cfg)], cache=cache)
        assert report.cached == ["a", "b"]
        assert report.aliases == {}


class TestRunCellsValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ExperimentError):
            run_cells(small_grid(), jobs=0)

    def test_duplicate_labels_rejected(self):
        cfg = tiny(QueueSetup(kind="droptail"))
        with pytest.raises(ExperimentError):
            run_cells([("dup", cfg), ("dup", cfg)])


class TestSerialParallelDeterminism:
    def test_parallel_bit_identical_and_cache_resumes(self, tmp_path):
        grid = small_grid()
        labels = [label for label, _ in grid]

        serial = run_cells(grid, jobs=1)
        assert list(serial.results) == labels
        assert serial.executed == labels and serial.cached == []

        cache = ResultCache(str(tmp_path / "cache"))
        par = run_cells(grid, jobs=4, cache=cache)
        assert list(par.results) == labels
        for label in labels:
            assert par.results[label].metrics == serial.results[label].metrics
        assert sorted(par.executed) == sorted(labels)
        assert par.cached == []
        assert len(cache) == len(labels)

        # Warm cache: the second invocation executes zero cells and still
        # returns bit-identical metrics.
        warm = run_cells(grid, jobs=4, cache=cache)
        assert warm.executed == []
        assert warm.cached == labels
        for label in labels:
            assert warm.results[label].metrics == serial.results[label].metrics

        # resume=False forces re-execution despite the warm cache.
        cold = run_cells(grid[:1], jobs=1, cache=cache, resume=False)
        assert cold.executed == labels[:1] and cold.cached == []

    def test_progress_aggregates_across_workers(self, tmp_path):
        grid = small_grid()[:2]
        seen = []
        run_cells(grid, jobs=2,
                  progress=lambda done, total, label: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]

    def test_worker_error_propagates(self):
        bad = replace(tiny(QueueSetup(kind="droptail")), sim_horizon_s=0.001)
        cells = [("bad", bad), ("ok", tiny(QueueSetup(kind="droptail")))]
        with pytest.raises(ExperimentError):
            run_cells(cells, jobs=2)


class TestRunGridWiring:
    def test_run_grid_forwards_jobs_and_cache(self, monkeypatch, tmp_path):
        import repro.experiments.grids as grids
        import repro.experiments.parallel as parallel

        calls = {}

        def fake_run_cells(cells, jobs=1, cache=None, resume=True,
                           progress=None):
            calls.update(jobs=jobs, cache=cache, resume=resume,
                         n=len(cells))
            return SweepReport(
                results={label: None for label, _ in cells}, jobs=jobs)

        monkeypatch.setattr(parallel, "run_cells", fake_run_cells)
        grids.run_grid(deep=False, scale=0.01, seed=1, use_cache=False,
                       jobs=3, cache_dir=str(tmp_path / "c"))
        assert calls["jobs"] == 3
        assert calls["resume"] is True
        assert isinstance(calls["cache"], ResultCache)
        # full grid: 2 variants x (3 protections + marking) x 5 delays + 2
        assert calls["n"] == 42
