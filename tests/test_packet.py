"""Tests for the packet model: ECN codepoints, flags, classification."""

import pytest

from repro.net.packet import (
    DEFAULT_MSS,
    ECN_CE,
    ECN_ECT0,
    ECN_ECT1,
    ECN_NOT_ECT,
    FLAG_ACK,
    FLAG_CWR,
    FLAG_ECE,
    FLAG_FIN,
    FLAG_SYN,
    IP_TCP_HEADER_BYTES,
    PURE_ACK_BYTES,
    Packet,
    PacketPool,
    flag_names,
)


def mk(payload=0, flags=0, ecn=ECN_NOT_ECT, **kw):
    return Packet(src=0, sport=1000, dst=1, dport=2000,
                  payload=payload, flags=flags, ecn=ecn, **kw)


class TestEcnCodepoints:
    """The bit patterns must match the paper's Table II."""

    def test_values_match_table2(self):
        assert ECN_NOT_ECT == 0b00
        assert ECN_ECT1 == 0b01
        assert ECN_ECT0 == 0b10
        assert ECN_CE == 0b11

    def test_not_ect_is_not_ect_capable(self):
        assert not mk(ecn=ECN_NOT_ECT).is_ect

    @pytest.mark.parametrize("cp", [ECN_ECT0, ECN_ECT1, ECN_CE])
    def test_ect_capable_codepoints(self, cp):
        assert mk(ecn=cp).is_ect

    def test_only_ce_is_ce(self):
        assert mk(ecn=ECN_CE).is_ce
        assert not mk(ecn=ECN_ECT0).is_ce

    def test_mark_ce(self):
        p = mk(payload=100, ecn=ECN_ECT0)
        p.mark_ce()
        assert p.is_ce and p.is_ect


class TestFlags:
    def test_ece_flag_detection(self):
        assert mk(flags=FLAG_ACK | FLAG_ECE).has_ece
        assert not mk(flags=FLAG_ACK).has_ece

    def test_cwr_flag_detection(self):
        assert mk(flags=FLAG_CWR).has_cwr

    def test_syn_detection_includes_synack(self):
        assert mk(flags=FLAG_SYN).is_syn
        assert mk(flags=FLAG_SYN | FLAG_ACK).is_syn

    def test_fin_detection(self):
        assert mk(flags=FLAG_FIN).is_fin

    def test_flag_names_rendering(self):
        assert flag_names(FLAG_SYN | FLAG_ACK | FLAG_ECE) == "SYN|ACK|ECE"
        assert flag_names(0) == "-"


class TestClassification:
    """is_pure_ack drives both protection modes and the drop statistics."""

    def test_pure_ack(self):
        assert mk(flags=FLAG_ACK).is_pure_ack

    def test_data_with_ack_flag_is_not_pure_ack(self):
        assert not mk(payload=100, flags=FLAG_ACK).is_pure_ack

    def test_syn_is_not_pure_ack(self):
        assert not mk(flags=FLAG_SYN | FLAG_ACK).is_pure_ack

    def test_fin_is_not_pure_ack(self):
        assert not mk(flags=FLAG_FIN | FLAG_ACK).is_pure_ack

    def test_is_data(self):
        assert mk(payload=1).is_data
        assert not mk(flags=FLAG_ACK).is_data

    def test_ack_with_ece_still_pure_ack(self):
        assert mk(flags=FLAG_ACK | FLAG_ECE).is_pure_ack


class TestSizes:
    def test_data_packet_size_includes_headers(self):
        assert mk(payload=DEFAULT_MSS).size == DEFAULT_MSS + IP_TCP_HEADER_BYTES
        assert mk(payload=DEFAULT_MSS).size == 1500

    def test_pure_ack_size_matches_paper(self):
        # The paper: "ACK packets are short (typically 150 bytes)".
        assert mk(flags=FLAG_ACK).size == PURE_ACK_BYTES == 150

    def test_explicit_size_override(self):
        assert mk(payload=100, size=999).size == 999


class TestIdentity:
    def test_packet_ids_unique(self):
        assert mk().pkt_id != mk().pkt_id

    def test_flow_key(self):
        p = mk()
        assert p.flow == (0, 1000, 1, 2000)

    def test_flow_key_reversed(self):
        p = mk()
        assert p.flow.reversed() == (1, 2000, 0, 1000)


class TestPacketPool:
    """Recycled packets must never leak their previous life's state."""

    def test_reused_synack_becomes_clean_data_packet(self):
        # Regression: a pooled ECN-setup SYN-ACK (ECE set, CE-marked)
        # recycled as a plain ECT(0) data segment must not retain any of
        # the handshake's classification bits.
        pool = PacketPool()
        synack = mk(flags=FLAG_SYN | FLAG_ACK | FLAG_ECE, ecn=ECN_ECT0)
        synack.mark_ce()
        pool.release(synack)
        data = pool.acquire(src=0, sport=1000, dst=1, dport=2000,
                            seq=1460, payload=DEFAULT_MSS,
                            flags=FLAG_ACK, ecn=ECN_ECT0)
        assert data is synack  # the same storage was recycled
        assert data.is_data and not data.is_syn
        assert not data.has_ece and not data.is_ce
        assert data.is_ect and data.ecn == ECN_ECT0
        assert not data.is_pure_ack
        assert data.size == DEFAULT_MSS + IP_TCP_HEADER_BYTES

    def test_release_scrubs_every_field(self):
        pool = PacketPool()
        p = mk(payload=100, flags=FLAG_SYN | FLAG_ACK | FLAG_ECE | FLAG_CWR,
               ecn=ECN_ECT0)
        p.mark_ce()
        pool.release(p)
        assert p.pkt_id == PacketPool.RELEASED
        assert p.flags == 0 and p.ecn == ECN_NOT_ECT
        assert p.payload == 0 and p.size == 0
        assert not (p.is_ect or p.is_ce or p.has_ece or p.has_cwr
                    or p.is_syn or p.is_fin or p.is_pure_ack or p.is_data)

    def test_double_release_refused(self):
        pool = PacketPool()
        p = mk()
        pool.release(p)
        with pytest.raises(ValueError, match="double release"):
            pool.release(p)

    def test_allocation_counters(self):
        pool = PacketPool()
        a = pool.acquire(src=0, sport=1, dst=1, dport=2)
        assert pool.allocated == 1 and pool.reused == 0
        pool.release(a)
        b = pool.acquire(src=0, sport=1, dst=1, dport=2)
        assert b is a
        assert pool.allocated == 1 and pool.reused == 1

    def test_capacity_bound_respected(self):
        pool = PacketPool(max_size=1)
        a, b = mk(), mk()
        pool.release(a)
        pool.release(b)  # beyond capacity: falls through to the GC
        assert len(pool) == 1
