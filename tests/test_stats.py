"""Tests for the stats layer: series, summaries, collectors, normalization."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.net.packet import FLAG_ACK, Packet
from repro.stats import (
    LatencyCollector,
    RunMetrics,
    Summary,
    TimeSeries,
    normalize_map,
    normalize_to,
    summarize,
)


class TestTimeSeries:
    def test_append_and_len(self):
        ts = TimeSeries("q")
        ts.append(0.0, 1.0)
        ts.append(1.0, 2.0)
        assert len(ts) == 2

    def test_arrays(self):
        ts = TimeSeries()
        ts.append(0.0, 5.0)
        ts.append(2.0, 7.0)
        t, v = ts.arrays()
        assert t.tolist() == [0.0, 2.0]
        assert v.tolist() == [5.0, 7.0]

    def test_mean_and_max(self):
        ts = TimeSeries()
        for i, val in enumerate([1.0, 3.0, 2.0]):
            ts.append(float(i), val)
        assert ts.mean() == pytest.approx(2.0)
        assert ts.max() == 3.0

    def test_empty_series_safe(self):
        ts = TimeSeries()
        assert ts.mean() == 0.0
        assert ts.max() == 0.0
        assert ts.time_weighted_mean() == 0.0

    def test_time_weighted_mean(self):
        ts = TimeSeries()
        ts.append(0.0, 10.0)  # holds for 1s
        ts.append(1.0, 0.0)   # holds for 3s
        ts.append(4.0, 99.0)  # last sample: zero weight
        assert ts.time_weighted_mean() == pytest.approx(10 / 4)

    def test_rate_of_change(self):
        ts = TimeSeries("bytes")
        ts.append(0.0, 0.0)
        ts.append(1.0, 100.0)
        ts.append(3.0, 300.0)
        r = ts.rate_of_change()
        assert r.values.tolist() == [100.0, 100.0]


class TestSummary:
    def test_empty(self):
        s = summarize([])
        assert s == Summary.empty()

    def test_constant_samples(self):
        s = summarize([5.0] * 10)
        assert s.mean == 5.0
        assert s.std == 0.0
        assert s.p50 == s.p99 == 5.0

    def test_percentiles_ordered(self):
        s = summarize(np.linspace(0, 100, 1000))
        assert s.minimum <= s.p50 <= s.p95 <= s.p99 <= s.maximum

    def test_count(self):
        assert summarize([1, 2, 3]).count == 3


class TestLatencyCollector:
    def pkt(self, created_at):
        return Packet(src=0, sport=1, dst=1, dport=2, payload=100,
                      created_at=created_at)

    def test_mean(self):
        c = LatencyCollector()
        c.hook(self.pkt(0.0), 0.001)
        c.hook(self.pkt(0.0), 0.003)
        assert c.count == 2
        assert c.mean == pytest.approx(0.002)

    def test_data_only_filter(self):
        c = LatencyCollector(data_only=True)
        ack = Packet(src=0, sport=1, dst=1, dport=2, flags=FLAG_ACK,
                     created_at=0.0)
        c.hook(ack, 0.001)
        assert c.count == 0
        c.hook(self.pkt(0.0), 0.001)
        assert c.count == 1

    def test_percentile_accuracy(self):
        c = LatencyCollector()
        rng = np.random.default_rng(0)
        lats = rng.uniform(1e-4, 1e-3, size=5000)
        for lat in lats:
            c.hook(self.pkt(0.0), lat)
        exact = float(np.percentile(lats, 99))
        approx = c.percentile(99)
        assert approx == pytest.approx(exact, rel=0.1)

    def test_percentile_empty(self):
        assert LatencyCollector().percentile(99) == 0.0

    def test_max_latency_tracked(self):
        c = LatencyCollector()
        c.hook(self.pkt(0.0), 0.5)
        c.hook(self.pkt(0.0), 0.1)
        assert c.max_latency == pytest.approx(0.5)

    def test_extreme_latencies_binned_at_edges(self):
        c = LatencyCollector()
        c.hook(self.pkt(0.0), 1e-9)   # below LO
        c.hook(self.pkt(0.0), 100.0)  # above HI
        assert c.count == 2
        assert c.percentile(99) > 0


class TestRunMetrics:
    def test_throughput_per_node(self):
        m = RunMetrics(runtime=2.0, bytes_transferred=250_000_000, n_nodes=10)
        # 2 Gbps aggregate over 10 nodes = 100 Mbps per node
        assert m.throughput_per_node_bps == pytest.approx(1e8)
        assert m.cluster_throughput_bps == pytest.approx(1e9)

    def test_zero_runtime_safe(self):
        m = RunMetrics(runtime=0.0, bytes_transferred=100, n_nodes=2)
        assert m.throughput_per_node_bps == 0.0
        assert m.cluster_throughput_bps == 0.0


class TestNormalization:
    def test_normalize_to(self):
        assert normalize_to(2.0, 4.0) == 0.5

    def test_zero_baseline_rejected(self):
        with pytest.raises(ExperimentError):
            normalize_to(1.0, 0.0)

    def test_normalize_map(self):
        out = normalize_map({"a": 2.0, "b": 6.0}, 2.0)
        assert out == {"a": 1.0, "b": 3.0}


class TestTimeSeriesEdgeCases:
    """Degenerate inputs feeding the stability signal layer: constant
    series, single samples, duplicate timestamps — all NaN-free."""

    def test_constant_series(self):
        ts = TimeSeries("flat")
        for i in range(5):
            ts.append(float(i), 7.0)
        assert ts.mean() == 7.0
        assert ts.time_weighted_mean() == 7.0
        r = ts.rate_of_change()
        assert r.values.tolist() == [0.0] * 4

    def test_single_sample(self):
        ts = TimeSeries()
        ts.append(1.0, 3.0)
        assert ts.mean() == 3.0
        assert ts.time_weighted_mean() == 3.0
        assert len(ts.rate_of_change()) == 0

    def test_duplicate_timestamps_skipped_in_derivative(self):
        ts = TimeSeries()
        ts.append(0.0, 0.0)
        ts.append(1.0, 10.0)
        ts.append(1.0, 20.0)  # dt == 0: no rate sample, no inf/NaN
        ts.append(2.0, 30.0)
        r = ts.rate_of_change()
        assert not np.any(np.isnan(r.values))
        assert not np.any(np.isinf(r.values))
        assert r.times.tolist() == [1.0, 2.0]

    def test_all_samples_at_same_time(self):
        ts = TimeSeries()
        ts.append(5.0, 1.0)
        ts.append(5.0, 3.0)
        # zero total holding time falls back to the arithmetic mean
        assert ts.time_weighted_mean() == 2.0
        assert len(ts.rate_of_change()) == 0

    def test_uneven_spacing_weighting(self):
        ts = TimeSeries()
        ts.append(0.0, 1.0)   # holds 0.1s
        ts.append(0.1, 2.0)   # holds 0.9s
        ts.append(1.0, 9.0)   # last: zero weight
        assert ts.time_weighted_mean() == pytest.approx(
            (1.0 * 0.1 + 2.0 * 0.9) / 1.0)
