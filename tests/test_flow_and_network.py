"""Tests for FlowResult bookkeeping and Network aggregates."""

import pytest

from repro.core import DropTail
from repro.errors import (
    ConfigError,
    ExperimentError,
    MapReduceError,
    QueueError,
    ReproError,
    RoutingError,
    SchedulingError,
    SimulationError,
    TcpError,
    TopologyError,
)
from repro.net import build_single_rack
from repro.net.packet import ECN_ECT0, FLAG_ACK, Packet
from repro.sim import Simulator
from repro.tcp import TcpConfig, TcpListener, start_bulk_flow
from repro.tcp.flow import FlowResult
from repro.units import gbps, kb, us


class TestFlowResult:
    def make(self, **kw):
        defaults = dict(src=0, dst=1, nbytes=1_000_000, start_time=1.0,
                        established_time=1.001, end_time=2.0,
                        retransmits=3, rtos=1, syn_retries=0)
        defaults.update(kw)
        return FlowResult(**defaults)

    def test_fct(self):
        assert self.make().fct == pytest.approx(1.0)

    def test_goodput(self):
        assert self.make().goodput_bps == pytest.approx(8e6)

    def test_goodput_zero_duration(self):
        r = self.make(end_time=1.0)
        assert r.goodput_bps == 0.0

    def test_live_flow_records_fields(self):
        sim = Simulator()
        spec = build_single_rack(sim, 2, lambda nm: DropTail(100, name=nm),
                                 link_rate_bps=gbps(1), link_delay_s=us(20))
        cfg = TcpConfig()
        TcpListener(sim, spec.hosts[1], 5000, cfg)
        out = []
        start_bulk_flow(sim, spec.hosts[0], spec.hosts[1], 5000, kb(64),
                        cfg, on_done=lambda r: out.append(r))
        sim.run(until=10.0)
        r = out[0]
        assert r.src == spec.hosts[0].node_id
        assert r.dst == spec.hosts[1].node_id
        assert r.nbytes == kb(64)
        assert r.established_time > r.start_time
        assert r.end_time > r.established_time
        assert not r.failed


class TestNetworkAggregates:
    def test_aggregate_sums_all_switch_ports(self):
        sim = Simulator()
        spec = build_single_rack(sim, 3, lambda nm: DropTail(2, name=nm))
        # Saturate one downlink to force drops on a single queue.
        for i in range(5):
            spec.hosts[0].send(Packet(
                src=spec.hosts[0].node_id, sport=1,
                dst=spec.hosts[1].node_id, dport=2, payload=1460,
                ecn=ECN_ECT0,
            ))
        sim.run()
        agg = spec.network.aggregate_switch_stats()
        per_queue = [q.stats for q in spec.network.switch_queues()]
        assert agg.arrivals == sum(s.arrivals for s in per_queue)
        assert agg.drops_tail == sum(s.drops_tail for s in per_queue)
        assert agg.arrival_bytes == sum(s.arrival_bytes for s in per_queue)

    def test_switch_ports_enumeration(self):
        sim = Simulator()
        spec = build_single_rack(sim, 5, lambda nm: DropTail(10, name=nm))
        assert len(list(spec.network.switch_ports())) == 5

    def test_hosts_and_switches_properties(self):
        sim = Simulator()
        spec = build_single_rack(sim, 4, lambda nm: DropTail(10, name=nm))
        net = spec.network
        assert len(net.hosts) == 4
        assert len(net.switches) == 1
        assert {h.node_id for h in net.hosts}.isdisjoint(
            {s.node_id for s in net.switches}
        )


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        SimulationError, SchedulingError, ConfigError, TopologyError,
        RoutingError, QueueError, TcpError, MapReduceError, ExperimentError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_scheduling_error_is_simulation_error(self):
        assert issubclass(SchedulingError, SimulationError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise QueueError("x")
