"""Signal primitives for the stability observatory.

Pins two things: basic correctness on synthetic signals (a sine's period
is found, a ramp detrends to zero, phase-locked series synchronize) and
the degenerate-input contract every function promises — empty, constant,
and too-short series never produce NaN and never raise.
"""

import math

import numpy as np
import pytest

from repro.stats.signal import (
    DominantPeriod,
    autocorrelation,
    cross_correlation_max,
    detrend,
    dominant_period,
    oscillation_amplitude,
    periodogram,
    resample_uniform,
    synchronization_score,
)


def sine(n=256, period=16.0, amp=1.0, phase=0.0, offset=0.0):
    t = np.arange(n, dtype=np.float64)
    return offset + amp * np.sin(2.0 * math.pi * t / period + phase)


#: The degenerate inputs every primitive must survive NaN-free.
DEGENERATE = (
    [],
    [5.0],
    [1.0, 2.0],
    [3.0, 3.0, 3.0, 3.0, 3.0],
)


class TestDetrend:
    def test_mean_removal(self):
        out = detrend([1.0, 2.0, 3.0], kind="mean")
        assert out.tolist() == [-1.0, 0.0, 1.0]

    def test_linear_removes_ramp(self):
        ramp = 5.0 + 0.25 * np.arange(64)
        out = detrend(ramp, kind="linear")
        assert np.max(np.abs(out)) < 1e-9

    def test_linear_keeps_oscillation(self):
        x = sine(128, period=16.0) + 0.1 * np.arange(128)
        out = detrend(x, kind="linear")
        # the ramp is gone but the sine's energy survives
        assert float(np.dot(out, out)) > 0.9 * 64  # ~ n/2 for unit sine

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="detrend"):
            detrend([1.0, 2.0, 3.0], kind="quadratic")

    def test_short_series_fall_back_to_mean(self):
        out = detrend([2.0, 4.0], kind="linear")
        assert out.tolist() == [-1.0, 1.0]


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        acf = autocorrelation(sine())
        assert acf[0] == pytest.approx(1.0)

    def test_periodic_series_self_similar_at_period(self):
        acf = autocorrelation(sine(256, period=16.0), max_lag=16)
        assert acf[16] > 0.95

    def test_constant_series_returns_lag_zero_only(self):
        acf = autocorrelation([7.0] * 50)
        assert acf.tolist() == [1.0]

    def test_short_series_returns_lag_zero_only(self):
        assert autocorrelation([3.0]).tolist() == [1.0]


class TestPeriodogram:
    def test_sine_peak_at_true_frequency(self):
        freqs, power = periodogram(sine(256, period=16.0))
        peak = freqs[int(np.argmax(power))]
        assert peak == pytest.approx(1.0 / 16.0, rel=0.05)

    def test_degenerate_inputs_empty(self):
        for vals in DEGENERATE:
            freqs, power = periodogram(vals)
            assert len(freqs) == 0 and len(power) == 0

    def test_chunking_matches_single_pass(self):
        # a series longer than one DFT chunk of frequencies
        x = sine(512, period=10.0) + sine(512, period=37.0, amp=0.3)
        freqs, power = periodogram(x)
        assert len(freqs) == 256
        assert not np.any(np.isnan(power))


class TestDominantPeriod:
    def test_finds_sine_period(self):
        dp = dominant_period(sine(256, period=16.0), dt=0.5)
        assert isinstance(dp, DominantPeriod)
        assert dp.period_samples == pytest.approx(16.0, rel=0.05)
        assert dp.period_s == pytest.approx(8.0, rel=0.05)
        assert dp.peak_ratio > 100.0
        assert dp.acf_at_period > 0.9

    def test_none_for_constant(self):
        assert dominant_period([4.0] * 64) is None

    def test_noise_less_concentrated_than_sine(self):
        rng = np.random.default_rng(7)
        noise = rng.normal(size=256)
        dp_noise = dominant_period(noise)
        dp_sine = dominant_period(sine(256))
        assert dp_noise is not None and dp_sine is not None
        assert dp_sine.peak_ratio > 10.0 * dp_noise.peak_ratio


class TestOscillationAmplitude:
    def test_sine_amplitude(self):
        assert oscillation_amplitude(sine(512, amp=3.0)) == pytest.approx(
            3.0, rel=0.1)

    def test_robust_to_single_spike(self):
        x = np.zeros(200)
        x[100] = 1000.0
        assert oscillation_amplitude(x) < 50.0

    def test_constant_and_tiny_inputs_are_zero(self):
        for vals in ([], [5.0], [3.0, 3.0, 3.0, 3.0, 3.0]):
            assert oscillation_amplitude(vals) == 0.0


class TestResampleUniform:
    def test_uneven_grid_interpolated(self):
        t = [0.0, 1.0, 4.0]
        v = [0.0, 1.0, 4.0]  # identity line sampled unevenly
        grid, out = resample_uniform(t, v, n=5)
        assert grid.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert out == pytest.approx(grid)

    def test_unsorted_input_sorted_first(self):
        grid, out = resample_uniform([2.0, 0.0, 1.0], [20.0, 0.0, 10.0], n=3)
        assert grid.tolist() == [0.0, 1.0, 2.0]
        assert out.tolist() == [0.0, 10.0, 20.0]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            resample_uniform([0.0, 1.0], [1.0])

    def test_degenerate_inputs_empty(self):
        for t, v in ([], []), ([1.0], [2.0]), ([3.0, 3.0], [1.0, 2.0]):
            grid, out = resample_uniform(t, v)
            assert len(grid) == 0 and len(out) == 0

    def test_default_length_capped(self):
        t = np.linspace(0.0, 1.0, 5000)
        grid, out = resample_uniform(t, np.sin(t))
        assert len(grid) == 2048
        assert not np.any(np.isnan(out))


class TestCrossCorrelation:
    def test_identical_series(self):
        lag, corr = cross_correlation_max(sine(), sine())
        assert lag == 0
        assert corr == pytest.approx(1.0)

    def test_shifted_series_lag_found(self):
        a = sine(256, period=32.0)
        b = sine(256, period=32.0, phase=-2.0 * math.pi * 4.0 / 32.0)
        lag, corr = cross_correlation_max(a, b)
        assert abs(lag) == 4
        assert corr > 0.95

    def test_constant_side_is_zero(self):
        assert cross_correlation_max([1.0] * 32, sine(32)) == (0, 0.0)


class TestSynchronizationScore:
    def test_phase_locked_series_score_high(self):
        score = synchronization_score([sine(), sine(), sine()])
        assert score == pytest.approx(1.0, abs=1e-6)

    def test_needs_two_nonconstant_series(self):
        assert synchronization_score([sine()]) is None
        assert synchronization_score([sine(), [5.0] * 64]) is None
        assert synchronization_score([]) is None


class TestNaNFreeContract:
    """Every primitive stays NaN-free on every degenerate input."""

    @pytest.mark.parametrize("vals", DEGENERATE, ids=["empty", "one",
                                                      "two", "constant"])
    def test_all_primitives(self, vals):
        assert not np.any(np.isnan(detrend(vals, kind="linear")))
        assert not np.any(np.isnan(detrend(vals, kind="mean")))
        assert not np.any(np.isnan(autocorrelation(vals)))
        freqs, power = periodogram(vals)
        assert not np.any(np.isnan(power))
        assert not math.isnan(oscillation_amplitude(vals))
        dp = dominant_period(vals)
        assert dp is None
        lag, corr = cross_correlation_max(vals, vals)
        assert not math.isnan(corr)
        t = list(range(len(vals)))
        _grid, out = resample_uniform(t, vals)
        assert not np.any(np.isnan(out))
