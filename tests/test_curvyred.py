"""Tests for Curvy RED and the queue-discipline registry ("the zoo")."""

import pytest

from repro.core import ProtectionMode
from repro.core.curvyred import CurvyRedParams, CurvyRedQueue
from repro.core.marking import SimpleMarkingQueue
from repro.core.registry import (
    TINY_BUFFER_PACKETS,
    qdisc_entry,
    qdisc_names,
)
from repro.errors import ConfigError
from repro.experiments.config import QueueSetup
from repro.sim.rng import RngRegistry
from repro.units import gbps, us
from tests.test_red import ack, data, fill, syn


def curvy(limit=100, range_packets=10.0, rand=lambda: 0.5, **kw):
    """A deterministic Curvy RED: every draw is exactly 0.5."""
    params = CurvyRedParams(range_packets=range_packets, **kw)
    return CurvyRedQueue(limit, params, rand=rand)


class TestParams:
    def test_validate_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            CurvyRedParams(range_packets=0).validate()
        with pytest.raises(ConfigError):
            CurvyRedParams(u_mark=0.0).validate()
        with pytest.raises(ConfigError):
            CurvyRedParams(wq=0.0).validate()
        with pytest.raises(ConfigError):
            CurvyRedParams(mean_pktsize=0).validate()

    def test_with_protection_copies(self):
        p = CurvyRedParams()
        q = p.with_protection(ProtectionMode.ECE)
        assert q.protection is ProtectionMode.ECE
        assert p.protection is ProtectionMode.DEFAULT
        assert q.range_packets == p.range_packets


class TestMarkRamp:
    def test_marks_above_half_range_with_median_draw(self):
        # q=6 of range 10: p_mark = 0.6 > 0.5 -> marked.
        q = curvy()
        fill(q, 6)
        pkt = data(ect=True)
        assert q.enqueue(pkt, 0.0)
        assert pkt.is_ce
        assert q.stats.marks == 1

    def test_no_mark_below_half_range_with_median_draw(self):
        q = curvy()
        fill(q, 4)
        pkt = data(ect=True)
        assert q.enqueue(pkt, 0.0)
        assert not pkt.is_ce
        assert q.stats.marks == 0

    def test_ramp_saturates_at_range(self):
        q = curvy(rand=lambda: 0.999999)
        fill(q, 10)  # q == range -> p_mark = 1 regardless of the draw
        pkt = data(ect=True)
        assert q.enqueue(pkt, 0.0)
        assert pkt.is_ce

    def test_ect_packets_never_early_dropped(self):
        q = curvy(rand=lambda: 0.0)
        fill(q, 9)
        assert q.enqueue(data(ect=True), 0.0)
        assert q.stats.drops_early == 0


class TestSquareRule:
    def test_same_queue_marks_ect_but_admits_nonect(self):
        # At x = 0.6 the mark ramp fires (0.6 > 0.5) while the squared
        # drop ramp does not (0.36 < 0.5): Briscoe's square rule.
        q = curvy(wq=1.0)  # avg tracks the instantaneous queue exactly
        fill(q, 6)
        ect = data(ect=True)
        assert q.enqueue(ect, 0.0)
        assert ect.is_ce
        assert q.enqueue(data(ect=False, seq=99), 0.0)
        assert q.stats.drops_early == 0

    def test_nonect_dropped_when_smoothed_queue_saturates(self):
        q = curvy(wq=1.0)
        fill(q, 10)  # avg == range -> p_drop = 1
        assert not q.enqueue(data(ect=False, seq=99), 0.0)
        assert q.stats.drops_early == 1

    def test_drop_uses_smoothed_not_instantaneous_queue(self):
        # Tiny wq: the EWMA stays near zero however deep the real queue
        # is, so non-ECT packets pass where an ECT one would be marked.
        q = curvy(wq=1e-6)
        fill(q, 9)
        assert q.enqueue(data(ect=False, seq=99), 0.0)
        assert q.stats.drops_early == 0


class TestProtection:
    def test_protected_ece_ack_admitted_at_saturation(self):
        q = curvy(wq=1.0, protection=ProtectionMode.ECE)
        fill(q, 10)
        assert q.enqueue(ack(ece=True), 0.0)
        assert q.stats.protected == 1
        assert q.stats.drops_early == 0

    def test_ack_syn_mode_shields_syns(self):
        q = curvy(wq=1.0, protection=ProtectionMode.ACK_SYN)
        fill(q, 10)
        assert q.enqueue(syn(ece=True), 0.0)
        assert q.stats.protected == 1

    def test_tail_drop_hits_protected_packets_too(self):
        q = curvy(limit=10, wq=1.0, protection=ProtectionMode.ECE)
        fill(q, 10)
        assert not q.enqueue(ack(ece=True), 0.0)
        assert q.stats.drops_tail == 1


class TestEwmaDecay:
    def test_idle_period_decays_average(self):
        q = curvy(wq=0.5)
        q.set_link_rate(gbps(1))
        fill(q, 8)
        avg_busy = q.avg
        assert avg_busy > 0.0
        while q.dequeue(0.001) is not None:
            pass
        # A long idle gap then one arrival: the decayed EWMA must sit far
        # below the busy-period average.
        assert q.enqueue(data(ect=False, seq=99), 1.0)
        assert q.avg < 0.1 * avg_busy

    def test_fluid_threshold_is_immediate(self):
        assert curvy().fluid_threshold_packets(gbps(1)) == 1.0


class TestRegistry:
    def test_names_are_sorted_and_complete(self):
        assert qdisc_names() == ("codel", "curvyred", "droptail", "marking",
                                 "red", "tinybuffer")

    def test_unknown_kind_raises_with_known_names(self):
        with pytest.raises(ConfigError, match="curvyred"):
            qdisc_entry("fq_pie")

    def test_every_kind_builds_from_queue_setup(self):
        rng = RngRegistry(seed=1)
        for kind in qdisc_names():
            setup = QueueSetup(kind=kind, target_delay_s=us(100))
            q = setup.build(f"port.{kind}", gbps(1), rng)
            assert q.limit_packets >= 1
            assert isinstance(setup.label(), str) and setup.label()

    def test_droptail_needs_no_target_delay(self):
        assert not qdisc_entry("droptail").needs_target_delay
        QueueSetup(kind="droptail").validate()

    def test_marking_kinds_require_target_delay(self):
        with pytest.raises(ConfigError, match="target delay"):
            QueueSetup(kind="curvyred").validate()

    def test_curvyred_range_is_twice_threshold(self):
        # K at 100us over 1 Gbps is round(1e5/12000) = 8 packets, so the
        # ramp saturates at 16 and p_mark(K) = 0.5.
        rng = RngRegistry(seed=1)
        setup = QueueSetup(kind="curvyred", target_delay_s=us(100))
        q = setup.build("tor.p0", gbps(1), rng)
        assert isinstance(q, CurvyRedQueue)
        assert q.params.range_packets == pytest.approx(16.0)

    def test_tinybuffer_caps_buffer_and_threshold(self):
        rng = RngRegistry(seed=1)
        setup = QueueSetup(kind="tinybuffer", buffer_packets=1000,
                           target_delay_s=us(100))
        q = setup.build("tor.p0", gbps(1), rng)
        assert isinstance(q, SimpleMarkingQueue)
        assert q.limit_packets == TINY_BUFFER_PACKETS
        assert q.mark_threshold == TINY_BUFFER_PACKETS // 2

    def test_curvyred_label_tracks_protection(self):
        base = QueueSetup(kind="curvyred", target_delay_s=us(100))
        assert base.label() == "curvyred-default"
        ece = QueueSetup(kind="curvyred", target_delay_s=us(100),
                         protection=ProtectionMode.ECE)
        assert ece.label() == "curvyred-ece"

    def test_duplicate_key_registration_refused(self):
        from repro.core.registry import QDISC_REGISTRY, QdiscEntry, register_qdisc

        entry = QDISC_REGISTRY["curvyred"]
        register_qdisc(entry)  # same object: idempotent
        clone = QdiscEntry(key="curvyred", builder=entry.builder,
                           label=entry.label)
        with pytest.raises(ConfigError, match="already registered"):
            register_qdisc(clone)
