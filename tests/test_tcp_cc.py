"""Tests for congestion-control policies: NewReno and DCTCP."""

import pytest

from repro.errors import ConfigError
from repro.tcp import DctcpControl, NewRenoControl

MSS = 1460


class TestNewRenoGrowth:
    def test_initial_window(self):
        cc = NewRenoControl(MSS, init_cwnd_segments=10)
        assert cc.cwnd == 10 * MSS

    def test_starts_in_slow_start(self):
        assert NewRenoControl(MSS).in_slow_start

    def test_slow_start_doubles_per_rtt(self):
        cc = NewRenoControl(MSS, init_cwnd_segments=2)
        # ACK a full window: cwnd should double.
        cc.on_ack_progress(2 * MSS)
        assert cc.cwnd == pytest.approx(4 * MSS)

    def test_congestion_avoidance_linear(self):
        cc = NewRenoControl(MSS, init_cwnd_segments=10)
        cc.ssthresh = 5 * MSS  # force CA
        cc.cwnd = 10 * MSS
        start = cc.cwnd
        # ACK one full window worth of bytes in MSS chunks: +~1 MSS total.
        for _ in range(10):
            cc.on_ack_progress(MSS)
        assert cc.cwnd - start == pytest.approx(MSS, rel=0.05)

    def test_slow_start_does_not_overshoot_ssthresh(self):
        cc = NewRenoControl(MSS, init_cwnd_segments=2)
        cc.ssthresh = 3 * MSS
        cc.on_ack_progress(10 * MSS)
        assert cc.cwnd == pytest.approx(3 * MSS)


class TestNewRenoShrink:
    def test_loss_event_halves_flight(self):
        cc = NewRenoControl(MSS)
        cc.cwnd = 20 * MSS
        cc.on_loss_event(flight_bytes=20 * MSS)
        assert cc.cwnd == pytest.approx(10 * MSS)
        assert cc.ssthresh == pytest.approx(10 * MSS)

    def test_loss_event_floor_two_mss(self):
        cc = NewRenoControl(MSS)
        cc.on_loss_event(flight_bytes=MSS)
        assert cc.ssthresh == pytest.approx(2 * MSS)

    def test_rto_collapses_to_one_mss(self):
        cc = NewRenoControl(MSS)
        cc.cwnd = 30 * MSS
        cc.on_rto(flight_bytes=30 * MSS)
        assert cc.cwnd == pytest.approx(MSS)
        assert cc.ssthresh == pytest.approx(15 * MSS)

    def test_ecn_signal_behaves_like_loss(self):
        cc = NewRenoControl(MSS)
        cc.cwnd = 16 * MSS
        cc.on_ecn_signal(flight_bytes=16 * MSS)
        assert cc.cwnd == pytest.approx(8 * MSS)

    def test_base_on_ack_info_is_noop(self):
        cc = NewRenoControl(MSS)
        before = cc.cwnd
        assert cc.on_ack_info(MSS, True, 0, 10 * MSS) is False
        assert cc.cwnd == before

    def test_rejects_bad_mss(self):
        with pytest.raises(ConfigError):
            NewRenoControl(0)


class TestDctcpAlpha:
    def window(self, cc, acked_total, marked_fraction, start_una=0):
        """Drive one full DCTCP observation window with a marked fraction."""
        snd_nxt = start_una + acked_total
        chunk = MSS
        una = start_una
        n_chunks = acked_total // chunk
        marked_chunks = int(n_chunks * marked_fraction)
        reduced = False
        for i in range(n_chunks):
            una += chunk
            r = cc.on_ack_info(chunk, i < marked_chunks, una, snd_nxt)
            reduced = reduced or r
        return reduced

    def test_alpha_decays_without_marks(self):
        cc = DctcpControl(MSS, g=0.5, init_alpha=1.0)
        self.window(cc, 10 * MSS, 0.0)
        assert cc.alpha == pytest.approx(0.5)

    def test_alpha_decays_toward_zero_over_unmarked_stream(self):
        """Trajectory check with a realistically sliding snd_nxt."""
        cc = DctcpControl(MSS, g=0.5, init_alpha=1.0)
        una = 0
        trajectory = [cc.alpha]
        for _ in range(100):
            una += MSS
            if cc.on_ack_info(MSS, False, una, una + 10 * MSS) or True:
                trajectory.append(cc.alpha)
        assert trajectory[-1] < 0.01
        assert all(b <= a for a, b in zip(trajectory, trajectory[1:]))

    def test_alpha_rises_with_full_marking(self):
        cc = DctcpControl(MSS, g=0.5, init_alpha=0.0)
        self.window(cc, 10 * MSS, 1.0)
        assert cc.alpha == pytest.approx(0.5)

    def test_no_reduction_without_marks(self):
        cc = DctcpControl(MSS, init_alpha=1.0)
        before = cc.cwnd
        reduced = self.window(cc, 10 * MSS, 0.0)
        assert not reduced
        # growth still applied separately via on_ack_progress; here unchanged
        assert cc.cwnd == before

    def test_reduction_proportional_to_alpha(self):
        cc = DctcpControl(MSS, g=1.0, init_alpha=0.0)
        cc.cwnd = 100 * MSS
        self.window(cc, 10 * MSS, 1.0)
        # g=1: alpha jumps to 1.0 -> cwnd cut by half
        assert cc.alpha == pytest.approx(1.0)
        assert cc.cwnd == pytest.approx(50 * MSS)

    def test_light_marking_small_cut(self):
        cc = DctcpControl(MSS, g=1.0, init_alpha=0.0)
        cc.cwnd = 100 * MSS
        self.window(cc, 10 * MSS, 0.1)
        assert cc.alpha == pytest.approx(0.1)
        assert cc.cwnd == pytest.approx(95 * MSS)

    def test_cut_at_most_once_per_window(self):
        cc = DctcpControl(MSS, g=1.0, init_alpha=0.0)
        cc.cwnd = 100 * MSS
        snd_nxt = 20 * MSS
        # Every ACK marked, but all within one window: only the ACK that
        # crosses the window boundary applies a cut.
        cuts = 0
        una = 0
        for i in range(10):
            una += MSS
            if cc.on_ack_info(MSS, True, una, snd_nxt):
                cuts += 1
        assert cuts == 0  # window ends at snd_nxt=20*MSS, una only reaches 10*MSS

    def test_cwnd_floor_one_mss(self):
        cc = DctcpControl(MSS, g=1.0, init_alpha=1.0)
        cc.cwnd = float(MSS)
        self.window(cc, 10 * MSS, 1.0)
        assert cc.cwnd >= MSS

    def test_classic_gate_disabled(self):
        cc = DctcpControl(MSS)
        cc.cwnd = 50 * MSS
        cc.on_ecn_signal(50 * MSS)
        assert cc.cwnd == 50 * MSS  # no-op for DCTCP

    def test_rejects_bad_gain(self):
        with pytest.raises(ConfigError):
            DctcpControl(MSS, g=0.0)
        with pytest.raises(ConfigError):
            DctcpControl(MSS, g=1.5)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigError):
            DctcpControl(MSS, init_alpha=2.0)

    def test_loss_reaction_unchanged_from_reno(self):
        cc = DctcpControl(MSS)
        cc.cwnd = 20 * MSS
        cc.on_loss_event(20 * MSS)
        assert cc.cwnd == pytest.approx(10 * MSS)
